// Concurrency stress for work-stealing rebalance: producers hammer a
// multi-partition fleet while a mover thread relocates partitions as fast
// as the quiesce protocol allows, a checkpointer saves delta epochs, an
// expirer retires the window behind the event clock, and a trigger-armed
// stitcher folds boundary messages — all racing Drain calls.
//
// The invariants under test are order-independent: no edge is lost or
// double-applied across a move (fleet-wide processed == accepted), a
// stitched read never overstates the merged ground truth of the final
// window, and a checkpoint taken mid-race restores cleanly. Raciness is
// the point; the test runs in the `stress` ctest label and the TSan CI
// leg, where the partition-map publishes, the forward hand-offs and the
// detach/attach fences are checked for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/detection_service.h"
#include "service/sharded_detection_service.h"

namespace spade {
namespace {

constexpr VertexId kVerticesPerTenant = 48;
constexpr std::size_t kPartitions = 8;
constexpr std::size_t kPartitionsPerShard = 2;

std::vector<Spade> BuildEmptyPartitions(std::size_t num_partitions,
                                        std::size_t n) {
  std::vector<Spade> shards;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

TEST(RebalanceStressTest, MovesRaceIngestRetireCheckpointAndStitch) {
  const std::size_t n = kPartitions * kVerticesPerTenant;
  const std::string dir = ::testing::TempDir() + "/spade_rebalance_stress";
  std::filesystem::remove_all(dir);

  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.rebalance.enabled = true;
  options.rebalance.partitions_per_shard = kPartitionsPerShard;
  options.rebalance.quiesce_timeout_ms = 2;
  options.window.span = 1'500;
  options.stitch.trigger_weight = 200.0;  // event-driven wakeups mid-run
  ShardedDetectionService service(BuildEmptyPartitions(kPartitions, n),
                                  nullptr, options);
  const std::size_t num_shards = service.num_shards();

  std::atomic<bool> producers_done{false};
  std::atomic<Timestamp> clock{1};
  std::atomic<std::size_t> accepted_total{0};

  // Producers: mixed per-edge / batched submission with a steady
  // cross-tenant fraction, advancing event time so the window expires
  // behind them. Iteration-bounded (see stitch_stress_test for why).
  constexpr int kBatchesPerProducer = 800;
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(4000 + t);
      std::vector<Edge> batch;
      for (int iter = 0; iter < kBatchesPerProducer; ++iter) {
        const Timestamp now = clock.fetch_add(1, std::memory_order_relaxed);
        batch.clear();
        for (int i = 0; i < 16; ++i) {
          const auto tenant = rng.NextBounded(kPartitions);
          auto s = static_cast<VertexId>(tenant * kVerticesPerTenant +
                                         rng.NextBounded(kVerticesPerTenant));
          VertexId d;
          if (i % 4 == 0) {  // cross-tenant: boundary messages stay hot
            const auto other =
                (tenant + 1 + rng.NextBounded(kPartitions - 1)) % kPartitions;
            d = static_cast<VertexId>(other * kVerticesPerTenant +
                                      rng.NextBounded(kVerticesPerTenant));
          } else {
            d = static_cast<VertexId>(tenant * kVerticesPerTenant +
                                      rng.NextBounded(kVerticesPerTenant));
            if (d == s) {
              d = (d + 1) %
                  (tenant * kVerticesPerTenant + kVerticesPerTenant);
            }
          }
          if (d == s) continue;
          batch.push_back(Edge{s, d, 1.0 + 10.0 * rng.NextDouble(), now});
        }
        if (batch.size() % 2 == 0) {
          std::size_t got = 0;
          ASSERT_TRUE(service.SubmitBatch(batch, &got).ok());
          accepted_total.fetch_add(got, std::memory_order_relaxed);
        } else {
          for (const Edge& e : batch) {
            ASSERT_TRUE(service.Submit(e).ok());
            accepted_total.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Mover: relocates random partitions as fast as quiesce allows — every
  // move races live applies, forcing the forward path constantly.
  std::thread mover([&] {
    Rng rng(31);
    while (!producers_done.load(std::memory_order_acquire)) {
      const std::size_t pid = rng.NextBounded(kPartitions);
      const std::size_t to = rng.NextBounded(num_shards);
      ASSERT_TRUE(service.RebalanceNow(pid, to).ok());
      std::this_thread::yield();
    }
  });

  // Expirer: explicit RetireOlderThan racing moves — retire markers must
  // find every partition wherever it currently lives.
  std::thread expirer([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      const Timestamp now = clock.load(std::memory_order_relaxed);
      if (now > 500) (void)service.RetireOlderThan(now - 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Checkpointer: delta-chain saves racing moves — each save walks every
  // partition under the same rebalance lock the mover contends for, and
  // records the placement it found.
  std::thread checkpointer([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(service
                      .SaveState(dir,
                                 ShardedDetectionService::SaveMode::kAuto,
                                 nullptr)
                      .ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Drain + stitch readers racing everything else.
  std::thread stitcher([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      service.Drain();
      const GlobalCommunity g = service.StitchNow();
      EXPECT_GE(g.density, 0.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& p : producers) p.join();
  producers_done.store(true, std::memory_order_release);
  mover.join();
  expirer.join();
  checkpointer.join();
  stitcher.join();

  // Quiesce and check the order-independent invariants.
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), accepted_total.load());

  const GlobalCommunity final_pass = service.StitchNow();
  std::vector<Edge> window;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::vector<Edge> shard_window = service.ShardWindow(s);
    window.insert(window.end(), shard_window.begin(), shard_window.end());
  }
  DetectionService merged(
      [&] {
        Spade spade;
        spade.SetSemantics(MakeDW());
        EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
        return spade;
      }(),
      nullptr);
  for (const Edge& e : window) ASSERT_TRUE(merged.Submit(e).ok());
  merged.Drain();
  const double truth = merged.CurrentCommunity().density;
  EXPECT_LE(final_pass.density, truth + 1e-9);

  const ShardedServiceStats stats = service.GetStats();
  EXPECT_GT(stats.edges_processed, 0u);
  EXPECT_GT(stats.retired_edges, 0u);
  EXPECT_GT(stats.partitions_moved, 0u);
  std::size_t owned_total = 0;
  for (const std::size_t p : stats.shard_partitions) owned_total += p;
  EXPECT_EQ(owned_total, kPartitions);

  // The last checkpoint of the race restores into a fresh fleet with
  // whatever placement it recorded.
  ShardedDetectionService restored(BuildEmptyPartitions(kPartitions, n),
                                   nullptr, options);
  ASSERT_TRUE(restored.RestoreState(dir).ok());
  std::size_t restored_edges = 0;
  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    ASSERT_TRUE(restored
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        restored_edges += s.graph().NumEdges();
                                      })
                    .ok());
  }
  EXPECT_GT(restored_edges, 0u);

  service.Stop();
  restored.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spade
