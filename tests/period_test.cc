// Tests for PeriodDetector: Appendix C.3's five window-overlap cases, each
// verified against a from-scratch build of the target period's graph.

#include "core/period_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

/// A deterministic log: edge i at ts = 10 * (i + 1).
std::vector<Edge> MakeLog(Rng* rng, std::size_t n, std::size_t m) {
  std::vector<Edge> log;
  for (std::size_t i = 0; i < m; ++i) {
    Edge e = testing::RandomEdge(rng, n);
    e.ts = static_cast<Timestamp>(10 * (i + 1));
    log.push_back(e);
  }
  return log;
}

/// Reference: build the period's graph directly and peel it statically.
PeelState ReferenceState(std::size_t n, const std::vector<Edge>& log,
                         Timestamp begin, Timestamp end, DynamicGraph* out) {
  DynamicGraph g(n);
  for (const Edge& e : log) {
    if (e.ts >= begin && e.ts <= end) {
      EXPECT_TRUE(g.AddEdge(e.src, e.dst, e.weight).ok());
    }
  }
  if (out != nullptr) *out = g;
  return PeelStatic(g);
}

class PeriodCaseTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PeriodCaseTest, RetargetMatchesFromScratch) {
  // Start from window [200, 400]; retarget per the parameterized case.
  Rng rng(100);
  const std::size_t n = 18;
  const auto log = MakeLog(&rng, n, 80);  // ts range [10, 800]

  PeriodDetector detector(n, log, MakeDW());
  ASSERT_TRUE(detector.SetPeriod(200, 400).ok());

  const auto [begin, end] = GetParam();
  ASSERT_TRUE(detector.SetPeriod(begin, end).ok());

  DynamicGraph want_graph;
  const PeelState want =
      ReferenceState(n, log, begin, end, &want_graph);
  ASSERT_EQ(detector.graph().NumEdges(), want_graph.NumEdges());
  testing::ExpectStateEquals(want, detector.peel_state());
  EXPECT_NEAR(detector.Detect().density, want.DetectCommunity().density,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Figure17Cases, PeriodCaseTest,
    ::testing::Values(
        std::make_pair(500, 700),   // Case 1: disjoint (after)
        std::make_pair(10, 150),    // Case 1: disjoint (before)
        std::make_pair(100, 600),   // Case 2: new contains old
        std::make_pair(250, 350),   // Case 3: old contains new
        std::make_pair(100, 300),   // Case 4: slide left
        std::make_pair(300, 600),   // Case 5: slide right
        std::make_pair(200, 400))); // identity

TEST(PeriodDetectorTest, EmptyPeriod) {
  Rng rng(101);
  const std::size_t n = 10;
  const auto log = MakeLog(&rng, n, 30);
  PeriodDetector detector(n, log, MakeDG());
  ASSERT_TRUE(detector.SetPeriod(5000, 6000).ok());
  EXPECT_EQ(detector.EdgesInPeriod(), 0u);
  EXPECT_EQ(detector.graph().NumEdges(), 0u);
}

TEST(PeriodDetectorTest, RejectsInvertedPeriod) {
  PeriodDetector detector(4, {}, MakeDG());
  EXPECT_FALSE(detector.SetPeriod(100, 50).ok());
}

TEST(PeriodDetectorTest, RandomizedSlidingSweep) {
  Rng rng(102);
  const std::size_t n = 15;
  const auto log = MakeLog(&rng, n, 120);  // ts range [10, 1200]
  PeriodDetector detector(n, log, MakeDW());
  for (int step = 0; step < 25; ++step) {
    const Timestamp begin =
        static_cast<Timestamp>(rng.NextBounded(1000));
    const Timestamp end =
        begin + static_cast<Timestamp>(50 + rng.NextBounded(400));
    ASSERT_TRUE(detector.SetPeriod(begin, end).ok());
    const PeelState want = ReferenceState(n, log, begin, end, nullptr);
    testing::ExpectStateEquals(want, detector.peel_state());
  }
}

TEST(PeriodDetectorTest, CostTracksSymmetricDifference) {
  // Sliding by one step must not rebuild the whole window: the edge count
  // in the graph changes only by the entering/leaving edges.
  Rng rng(103);
  const std::size_t n = 12;
  const auto log = MakeLog(&rng, n, 200);
  PeriodDetector detector(n, log, MakeDG());
  ASSERT_TRUE(detector.SetPeriod(500, 1500).ok());
  const std::size_t before = detector.EdgesInPeriod();
  ASSERT_TRUE(detector.SetPeriod(510, 1510).ok());
  // One edge leaves (ts=500..509) and one enters (1501..1510).
  EXPECT_NEAR(static_cast<double>(detector.EdgesInPeriod()),
              static_cast<double>(before), 2.0);
}

}  // namespace
}  // namespace spade
