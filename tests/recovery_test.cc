// Crash-recovery harness for incremental snapshot-delta persistence
// (ctest label `stress`).
//
// Fault model: rename is atomic but data pages are not fsynced, so a crash
// during a checkpoint can leave any file of that epoch at its final path
// with an arbitrary byte prefix ("torn"). The suite drives the
// TruncatingWriter seam (storage::SetTruncationHookForTesting) through a
// live save, and sweeps filesystem truncation across every framing
// boundary and mid-record cut of the last delta epoch. The contract under
// test (ISSUE 4 / DESIGN.md §5): restore either reconstructs EXACTLY the
// last durable checkpoint epoch — verified by bit-level differential
// comparison against captures of the uninterrupted fleet — or fails with a
// clean Status; never a partial graph.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"
#include "storage/checked_io.h"
#include "storage/delta_segment.h"
#include "storage/sharded_snapshot.h"
#include "tests/test_util.h"

namespace spade {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kVertices = 192;
constexpr std::size_t kInitialEdges = 400;
constexpr std::size_t kChunkEdges = 120;

/// Parity routing: deterministic homes, ~half of all traffic cross-home,
/// so every delta epoch also writes a non-trivial boundary tail.
Partitioner ParityPartitioner() {
  return Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
}

std::vector<Edge> RandomChunk(Rng* rng, std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    edges.push_back(testing::RandomEdge(rng, kVertices));
  }
  return edges;
}

std::unique_ptr<ShardedDetectionService> BuildService(
    const std::vector<Edge>& initial, std::size_t restore_threads = 0,
    Timestamp window_span = 0) {
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) parts[e.src % kShards].push_back(e);
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(kVertices, parts[s]).ok());
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = ParityPartitioner();
  // Small cadence so delta logs carry flush markers between checkpoints.
  options.shard.detect_every = 16;
  // The harness controls full-vs-delta explicitly; keep the policy out of
  // the way.
  options.checkpoint.max_chain_length = 1000;
  options.checkpoint.max_delta_base_ratio = 1e9;
  options.restore_threads = restore_threads;
  options.window.span = window_span;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

std::vector<testing::ShardCapture> CaptureShards(
    const ShardedDetectionService& service) {
  std::vector<testing::ShardCapture> captures(service.num_shards());
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      captures[s].state = spade.peel_state();
      captures[s].num_edges = spade.graph().NumEdges();
      captures[s].total_weight = spade.graph().TotalWeight();
      captures[s].pending_benign = spade.PendingBenignEdges();
    });
  }
  return captures;
}

/// One uninterrupted run checkpointing `epochs` times into `dir`, with a
/// bit-level capture of every shard after each checkpoint. chunks[e] is
/// the traffic applied between checkpoint e and e+1 (chunks[0] = between
/// the initial graph and epoch 1's full save... epoch e's save covers
/// chunks[0..e-1]).
struct LiveRun {
  std::vector<Edge> initial;
  std::vector<std::vector<Edge>> chunks;               // per delta epoch
  std::vector<std::vector<testing::ShardCapture>> at;  // at[e] = epoch e
  std::unique_ptr<ShardedDetectionService> service;
};

LiveRun RunAndCheckpoint(const std::string& dir, std::size_t epochs,
                         std::uint64_t seed) {
  LiveRun run;
  Rng rng(seed);
  run.initial = RandomChunk(&rng, kInitialEdges);
  run.service = BuildService(run.initial);
  run.at.resize(epochs + 1);

  ShardedDetectionService::SaveInfo info;
  EXPECT_TRUE(run.service
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                              &info)
                  .ok());
  EXPECT_FALSE(info.delta);
  EXPECT_EQ(info.epoch, 1u);
  run.at[1] = CaptureShards(*run.service);

  for (std::uint64_t e = 2; e <= epochs; ++e) {
    run.chunks.push_back(RandomChunk(&rng, kChunkEdges));
    EXPECT_TRUE(run.service->SubmitBatch(run.chunks.back()).ok());
    run.service->Drain();
    EXPECT_TRUE(run.service
                    ->SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                                &info)
                    .ok());
    EXPECT_TRUE(info.delta) << "epoch " << e << " did not use the delta path";
    EXPECT_EQ(info.epoch, e);
    EXPECT_GT(info.delta_edges, 0u);
    run.at[e] = CaptureShards(*run.service);
  }
  return run;
}

void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/spade_recovery_test";
    work_ = dir_ + ".work";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(work_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(work_);
  }
  std::string dir_;
  std::string work_;
};

// Restore-side parallel replay (one thread per shard, the default) must be
// bit-identical to a serial restore (restore_threads = 1) AND to the live
// fleet that wrote the chain — each shard's chain replays only into its
// own detector, so thread interleaving has nothing to reorder.
TEST_F(RecoveryTest, ParallelRestoreBitIdenticalToSerial) {
  constexpr std::size_t kEpochs = 4;
  LiveRun run = RunAndCheckpoint(dir_, kEpochs, /*seed=*/311);

  auto parallel = BuildService(run.initial, /*restore_threads=*/0);
  auto serial = BuildService(run.initial, /*restore_threads=*/1);
  ShardedDetectionService::RestoreInfo parallel_info, serial_info;
  ASSERT_TRUE(parallel->RestoreState(dir_, &parallel_info).ok());
  ASSERT_TRUE(serial->RestoreState(dir_, &serial_info).ok());
  EXPECT_EQ(parallel_info.restored_epoch, kEpochs);
  EXPECT_EQ(serial_info.restored_epoch, kEpochs);
  EXPECT_EQ(parallel_info.delta_edges_replayed,
            serial_info.delta_edges_replayed);
  EXPECT_GT(parallel_info.restore_millis, 0.0);
  EXPECT_GT(serial_info.restore_millis, 0.0);

  const auto from_parallel = CaptureShards(*parallel);
  const auto from_serial = CaptureShards(*serial);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(run.at[kEpochs][s], from_parallel[s]);
    testing::ExpectShardEqualsCapture(from_serial[s], from_parallel[s]);
  }
}

// The seam end to end: a live delta save whose shard-0 segment is torn by
// the TruncatingWriter must restore to the previous durable epoch, equal
// to the uninterrupted fleet's capture at that epoch, bit for bit.
TEST_F(RecoveryTest, TruncatingWriterSeamFallsBackToDurableEpoch) {
  LiveRun run = RunAndCheckpoint(dir_, 2, /*seed=*/101);

  // Epoch 3's save runs with the seam cutting shard-0's segment mid-record.
  Rng rng(202);
  const std::vector<Edge> chunk = RandomChunk(&rng, kChunkEdges);
  ASSERT_TRUE(run.service->SubmitBatch(chunk).ok());
  run.service->Drain();
  const std::string torn_file = ShardDeltaFileName(0, 3);
  {
    storage::ScopedTruncationHook hook(
        [&torn_file](const std::string& path) -> std::int64_t {
          return path.size() >= torn_file.size() &&
                         path.compare(path.size() - torn_file.size(),
                                      torn_file.size(), torn_file) == 0
                     ? 57
                     : -1;
        });
    // The save itself reports success — exactly like a crash whose rename
    // survived but whose data pages did not.
    ASSERT_TRUE(run.service->SaveState(dir_).ok());
  }

  LiveRun fresh = RunAndCheckpoint(work_, 1, /*seed=*/101);  // same initial
  ShardedDetectionService::RestoreInfo info;
  ASSERT_TRUE(fresh.service->RestoreState(dir_, &info).ok());
  EXPECT_EQ(info.manifest_epoch, 3u);
  EXPECT_EQ(info.restored_epoch, 2u);
  EXPECT_TRUE(info.truncated_chain);
  const auto restored = CaptureShards(*fresh.service);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(run.at[2][s], restored[s]);
  }
}

// Exhaustive torn-tail sweep: every framing boundary and a mid-record cut
// of every record of the last epoch's segments (and a byte sweep of the
// boundary tail) must restore to the last durable epoch — never a partial
// graph, never an error, and bit-identical to the live fleet's capture.
TEST_F(RecoveryTest, TruncationSweepRestoresToDurableEpoch) {
  constexpr std::size_t kEpochs = 3;
  LiveRun run = RunAndCheckpoint(dir_, kEpochs, /*seed=*/303);

  // Collect cut points per target file. For delta segments the format is
  // known: 40-byte header, then 1-byte (flush) or 25-byte (edge) records —
  // cut at every record boundary and inside every edge record.
  struct Target {
    std::string file;
    std::vector<std::uint64_t> cuts;
  };
  std::vector<Target> targets;
  for (std::size_t s = 0; s < kShards; ++s) {
    Target t;
    t.file = ShardDeltaFileName(s, kEpochs);
    DeltaSegment segment;
    ASSERT_TRUE(
        ReadDeltaSegment((std::filesystem::path(dir_) / t.file).string(),
                         &segment)
            .ok());
    std::uint64_t offset = 0;
    for (const std::uint64_t header_cut : {0, 8, 12, 16, 24, 32, 40}) {
      t.cuts.push_back(header_cut);
      offset = header_cut;
    }
    for (const DeltaRecord& r : segment.records) {
      const std::uint64_t size = r.flush ? 1 : 25;
      if (!r.flush) t.cuts.push_back(offset + 13);  // mid-record
      offset += size;
      t.cuts.push_back(offset);  // framing boundary after the record
    }
    t.cuts.push_back(offset + 4);  // inside the CRC trailer
    targets.push_back(std::move(t));
  }
  {
    // Boundary tail: sweep every few bytes (format-agnostic), which covers
    // header, record and trailer cuts at its small size.
    Target t;
    t.file = BoundaryTailFileName(kEpochs);
    const auto size = std::filesystem::file_size(
        std::filesystem::path(dir_) / t.file);
    for (std::uint64_t cut = 0; cut < size; cut += 3) t.cuts.push_back(cut);
    targets.push_back(std::move(t));
  }

  std::size_t cuts_tested = 0;
  for (const Target& target : targets) {
    for (const std::uint64_t cut : target.cuts) {
      CopyDir(dir_, work_);
      const auto path = std::filesystem::path(work_) / target.file;
      ASSERT_LE(cut, std::filesystem::file_size(path));
      std::filesystem::resize_file(path, cut);

      auto victim = BuildService(run.initial);
      ShardedDetectionService::RestoreInfo info;
      const Status s = victim->RestoreState(work_, &info);
      ASSERT_TRUE(s.ok()) << target.file << " cut at " << cut << ": "
                          << s.ToString();
      EXPECT_EQ(info.restored_epoch, kEpochs - 1)
          << target.file << " cut at " << cut;
      EXPECT_TRUE(info.truncated_chain);
      const auto restored = CaptureShards(*victim);
      for (std::size_t sh = 0; sh < kShards; ++sh) {
        testing::ExpectShardEqualsCapture(run.at[kEpochs - 1][sh],
                                          restored[sh]);
        if (::testing::Test::HasFailure()) {
          FAIL() << "divergence for " << target.file << " cut at " << cut;
        }
      }
      ++cuts_tested;
    }
  }
  // The sweep must actually have exercised a meaningful surface.
  EXPECT_GT(cuts_tested, 100u);

  // Control: the untouched directory restores the full chain.
  auto control = BuildService(run.initial);
  ShardedDetectionService::RestoreInfo info;
  ASSERT_TRUE(control->RestoreState(dir_, &info).ok());
  EXPECT_EQ(info.restored_epoch, kEpochs);
  EXPECT_FALSE(info.truncated_chain);
  const auto restored = CaptureShards(*control);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(run.at[kEpochs][s], restored[s]);
  }
}

// A torn manifest (or torn base snapshot) cannot be recovered from — but
// the failure must be a clean Status that leaves the restoring service
// exactly as it was: no partial graph, fully operational.
TEST_F(RecoveryTest, TornManifestOrBaseFailsCleanlyWithoutSideEffects) {
  LiveRun run = RunAndCheckpoint(dir_, 2, /*seed=*/404);

  auto victim = BuildService(run.initial);
  ASSERT_TRUE(victim->RestoreState(dir_).ok());
  const auto reference = CaptureShards(*victim);

  for (const std::string& file :
       {std::string("manifest.spade"), ShardSnapshotFileName(0, 1)}) {
    const auto size =
        std::filesystem::file_size(std::filesystem::path(dir_) / file);
    for (std::uint64_t cut = 0; cut < size;
         cut += std::max<std::uint64_t>(1, size / 37)) {
      CopyDir(dir_, work_);
      std::filesystem::resize_file(std::filesystem::path(work_) / file, cut);
      ShardedDetectionService::RestoreInfo info;
      const Status s = victim->RestoreState(work_, &info);
      ASSERT_FALSE(s.ok()) << file << " cut at " << cut
                           << " was accepted";
      // No side effects: the victim still equals its pre-attempt state.
      const auto after = CaptureShards(*victim);
      for (std::size_t sh = 0; sh < kShards; ++sh) {
        testing::ExpectShardEqualsCapture(reference[sh], after[sh]);
      }
    }
  }
  // Still fully operational after every failed attempt.
  Rng rng(505);
  ASSERT_TRUE(victim->SubmitBatch(RandomChunk(&rng, 50)).ok());
  victim->Drain();
}

// Regression (code review): a compaction (full save over an existing
// chain) that crashes after its base files land but BEFORE the manifest
// rename leaves the previous manifest in charge. Base files are
// epoch-stamped precisely so that manifest's own bases are untouched —
// without the stamp, restore silently replayed the old delta chain onto
// the newer base (every CRC valid, duplicate edges, a state no checkpoint
// ever held).
TEST_F(RecoveryTest, CrashedCompactionLeavesPreviousCheckpointRestorable) {
  LiveRun run = RunAndCheckpoint(dir_, 2, /*seed=*/808);

  // Snapshot the directory as it stands at epoch 2 (the pre-crash state).
  CopyDir(dir_, work_);

  // Run the epoch-3 compaction for real, then transplant ONLY its base
  // files into the pre-crash copy — exactly what a crash between the base
  // renames and the manifest rename leaves behind.
  Rng rng(809);
  const std::vector<Edge> chunk = RandomChunk(&rng, kChunkEdges);
  ASSERT_TRUE(run.service->SubmitBatch(chunk).ok());
  run.service->Drain();
  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(run.service
                  ->SaveState(dir_, ShardedDetectionService::SaveMode::kFull,
                              &info)
                  .ok());
  ASSERT_EQ(info.epoch, 3u);
  for (std::size_t s = 0; s < kShards; ++s) {
    std::filesystem::copy_file(
        std::filesystem::path(dir_) / ShardSnapshotFileName(s, 3),
        std::filesystem::path(work_) / ShardSnapshotFileName(s, 3));
  }
  std::filesystem::copy_file(std::filesystem::path(dir_) / BoundaryIndexFileName(3),
                             std::filesystem::path(work_) / BoundaryIndexFileName(3));

  auto victim = BuildService(run.initial);
  ShardedDetectionService::RestoreInfo rinfo;
  ASSERT_TRUE(victim->RestoreState(work_, &rinfo).ok());
  EXPECT_EQ(rinfo.restored_epoch, 2u);
  EXPECT_FALSE(rinfo.truncated_chain);
  const auto restored = CaptureShards(*victim);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(run.at[2][s], restored[s]);
  }
}

// Differential replay: a fleet recovered from a torn chain, fed the edges
// it lost plus fresh traffic, must converge bit-for-bit with the fleet
// that never crashed.
TEST_F(RecoveryTest, RecoveredFleetConvergesWithUninterruptedFleet) {
  constexpr std::size_t kEpochs = 3;
  LiveRun run = RunAndCheckpoint(dir_, kEpochs, /*seed=*/606);

  // Tear the whole last epoch (both shard segments + the boundary tail):
  // a crash that lost every data page of the final save.
  CopyDir(dir_, work_);
  for (std::size_t s = 0; s < kShards; ++s) {
    std::filesystem::resize_file(
        std::filesystem::path(work_) / ShardDeltaFileName(s, kEpochs), 16);
  }
  std::filesystem::resize_file(
      std::filesystem::path(work_) / BoundaryTailFileName(kEpochs), 5);

  auto recovered = BuildService(run.initial);
  ShardedDetectionService::RestoreInfo info;
  ASSERT_TRUE(recovered->RestoreState(work_, &info).ok());
  ASSERT_EQ(info.restored_epoch, kEpochs - 1);

  // Re-feed the lost chunk (the one that separated epoch kEpochs-1 from
  // kEpochs), then identical fresh traffic to both fleets.
  const std::vector<Edge>& lost = run.chunks.back();
  ASSERT_TRUE(recovered->SubmitBatch(lost).ok());
  recovered->Drain();
  Rng rng(707);
  const std::vector<Edge> fresh = RandomChunk(&rng, 2 * kChunkEdges);
  ASSERT_TRUE(recovered->SubmitBatch(fresh).ok());
  ASSERT_TRUE(run.service->SubmitBatch(fresh).ok());
  recovered->Drain();
  run.service->Drain();

  const auto live = CaptureShards(*run.service);
  const auto replayed = CaptureShards(*recovered);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(live[s], replayed[s]);
  }
  EXPECT_DOUBLE_EQ(run.service->CurrentCommunity().density,
                   recovered->CurrentCommunity().density);
}

/// Exact (bit-level) window-log comparison between two shards.
void ExpectWindowsEqual(const std::vector<Edge>& expected,
                        const std::vector<Edge>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].src, actual[i].src) << "window entry " << i;
    EXPECT_EQ(expected[i].dst, actual[i].dst) << "window entry " << i;
    EXPECT_DOUBLE_EQ(expected[i].weight, actual[i].weight)
        << "window entry " << i;
    EXPECT_EQ(expected[i].ts, actual[i].ts) << "window entry " << i;
  }
}

// Retire records in the delta chain: a windowed fleet that expired edges
// between checkpoints must restore bit-identically — graph, peel state AND
// window log — and must keep converging with the live fleet under further
// traffic and expiry. This pins the replay argument end to end: retire
// records re-run the deletion with the recorded applied weight, and the
// flush inside RetireEdge is deterministic, so no flush marker precedes a
// retire record yet the replayed flush points match the live ones.
TEST_F(RecoveryTest, WindowedChainWithRetiresRestoresBitIdentical) {
  constexpr Timestamp kSpan = 2000;
  constexpr std::uint64_t kEpochs = 4;
  Rng rng(909);
  const std::vector<Edge> initial = RandomChunk(&rng, kInitialEdges);
  auto service = BuildService(initial, /*restore_threads=*/0, kSpan);

  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(service
                  ->SaveState(dir_, ShardedDetectionService::SaveMode::kAuto,
                              &info)
                  .ok());
  ASSERT_FALSE(info.delta);

  Timestamp now = 0;
  for (std::uint64_t e = 2; e <= kEpochs; ++e) {
    std::vector<Edge> chunk = RandomChunk(&rng, kChunkEdges);
    for (Edge& edge : chunk) {
      now += 10;
      edge.ts = now;
    }
    ASSERT_TRUE(service->SubmitBatch(chunk).ok());
    service->Drain();
    if (now > kSpan) {
      ASSERT_TRUE(service->RetireOlderThan(now - kSpan).ok());
      service->Drain();
    }
    ASSERT_TRUE(service
                    ->SaveState(dir_, ShardedDetectionService::SaveMode::kAuto,
                                &info)
                    .ok());
    EXPECT_TRUE(info.delta) << "epoch " << e;
  }
  // The chain must actually contain retire records for the test to mean
  // anything.
  ASSERT_GT(service->EdgesRetired(), 0u);
  EXPECT_EQ(service->GetStats().retired_edges, service->EdgesRetired());
  const auto live = CaptureShards(*service);

  auto victim = BuildService(initial, /*restore_threads=*/0, kSpan);
  ShardedDetectionService::RestoreInfo rinfo;
  ASSERT_TRUE(victim->RestoreState(dir_, &rinfo).ok());
  EXPECT_EQ(rinfo.restored_epoch, kEpochs);
  const auto restored = CaptureShards(*victim);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(live[s], restored[s]);
    ExpectWindowsEqual(service->ShardWindow(s), victim->ShardWindow(s));
  }

  // Converge after restore: identical fresh traffic and an identical
  // expiry horizon must leave both fleets bit-identical again.
  std::vector<Edge> fresh = RandomChunk(&rng, 2 * kChunkEdges);
  for (Edge& edge : fresh) {
    now += 10;
    edge.ts = now;
  }
  for (ShardedDetectionService* svc : {service.get(), victim.get()}) {
    ASSERT_TRUE(svc->SubmitBatch(fresh).ok());
    svc->Drain();
    ASSERT_TRUE(svc->RetireOlderThan(now - kSpan).ok());
    svc->Drain();
  }
  const auto live2 = CaptureShards(*service);
  const auto conv = CaptureShards(*victim);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ExpectShardEqualsCapture(live2[s], conv[s]);
    ExpectWindowsEqual(service->ShardWindow(s), victim->ShardWindow(s));
  }
  EXPECT_DOUBLE_EQ(service->CurrentCommunity().density,
                   victim->CurrentCommunity().density);
}

}  // namespace
}  // namespace spade
