// Tests for the replay harness: latency accounting, prevention ratio and
// batching policies, plus the analysis module's label metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "analysis/graph_stats.h"
#include "common/rng.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"
#include "peel/static_peeler.h"
#include "stream/replayer.h"
#include "tests/test_util.h"

namespace spade {
namespace {

// Builds a small labeled workload: background noise plus one dense fraud
// burst in the middle of the stream.
Workload SmallFraudWorkload(std::uint64_t seed) {
  FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 150;
  return BuildWorkload("Grab1", 0.0005, seed, &mix);
}

TEST(ReplayerTest, ProcessesEveryEdge) {
  Workload w = SmallFraudWorkload(31);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
  ReplayOptions options;
  options.batch_size = 1;
  const ReplayReport report = Replay(&spade, w.stream, options);
  EXPECT_EQ(report.edges_processed, w.stream.size());
  EXPECT_EQ(report.flushes, w.stream.size());
  EXPECT_GT(report.total_process_micros, 0.0);
  EXPECT_EQ(spade.graph().NumEdges(), w.initial.size() + w.stream.size());
}

TEST(ReplayerTest, BatchingReducesFlushes) {
  Workload w = SmallFraudWorkload(32);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
  ReplayOptions options;
  options.batch_size = 50;
  const ReplayReport report = Replay(&spade, w.stream, options);
  EXPECT_EQ(report.edges_processed, w.stream.size());
  EXPECT_LE(report.flushes, w.stream.size() / 50 + 1);
}

TEST(ReplayerTest, FinalStateIsValidCanonicalPeeling) {
  // DW amounts are continuous doubles: different summation orders perturb
  // exact ties by ulps, so the final state is checked for canonical
  // validity (each step peels a minimal vertex) rather than bitwise
  // equality with a from-scratch run.
  Workload w = SmallFraudWorkload(33);
  for (std::size_t batch : {1u, 7u, 100u}) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
    ReplayOptions options;
    options.batch_size = batch;
    Replay(&spade, w.stream, options);
    testing::ValidateCanonicalSequence(spade.graph(), spade.peel_state(),
                                       1e-6, /*check_tie_break=*/false);
  }
}

TEST(ReplayerTest, QueueingLatencyGrowsWithBatchSize) {
  Workload w = SmallFraudWorkload(34);
  double lat_small = 0, lat_large = 0;
  for (std::size_t batch : {1u, 200u}) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
    ReplayOptions options;
    options.batch_size = batch;
    const ReplayReport report = Replay(&spade, w.stream, options);
    ASSERT_GT(report.fraud_latency_micros.count(), 0u);
    (batch == 1 ? lat_small : lat_large) =
        report.fraud_queue_micros.mean();
  }
  // Per-edge processing has no queueing; batch-200 queues for a while.
  EXPECT_GT(lat_large, lat_small);
}

TEST(ReplayerTest, FraudBurstIsDetectedAndPrevented) {
  Workload w = SmallFraudWorkload(35);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
  ReplayOptions options;
  options.batch_size = 1;
  const ReplayReport report = Replay(&spade, w.stream, options);
  // With per-edge detection, each dense burst should be caught before it
  // completes, preventing a substantial share of its transactions.
  int detected = 0;
  for (double t : report.group_detection_time) {
    if (t >= 0) ++detected;
  }
  EXPECT_GT(detected, 0);
  EXPECT_GT(report.prevention_ratio, 0.0);
  EXPECT_LE(report.prevention_ratio, 1.0);
}

TEST(ReplayerTest, EdgeGroupingModeFlushesOnUrgent) {
  Workload w = SmallFraudWorkload(36);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());
  ReplayOptions options;
  options.use_edge_grouping = true;
  const ReplayReport report = Replay(&spade, w.stream, options);
  EXPECT_EQ(report.edges_processed, w.stream.size());
  // Grouping coalesces benign traffic: far fewer flushes than edges.
  EXPECT_LT(report.flushes, w.stream.size());
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);  // drained at the end
  testing::ValidateCanonicalSequence(spade.graph(), spade.peel_state(),
                                     1e-6, /*check_tie_break=*/false);
}

// Periodic-checkpoint option: the service replay checkpoints while
// producers are live, the directory ends at the final epoch, and a fresh
// fleet restores from it.
TEST(ReplayerTest, ServiceReplayPeriodicCheckpointing) {
  const std::string dir = ::testing::TempDir() + "/replay_checkpoints";
  std::filesystem::remove_all(dir);
  Workload w = SmallFraudWorkload(53);

  auto build_shards = [&] {
    std::vector<Spade> shards;
    for (int s = 0; s < 2; ++s) {
      Spade spade;
      spade.SetSemantics(MakeDW());
      EXPECT_TRUE(spade.BuildGraph(w.num_vertices, {}).ok());
      shards.push_back(std::move(spade));
    }
    return shards;
  };
  std::vector<Spade> shards = build_shards();
  ServiceReplayOptions options;
  options.num_producers = 2;
  options.producer_batch = 32;
  options.checkpoint_every_edges = w.stream.size() / 4;
  options.checkpoint_dir = dir;
  const ServiceReplayReport report =
      ReplayThroughService(std::move(shards), w.stream, options);

  EXPECT_EQ(report.edges_submitted, w.stream.size());
  EXPECT_GE(report.checkpoints, 2u);  // at least one periodic + the final
  EXPECT_GT(report.checkpoint_bytes, 0u);
  EXPECT_GE(report.final_epoch, 1u);
  // After the first (full) save, later checkpoints ride the delta path
  // unless the compaction policy folds the chain.
  EXPECT_GE(report.delta_checkpoints, 1u);

  ShardedDetectionService restored(build_shards(), nullptr, {});
  ShardedDetectionService::RestoreInfo info;
  ASSERT_TRUE(restored.RestoreState(dir, &info).ok());
  EXPECT_EQ(info.restored_epoch, report.final_epoch);
  EXPECT_FALSE(info.truncated_chain);
  // The final checkpoint ran after the drain, so the restored fleet holds
  // the whole stream.
  std::uint64_t restored_edges = 0;
  for (std::size_t s = 0; s < restored.num_shards(); ++s) {
    restored.InspectShard(s, [&](const Spade& spade) {
      restored_edges += spade.graph().NumEdges();
    });
  }
  EXPECT_EQ(restored_edges, report.edges_processed);
  std::filesystem::remove_all(dir);
}

TEST(ReplayerTest, EmptyStream) {
  Spade spade;
  spade.SetSemantics(MakeDG());
  ASSERT_TRUE(spade.BuildGraph(4, std::vector<Edge>{{0, 1, 1.0, 0}}).ok());
  const ReplayReport report = Replay(&spade, LabeledStream{}, {});
  EXPECT_EQ(report.edges_processed, 0u);
  EXPECT_EQ(report.flushes, 0u);
  EXPECT_DOUBLE_EQ(report.prevention_ratio, 0.0);
}

// --- analysis ---

TEST(AnalysisTest, DegreeDistributionCountsAllVertices) {
  DynamicGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  const CountHistogram hist = DegreeDistribution(g);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.buckets().at(0), 2u);  // vertices 3, 4
  EXPECT_EQ(hist.buckets().at(1), 2u);  // vertices 1, 2
  EXPECT_EQ(hist.buckets().at(2), 1u);  // vertex 0
}

TEST(AnalysisTest, CommunityStatsMatchDefinition) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 7.0).ok());
  Community c;
  c.members = {0, 1, 2};
  c.density = 5.0 / 3.0;
  const CommunityStats stats = AnalyzeCommunity(g, c);
  EXPECT_EQ(stats.size, 3u);
  EXPECT_EQ(stats.internal_edges, 2u);
  EXPECT_DOUBLE_EQ(stats.internal_weight, 5.0);
}

TEST(AnalysisTest, LabelMetricsPrecisionRecall) {
  LabeledStream stream;
  stream.group_vertices = {{1, 2}, {3}};
  Community detected;
  detected.members = {2, 3, 9};  // hits 2 and 3, false-positive 9, misses 1
  const LabelMetrics m = EvaluateAgainstLabels(detected, stream);
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 2.0 / 3.0);
  EXPECT_NEAR(m.F1(), 2.0 / 3.0, 1e-12);
}

TEST(AnalysisTest, EmptyMetricsAreZero) {
  const LabelMetrics m =
      EvaluateAgainstLabels(Community{}, LabeledStream{});
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

}  // namespace
}  // namespace spade
