// Tests for IndexedMinHeap, including a randomized differential test against
// an ordered-set reference model.

#include "peel/indexed_heap.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/rng.h"

namespace spade {
namespace {

TEST(HeapKeyTest, WeightThenIdOrdering) {
  EXPECT_TRUE(HeapKeyLess(1.0, 5, 2.0, 3));
  EXPECT_FALSE(HeapKeyLess(2.0, 3, 1.0, 5));
  EXPECT_TRUE(HeapKeyLess(1.0, 3, 1.0, 5));   // tie -> smaller id first
  EXPECT_FALSE(HeapKeyLess(1.0, 5, 1.0, 3));
  EXPECT_FALSE(HeapKeyLess(1.0, 4, 1.0, 4));  // irreflexive
}

TEST(IndexedMinHeapTest, PushPopOrder) {
  IndexedMinHeap h(10);
  h.Push(3, 5.0);
  h.Push(1, 2.0);
  h.Push(7, 9.0);
  h.Push(2, 2.0);  // ties with vertex 1; id 1 pops first
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 3u);
  EXPECT_EQ(h.Pop(), 7u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMinHeapTest, ContainsAndWeightOf) {
  IndexedMinHeap h(5);
  EXPECT_FALSE(h.Contains(2));
  h.Push(2, 4.5);
  EXPECT_TRUE(h.Contains(2));
  EXPECT_DOUBLE_EQ(h.WeightOf(2), 4.5);
  h.Pop();
  EXPECT_FALSE(h.Contains(2));
}

TEST(IndexedMinHeapTest, UpdateMovesBothDirections) {
  IndexedMinHeap h(5);
  h.Push(0, 1.0);
  h.Push(1, 2.0);
  h.Push(2, 3.0);
  h.Update(2, 0.5);  // decrease: becomes the top
  EXPECT_EQ(h.TopVertex(), 2u);
  h.Update(2, 10.0);  // increase: sinks to the bottom
  EXPECT_EQ(h.TopVertex(), 0u);
  EXPECT_EQ(h.Pop(), 0u);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 2u);
}

TEST(IndexedMinHeapTest, AdjustIsRelative) {
  IndexedMinHeap h(3);
  h.Push(0, 5.0);
  h.Adjust(0, -2.0);
  EXPECT_DOUBLE_EQ(h.WeightOf(0), 3.0);
  h.Adjust(0, 1.0);
  EXPECT_DOUBLE_EQ(h.WeightOf(0), 4.0);
}

TEST(IndexedMinHeapTest, EraseMiddle) {
  IndexedMinHeap h(6);
  for (VertexId v = 0; v < 6; ++v) h.Push(v, static_cast<double>(v));
  h.Erase(3);
  EXPECT_FALSE(h.Contains(3));
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h.Pop(), 0u);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 4u);
  EXPECT_EQ(h.Pop(), 5u);
}

TEST(IndexedMinHeapTest, EnsureCapacityPreservesContents) {
  IndexedMinHeap h(2);
  h.Push(0, 1.0);
  h.EnsureCapacity(100);
  h.Push(99, 0.5);
  EXPECT_EQ(h.Pop(), 99u);
  EXPECT_EQ(h.Pop(), 0u);
}

TEST(IndexedMinHeapTest, ResetClears) {
  IndexedMinHeap h(4);
  h.Push(1, 1.0);
  h.Reset(4);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(1));
}

// Differential test: random pushes/pops/updates/erases mirrored against a
// std::set<(weight, id)> reference model.
TEST(IndexedMinHeapTest, RandomizedAgainstReferenceModel) {
  constexpr std::size_t kUniverse = 64;
  Rng rng(2024);
  IndexedMinHeap h(kUniverse);
  std::set<std::pair<double, VertexId>> model;
  std::vector<double> weight(kUniverse, 0.0);
  std::vector<char> present(kUniverse, 0);

  for (int step = 0; step < 20000; ++step) {
    const auto v = static_cast<VertexId>(rng.NextBounded(kUniverse));
    switch (rng.NextBounded(4)) {
      case 0:  // push
        if (!present[v]) {
          const double w = static_cast<double>(rng.NextBounded(50));
          h.Push(v, w);
          model.emplace(w, v);
          weight[v] = w;
          present[v] = 1;
        }
        break;
      case 1:  // pop-min
        if (!model.empty()) {
          const auto [mw, mv] = *model.begin();
          ASSERT_EQ(h.TopVertex(), mv);
          ASSERT_DOUBLE_EQ(h.TopWeight(), mw);
          ASSERT_EQ(h.Pop(), mv);
          model.erase(model.begin());
          present[mv] = 0;
        }
        break;
      case 2:  // update
        if (present[v]) {
          const double w = static_cast<double>(rng.NextBounded(50));
          model.erase({weight[v], v});
          model.emplace(w, v);
          h.Update(v, w);
          weight[v] = w;
        }
        break;
      case 3:  // erase
        if (present[v]) {
          model.erase({weight[v], v});
          h.Erase(v);
          present[v] = 0;
        }
        break;
    }
    ASSERT_EQ(h.size(), model.size());
    ASSERT_EQ(h.Contains(v), static_cast<bool>(present[v]));
  }
  // Drain and confirm full agreement.
  while (!model.empty()) {
    ASSERT_EQ(h.Pop(), model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace spade
