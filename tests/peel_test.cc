// Tests for the static peeling engine (Algorithm 1), PeelState and the
// density reference implementations, including the Lemma 2.1 approximation
// guarantee against brute force.

#include "peel/static_peeler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "metrics/density.h"
#include "peel/peel_state.h"
#include "tests/test_util.h"

namespace spade {
namespace {

using testing::RandomGraph;
using testing::ValidateCanonicalSequence;

TEST(StaticPeelerTest, EmptyGraph) {
  DynamicGraph g;
  PeelState state = PeelStatic(g);
  EXPECT_EQ(state.size(), 0u);
  EXPECT_TRUE(state.DetectCommunity().members.empty());
}

TEST(StaticPeelerTest, SingleVertex) {
  DynamicGraph g(1);
  g.SetVertexWeight(0, 2.0);
  PeelState state = PeelStatic(g);
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state.VertexAt(0), 0u);
  EXPECT_DOUBLE_EQ(state.DeltaAt(0), 2.0);
  EXPECT_DOUBLE_EQ(state.BestDensity(), 2.0);
}

TEST(StaticPeelerTest, PathGraphPeelsLeavesFirst) {
  // 0 -2- 1 -2- 2 -2- 3: leaves have weight 2, inner vertices 4.
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 2.0).ok());
  PeelState state = PeelStatic(g);
  EXPECT_EQ(state.VertexAt(0), 0u);  // canonical: leaf with the smaller id
  EXPECT_DOUBLE_EQ(state.DeltaAt(0), 2.0);
  ValidateCanonicalSequence(g, state);
}

TEST(StaticPeelerTest, CliquePlusPendantFindsClique) {
  // Dense triangle {0,1,2} with heavy weights, pendant vertex 3.
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  PeelState state = PeelStatic(g);
  Community c = state.DetectCommunity();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(c.density, 10.0);  // 30 weight over 3 vertices
}

TEST(StaticPeelerTest, DeltaSumEqualsTotalWeight) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicGraph g = RandomGraph(&rng, 30, 90, 6, 3);
    PeelState state = PeelStatic(g);
    double sum = 0;
    for (std::size_t i = 0; i < state.size(); ++i) sum += state.DeltaAt(i);
    EXPECT_NEAR(sum, g.TotalWeight(), 1e-9);
    EXPECT_NEAR(state.SuffixWeight(0), g.TotalWeight(), 1e-9);
  }
}

TEST(StaticPeelerTest, SequencesAreCanonical) {
  Rng rng(22);
  for (int trial = 0; trial < 15; ++trial) {
    DynamicGraph g = RandomGraph(&rng, 3 + rng.NextBounded(25),
                                 rng.NextBounded(80), 5, 2);
    PeelState state = PeelStatic(g);
    ValidateCanonicalSequence(g, state);
  }
}

TEST(StaticPeelerTest, CommunityDensityMatchesDefinition) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicGraph g = RandomGraph(&rng, 20, 50, 5, 2);
    PeelState state = PeelStatic(g);
    const Community c = state.DetectCommunity();
    EXPECT_NEAR(c.density, SubgraphDensity(g, c.members), 1e-9);
  }
}

TEST(StaticPeelerTest, CommunityIsDensestPrefixSet) {
  // g(S_P) must dominate every suffix's density.
  Rng rng(24);
  DynamicGraph g = RandomGraph(&rng, 25, 70, 5, 2);
  PeelState state = PeelStatic(g);
  const double best = state.BestDensity();
  for (std::size_t k = 0; k <= state.size(); ++k) {
    std::vector<VertexId> suffix(state.seq().begin() +
                                     static_cast<std::ptrdiff_t>(k),
                                 state.seq().end());
    if (suffix.empty()) continue;
    EXPECT_GE(best + 1e-9, SubgraphDensity(g, suffix));
  }
}

// Lemma 2.1: g(S_P) >= 1/2 g(S*), verified by exhaustive search.
TEST(StaticPeelerTest, TwoApproximationGuarantee) {
  Rng rng(25);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(9);
    DynamicGraph g = RandomGraph(&rng, n, rng.NextBounded(3 * n), 4, 2);
    PeelState state = PeelStatic(g);
    const auto optimal = BruteForceDensest(g);
    const double g_star = SubgraphDensity(g, optimal);
    EXPECT_GE(state.BestDensity() + 1e-9, 0.5 * g_star)
        << "guarantee violated on trial " << trial;
  }
}

TEST(PeelStateTest, PositionsAreInverse) {
  Rng rng(26);
  DynamicGraph g = RandomGraph(&rng, 30, 60, 5, 0);
  PeelState state = PeelStatic(g);
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(state.PositionOf(state.VertexAt(i)), i);
  }
}

TEST(PeelStateTest, DetectTieBreaksToLargestCommunity) {
  // All-zero deltas: every suffix has density 0; the whole set wins.
  PeelState state(3);
  state.Append(0, 0.0);
  state.Append(1, 0.0);
  state.Append(2, 0.0);
  EXPECT_EQ(state.BestStart(), 0u);
  EXPECT_EQ(state.DetectCommunity().members.size(), 3u);
}

TEST(PeelStateTest, InsertVertexAtHeadShiftsPositions) {
  PeelState state(2);
  state.Append(0, 1.0);
  state.Append(1, 2.0);
  state.InsertVertexAtHead(5, 0.0);
  EXPECT_EQ(state.VertexAt(0), 5u);
  EXPECT_EQ(state.PositionOf(5), 0u);
  EXPECT_EQ(state.PositionOf(0), 1u);
  EXPECT_EQ(state.PositionOf(1), 2u);
}

TEST(PeelStateTest, ClearResets) {
  PeelState state(2);
  state.Append(1, 1.0);
  state.Clear();
  EXPECT_EQ(state.size(), 0u);
  EXPECT_FALSE(state.ContainsVertex(1));
}

// ------------------------------------------------------------------------
// SIMD kernel dispatch: every target compiled into this binary must produce
// results bit-identical to the always-built scalar reference (the canonical
// association orders of common/simd.h). memcmp, not EXPECT_DOUBLE_EQ — the
// contract is exact bits, signed zeros included.
// ------------------------------------------------------------------------

TEST(SimdKernelTest, CompiledTargetsBitIdenticalToScalar) {
  Rng rng(77);
  const auto targets = simd::CompiledSimdTargets();
  ASSERT_FALSE(targets.empty());
  ASSERT_STREQ(targets[0].name, "scalar");
  // Lengths straddling both lane counts, the block width, and zero.
  const std::size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                 13, 31, 100, 511, 512, 513};
  for (const std::size_t n : lengths) {
    std::vector<double> data(n);
    for (auto& d : data) {
      d = static_cast<double>(rng.NextBounded(1000)) / 8.0 - 60.0;
    }
    // Shuffled-in zero lanes must not flip a -0.0 to +0.0 on any target.
    if (n > 2) data[n / 2] = -0.0;
    if (n > 0) data[n - 1] = -0.0;
    std::vector<double> ref_scan(n);
    const double ref_sum = targets[0].fixed_order_sum(data.data(), n);
    const double ref_head =
        targets[0].suffix_scan_block(data.data(), n, ref_scan.data());
    for (const auto& t : targets) {
      const double sum = t.fixed_order_sum(data.data(), n);
      EXPECT_EQ(std::memcmp(&sum, &ref_sum, sizeof sum), 0)
          << t.name << " sum, n=" << n;
      std::vector<double> scan(n);
      const double head = t.suffix_scan_block(data.data(), n, scan.data());
      EXPECT_EQ(std::memcmp(&head, &ref_head, sizeof head), 0)
          << t.name << " scan head, n=" << n;
      EXPECT_EQ(std::memcmp(scan.data(), ref_scan.data(),
                            n * sizeof(double)),
                0)
          << t.name << " scan body, n=" << n;
      std::vector<std::uint32_t> iota(n, 0xDEADBEEFu);
      t.iota_u32(iota.data(), n, 17);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(iota[i], 17u + i) << t.name << " iota, n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, TestingOverrideRedirectsDispatch) {
  const auto targets = simd::CompiledSimdTargets();
  const char* compile_time = simd::ActiveSimdTarget();
  for (const auto& t : targets) {
    simd::SetSimdTargetForTesting(&t);
    EXPECT_STREQ(simd::ActiveSimdTarget(), t.name);
    const double one = 1.0;
    EXPECT_DOUBLE_EQ(simd::FixedOrderSum(&one, 1), 1.0);
  }
  simd::SetSimdTargetForTesting(nullptr);
  EXPECT_STREQ(simd::ActiveSimdTarget(), compile_time);
}

TEST(DensityTest, SubgraphWeightFromDefinition) {
  DynamicGraph g(4);
  g.SetVertexWeight(0, 1.0);
  g.SetVertexWeight(1, 2.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 5.0).ok());
  // S = {0, 1}: vertex weights 1 + 2 plus internal edge 3; the (1, 2) edge
  // leaves the set and must not count.
  EXPECT_DOUBLE_EQ(SubgraphWeight(g, {0, 1}), 6.0);
  EXPECT_DOUBLE_EQ(SubgraphDensity(g, {0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(SubgraphDensity(g, {}), 0.0);
}

TEST(DensityTest, PeelingWeightFromDefinition) {
  DynamicGraph g(3);
  g.SetVertexWeight(1, 4.0);
  ASSERT_TRUE(g.AddEdge(0, 1, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 5.0).ok());
  EXPECT_DOUBLE_EQ(PeelingWeight(g, {0, 1, 2}, 1), 12.0);
  EXPECT_DOUBLE_EQ(PeelingWeight(g, {0, 1}, 1), 7.0);
  EXPECT_DOUBLE_EQ(PeelingWeight(g, {1}, 1), 4.0);
}

TEST(DensityTest, BruteForceFindsObviousDensest) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  auto best = BruteForceDensest(g);
  std::sort(best.begin(), best.end());
  EXPECT_EQ(best, (std::vector<VertexId>{0, 1}));
}

}  // namespace
}  // namespace spade
