// Edge-case and stress tests for the incremental engine and peel state:
// boundary positions, extreme weights, duplicate batches, dense cliques,
// star graphs, and accounting invariants.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/incremental_engine.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

using testing::ExpectStateEquals;
using testing::RandomEdge;
using testing::RandomGraph;

TEST(EngineEdgeCaseTest, TwoVertexGraph) {
  DynamicGraph g(2);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        engine.InsertEdge(&g, &state, {0, 1, 1.0, 0}, nullptr, nullptr).ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
  ASSERT_TRUE(engine.DeleteEdge(&g, &state, 0, 1, nullptr, nullptr).ok());
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, EdgeBetweenLastTwoInSequence) {
  // Inserting between the two heaviest (last-peeled) vertices exercises the
  // queue-drain path at k == n.
  DynamicGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 50.0).ok());
  PeelState state = PeelStatic(g);
  const VertexId last = state.VertexAt(4);
  const VertexId second_last = state.VertexAt(3);
  IncrementalEngine engine;
  ASSERT_TRUE(engine
                  .InsertEdge(&g, &state, {second_last, last, 7.0, 0},
                              nullptr, nullptr)
                  .ok());
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, EdgeTouchingSequenceHead) {
  DynamicGraph g(5);
  ASSERT_TRUE(g.AddEdge(2, 3, 10.0).ok());
  PeelState state = PeelStatic(g);
  const VertexId head = state.VertexAt(0);
  const VertexId other = head == 0 ? 1 : 0;
  IncrementalEngine engine;
  ASSERT_TRUE(
      engine.InsertEdge(&g, &state, {head, other, 2.0, 0}, nullptr, nullptr)
          .ok());
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, HugeWeightDisplacesAcrossWholeSequence) {
  Rng rng(11);
  DynamicGraph g = RandomGraph(&rng, 40, 120, 4, 0);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  // Weight larger than the entire graph's mass: both endpoints must move to
  // the very end of the sequence.
  Edge e = RandomEdge(&rng, 40);
  e.weight = 1e6;
  ReorderStats stats;
  ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, &stats).ok());
  ExpectStateEquals(PeelStatic(g), state);
  EXPECT_EQ(state.VertexAt(39) == e.src || state.VertexAt(39) == e.dst, true);
  EXPECT_EQ(state.VertexAt(38) == e.src || state.VertexAt(38) == e.dst, true);
}

TEST(EngineEdgeCaseTest, TinyWeightBarelyMoves) {
  Rng rng(12);
  DynamicGraph g1 = RandomGraph(&rng, 60, 240, 5, 0);
  // Clone for the heavy-insertion comparison.
  DynamicGraph g2(60);
  for (std::size_t u = 0; u < 60; ++u) {
    for (const auto& e : g1.OutNeighbors(static_cast<VertexId>(u))) {
      ASSERT_TRUE(
          g2.AddEdge(static_cast<VertexId>(u), e.vertex, e.weight).ok());
    }
  }
  PeelState s1 = PeelStatic(g1);
  PeelState s2 = PeelStatic(g2);
  IncrementalEngine e1, e2;
  Edge tiny = RandomEdge(&rng, 60);
  tiny.weight = 0.0009765625;  // 2^-10: exactly representable
  Edge heavy = tiny;
  heavy.weight = 1e6;
  ReorderStats tiny_stats, heavy_stats;
  ASSERT_TRUE(e1.InsertEdge(&g1, &s1, tiny, nullptr, &tiny_stats).ok());
  ASSERT_TRUE(e2.InsertEdge(&g2, &s2, heavy, nullptr, &heavy_stats).ok());
  ExpectStateEquals(PeelStatic(g1), s1);
  // A near-zero bump displaces its endpoints (and thus rewrites) no more
  // than a graph-dominating one.
  EXPECT_LE(tiny_stats.rewritten_span, heavy_stats.rewritten_span);
  EXPECT_LT(tiny_stats.affected_vertices, 60u);
}

TEST(EngineEdgeCaseTest, BatchOfIdenticalEdges) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(2, 3, 3.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  std::vector<Edge> batch(10, Edge{0, 1, 2.0, 0});
  ASSERT_TRUE(engine.InsertBatch(&g, &state, batch, nullptr, nullptr).ok());
  EXPECT_EQ(g.NumEdges(), 11u);
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, BatchMixingNewAndExistingVertices) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 5.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  std::vector<Edge> batch = {
      {0, 2, 1.0, 0}, {7, 0, 2.0, 0}, {7, 8, 3.0, 0}, {2, 1, 4.0, 0}};
  ASSERT_TRUE(engine.InsertBatch(&g, &state, batch, nullptr, nullptr).ok());
  EXPECT_EQ(g.NumVertices(), 9u);
  EXPECT_EQ(state.size(), 9u);
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, CliqueStaysCanonicalUnderChurn) {
  // Complete graph: every vertex ties; id order must hold throughout.
  const std::size_t n = 12;
  DynamicGraph g(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      ASSERT_TRUE(g.AddEdge(i, j, 2.0).ok());
    }
  }
  PeelState state = PeelStatic(g);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(state.VertexAt(i), i);  // all-tie => pure id order
  }
  IncrementalEngine engine;
  ASSERT_TRUE(
      engine.InsertEdge(&g, &state, {3, 9, 2.0, 0}, nullptr, nullptr).ok());
  ExpectStateEquals(PeelStatic(g), state);
  ASSERT_TRUE(engine.DeleteEdge(&g, &state, 3, 9, nullptr, nullptr).ok());
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(EngineEdgeCaseTest, StarGraphHubUpdates) {
  // Star: hub 0, leaves 1..n-1. Hub peels last; leaf insertions displace it
  // no further, leaf deletions pull it back.
  const std::size_t n = 30;
  DynamicGraph g(n);
  for (VertexId leaf = 1; leaf < n; ++leaf) {
    ASSERT_TRUE(g.AddEdge(0, leaf, 1.0).ok());
  }
  PeelState state = PeelStatic(g);
  // Leaves peel in id order until the hub ties with the final leaf; the
  // canonical tie-break then peels the hub (id 0) before leaf n-1.
  EXPECT_EQ(state.VertexAt(n - 2), 0u);
  EXPECT_EQ(state.VertexAt(n - 1), n - 1);
  IncrementalEngine engine;
  ASSERT_TRUE(
      engine.InsertEdge(&g, &state, {0, 5, 1.0, 0}, nullptr, nullptr).ok());
  ExpectStateEquals(PeelStatic(g), state);
  for (VertexId leaf = 1; leaf < 20; ++leaf) {
    ASSERT_TRUE(engine.DeleteEdge(&g, &state, 0, leaf, nullptr, nullptr).ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
}

TEST(EngineEdgeCaseTest, DeleteDownToEmptyGraph) {
  DynamicGraph g(4);
  std::vector<Edge> edges = {
      {0, 1, 2.0, 0}, {1, 2, 3.0, 0}, {2, 3, 4.0, 0}, {3, 0, 5.0, 0}};
  for (const Edge& e : edges) {
    ASSERT_TRUE(g.AddEdge(e.src, e.dst, e.weight).ok());
  }
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  for (const Edge& e : edges) {
    ASSERT_TRUE(
        engine.DeleteEdge(&g, &state, e.src, e.dst, nullptr, &e.weight).ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(state.BestDensity(), 0.0);
}

TEST(EngineEdgeCaseTest, VertexPriorsInteractWithReorder) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicGraph g = RandomGraph(&rng, 20, 40, 4, 6);  // priors up to 6
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    VertexSuspFn prior = [](VertexId v, const DynamicGraph&) {
      return static_cast<double>(v % 4);
    };
    for (int i = 0; i < 10; ++i) {
      // Mix known and new endpoints.
      Edge e = RandomEdge(&rng, 24);
      ASSERT_TRUE(engine.InsertEdge(&g, &state, e, prior, nullptr).ok());
      ExpectStateEquals(PeelStatic(g), state);
    }
  }
}

TEST(EngineEdgeCaseTest, StatsAccumulateMonotonically) {
  Rng rng(14);
  DynamicGraph g = RandomGraph(&rng, 30, 90, 4, 0);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  ReorderStats stats;
  std::size_t prev_edges = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        engine.InsertEdge(&g, &state, RandomEdge(&rng, 30), nullptr, &stats)
            .ok());
    EXPECT_GE(stats.touched_edges, prev_edges);
    prev_edges = stats.touched_edges;
  }
  ReorderStats other;
  other.affected_vertices = 5;
  const std::size_t before = stats.affected_vertices;
  stats.Accumulate(other);
  EXPECT_EQ(stats.affected_vertices, before + 5);
  stats.Reset();
  EXPECT_EQ(stats.affected_vertices, 0u);
}

TEST(PeelStateEdgeCaseTest, SuffixWeightTelescopes) {
  Rng rng(15);
  DynamicGraph g = RandomGraph(&rng, 15, 40, 4, 2);
  PeelState state = PeelStatic(g);
  for (std::size_t k = 0; k < state.size(); ++k) {
    double expect = 0;
    for (std::size_t i = k; i < state.size(); ++i) {
      expect += state.DeltaAt(i);
    }
    EXPECT_NEAR(state.SuffixWeight(k), expect, 1e-9);
  }
  EXPECT_DOUBLE_EQ(state.SuffixWeight(state.size()), 0.0);
}

TEST(PeelStateEdgeCaseTest, BumpDeltaInvalidatesCache) {
  PeelState state(2);
  state.Append(0, 1.0);
  state.Append(1, 5.0);
  EXPECT_DOUBLE_EQ(state.BestDensity(), 5.0);  // suffix {1}
  state.BumpDelta(0, 100.0);
  // Cache must refresh: whole set now has mean 53.
  EXPECT_DOUBLE_EQ(state.BestDensity(), 53.0);
  EXPECT_EQ(state.BestStart(), 0u);
}

}  // namespace
}  // namespace spade
