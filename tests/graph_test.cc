// Tests for the graph substrate: DynamicGraph invariants, CSR snapshots and
// edge-list I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_io.h"
#include "tests/test_util.h"

namespace spade {
namespace {

TEST(DynamicGraphTest, EmptyGraph) {
  DynamicGraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(DynamicGraphTest, AddEdgeMaintainsMirrors) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.5).ok());
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 4.0);
  EXPECT_DOUBLE_EQ(g.TotalEdgeWeight(), 4.0);
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(DynamicGraphTest, RejectsBadEdges) {
  DynamicGraph g(2);
  EXPECT_FALSE(g.AddEdge(0, 5, 1.0).ok());   // out of range
  EXPECT_FALSE(g.AddEdge(0, 0, 1.0).ok());   // self-loop
  EXPECT_FALSE(g.AddEdge(0, 1, 0.0).ok());   // zero weight
  EXPECT_FALSE(g.AddEdge(0, 1, -2.0).ok());  // negative weight
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DynamicGraphTest, VertexWeightTracksTotals) {
  DynamicGraph g(2);
  g.SetVertexWeight(0, 3.0);
  g.SetVertexWeight(1, 1.0);
  EXPECT_DOUBLE_EQ(g.TotalVertexWeight(), 4.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.0);
  g.SetVertexWeight(0, 0.5);
  EXPECT_DOUBLE_EQ(g.TotalVertexWeight(), 1.5);
}

TEST(DynamicGraphTest, AddVertexReturnsDenseIds) {
  DynamicGraph g;
  EXPECT_EQ(g.AddVertex(1.0), 0u);
  EXPECT_EQ(g.AddVertex(), 1u);
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_DOUBLE_EQ(g.VertexWeight(0), 1.0);
}

TEST(DynamicGraphTest, EnsureVerticesGrowsOnly) {
  DynamicGraph g(3);
  g.EnsureVertices(2);
  EXPECT_EQ(g.NumVertices(), 3u);
  g.EnsureVertices(10);
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_DOUBLE_EQ(g.VertexWeight(9), 0.0);
}

TEST(DynamicGraphTest, RemoveEdgePicksLastParallelCopy) {
  DynamicGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  auto removed = g.RemoveEdge(0, 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_DOUBLE_EQ(removed.value(), 2.0);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 1.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 1.0);
}

TEST(DynamicGraphTest, RemoveEdgeWithWeightFilter) {
  DynamicGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  const double want = 1.0;
  auto removed = g.RemoveEdge(0, 1, &want);
  ASSERT_TRUE(removed.ok());
  EXPECT_DOUBLE_EQ(removed.value(), 1.0);
  const double missing = 9.0;
  EXPECT_FALSE(g.RemoveEdge(0, 1, &missing).ok());
}

TEST(DynamicGraphTest, RemoveMissingEdgeIsNotFound) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_EQ(g.RemoveEdge(1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(g.RemoveEdge(0, 2).status().code(), StatusCode::kNotFound);
}

TEST(DynamicGraphTest, HasEdgeEitherDirection) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(g.HasEdgeEitherDirection(0, 1));
  EXPECT_TRUE(g.HasEdgeEitherDirection(1, 0));
  EXPECT_FALSE(g.HasEdgeEitherDirection(0, 2));
}

TEST(DynamicGraphTest, ForEachIncidentCoversBothDirections) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 1, 3.0).ok());
  double sum = 0;
  int count = 0;
  g.ForEachIncident(1, [&](VertexId, double w) {
    sum += w;
    ++count;
  });
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sum, 5.0);
}

TEST(DynamicGraphTest, WeightedDegreeMatchesDefinition) {
  Rng rng(3);
  DynamicGraph g = testing::RandomGraph(&rng, 20, 60, 5, 4);
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    double expect = g.VertexWeight(static_cast<VertexId>(v));
    g.ForEachIncident(static_cast<VertexId>(v),
                      [&](VertexId, double w) { expect += w; });
    EXPECT_DOUBLE_EQ(g.WeightedDegree(static_cast<VertexId>(v)), expect);
  }
}

TEST(CsrGraphTest, SnapshotMatchesDynamicGraph) {
  Rng rng(17);
  DynamicGraph g = testing::RandomGraph(&rng, 25, 70, 5, 3);
  CsrGraph csr(g);
  ASSERT_EQ(csr.NumVertices(), g.NumVertices());
  EXPECT_EQ(csr.NumIncidentEntries(), 2 * g.NumEdges());
  EXPECT_DOUBLE_EQ(csr.TotalWeight(), g.TotalWeight());
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    EXPECT_EQ(csr.Incident(vid).size(), g.Degree(vid));
    EXPECT_DOUBLE_EQ(csr.WeightedDegree(vid), g.WeightedDegree(vid));
    EXPECT_DOUBLE_EQ(csr.VertexWeight(vid), g.VertexWeight(vid));
  }
}

TEST(CsrGraphTest, EmptySnapshot) {
  DynamicGraph g;
  CsrGraph csr(g);
  EXPECT_EQ(csr.NumVertices(), 0u);
  EXPECT_EQ(csr.NumIncidentEntries(), 0u);
}

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/spade_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(GraphIoTest, RoundTrip) {
  std::vector<Edge> edges = {
      {0, 1, 2.5, 100}, {1, 2, 1.0, 200}, {2, 0, 4.0, 300}};
  ASSERT_TRUE(SaveEdgeList(path_, edges).ok());
  auto loaded = LoadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded.value()[i], edges[i]);
  }
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  auto r = LoadEdgeList("/nonexistent/spade.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ParseEdgeLineTest, SkipsCommentsAndBlanks) {
  Edge e;
  std::string err;
  EXPECT_FALSE(ParseEdgeLine("# comment", 0, &e, &err));
  EXPECT_TRUE(err.empty());
  EXPECT_FALSE(ParseEdgeLine("", 0, &e, &err));
  EXPECT_TRUE(err.empty());
  EXPECT_FALSE(ParseEdgeLine("   \t ", 0, &e, &err));
  EXPECT_TRUE(err.empty());
}

TEST(ParseEdgeLineTest, DefaultsWeightAndTimestamp) {
  Edge e;
  std::string err;
  ASSERT_TRUE(ParseEdgeLine("3 7", 41, &e, &err));
  EXPECT_EQ(e.src, 3u);
  EXPECT_EQ(e.dst, 7u);
  EXPECT_DOUBLE_EQ(e.weight, 1.0);
  EXPECT_EQ(e.ts, 41);  // line index becomes the replay order
}

TEST(ParseEdgeLineTest, ParsesFullRow) {
  Edge e;
  std::string err;
  ASSERT_TRUE(ParseEdgeLine("3 7 2.25 9000", 0, &e, &err));
  EXPECT_DOUBLE_EQ(e.weight, 2.25);
  EXPECT_EQ(e.ts, 9000);
}

TEST(ParseEdgeLineTest, RejectsMalformedAndNonPositive) {
  Edge e;
  std::string err;
  EXPECT_FALSE(ParseEdgeLine("abc", 0, &e, &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(ParseEdgeLine("1 2 -3.0", 0, &e, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace spade
