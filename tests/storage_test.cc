// Tests for snapshot persistence: round-tripping graph + peel state,
// corruption detection and the Spade facade's save/restore.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "storage/delta_segment.h"
#include "storage/sharded_snapshot.h"

#include "common/rng.h"
#include "core/spade.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/spade_snapshot_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, GraphRoundTrip) {
  Rng rng(5);
  DynamicGraph g = testing::RandomGraph(&rng, 30, 90, 6, 3);
  ASSERT_TRUE(SaveSnapshot(path_, g, nullptr).ok());

  DynamicGraph restored;
  bool state_present = true;
  ASSERT_TRUE(LoadSnapshot(path_, &restored, nullptr, &state_present).ok());
  EXPECT_FALSE(state_present);
  ASSERT_EQ(restored.NumVertices(), g.NumVertices());
  ASSERT_EQ(restored.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(restored.TotalWeight(), g.TotalWeight());
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    EXPECT_DOUBLE_EQ(restored.VertexWeight(vid), g.VertexWeight(vid));
    EXPECT_DOUBLE_EQ(restored.WeightedDegree(vid), g.WeightedDegree(vid));
  }
}

TEST_F(SnapshotTest, StateRoundTrip) {
  Rng rng(6);
  DynamicGraph g = testing::RandomGraph(&rng, 25, 60, 5, 2);
  PeelState state = PeelStatic(g);
  ASSERT_TRUE(SaveSnapshot(path_, g, &state).ok());

  DynamicGraph restored_graph;
  PeelState restored_state;
  bool state_present = false;
  ASSERT_TRUE(
      LoadSnapshot(path_, &restored_graph, &restored_state, &state_present)
          .ok());
  EXPECT_TRUE(state_present);
  testing::ExpectStateEquals(state, restored_state, 0.0);
  EXPECT_DOUBLE_EQ(restored_state.BestDensity(), state.BestDensity());
}

TEST_F(SnapshotTest, RejectsMismatchedState) {
  DynamicGraph g(3);
  PeelState state(2);
  state.Append(0, 0.0);
  state.Append(1, 0.0);
  EXPECT_FALSE(SaveSnapshot(path_, g, &state).ok());
}

TEST_F(SnapshotTest, DetectsCorruption) {
  Rng rng(7);
  DynamicGraph g = testing::RandomGraph(&rng, 10, 20, 4, 0);
  PeelState state = PeelStatic(g);
  ASSERT_TRUE(SaveSnapshot(path_, g, &state).ok());

  // Flip one byte in the middle of the file.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(64);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  DynamicGraph restored;
  PeelState restored_state;
  bool present = false;
  const Status s = LoadSnapshot(path_, &restored, &restored_state, &present);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a snapshot";
  }
  DynamicGraph g;
  EXPECT_FALSE(LoadSnapshot(path_, &g, nullptr, nullptr).ok());
}

TEST_F(SnapshotTest, MissingFileIsIOError) {
  DynamicGraph g;
  const Status s = LoadSnapshot("/nonexistent/snap.bin", &g, nullptr, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(Crc64Test, KnownProperties) {
  const char data[] = "123456789";
  const std::uint64_t crc = Crc64(data, 9);
  EXPECT_NE(crc, 0u);
  // Deterministic and sensitive to single-bit changes.
  EXPECT_EQ(crc, Crc64(data, 9));
  char mutated[] = "123456788";
  EXPECT_NE(crc, Crc64(mutated, 9));
  // Streaming in two chunks matches one shot.
  const std::uint64_t part = Crc64(data, 4);
  EXPECT_EQ(Crc64(data + 4, 5, part), crc);
}

TEST_F(SnapshotTest, SpadeSaveRestoreResumesIncrementally) {
  Rng rng(8);
  Spade original;
  original.SetSemantics(MakeDW());
  std::vector<Edge> initial;
  for (int i = 0; i < 60; ++i) initial.push_back(testing::RandomEdge(&rng, 20));
  ASSERT_TRUE(original.BuildGraph(20, initial).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(original.InsertEdge(testing::RandomEdge(&rng, 20)).ok());
  }
  ASSERT_TRUE(original.SaveState(path_).ok());

  Spade restored;
  restored.SetSemantics(MakeDW());
  ASSERT_TRUE(restored.RestoreState(path_).ok());
  testing::ExpectStateEquals(original.peel_state(), restored.peel_state(),
                             0.0);

  // Both detectors continue identically on further updates.
  for (int i = 0; i < 10; ++i) {
    const Edge e = testing::RandomEdge(&rng, 20);
    ASSERT_TRUE(original.InsertEdge(e).ok());
    ASSERT_TRUE(restored.InsertEdge(e).ok());
  }
  testing::ExpectStateEquals(original.peel_state(), restored.peel_state(),
                             0.0);
  testing::ExpectStateEquals(PeelStatic(restored.graph()),
                             restored.peel_state());
}

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/spade_shard_manifest_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

ShardManifest MakeManifest(std::uint32_t shards) {
  ShardManifest manifest;
  manifest.num_shards = shards;
  manifest.semantics = "DW";
  manifest.epoch = 1;
  manifest.base_epoch = 1;
  manifest.boundary_file = kBoundaryIndexFileName;
  for (std::size_t i = 0; i < shards; ++i) {
    manifest.files.push_back(ShardSnapshotFileName(i));
  }
  return manifest;
}

TEST_F(ShardManifestTest, RoundTrip) {
  const ShardManifest manifest = MakeManifest(3);
  ASSERT_TRUE(WriteShardManifest(dir_, manifest).ok());

  ShardManifest read;
  ASSERT_TRUE(ReadShardManifest(dir_, &read).ok());
  EXPECT_EQ(read.num_shards, 3u);
  EXPECT_EQ(read.semantics, "DW");
  EXPECT_EQ(read.files, manifest.files);
  EXPECT_EQ(read.epoch, 1u);
  EXPECT_EQ(read.base_epoch, 1u);
  EXPECT_TRUE(read.deltas.empty());
  EXPECT_TRUE(read.boundary_tails.empty());
}

TEST_F(ShardManifestTest, ChainRoundTrip) {
  ShardManifest manifest = MakeManifest(2);
  manifest.epoch = 3;
  for (std::uint64_t e = 2; e <= 3; ++e) {
    for (std::uint32_t s = 0; s < 2; ++s) {
      manifest.deltas.push_back({e, s, ShardDeltaFileName(s, e)});
    }
    manifest.boundary_tails.push_back({e, BoundaryTailFileName(e)});
  }
  ASSERT_TRUE(WriteShardManifest(dir_, manifest).ok());

  ShardManifest read;
  ASSERT_TRUE(ReadShardManifest(dir_, &read).ok());
  EXPECT_EQ(read.epoch, 3u);
  EXPECT_EQ(read.base_epoch, 1u);
  EXPECT_EQ(read.ChainLength(), 2u);
  ASSERT_EQ(read.deltas.size(), 4u);
  EXPECT_EQ(read.deltas[3].file, ShardDeltaFileName(1, 3));
  ASSERT_EQ(read.boundary_tails.size(), 2u);
  EXPECT_EQ(read.boundary_tails[1].epoch, 3u);
}

TEST_F(ShardManifestTest, RejectsOutOfOrderChain) {
  ShardManifest manifest = MakeManifest(2);
  manifest.epoch = 2;
  manifest.deltas.push_back({2, 1, ShardDeltaFileName(1, 2)});
  manifest.deltas.push_back({2, 0, ShardDeltaFileName(0, 2)});
  manifest.boundary_tails.push_back({2, BoundaryTailFileName(2)});
  const Status s = WriteShardManifest(dir_, manifest);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardManifestTest, ManifestByteFlipFailsCrc) {
  ASSERT_TRUE(WriteShardManifest(dir_, MakeManifest(2)).ok());
  const std::string path = ShardManifestPath(dir_);
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  // Flip the one byte structural validation can never catch: a character
  // of the informational semantics name.
  std::string flipped = pristine;
  const std::size_t pos = flipped.find("DW");
  ASSERT_NE(pos, std::string::npos);
  flipped[pos] = 'X';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << flipped;
  }
  ShardManifest read;
  const Status s = ReadShardManifest(dir_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

// Regression (code review): the trailing-content check must work at the
// raw-byte level — a stream-token check skips whitespace, so flipping the
// manifest's final newline to a space was silently accepted.
TEST_F(ShardManifestTest, RejectsWhitespaceFlippedFinalNewline) {
  ASSERT_TRUE(WriteShardManifest(dir_, MakeManifest(2)).ok());
  const std::string path = ShardManifestPath(dir_);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  for (const char ws : {' ', '\t', '\r', '\v', '\f'}) {
    std::string flipped = bytes;
    flipped.back() = ws;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << flipped;
    }
    ShardManifest read;
    const Status s = ReadShardManifest(dir_, &read);
    ASSERT_FALSE(s.ok()) << "final newline flipped to 0x" << std::hex
                         << static_cast<int>(ws) << " was accepted";
  }
}

// Regression (code review): manifest-declared counts size allocations
// before the crc line can vouch for them, so implausible values must be
// rejected by the plausibility gate — not abort the process inside
// vector::reserve.
TEST_F(ShardManifestTest, RejectsImplausibleCounts) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(ShardManifestPath(dir_), std::ios::trunc);
    out << "spade-shard-manifest 3\n"
        << "shards 2\n"
        << "semantics DW\n"
        << "epoch 1000000000000000000\n"
        << "base-epoch 1\n";
  }
  ShardManifest read;
  Status s = ReadShardManifest(dir_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);

  {
    std::ofstream out(ShardManifestPath(dir_), std::ios::trunc);
    out << "spade-shard-manifest 3\n"
        << "shards 4000000000\n"
        << "semantics DW\n"
        << "epoch 1\n"
        << "base-epoch 1\n";
  }
  s = ReadShardManifest(dir_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

// Directories written before the chain format existed (manifest v1/v2)
// must still parse — with an empty chain at epoch 0.
TEST_F(ShardManifestTest, ReadsLegacyV1AndV2) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(ShardManifestPath(dir_), std::ios::trunc);
    out << "spade-shard-manifest 1\n"
        << "shards 2\n"
        << "semantics DG\n"
        << "file 0 shard-0.snapshot\n"
        << "file 1 shard-1.snapshot\n";
  }
  ShardManifest v1;
  ASSERT_TRUE(ReadShardManifest(dir_, &v1).ok());
  EXPECT_EQ(v1.num_shards, 2u);
  EXPECT_EQ(v1.epoch, 0u);
  EXPECT_TRUE(v1.boundary_file.empty());
  EXPECT_TRUE(v1.deltas.empty());

  {
    std::ofstream out(ShardManifestPath(dir_), std::ios::trunc);
    out << "spade-shard-manifest 2\n"
        << "shards 2\n"
        << "semantics DG\n"
        << "file 0 shard-0.snapshot\n"
        << "file 1 shard-1.snapshot\n"
        << "boundary boundary.index\n";
  }
  ShardManifest v2;
  ASSERT_TRUE(ReadShardManifest(dir_, &v2).ok());
  EXPECT_EQ(v2.boundary_file, "boundary.index");
  EXPECT_EQ(v2.epoch, 0u);
}

TEST_F(ShardManifestTest, MissingDirectoryIsNotFound) {
  ShardManifest read;
  const Status s = ReadShardManifest(dir_ + "/nope", &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(ShardManifestTest, FilesCountMustMatchShards) {
  ShardManifest manifest;
  manifest.num_shards = 2;
  manifest.files = {"only-one.snapshot"};
  const Status s = WriteShardManifest(dir_, manifest);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardManifestTest, TruncatedManifestIsIOError) {
  ASSERT_TRUE(WriteShardManifest(dir_, MakeManifest(2)).ok());
  // Chop the last line off.
  const std::string path = ShardManifestPath(dir_);
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
      contents += lines[i] + "\n";
    }
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  ShardManifest read;
  const Status s = ReadShardManifest(dir_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

class DeltaSegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/spade_delta_segment_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

DeltaSegment MakeSegment() {
  DeltaSegment segment;
  segment.shard = 2;
  segment.prev_epoch = 4;
  segment.epoch = 5;
  segment.records.push_back(DeltaRecord::Insert({1, 2, 3.5, 10}));
  segment.records.push_back(DeltaRecord::Insert({7, 1, 0.25, 11}));
  segment.records.push_back(DeltaRecord::Flush());
  segment.records.push_back(DeltaRecord::Insert({2, 9, 1.0, 12}));
  return segment;
}

TEST_F(DeltaSegmentTest, RoundTrip) {
  const DeltaSegment segment = MakeSegment();
  std::uint64_t bytes = 0;
  ASSERT_TRUE(WriteDeltaSegment(path_, segment, &bytes).ok());
  EXPECT_EQ(bytes, std::filesystem::file_size(path_));

  DeltaSegment read;
  ASSERT_TRUE(ReadDeltaSegment(path_, &read).ok());
  EXPECT_EQ(read.shard, 2u);
  EXPECT_EQ(read.prev_epoch, 4u);
  EXPECT_EQ(read.epoch, 5u);
  ASSERT_EQ(read.records.size(), 4u);
  EXPECT_FALSE(read.records[0].flush);
  EXPECT_EQ(read.records[0].edge, (Edge{1, 2, 3.5, 10}));
  EXPECT_TRUE(read.records[2].flush);
  EXPECT_EQ(read.NumEdges(), 3u);
}

TEST_F(DeltaSegmentTest, EveryTruncationIsDetected) {
  ASSERT_TRUE(WriteDeltaSegment(path_, MakeSegment(), nullptr).ok());
  std::string pristine;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(len));
    }
    DeltaSegment read;
    const Status s = ReadDeltaSegment(path_, &read);
    ASSERT_FALSE(s.ok()) << "truncation at byte " << len << " was accepted";
    EXPECT_EQ(s.code(), StatusCode::kIOError);
  }
}

TEST_F(DeltaSegmentTest, TruncationHookTearsTheWrittenFile) {
  // The TruncatingWriter seam the crash harness uses: the save "succeeds"
  // (rename happens, as after a real crash with a durable rename but lost
  // data pages), yet the file at the final path is torn and the reader
  // must reject it.
  {
    storage::ScopedTruncationHook hook(
        [](const std::string&) -> std::int64_t { return 10; });
    ASSERT_TRUE(WriteDeltaSegment(path_, MakeSegment(), nullptr).ok());
  }
  EXPECT_EQ(std::filesystem::file_size(path_), 10u);
  DeltaSegment read;
  EXPECT_FALSE(ReadDeltaSegment(path_, &read).ok());

  // Hook uninstalled: the same write round-trips again.
  ASSERT_TRUE(WriteDeltaSegment(path_, MakeSegment(), nullptr).ok());
  EXPECT_TRUE(ReadDeltaSegment(path_, &read).ok());
}

// Regression (code review): bytes appended after a valid CRC trailer are
// a mutation the trailer itself cannot see; the reader must reject them.
TEST_F(DeltaSegmentTest, RejectsTrailingBytes) {
  ASSERT_TRUE(WriteDeltaSegment(path_, MakeSegment(), nullptr).ok());
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "junk";
  }
  DeltaSegment read;
  const Status s = ReadDeltaSegment(path_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST_F(DeltaSegmentTest, RejectsEpochDiscontinuity) {
  DeltaSegment segment = MakeSegment();
  segment.epoch = segment.prev_epoch + 2;
  ASSERT_TRUE(WriteDeltaSegment(path_, segment, nullptr).ok());
  DeltaSegment read;
  const Status s = ReadDeltaSegment(path_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace spade
