// Tests for snapshot persistence: round-tripping graph + peel state,
// corruption detection and the Spade facade's save/restore.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "storage/sharded_snapshot.h"

#include "common/rng.h"
#include "core/spade.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/spade_snapshot_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, GraphRoundTrip) {
  Rng rng(5);
  DynamicGraph g = testing::RandomGraph(&rng, 30, 90, 6, 3);
  ASSERT_TRUE(SaveSnapshot(path_, g, nullptr).ok());

  DynamicGraph restored;
  bool state_present = true;
  ASSERT_TRUE(LoadSnapshot(path_, &restored, nullptr, &state_present).ok());
  EXPECT_FALSE(state_present);
  ASSERT_EQ(restored.NumVertices(), g.NumVertices());
  ASSERT_EQ(restored.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(restored.TotalWeight(), g.TotalWeight());
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    const auto vid = static_cast<VertexId>(v);
    EXPECT_DOUBLE_EQ(restored.VertexWeight(vid), g.VertexWeight(vid));
    EXPECT_DOUBLE_EQ(restored.WeightedDegree(vid), g.WeightedDegree(vid));
  }
}

TEST_F(SnapshotTest, StateRoundTrip) {
  Rng rng(6);
  DynamicGraph g = testing::RandomGraph(&rng, 25, 60, 5, 2);
  PeelState state = PeelStatic(g);
  ASSERT_TRUE(SaveSnapshot(path_, g, &state).ok());

  DynamicGraph restored_graph;
  PeelState restored_state;
  bool state_present = false;
  ASSERT_TRUE(
      LoadSnapshot(path_, &restored_graph, &restored_state, &state_present)
          .ok());
  EXPECT_TRUE(state_present);
  testing::ExpectStateEquals(state, restored_state, 0.0);
  EXPECT_DOUBLE_EQ(restored_state.BestDensity(), state.BestDensity());
}

TEST_F(SnapshotTest, RejectsMismatchedState) {
  DynamicGraph g(3);
  PeelState state(2);
  state.Append(0, 0.0);
  state.Append(1, 0.0);
  EXPECT_FALSE(SaveSnapshot(path_, g, &state).ok());
}

TEST_F(SnapshotTest, DetectsCorruption) {
  Rng rng(7);
  DynamicGraph g = testing::RandomGraph(&rng, 10, 20, 4, 0);
  PeelState state = PeelStatic(g);
  ASSERT_TRUE(SaveSnapshot(path_, g, &state).ok());

  // Flip one byte in the middle of the file.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(64);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  DynamicGraph restored;
  PeelState restored_state;
  bool present = false;
  const Status s = LoadSnapshot(path_, &restored, &restored_state, &present);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, RejectsGarbageFile) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a snapshot";
  }
  DynamicGraph g;
  EXPECT_FALSE(LoadSnapshot(path_, &g, nullptr, nullptr).ok());
}

TEST_F(SnapshotTest, MissingFileIsIOError) {
  DynamicGraph g;
  const Status s = LoadSnapshot("/nonexistent/snap.bin", &g, nullptr, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(Crc64Test, KnownProperties) {
  const char data[] = "123456789";
  const std::uint64_t crc = Crc64(data, 9);
  EXPECT_NE(crc, 0u);
  // Deterministic and sensitive to single-bit changes.
  EXPECT_EQ(crc, Crc64(data, 9));
  char mutated[] = "123456788";
  EXPECT_NE(crc, Crc64(mutated, 9));
  // Streaming in two chunks matches one shot.
  const std::uint64_t part = Crc64(data, 4);
  EXPECT_EQ(Crc64(data + 4, 5, part), crc);
}

TEST_F(SnapshotTest, SpadeSaveRestoreResumesIncrementally) {
  Rng rng(8);
  Spade original;
  original.SetSemantics(MakeDW());
  std::vector<Edge> initial;
  for (int i = 0; i < 60; ++i) initial.push_back(testing::RandomEdge(&rng, 20));
  ASSERT_TRUE(original.BuildGraph(20, initial).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(original.InsertEdge(testing::RandomEdge(&rng, 20)).ok());
  }
  ASSERT_TRUE(original.SaveState(path_).ok());

  Spade restored;
  restored.SetSemantics(MakeDW());
  ASSERT_TRUE(restored.RestoreState(path_).ok());
  testing::ExpectStateEquals(original.peel_state(), restored.peel_state(),
                             0.0);

  // Both detectors continue identically on further updates.
  for (int i = 0; i < 10; ++i) {
    const Edge e = testing::RandomEdge(&rng, 20);
    ASSERT_TRUE(original.InsertEdge(e).ok());
    ASSERT_TRUE(restored.InsertEdge(e).ok());
  }
  testing::ExpectStateEquals(original.peel_state(), restored.peel_state(),
                             0.0);
  testing::ExpectStateEquals(PeelStatic(restored.graph()),
                             restored.peel_state());
}

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/spade_shard_manifest_test";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ShardManifestTest, RoundTrip) {
  ShardManifest manifest;
  manifest.num_shards = 3;
  manifest.semantics = "DW";
  for (std::size_t i = 0; i < 3; ++i) {
    manifest.files.push_back(ShardSnapshotFileName(i));
  }
  ASSERT_TRUE(WriteShardManifest(dir_, manifest).ok());

  ShardManifest read;
  ASSERT_TRUE(ReadShardManifest(dir_, &read).ok());
  EXPECT_EQ(read.num_shards, 3u);
  EXPECT_EQ(read.semantics, "DW");
  EXPECT_EQ(read.files, manifest.files);
}

TEST_F(ShardManifestTest, MissingDirectoryIsNotFound) {
  ShardManifest read;
  const Status s = ReadShardManifest(dir_ + "/nope", &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(ShardManifestTest, FilesCountMustMatchShards) {
  ShardManifest manifest;
  manifest.num_shards = 2;
  manifest.files = {"only-one.snapshot"};
  const Status s = WriteShardManifest(dir_, manifest);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardManifestTest, TruncatedManifestIsIOError) {
  ShardManifest manifest;
  manifest.num_shards = 2;
  manifest.semantics = "DG";
  manifest.files = {ShardSnapshotFileName(0), ShardSnapshotFileName(1)};
  ASSERT_TRUE(WriteShardManifest(dir_, manifest).ok());
  // Chop the last line off.
  const std::string path = ShardManifestPath(dir_);
  std::string contents;
  {
    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
      contents += lines[i] + "\n";
    }
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  ShardManifest read;
  const Status s = ReadShardManifest(dir_, &read);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace spade
