// Ingest-pipeline stress (ctest label `stress`; runs under TSan in CI):
// ≥4 producers drive a sharded service through the lock-free chunk handoff
// — mixing per-edge Submit and SubmitBatch — concurrently with Drain()
// callers, incremental SaveState(kDelta) checkpoints, and lock-free
// snapshot readers. Afterwards, a differential against independent Spade
// detectors asserts no edge was lost or duplicated anywhere in the
// pipeline: per-shard edge counts, total weights and full edge multisets
// must match the deterministic routing exactly (DW semantics keep applied
// weights order-independent, so the multiset comparison is exact under any
// producer interleaving). A final checkpoint is then restored into a fresh
// fleet and compared bit-level against the live one — the delta chain
// written under concurrent producers replays to the same state.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"
#include "tests/test_util.h"

namespace spade {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::size_t kVertices = 512;
constexpr std::size_t kProducers = 4;
constexpr std::size_t kEdgesPerProducer = 3000;

std::vector<Spade> BuildEmptyShards() {
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(kVertices, {}).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

using EdgeTuple = std::tuple<VertexId, VertexId, double>;

/// The shard's applied graph as a sorted (src, dst, weight) multiset.
std::vector<EdgeTuple> ShardEdgeMultiset(const ShardedDetectionService& svc,
                                         std::size_t shard) {
  std::vector<EdgeTuple> out;
  svc.InspectShard(shard, [&](const Spade& spade) {
    const DynamicGraph& g = spade.graph();
    EXPECT_EQ(spade.PendingBenignEdges(), 0u);  // caller drained
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (const NeighborEntry& e : g.OutNeighbors(v)) {
        out.emplace_back(v, e.vertex, e.weight);
      }
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeTuple> ReferenceEdgeMultiset(const std::vector<Edge>& edges) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  EXPECT_TRUE(spade.BuildGraph(kVertices, {}).ok());
  for (const Edge& e : edges) {
    EXPECT_TRUE(spade.ApplyEdge(e).ok());
  }
  (void)spade.Detect();  // fold the benign buffer
  std::vector<EdgeTuple> out;
  const DynamicGraph& g = spade.graph();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const NeighborEntry& e : g.OutNeighbors(v)) {
      out.emplace_back(v, e.vertex, e.weight);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IngestStressTest, NoLostOrDuplicatedEdgesUnderFullConcurrency) {
  const std::string dir =
      ::testing::TempDir() + "/spade_ingest_stress_ckpt";
  std::filesystem::remove_all(dir);

  ShardedDetectionServiceOptions options;
  options.partitioner = HashOfSourcePartitioner();
  options.shard.detect_every = 64;
  options.shard.block_when_full = true;
  // Small queue: backpressure (blocking mode) engages for real, so the
  // space-waiter protocol is part of what TSan sees.
  options.shard.max_queue = 256;
  ShardedDetectionService service(BuildEmptyShards(), nullptr, options);

  // Arm the delta chain so the checkpointer can use kDelta exclusively.
  ASSERT_TRUE(
      service.SaveState(dir, ShardedDetectionService::SaveMode::kFull).ok());

  // Per-producer deterministic edge lists (the global multiset is the
  // union; interleaving is scheduler-chosen).
  std::vector<std::vector<Edge>> producer_edges(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    Rng rng(9000 + p);
    for (std::size_t i = 0; i < kEdgesPerProducer; ++i) {
      producer_edges[p].push_back(testing::RandomEdge(&rng, kVertices));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::vector<Edge>& edges = producer_edges[p];
      // Alternate per-edge Submit and SubmitBatch chunks of varying size,
      // so singles and slabs interleave in every shard's ring.
      std::size_t i = 0;
      bool batch = (p % 2) == 0;
      while (i < edges.size()) {
        if (batch) {
          const std::size_t n = std::min<std::size_t>(
              37 + 11 * p, edges.size() - i);
          std::size_t enqueued = 0;
          if (!service
                   .SubmitBatch(std::span<const Edge>(edges.data() + i, n),
                                &enqueued)
                   .ok() ||
              enqueued != n) {
            ++failures;  // blocking mode must accept everything
          }
          i += n;
        } else {
          const std::size_t n =
              std::min<std::size_t>(13, edges.size() - i);
          for (std::size_t j = 0; j < n; ++j) {
            if (!service.Submit(edges[i + j]).ok()) ++failures;
          }
          i += n;
        }
        batch = !batch;
      }
    });
  }

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.Drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Status s = service.SaveState(
          dir, ShardedDetectionService::SaveMode::kDelta);
      if (!s.ok()) ++failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Community c = service.CurrentCommunity();
        if (c.density < 0.0) ++failures;
        const ShardedServiceStats stats = service.GetStats();
        if (stats.shard_queue_hwm.size() != kShards) ++failures;
        (void)service.boundary_index().TotalEdges();
      }
    });
  }

  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  checkpointer.join();
  for (auto& t : readers) t.join();
  service.Drain();
  ASSERT_EQ(failures.load(), 0);

  // ---- Differential: nothing lost, nothing duplicated. ------------------
  const std::size_t total = kProducers * kEdgesPerProducer;
  EXPECT_EQ(service.EdgesProcessed(), total);

  std::vector<std::vector<Edge>> expected(kShards);
  std::size_t expected_boundary = 0;
  for (const auto& edges : producer_edges) {
    for (const Edge& e : edges) {
      expected[service.ShardOf(e)].push_back(e);
      if (service.HomeShardOf(e.src) != service.HomeShardOf(e.dst)) {
        ++expected_boundary;
      }
    }
  }
  const ShardedServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.boundary_edges, expected_boundary);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(stats.shard_edges[s], expected[s].size()) << "shard " << s;
    EXPECT_EQ(ShardEdgeMultiset(service, s),
              ReferenceEdgeMultiset(expected[s]))
        << "shard " << s << " graph multiset diverged";
  }

  // ---- The chain written under concurrency restores bit-identically. ----
  ASSERT_TRUE(
      service.SaveState(dir, ShardedDetectionService::SaveMode::kDelta).ok());
  std::vector<testing::ShardCapture> live(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      live[s].state = spade.peel_state();
      live[s].num_edges = spade.graph().NumEdges();
      live[s].total_weight = spade.graph().TotalWeight();
      live[s].pending_benign = spade.PendingBenignEdges();
    });
  }
  ShardedDetectionServiceOptions restore_options = options;
  ShardedDetectionService restored(BuildEmptyShards(), nullptr,
                                   restore_options);
  ShardedDetectionService::RestoreInfo info;
  ASSERT_TRUE(restored.RestoreState(dir, &info).ok());
  EXPECT_EQ(info.restored_epoch, info.manifest_epoch);
  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ShardCapture got;
    restored.InspectShard(s, [&](const Spade& spade) {
      got.state = spade.peel_state();
      got.num_edges = spade.graph().NumEdges();
      got.total_weight = spade.graph().TotalWeight();
      got.pending_benign = spade.PendingBenignEdges();
    });
    testing::ExpectShardEqualsCapture(live[s], got);
  }

  service.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace spade
