// Tests for DetectionService: multi-producer submission, draining,
// alerting, backpressure and shutdown semantics.

#include "service/detection_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

Spade MakeDetector(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> initial;
  for (std::size_t i = 0; i < m; ++i) {
    initial.push_back(testing::RandomEdge(&rng, n));
  }
  Spade spade;
  spade.SetSemantics(MakeDW());
  EXPECT_TRUE(spade.BuildGraph(n, initial).ok());
  return spade;
}

TEST(DetectionServiceTest, ProcessesSubmittedEdges) {
  DetectionService service(MakeDetector(20, 60, 1), nullptr);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(service.Submit(testing::RandomEdge(&rng, 20)).ok());
  }
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 100u);
}

TEST(DetectionServiceTest, StateMatchesStaticAfterStop) {
  Rng rng(3);
  std::vector<Edge> updates;
  for (int i = 0; i < 200; ++i) updates.push_back(testing::RandomEdge(&rng, 25));

  DetectionService service(MakeDetector(25, 80, 3), nullptr);
  for (const Edge& e : updates) {
    ASSERT_TRUE(service.Submit(e).ok());
  }
  service.Stop();

  // Reference: same edges through a plain single-threaded detector.
  Spade reference = MakeDetector(25, 80, 3);
  for (const Edge& e : updates) {
    ASSERT_TRUE(reference.InsertEdge(e).ok());
  }
  const Community expected = reference.Detect();
  // The service's detector is gone after Stop(); compare what it last
  // reported through CurrentCommunity before... instead restart pattern:
  // use a fresh service and compare live.
  DetectionService service2(MakeDetector(25, 80, 3), nullptr);
  for (const Edge& e : updates) {
    ASSERT_TRUE(service2.Submit(e).ok());
  }
  service2.Drain();
  Community got = service2.CurrentCommunity();
  std::sort(got.members.begin(), got.members.end());
  Community want = expected;
  std::sort(want.members.begin(), want.members.end());
  EXPECT_EQ(got.members, want.members);
  EXPECT_NEAR(got.density, want.density, 1e-9);
}

TEST(DetectionServiceTest, AlertsFireOnCommunityChange) {
  std::atomic<int> alerts{0};
  std::atomic<std::size_t> last_size{0};
  DetectionService service(
      MakeDetector(12, 30, 4),
      [&](const Community& c) {
        ++alerts;
        last_size = c.members.size();
      });
  // A burst that forms a brand-new densest ring must trigger an alert.
  for (const Edge& e : std::vector<Edge>{{0, 1, 500.0, 0},
                                         {1, 2, 500.0, 1},
                                         {2, 0, 500.0, 2}}) {
    ASSERT_TRUE(service.Submit(e).ok());
  }
  service.Drain();
  service.Stop();
  EXPECT_GT(alerts.load(), 0);
  EXPECT_GT(service.AlertsDelivered(), 0u);
  EXPECT_GT(last_size.load(), 0u);
}

TEST(DetectionServiceTest, ConcurrentProducers) {
  DetectionService service(MakeDetector(30, 100, 5), nullptr);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        if (!service.Submit(testing::RandomEdge(&rng, 30)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.EdgesProcessed(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(DetectionServiceTest, SubmitAfterStopFails) {
  DetectionService service(MakeDetector(10, 20, 6), nullptr);
  service.Stop();
  const Status s = service.Submit({0, 1, 1.0, 0});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(DetectionServiceTest, StopIsIdempotent) {
  DetectionService service(MakeDetector(10, 20, 7), nullptr);
  ASSERT_TRUE(service.Submit({0, 1, 1.0, 0}).ok());
  service.Stop();
  service.Stop();
  EXPECT_EQ(service.EdgesProcessed(), 1u);
}

TEST(DetectionServiceTest, InvalidEdgesAreDroppedNotFatal) {
  DetectionService service(MakeDetector(10, 20, 8), nullptr);
  ASSERT_TRUE(service.Submit({0, 0, 1.0, 0}).ok());   // self-loop: dropped
  ASSERT_TRUE(service.Submit({0, 1, -1.0, 0}).ok());  // bad weight: dropped
  ASSERT_TRUE(service.Submit({0, 1, 1.0, 0}).ok());
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 1u);
}

TEST(DetectionServiceTest, SubmitBatchCountsAll) {
  DetectionService service(MakeDetector(20, 60, 9), nullptr);
  Rng rng(10);
  std::vector<Edge> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(testing::RandomEdge(&rng, 20));
  ASSERT_TRUE(service.SubmitBatch(batch).ok());
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 100u);
}

/// Blocks the worker inside the first alert callback (no service lock is
/// held there), so tests can fill the submission queue deterministically.
class WorkerStall {
 public:
  FraudAlertFn Callback() {
    return [this](const Community&) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stalled_once_) return;  // only the first alert stalls
      stalled_once_ = true;
      entered_ = true;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    };
  }
  void AwaitWorkerStalled() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool stalled_once_ = false;
  bool entered_ = false;
  bool released_ = false;
};

TEST(DetectionServiceTest, BackpressureFailFast) {
  WorkerStall stall;
  DetectionServiceOptions options;
  options.max_queue = 2;
  options.block_when_full = false;
  DetectionService service(MakeDetector(12, 30, 11), stall.Callback(),
                           options);
  // A heavy ring edge guarantees a community change -> alert -> stall.
  ASSERT_TRUE(service.Submit({0, 1, 1e6, 0}).ok());
  stall.AwaitWorkerStalled();
  // The worker is parked inside the callback; fill the queue to the brim.
  ASSERT_TRUE(service.Submit({1, 2, 1.0, 0}).ok());
  ASSERT_TRUE(service.Submit({2, 3, 1.0, 0}).ok());
  const Status full = service.Submit({3, 4, 1.0, 0});
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kOutOfRange);
  stall.Release();
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 3u);
}

TEST(DetectionServiceTest, BackpressureBlocking) {
  WorkerStall stall;
  DetectionServiceOptions options;
  options.max_queue = 2;
  options.block_when_full = true;
  DetectionService service(MakeDetector(12, 30, 11), stall.Callback(),
                           options);
  ASSERT_TRUE(service.Submit({0, 1, 1e6, 0}).ok());
  stall.AwaitWorkerStalled();
  // With the worker stalled and capacity 2, five submissions exceed the
  // queue; in blocking mode none may fail — the producer must block until
  // the worker frees space.
  std::atomic<int> ok_count{0};
  std::thread producer([&] {
    for (int i = 0; i < 5; ++i) {
      if (service.Submit({static_cast<VertexId>(i),
                          static_cast<VertexId>(i + 1), 1.0, 0})
              .ok()) {
        ++ok_count;
      }
    }
  });
  stall.Release();
  producer.join();
  EXPECT_EQ(ok_count.load(), 5);
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 6u);
}

// Fail-fast + partial accept: without `accepted`, SubmitBatch keeps its
// all-or-nothing contract; with it, the prefix that fits is enqueued and
// reported exactly.
TEST(DetectionServiceTest, FailFastPartialBatchReportsAcceptedPrefix) {
  WorkerStall stall;
  DetectionServiceOptions options;
  options.max_queue = 4;
  options.block_when_full = false;
  DetectionService service(MakeDetector(12, 30, 21), stall.Callback(),
                           options);
  ASSERT_TRUE(service.Submit({0, 1, 1e6, 0}).ok());
  stall.AwaitWorkerStalled();

  std::vector<Edge> chunk;
  for (int i = 1; i <= 6; ++i) {
    chunk.push_back({static_cast<VertexId>(i),
                     static_cast<VertexId>(i + 1), 1.0, 0});
  }
  // All-or-nothing: a chunk that can never fit is rejected outright and
  // nothing is enqueued.
  Status s = service.SubmitBatch(chunk);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  // Best-effort: exactly the free budget (4) is accepted as a prefix.
  std::size_t accepted = 0;
  s = service.SubmitBatch(chunk, &accepted);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(accepted, 4u);

  // Queue now full: the next best-effort call accepts exactly nothing.
  std::size_t more = 0;
  s = service.SubmitBatch(chunk, &more);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(more, 0u);

  stall.Release();
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 1u + 4u);
}

// Blocking + Stop mid-wait: the already-handed-over prefix is counted
// exactly — the "shard partially accepts under backpressure" accounting
// the sharded service's `enqueued` sums rely on.
TEST(ShardWorkerTest, BlockingStopReportsExactAcceptedPrefix) {
  WorkerStall stall;
  DetectionServiceOptions options;
  options.max_queue = 2;
  options.block_when_full = true;
  ShardWorker worker(MakeDetector(12, 30, 22), stall.Callback(), options);
  ASSERT_TRUE(worker.Submit({0, 1, 1e6, 0}).ok());
  stall.AwaitWorkerStalled();
  ASSERT_TRUE(worker.Submit({1, 2, 1.0, 0}).ok());  // queue: 1/2

  const std::vector<Edge> chunk = {{2, 3, 1.0, 0}, {3, 4, 1.0, 0},
                                   {4, 5, 1.0, 0}};
  std::size_t accepted = 0;
  Status result;
  std::thread producer([&] {
    result = worker.SubmitBatch(std::span<const Edge>(chunk), &accepted);
  });
  // The first piece (1 edge, the free budget) lands; the producer then
  // blocks for the remainder.
  while (worker.QueueDepth() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Stop() unblocks the producer with the prefix counted; the worker is
  // still parked in the stalled alert, so run Stop from its own thread
  // and release the stall for the shutdown drain.
  std::thread stopper([&] { worker.Stop(); });
  producer.join();
  EXPECT_EQ(result.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(accepted, 1u);
  stall.Release();
  stopper.join();
  // Stop drains queued edges first: heavy + pre-fill + the accepted piece.
  EXPECT_EQ(worker.EdgesProcessed(), 3u);
}

// The satellite concurrency stress: multiple producers while readers poll
// CurrentCommunity() and the counters. Run under TSan in CI, this also
// proves the read path touches no apply-path lock (a reader blocked behind
// a long apply would be a lost-wakeup-style regression; a racy snapshot
// would be a TSan report).
TEST(DetectionServiceTest, ConcurrentProducersAndReaders) {
  DetectionService service(MakeDetector(40, 150, 12), nullptr);
  constexpr int kProducers = 4;
  constexpr int kPerThread = 250;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const Community c = service.CurrentCommunity();
        if (c.density < 0.0) ++failures;  // snapshots are never invalid
        (void)service.EdgesProcessed();
        (void)service.AlertsDelivered();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(300 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        if (!service.Submit(testing::RandomEdge(&rng, 40)).ok()) ++failures;
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Drain();
  done = true;
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(service.EdgesProcessed(),
            static_cast<std::uint64_t>(kProducers * kPerThread));
}

TEST(DetectionServiceTest, SaveRestoreRoundTrip) {
  const std::string path = ::testing::TempDir() + "/service_snapshot.bin";
  Community saved;
  {
    DetectionService service(MakeDetector(20, 60, 13), nullptr);
    Rng rng(14);
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(service.Submit(testing::RandomEdge(&rng, 20)).ok());
    }
    ASSERT_TRUE(service.SaveState(path).ok());
    service.Drain();
    saved = service.CurrentCommunity();
  }
  Spade fresh;
  fresh.SetSemantics(MakeDW());
  ASSERT_TRUE(fresh.BuildGraph(0, {}).ok());
  DetectionService restored(std::move(fresh), nullptr);
  ASSERT_TRUE(restored.RestoreState(path).ok());
  Community got = restored.CurrentCommunity();
  std::sort(got.members.begin(), got.members.end());
  std::sort(saved.members.begin(), saved.members.end());
  EXPECT_EQ(got.members, saved.members);
  EXPECT_NEAR(got.density, saved.density, 1e-9);
}

}  // namespace
}  // namespace spade
