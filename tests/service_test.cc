// Tests for DetectionService: multi-producer submission, draining,
// alerting, backpressure and shutdown semantics.

#include "service/detection_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

Spade MakeDetector(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> initial;
  for (std::size_t i = 0; i < m; ++i) {
    initial.push_back(testing::RandomEdge(&rng, n));
  }
  Spade spade;
  spade.SetSemantics(MakeDW());
  EXPECT_TRUE(spade.BuildGraph(n, initial).ok());
  return spade;
}

TEST(DetectionServiceTest, ProcessesSubmittedEdges) {
  DetectionService service(MakeDetector(20, 60, 1), nullptr);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(service.Submit(testing::RandomEdge(&rng, 20)).ok());
  }
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 100u);
}

TEST(DetectionServiceTest, StateMatchesStaticAfterStop) {
  Rng rng(3);
  std::vector<Edge> updates;
  for (int i = 0; i < 200; ++i) updates.push_back(testing::RandomEdge(&rng, 25));

  DetectionService service(MakeDetector(25, 80, 3), nullptr);
  for (const Edge& e : updates) {
    ASSERT_TRUE(service.Submit(e).ok());
  }
  service.Stop();

  // Reference: same edges through a plain single-threaded detector.
  Spade reference = MakeDetector(25, 80, 3);
  for (const Edge& e : updates) {
    ASSERT_TRUE(reference.InsertEdge(e).ok());
  }
  const Community expected = reference.Detect();
  // The service's detector is gone after Stop(); compare what it last
  // reported through CurrentCommunity before... instead restart pattern:
  // use a fresh service and compare live.
  DetectionService service2(MakeDetector(25, 80, 3), nullptr);
  for (const Edge& e : updates) {
    ASSERT_TRUE(service2.Submit(e).ok());
  }
  service2.Drain();
  Community got = service2.CurrentCommunity();
  std::sort(got.members.begin(), got.members.end());
  Community want = expected;
  std::sort(want.members.begin(), want.members.end());
  EXPECT_EQ(got.members, want.members);
  EXPECT_NEAR(got.density, want.density, 1e-9);
}

TEST(DetectionServiceTest, AlertsFireOnCommunityChange) {
  std::atomic<int> alerts{0};
  std::atomic<std::size_t> last_size{0};
  DetectionService service(
      MakeDetector(12, 30, 4),
      [&](const Community& c) {
        ++alerts;
        last_size = c.members.size();
      });
  // A burst that forms a brand-new densest ring must trigger an alert.
  for (const Edge& e : std::vector<Edge>{{0, 1, 500.0, 0},
                                         {1, 2, 500.0, 1},
                                         {2, 0, 500.0, 2}}) {
    ASSERT_TRUE(service.Submit(e).ok());
  }
  service.Drain();
  service.Stop();
  EXPECT_GT(alerts.load(), 0);
  EXPECT_GT(service.AlertsDelivered(), 0u);
  EXPECT_GT(last_size.load(), 0u);
}

TEST(DetectionServiceTest, ConcurrentProducers) {
  DetectionService service(MakeDetector(30, 100, 5), nullptr);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        if (!service.Submit(testing::RandomEdge(&rng, 30)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.EdgesProcessed(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(DetectionServiceTest, SubmitAfterStopFails) {
  DetectionService service(MakeDetector(10, 20, 6), nullptr);
  service.Stop();
  const Status s = service.Submit({0, 1, 1.0, 0});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(DetectionServiceTest, StopIsIdempotent) {
  DetectionService service(MakeDetector(10, 20, 7), nullptr);
  ASSERT_TRUE(service.Submit({0, 1, 1.0, 0}).ok());
  service.Stop();
  service.Stop();
  EXPECT_EQ(service.EdgesProcessed(), 1u);
}

TEST(DetectionServiceTest, InvalidEdgesAreDroppedNotFatal) {
  DetectionService service(MakeDetector(10, 20, 8), nullptr);
  ASSERT_TRUE(service.Submit({0, 0, 1.0, 0}).ok());   // self-loop: dropped
  ASSERT_TRUE(service.Submit({0, 1, -1.0, 0}).ok());  // bad weight: dropped
  ASSERT_TRUE(service.Submit({0, 1, 1.0, 0}).ok());
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 1u);
}

}  // namespace
}  // namespace spade
