// Tests for ShardedDetectionService: partitioned differential correctness,
// tenant routing, shard-tagged alerts, cross-shard argmax reads, manifest
// save/restore, and multi-producer + concurrent-reader stress.

#include "service/sharded_detection_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/router_scratch.h"
#include "storage/sharded_snapshot.h"
#include "tests/test_util.h"

namespace spade {
namespace {

constexpr VertexId kVerticesPerTenant = 64;

Edge TenantEdge(Rng* rng, std::size_t tenant) {
  const auto base = static_cast<VertexId>(tenant * kVerticesPerTenant);
  auto s = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  auto d = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  return Edge{static_cast<VertexId>(base + s),
              static_cast<VertexId>(base + d),
              0.5 + 5.0 * rng->NextDouble(), 0};
}

/// Builds one detector per tenant group holding that partition's initial
/// edges (all shards share the global vertex-id space).
std::vector<Spade> BuildShards(std::size_t num_shards,
                               std::size_t num_tenants,
                               const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(num_shards);
  for (const Edge& e : initial) {
    parts[(e.src / kVerticesPerTenant) % num_shards].push_back(e);
  }
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(
        spade.BuildGraph(num_tenants * kVerticesPerTenant, parts[s]).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

ShardedDetectionServiceOptions TenantOptions() {
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  return options;
}

TEST(ShardedDetectionServiceTest, TenantPartitionerRoutesByKey) {
  ShardedDetectionService service(BuildShards(4, 4, {}), nullptr,
                                  TenantOptions());
  ASSERT_EQ(service.num_shards(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    const Edge e{static_cast<VertexId>(t * kVerticesPerTenant + 3),
                 static_cast<VertexId>(t * kVerticesPerTenant + 7), 1.0, 0};
    EXPECT_EQ(service.ShardOf(e), t);
  }
}

// The satellite differential: a sharded service over a tenant-partitioned
// stream must report exactly the communities of N independent Spade
// instances fed the same partitions in the same order.
TEST(ShardedDetectionServiceTest, MatchesIndependentDetectors) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kTenants = 4;
  Rng rng(17);
  std::vector<Edge> initial;
  for (int i = 0; i < 400; ++i) {
    initial.push_back(TenantEdge(&rng, rng.NextBounded(kTenants)));
  }
  std::vector<Edge> stream;
  for (int i = 0; i < 800; ++i) {
    stream.push_back(TenantEdge(&rng, rng.NextBounded(kTenants)));
  }
  // A heavy burst in tenant 2 so at least one shard's community moves.
  for (int i = 0; i < 30; ++i) {
    const auto base = static_cast<VertexId>(2 * kVerticesPerTenant);
    stream.push_back({static_cast<VertexId>(base + i % 5),
                      static_cast<VertexId>(base + (i + 1) % 5), 50.0, 0});
  }

  ShardedDetectionService service(BuildShards(kShards, kTenants, initial),
                                  nullptr, TenantOptions());
  // Single producer => per-shard arrival order equals stream order.
  for (const Edge& e : stream) ASSERT_TRUE(service.Submit(e).ok());
  service.Drain();

  std::vector<Spade> reference = BuildShards(kShards, kTenants, initial);
  for (std::size_t s = 0; s < kShards; ++s) {
    reference[s].TurnOnEdgeGrouping();  // mirror the worker configuration
  }
  for (const Edge& e : stream) {
    const std::size_t s = (e.src / kVerticesPerTenant) % kShards;
    ASSERT_TRUE(reference[s].ApplyEdge(e).ok());
  }

  for (std::size_t s = 0; s < kShards; ++s) {
    Community got = service.ShardCommunity(s);
    Community want = reference[s].Detect();
    std::sort(got.members.begin(), got.members.end());
    std::sort(want.members.begin(), want.members.end());
    EXPECT_EQ(got.members, want.members) << "shard " << s;
    EXPECT_NEAR(got.density, want.density, 1e-9) << "shard " << s;
  }

  // The global answer is the densest shard snapshot.
  Community global = service.CurrentCommunity();
  double best = -1.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    best = std::max(best, service.ShardCommunity(s).density);
  }
  EXPECT_DOUBLE_EQ(global.density, best);
  EXPECT_EQ(service.TopShard(), 2u);  // the burst tenant wins the argmax
}

TEST(ShardedDetectionServiceTest, AlertsCarryShardIds) {
  constexpr std::size_t kShards = 3;
  std::mutex mutex;
  std::set<std::size_t> alerted_shards;
  std::vector<VertexId> last_burst_members;
  ShardedDetectionService service(
      BuildShards(kShards, kShards, {}),
      [&](std::size_t shard, const Community& c) {
        std::lock_guard<std::mutex> lock(mutex);
        alerted_shards.insert(shard);
        if (shard == 1) last_burst_members = c.members;
      },
      TenantOptions());

  // Ring burst confined to tenant 1: only shard 1 may alert.
  const auto base = static_cast<VertexId>(1 * kVerticesPerTenant);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service
                    .Submit({static_cast<VertexId>(base + i % 4),
                             static_cast<VertexId>(base + (i + 1) % 4), 10.0,
                             0})
                    .ok());
  }
  service.Drain();
  service.Stop();

  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(alerted_shards, (std::set<std::size_t>{1}));
  ASSERT_FALSE(last_burst_members.empty());
  for (const VertexId v : last_burst_members) {
    EXPECT_GE(v, base);
    EXPECT_LT(v, base + kVerticesPerTenant);
  }
}

TEST(ShardedDetectionServiceTest, StatsMergeAcrossShards) {
  ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                  TenantOptions());
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(service.Submit(TenantEdge(&rng, i % 2)).ok());
  }
  service.Drain();
  const ShardedServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.edges_processed, 60u);
  ASSERT_EQ(stats.shard_edges.size(), 2u);
  EXPECT_EQ(stats.shard_edges[0], 30u);
  EXPECT_EQ(stats.shard_edges[1], 30u);
  EXPECT_EQ(stats.edges_processed, service.EdgesProcessed());
  EXPECT_EQ(stats.alerts_delivered, service.AlertsDelivered());
}

TEST(ShardedDetectionServiceTest, SubmitBatchRoutesAcrossShards) {
  ShardedDetectionService service(BuildShards(4, 4, {}), nullptr,
                                  TenantOptions());
  Rng rng(29);
  std::vector<Edge> batch;
  for (int i = 0; i < 120; ++i) batch.push_back(TenantEdge(&rng, i % 4));
  ASSERT_TRUE(service.SubmitBatch(batch).ok());
  service.Drain();
  const ShardedServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.edges_processed, 120u);
  for (const std::uint64_t per_shard : stats.shard_edges) {
    EXPECT_EQ(per_shard, 30u);
  }
}

// RouterScratch property: the batched partition must agree exactly with
// per-edge routing — same shard per edge, chunk order preserved within a
// shard. (Boundary recording moved off the router to the worker apply
// path; RoutingPropertyTest in stitching_test.cc covers its exactness.)
TEST(RouterScratchTest, MatchesPerEdgeRouting) {
  constexpr std::size_t kShards = 4;
  const Partitioner p = HashOfSourcePartitioner();
  Rng rng(41);
  std::vector<Edge> edges;
  for (int i = 0; i < 500; ++i) {
    edges.push_back(testing::RandomEdge(&rng, 256));
  }

  RouterScratch scratch;
  scratch.Partition(p, kShards, edges);

  std::vector<std::vector<Edge>> expected(kShards);
  for (const Edge& e : edges) {
    const std::size_t shard = p.edge_key(e) % kShards;
    EXPECT_EQ(shard, p.home(e.src) % kShards);  // routes_by_src_home holds
    expected[shard].push_back(e);
  }
  const auto edge_eq = [](const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight &&
           a.ts == b.ts;
  };
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::span<const Edge> part = scratch.Part(s);
    ASSERT_EQ(part.size(), expected[s].size()) << "shard " << s;
    for (std::size_t i = 0; i < part.size(); ++i) {
      EXPECT_TRUE(edge_eq(part[i], expected[s][i]))
          << "shard " << s << " order diverges at " << i;
    }
  }
}

/// Parks one shard's worker inside its first alert so a test can fill that
/// shard's queue deterministically (the single-shard WorkerStall, keyed by
/// shard id).
class ShardStall {
 public:
  explicit ShardStall(std::size_t shard) : shard_(shard) {}
  ShardAlertFn Callback() {
    return [this](std::size_t shard, const Community&) {
      if (shard != shard_) return;
      std::unique_lock<std::mutex> lock(mutex_);
      if (stalled_once_) return;
      stalled_once_ = true;
      entered_ = true;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    };
  }
  void AwaitStalled() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this] { return entered_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  std::size_t shard_;
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  bool stalled_once_ = false;
  bool entered_ = false;
  bool released_ = false;
};

// `enqueued` must be exact when one shard partially accepts its part under
// fail-fast backpressure, and the queue high-water mark must surface the
// pressure in GetStats.
TEST(ShardedDetectionServiceTest, EnqueuedExactUnderPartialShardAccept) {
  ShardStall stall(/*shard=*/1);
  ShardedDetectionServiceOptions options = TenantOptions();
  options.shard.max_queue = 2;
  options.shard.block_when_full = false;
  ShardedDetectionService service(BuildShards(2, 2, {}), stall.Callback(),
                                  options);

  // Park shard 1 behind a community-changing burst.
  const auto base1 = static_cast<VertexId>(1 * kVerticesPerTenant);
  ASSERT_TRUE(
      service.Submit({base1, static_cast<VertexId>(base1 + 1), 1e6, 0}).ok());
  stall.AwaitStalled();

  // 2 edges for (running) shard 0 — within its budget, so they are always
  // fully accepted — and 5 for the parked shard 1, whose free budget is 2.
  std::vector<Edge> chunk;
  Rng rng(47);
  for (int i = 0; i < 2; ++i) chunk.push_back(TenantEdge(&rng, 0));
  for (int i = 0; i < 5; ++i) chunk.push_back(TenantEdge(&rng, 1));

  std::size_t enqueued = 0;
  const Status s = service.SubmitBatch(chunk, &enqueued);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(enqueued, 2u + 2u);  // shard 0 whole part + shard 1's prefix

  stall.Release();
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 1u + 4u);
  const ShardedServiceStats stats = service.GetStats();
  ASSERT_EQ(stats.shard_queue_hwm.size(), 2u);
  // Shard 1's queue reached its full budget while its worker was parked.
  EXPECT_GE(stats.shard_queue_hwm[1], 2u);
  for (std::size_t sh = 0; sh < 2; ++sh) {
    EXPECT_GE(stats.shard_queue_hwm[sh], 0u);
    EXPECT_EQ(stats.shard_queue_depth[sh], 0u);  // drained
  }
}

// ResetQueueHighWater gives the high-water gauge phase semantics: after a
// reset the mark reflects only post-reset traffic, so a measurement
// harness (ReplayThroughService reports admission and drain phases
// separately) never reads one phase's burst as the next phase's pressure.
TEST(ShardedDetectionServiceTest, ResetQueueHighWaterStartsANewPhase) {
  ShardStall stall(/*shard=*/1);
  ShardedDetectionServiceOptions options = TenantOptions();
  options.shard.max_queue = 8;
  options.shard.block_when_full = false;
  ShardedDetectionService service(BuildShards(2, 2, {}), stall.Callback(),
                                  options);

  // Phase 1: park shard 1 and pile six edges behind it.
  const auto base1 = static_cast<VertexId>(1 * kVerticesPerTenant);
  ASSERT_TRUE(
      service.Submit({base1, static_cast<VertexId>(base1 + 1), 1e6, 0}).ok());
  stall.AwaitStalled();
  Rng rng(48);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(service.Submit(TenantEdge(&rng, 1)).ok());
  }
  stall.Release();
  service.Drain();
  EXPECT_GE(service.GetStats().shard_queue_hwm[1], 6u);

  // Reset: the burst must vanish from the gauge entirely.
  service.ResetQueueHighWater();
  EXPECT_EQ(service.GetStats().shard_queue_hwm[1], 0u);

  // Phase 2: three edges against a running worker. The new mark reflects
  // only them — bounded by this phase's enqueue depth, not phase 1's six.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(TenantEdge(&rng, 1)).ok());
  }
  service.Drain();
  const std::size_t hwm = service.GetStats().shard_queue_hwm[1];
  EXPECT_GE(hwm, 1u);
  EXPECT_LE(hwm, 3u);
}

// CPU pinning smoke: a valid CPU pins (or warns and runs unpinned on
// non-Linux), an out-of-range CPU must degrade to a logged warning — never
// an error, never a lost edge.
TEST(ShardedDetectionServiceTest, ShardCpuPinningIsBestEffort) {
  ShardedDetectionServiceOptions options = TenantOptions();
  options.shard_cpus = {0, 1 << 20};  // shard 0 -> cpu 0, shard 1 -> bogus
  ShardedDetectionService service(BuildShards(2, 2, {}), nullptr, options);
  Rng rng(53);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(service.Submit(TenantEdge(&rng, i % 2)).ok());
  }
  service.Drain();
  EXPECT_EQ(service.EdgesProcessed(), 40u);
}

TEST(ShardedDetectionServiceTest, SaveRestoreRoundTrip) {
  const std::string dir = ::testing::TempDir() + "/sharded_snapshot";
  std::filesystem::remove_all(dir);
  constexpr std::size_t kShards = 3;
  Rng rng(31);
  std::vector<Edge> initial;
  for (int i = 0; i < 300; ++i) {
    initial.push_back(TenantEdge(&rng, rng.NextBounded(kShards)));
  }

  std::vector<Community> saved(kShards);
  {
    ShardedDetectionService service(BuildShards(kShards, kShards, initial),
                                    nullptr, TenantOptions());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          service.Submit(TenantEdge(&rng, rng.NextBounded(kShards))).ok());
    }
    ASSERT_TRUE(service.SaveState(dir).ok());
    service.Drain();
    for (std::size_t s = 0; s < kShards; ++s) {
      saved[s] = service.ShardCommunity(s);
    }
  }

  // Restore into a service whose detectors start empty.
  ShardedDetectionService restored(BuildShards(kShards, kShards, {}),
                                   nullptr, TenantOptions());
  ASSERT_TRUE(restored.RestoreState(dir).ok());
  for (std::size_t s = 0; s < kShards; ++s) {
    Community got = restored.ShardCommunity(s);
    std::sort(got.members.begin(), got.members.end());
    std::sort(saved[s].members.begin(), saved[s].members.end());
    EXPECT_EQ(got.members, saved[s].members) << "shard " << s;
    EXPECT_NEAR(got.density, saved[s].density, 1e-9) << "shard " << s;
  }
  // The restored fleet keeps ingesting.
  ASSERT_TRUE(restored.Submit(TenantEdge(&rng, 0)).ok());
  restored.Drain();
  EXPECT_EQ(restored.EdgesProcessed(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedDetectionServiceTest, RestoreRejectsShardCountMismatch) {
  const std::string dir = ::testing::TempDir() + "/sharded_mismatch";
  std::filesystem::remove_all(dir);
  {
    ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                    TenantOptions());
    ASSERT_TRUE(service.SaveState(dir).ok());
  }
  ShardedDetectionService wrong(BuildShards(3, 3, {}), nullptr,
                                TenantOptions());
  const Status s = wrong.RestoreState(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

// Regression (ISSUE 4 satellite): RestoreState used to drop the stitched
// snapshot but leave stats().stitch_passes / stitched_alerts counting from
// the pre-restore run — a restored fleet reported stitch work it never
// did. All stitch/boundary counters must describe the restored run.
TEST(ShardedDetectionServiceTest, StitchCountersResetOnRestore) {
  const std::string dir = ::testing::TempDir() + "/sharded_stitch_reset";
  std::filesystem::remove_all(dir);
  constexpr std::size_t kShards = 2;
  Rng rng(37);
  std::vector<Edge> initial;
  for (int i = 0; i < 150; ++i) {
    initial.push_back(TenantEdge(&rng, rng.NextBounded(kShards)));
  }
  ShardedDetectionService service(BuildShards(kShards, kShards, initial),
                                  nullptr, TenantOptions());
  // Cross-tenant traffic so boundary_edges is non-zero and a stitch pass
  // has something to chew on.
  for (int i = 0; i < 40; ++i) {
    const auto a = static_cast<VertexId>(i % 8);
    const auto b = static_cast<VertexId>(kVerticesPerTenant + (i + 1) % 8);
    ASSERT_TRUE(service.Submit({a, b, 8.0, 0}).ok());
  }
  service.Drain();
  service.StitchNow();
  service.StitchNow();
  ASSERT_TRUE(service.SaveState(dir).ok());
  const ShardedServiceStats before = service.GetStats();
  ASSERT_EQ(before.stitch_passes, 2u);
  ASSERT_GT(before.boundary_edges, 0u);

  ASSERT_TRUE(service.RestoreState(dir).ok());
  const ShardedServiceStats after = service.GetStats();
  EXPECT_EQ(after.stitch_passes, 0u);
  EXPECT_EQ(after.stitched_alerts, 0u);
  // boundary_edges reflects the restored index, not the old total plus it.
  EXPECT_EQ(after.boundary_edges, before.boundary_edges);

  // The restored run counts from zero.
  service.StitchNow();
  EXPECT_EQ(service.GetStats().stitch_passes, 1u);
  std::filesystem::remove_all(dir);
}

// ISSUE 4 satellite: save under tenant routing, restore with a different
// shard count — the mismatch must fire BEFORE any delta replay side
// effects, even when the directory carries a delta chain whose segments
// would otherwise be replayed into the wrong fleet.
TEST(ShardedDetectionServiceTest, TenantRestoreShardCountMismatchBeforeReplay) {
  const std::string dir = ::testing::TempDir() + "/sharded_tenant_mismatch";
  std::filesystem::remove_all(dir);
  Rng rng(41);
  {
    std::vector<Edge> initial;
    for (int i = 0; i < 200; ++i) {
      initial.push_back(TenantEdge(&rng, rng.NextBounded(2)));
    }
    ShardedDetectionService service(BuildShards(2, 2, initial), nullptr,
                                    TenantOptions());
    // Full save (epoch 1), more traffic, delta save (epoch 2): the dir now
    // has a chain a replaying restore would apply.
    ASSERT_TRUE(service.SaveState(dir).ok());
    for (int i = 0; i < 80; ++i) {
      ASSERT_TRUE(service.Submit(TenantEdge(&rng, rng.NextBounded(2))).ok());
    }
    service.Drain();
    ShardedDetectionService::SaveInfo info;
    ASSERT_TRUE(service
                    .SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                               &info)
                    .ok());
    ASSERT_TRUE(info.delta);
    ASSERT_GT(info.delta_edges, 0u);
  }

  std::vector<Edge> wrong_initial;
  for (int i = 0; i < 90; ++i) {
    wrong_initial.push_back(TenantEdge(&rng, rng.NextBounded(3)));
  }
  ShardedDetectionService wrong(BuildShards(3, 3, wrong_initial), nullptr,
                                TenantOptions());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(wrong.Submit(TenantEdge(&rng, rng.NextBounded(3))).ok());
  }
  wrong.Drain();
  wrong.StitchNow();
  const std::uint64_t edges_before = wrong.EdgesProcessed();
  std::vector<Community> communities_before(3);
  std::vector<std::size_t> graph_edges_before(3);
  for (std::size_t s = 0; s < 3; ++s) {
    communities_before[s] = wrong.ShardCommunity(s);
    wrong.InspectShard(s, [&](const Spade& spade) {
      graph_edges_before[s] = spade.graph().NumEdges();
    });
  }
  const ShardedServiceStats stats_before = wrong.GetStats();

  const Status s = wrong.RestoreState(dir);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  // No side effects: detectors, snapshots, stitched state and counters are
  // exactly as they were (no base installed, no delta edge replayed).
  EXPECT_EQ(wrong.EdgesProcessed(), edges_before);
  for (std::size_t sh = 0; sh < 3; ++sh) {
    const Community after = wrong.ShardCommunity(sh);
    EXPECT_EQ(after.members, communities_before[sh].members) << "shard " << sh;
    EXPECT_DOUBLE_EQ(after.density, communities_before[sh].density);
    wrong.InspectShard(sh, [&](const Spade& spade) {
      EXPECT_EQ(spade.graph().NumEdges(), graph_edges_before[sh])
          << "shard " << sh << " saw replay side effects";
    });
  }
  const ShardedServiceStats stats_after = wrong.GetStats();
  EXPECT_EQ(stats_after.stitch_passes, stats_before.stitch_passes);
  EXPECT_EQ(stats_after.boundary_edges, stats_before.boundary_edges);
  std::filesystem::remove_all(dir);
}

// Auto-mode checkpointing folds the chain back into a fresh base when the
// policy bounds are hit.
TEST(ShardedDetectionServiceTest, CompactionFoldsChain) {
  const std::string dir = ::testing::TempDir() + "/sharded_compaction";
  std::filesystem::remove_all(dir);
  Rng rng(43);
  ShardedDetectionServiceOptions options = TenantOptions();
  options.checkpoint.max_chain_length = 2;
  options.checkpoint.max_delta_base_ratio = 1e9;
  ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                  std::move(options));

  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(service
                  .SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                             &info)
                  .ok());
  EXPECT_FALSE(info.delta);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(service.Submit(TenantEdge(&rng, rng.NextBounded(2))).ok());
    }
    service.Drain();
    ASSERT_TRUE(service
                    .SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                               &info)
                    .ok());
  }
  // Rounds: delta (chain 1), delta (chain 2), compact (full), delta.
  EXPECT_TRUE(info.delta);
  EXPECT_EQ(info.chain_length, 1u);
  EXPECT_EQ(info.epoch, 5u);

  // The compacted directory still restores to the latest state.
  ShardedDetectionService restored(BuildShards(2, 2, {}), nullptr,
                                   TenantOptions());
  ShardedDetectionService::RestoreInfo rinfo;
  ASSERT_TRUE(restored.RestoreState(dir, &rinfo).ok());
  EXPECT_EQ(rinfo.restored_epoch, 5u);
  EXPECT_EQ(restored.CurrentCommunity().members.size(),
            service.CurrentCommunity().members.size());
  std::filesystem::remove_all(dir);
}

// Regression (code review): a fresh service (restarted process, no
// restore) saving into a directory that already holds a higher-epoch
// chain must NOT restart epoch numbering at 1 — reused epochs rename new
// base files over the ones the still-published manifest references, which
// is exactly the crashed-compaction corruption the epoch stamping
// prevents.
TEST(ShardedDetectionServiceTest, FreshServiceNeverReusesEpochsInExistingDir) {
  const std::string dir = ::testing::TempDir() + "/sharded_epoch_reuse";
  std::filesystem::remove_all(dir);
  Rng rng(47);
  {
    ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                    TenantOptions());
    ASSERT_TRUE(service.SaveState(dir).ok());  // epoch 1
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(service.Submit(TenantEdge(&rng, rng.NextBounded(2))).ok());
    }
    service.Drain();
    ShardedDetectionService::SaveInfo info;
    ASSERT_TRUE(service
                    .SaveState(dir, ShardedDetectionService::SaveMode::kAuto,
                               &info)
                    .ok());  // delta epoch 2
    ASSERT_EQ(info.epoch, 2u);
  }

  // A restarted process pointed at the same directory without restoring.
  ShardedDetectionService fresh(BuildShards(2, 2, {}), nullptr,
                                TenantOptions());
  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(
      fresh.SaveState(dir, ShardedDetectionService::SaveMode::kAuto, &info)
          .ok());
  EXPECT_FALSE(info.delta);
  EXPECT_EQ(info.epoch, 3u) << "epoch numbering restarted and collided";

  // The directory stays restorable and describes the fresh fleet.
  ShardedDetectionService restored(BuildShards(2, 2, {}), nullptr,
                                   TenantOptions());
  ShardedDetectionService::RestoreInfo rinfo;
  ASSERT_TRUE(restored.RestoreState(dir, &rinfo).ok());
  EXPECT_EQ(rinfo.restored_epoch, 3u);
  std::filesystem::remove_all(dir);
}

// SaveMode::kDelta demands an active chain (bench isolation guarantee).
TEST(ShardedDetectionServiceTest, ExplicitDeltaRequiresActiveChain) {
  const std::string dir = ::testing::TempDir() + "/sharded_delta_requires";
  std::filesystem::remove_all(dir);
  ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                  TenantOptions());
  const Status s =
      service.SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                        nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.SaveState(dir).ok());
  ASSERT_TRUE(service
                  .SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                             nullptr)
                  .ok());
  std::filesystem::remove_all(dir);
}

TEST(ShardedDetectionServiceTest, RestoreMissingManifestIsNotFound) {
  ShardedDetectionService service(BuildShards(2, 2, {}), nullptr,
                                  TenantOptions());
  const Status s =
      service.RestoreState(::testing::TempDir() + "/no_such_snapshot_dir");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

// Multi-producer + concurrent-reader stress across shards (run under TSan
// in CI): four producers hash-route edges while readers poll the global
// argmax and merged stats.
TEST(ShardedDetectionServiceTest, ConcurrentProducersAndReaders) {
  constexpr std::size_t kShards = 4;
  ShardedDetectionServiceOptions options;  // default hash-of-src routing
  ShardedDetectionService service(BuildShards(kShards, kShards, {}), nullptr,
                                  options);
  constexpr int kProducers = 4;
  constexpr int kPerThread = 200;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const Community c = service.CurrentCommunity();
        if (c.density < 0.0) ++failures;
        const ShardedServiceStats stats = service.GetStats();
        if (stats.shard_edges.size() != kShards) ++failures;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(500 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const Edge e = TenantEdge(&rng, rng.NextBounded(kShards));
        if (!service.Submit(e).ok()) ++failures;
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Drain();
  done = true;
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(service.EdgesProcessed(),
            static_cast<std::uint64_t>(kProducers * kPerThread));
}

}  // namespace
}  // namespace spade
