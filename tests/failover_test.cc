// Failover crash drill (ctest label `stress`): a REAL primary process is
// SIGKILLed mid-ingest while a fault-injecting shim mangles the client's
// frames, and the warm standby in this process must
//
//   1. notice the loss within one lease interval,
//   2. promote to a state bit-identical to the primary's last sealed
//      epoch (checked against a fresh restore of the primary's own
//      checkpoint directory), and
//   3. absorb the client's resend of every non-durable batch exactly
//      once (sequence dedup seeded from the replicated seqmap).
//
// The primary runs in a forked child so SIGKILL is a genuine crash: no
// destructors, no flushes, sockets torn mid-stream. The fork happens
// before this process creates any thread (services, standby, client all
// come after), which keeps the drill well-defined under ASan and TSan.
// Parent and child talk over two pipes with a one-letter command
// protocol; the child exits on pipe EOF, so a parent assertion failure
// never leaks an orphan.

#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "net/faulty_transport.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/replicator.h"
#include "service/sharded_detection_service.h"
#include "tests/test_util.h"

namespace spade::net {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 2;
constexpr std::size_t kVertices = 96;
constexpr std::uint64_t kStreamId = 7;

Partitioner ParityPartitioner() {
  return Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
}

std::unique_ptr<ShardedDetectionService> BuildService(
    const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) parts[e.src % kShards].push_back(e);
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(kVertices, parts[s]).ok());
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = ParityPartitioner();
  options.shard.detect_every = 16;
  options.checkpoint.max_chain_length = 1000;
  options.checkpoint.max_delta_base_ratio = 1e9;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

std::vector<testing::ShardCapture> CaptureShards(
    const ShardedDetectionService& service) {
  std::vector<testing::ShardCapture> captures(service.num_shards());
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      captures[s].state = spade.peel_state();
      captures[s].num_edges = spade.graph().NumEdges();
      captures[s].total_weight = spade.graph().TotalWeight();
      captures[s].pending_benign = spade.PendingBenignEdges();
    });
  }
  return captures;
}

void ExpectServicesEqual(const ShardedDetectionService& expected,
                         const ShardedDetectionService& actual) {
  const auto want = CaptureShards(expected);
  const auto got = CaptureShards(actual);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    testing::ExpectShardEqualsCapture(want[s], got[s]);
  }
}

std::vector<Edge> MakeEdges(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(testing::RandomEdge(&rng, kVertices, 4));
  }
  return edges;
}

std::string ResetWorkDir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / "spade_failover" / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Both processes derive the same edge stream from the same seeds.
const std::vector<Edge> PrimaryInitialEdges() { return MakeEdges(64, 40); }

// ---------------------------------------------------------------------------
// Pipe plumbing. Text lines child -> parent, single command bytes
// parent -> child.

bool WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line (without the newline); "" on EOF/error.
std::string ReadLine(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return "";
    if (c == '\n') return line;
    line.push_back(c);
  }
}

// ---------------------------------------------------------------------------
// Child: the primary process. Never returns; never touches gtest state.

[[noreturn]] void ChildMain(int cmd_fd, int out_fd, const std::string& pdir) {
  auto service = BuildService(PrimaryInitialEdges());

  IngestServer server(service.get());
  if (!server.Start().ok()) _exit(2);

  Replicator repl(service.get(), &server, pdir);
  if (!repl.Start().ok()) _exit(2);

  char line[64];
  std::snprintf(line, sizeof(line), "P %d %d\n", server.port(), repl.port());
  if (!WriteAll(out_fd, line)) _exit(2);

  char cmd = 0;
  while (::read(cmd_fd, &cmd, 1) == 1) {
    switch (cmd) {
      case 'h': {  // has-follower probe
        std::snprintf(line, sizeof(line), "H %d\n",
                      repl.HasFollower() ? 1 : 0);
        if (!WriteAll(out_fd, line)) _exit(2);
        break;
      }
      case 's': {  // seal + replicate one epoch; reply once durable
        ShardedDetectionService::SaveInfo info;
        const Status st =
            repl.SealAndShip(ShardedDetectionService::SaveMode::kAuto, &info);
        if (st.ok()) {
          std::snprintf(line, sizeof(line), "S %llu\n",
                        static_cast<unsigned long long>(info.epoch));
        } else {
          std::snprintf(line, sizeof(line), "E\n");
        }
        if (!WriteAll(out_fd, line)) _exit(2);
        break;
      }
      default:
        _exit(2);
    }
  }
  // Pipe EOF: the parent is gone (assertion failure or normal teardown
  // where it decided not to kill us). Crash-free exit path for hygiene;
  // the drill itself always SIGKILLs before this runs.
  _exit(0);
}

struct ChildGuard {
  pid_t pid = -1;
  bool reaped = false;
  void Reap() {
    if (pid > 0 && !reaped) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      reaped = true;
    }
  }
  ~ChildGuard() { Reap(); }
};

// ---------------------------------------------------------------------------

TEST(Failover, SigkillPrimaryMidIngestPromotesExactlyOnce) {
  ::signal(SIGPIPE, SIG_IGN);
  const std::string pdir = ResetWorkDir("primary");
  const std::string fdir = ResetWorkDir("follower");
  const std::string spill_dir = ResetWorkDir("spill");

  int c2p[2] = {-1, -1};  // child writes, parent reads
  int p2c[2] = {-1, -1};  // parent writes, child reads
  ASSERT_EQ(::pipe(c2p), 0);
  ASSERT_EQ(::pipe(p2c), 0);

  // Fork BEFORE any thread exists in this process: every service, server
  // and standby below is constructed on its own side of the fork.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(c2p[0]);
    ::close(p2c[1]);
    ChildMain(p2c[0], c2p[1], pdir);
  }
  ChildGuard child;
  child.pid = pid;
  ::close(c2p[1]);
  ::close(p2c[0]);
  const int from_child = c2p[0];
  const int to_child = p2c[1];

  // Primary's endpoints.
  int ingest_port = 0, repl_port = 0;
  {
    const std::string line = ReadLine(from_child);
    ASSERT_EQ(std::sscanf(line.c_str(), "P %d %d", &ingest_port, &repl_port),
              2)
        << "bad port line from child: '" << line << "'";
  }

  // Warm standby in this process, eagerly tracking the primary.
  auto follower = BuildService({});
  StandbyOptions sopts;
  sopts.primary_port = repl_port;
  sopts.eager_replay = true;
  sopts.lease_ms = 800;
  Standby standby(follower.get(), fdir, sopts);
  ASSERT_TRUE(standby.Start().ok());
  {
    bool connected = false;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(10'000);
    while (!connected && std::chrono::steady_clock::now() < deadline) {
      ASSERT_TRUE(WriteAll(to_child, "h"));
      const std::string line = ReadLine(from_child);
      ASSERT_FALSE(line.empty()) << "child died during follower wait";
      connected = (line == "H 1");
      if (!connected) ::usleep(20'000);
    }
    ASSERT_TRUE(connected) << "follower never connected to child primary";
  }

  // The client, with the fault shim active for the WHOLE drill (including
  // the post-failover resend). Per-connection seed variation keeps the
  // deterministic schedule from replaying the same fault against every
  // reconnect attempt.
  FaultPlan plan;
  plan.seed = 0xFA170ull;
  plan.p_drop = 0.04;
  plan.p_truncate = 0.04;
  plan.p_flip = 0.08;
  plan.p_duplicate = 0.08;
  plan.p_reorder = 0.08;
  plan.max_faults = 40;

  IngestClientOptions copts;
  copts.ports = {ingest_port};
  copts.stream_id = kStreamId;
  copts.batch_edges = 25;
  copts.send_window = 4;
  copts.spill_dir = spill_dir;
  copts.ack_timeout_ms = 100;
  auto attempt = std::make_shared<int>(0);
  copts.wrap_transport = [plan, attempt](std::unique_ptr<Connection> inner) {
    FaultPlan p = plan;
    p.seed = plan.seed + static_cast<std::uint64_t>((*attempt)++);
    return WrapFaulty(std::move(inner), p);
  };
  IngestClient client(copts);

  // The in-process reference receives the identical edge sequence.
  auto reference = BuildService(PrimaryInitialEdges());

  const auto submit_wave = [&](std::size_t count, std::uint64_t seed) {
    const std::vector<Edge> wave = MakeEdges(count, seed);
    for (const Edge& e : wave) ASSERT_TRUE(client.Submit(e).ok());
    ASSERT_TRUE(reference->SubmitBatch(wave).ok());
  };

  // Two durable epochs: the primary's last sealed state.
  std::uint64_t last_sealed_epoch = 0;
  for (std::uint64_t round = 1; round <= 2; ++round) {
    submit_wave(200, 40 + round);
    ASSERT_TRUE(client.Flush().ok());
    ASSERT_TRUE(client.WaitAcked(60'000).ok());
    ASSERT_TRUE(WriteAll(to_child, "s"));
    const std::string line = ReadLine(from_child);
    unsigned long long epoch = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "S %llu", &epoch), 1)
        << "seal round " << round << " failed: '" << line << "'";
    last_sealed_epoch = epoch;
    ASSERT_TRUE(client.WaitDurable(60'000).ok());
  }
  ASSERT_EQ(last_sealed_epoch, 2u);
  const std::uint64_t durable_seq = client.GetStats().durable_seq;
  ASSERT_GT(durable_seq, 0u);
  // Eager standby reaches the sealed epoch before the crash.
  {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(10'000);
    while (standby.applied_epoch() < last_sealed_epoch &&
           std::chrono::steady_clock::now() < deadline) {
      ::usleep(10'000);
    }
    ASSERT_EQ(standby.applied_epoch(), last_sealed_epoch);
  }

  // Mid-ingest state at the moment of the crash: one wave acked but never
  // sealed (it dies with the primary's memory), one wave still sitting in
  // the client's buffer, never even sent.
  submit_wave(120, 50);
  ASSERT_TRUE(client.Flush().ok());
  ASSERT_TRUE(client.WaitAcked(60'000).ok());
  submit_wave(60, 51);
  ASSERT_TRUE(client.Flush().ok());
  const std::uint64_t total_batches = client.last_sealed_seq();
  ASSERT_GT(total_batches, durable_seq);

  // Crash. No shutdown path runs in the child.
  const auto kill_time = std::chrono::steady_clock::now();
  child.Reap();

  // 1. Loss detected within one lease interval (generous slack for a
  //    loaded single-core CI box, but far below a second lease).
  ASSERT_TRUE(standby.WaitPrimaryLost(15'000));
  const double detect_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - kill_time)
          .count();
  EXPECT_LT(detect_ms, 3 * sopts.lease_ms)
      << "lease expiry took " << detect_ms << " ms";

  // 2. Promote: bit-identical to the primary's last sealed epoch.
  PromoteInfo promote;
  ASSERT_TRUE(standby.Promote(&promote).ok());
  EXPECT_EQ(promote.epoch, last_sealed_epoch);
  ASSERT_EQ(promote.seqmap.count(kStreamId), 1u);
  EXPECT_EQ(promote.seqmap.at(kStreamId), durable_seq);

  {
    auto verifier = BuildService({});
    ASSERT_TRUE(verifier->RestoreState(pdir).ok())
        << "primary's own directory no longer restores";
    ExpectServicesEqual(*verifier, *follower);
  }

  // 3. The follower becomes the primary; the client repoints and resends
  //    every batch past the durable watermark — exactly once.
  IngestServer server2(follower.get());
  server2.SeedAppliedSeqs(promote.seqmap);
  ASSERT_TRUE(server2.Start().ok());
  client.SetPorts({server2.port()});
  ASSERT_TRUE(client.WaitAcked(60'000).ok());

  ShardedDetectionService::SaveInfo seal2;
  ASSERT_TRUE(server2
                  .SealEpoch(fdir, ShardedDetectionService::SaveMode::kAuto,
                             &seal2)
                  .ok());
  server2.MarkDurable(seal2.epoch);
  ASSERT_TRUE(client.WaitDurable(60'000).ok());
  EXPECT_EQ(client.GetStats().durable_seq, total_batches);
  server2.Stop();

  const IngestServerStats sstats = server2.GetStats();
  EXPECT_EQ(sstats.batches_applied, total_batches - durable_seq)
      << "a batch was lost or double-applied across the failover";

  follower->Drain();
  reference->Drain();
  ExpectServicesEqual(*reference, *follower);
}

}  // namespace
}  // namespace spade::net
