// Cross-module property suite: the paper's formal guarantees, checked over
// randomized workloads and parameterized across the three built-in
// semantics (DG, DW, FD).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "core/spade.h"
#include "metrics/density.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

class SemanticsTest : public ::testing::TestWithParam<std::string> {
 protected:
  FraudSemantics Sem() const { return MakeSemanticsByName(GetParam()); }
};

std::vector<Edge> RandomLog(Rng* rng, std::size_t n, std::size_t m) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < m; ++i) {
    Edge e = testing::RandomEdge(rng, n);
    e.ts = static_cast<Timestamp>(i);
    edges.push_back(e);
  }
  return edges;
}

// The incremental facade tracks the static peeler for every semantics.
// (FD has degree-dependent edge weights with irrational values; deltas are
// compared within 1e-9 and the sequence must match exactly.)
TEST_P(SemanticsTest, IncrementalTracksStatic) {
  Rng rng(1000 + GetParam().size());
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 10 + rng.NextBounded(20);
    Spade spade;
    spade.SetSemantics(Sem());
    ASSERT_TRUE(spade.BuildGraph(n, RandomLog(&rng, n, 3 * n)).ok());
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE(spade.InsertEdge(testing::RandomEdge(&rng, n)).ok());
      if (GetParam() == "FD") {
        // FD's logarithmic weights are irrational: summation-order ulp
        // noise can legitimately flip exact ties, so validate canonical
        // greedy structure instead of bitwise sequence equality.
        testing::ValidateCanonicalSequence(spade.graph(), spade.peel_state(),
                                           1e-9, /*check_tie_break=*/false);
      } else {
        testing::ExpectStateEquals(PeelStatic(spade.graph()),
                                   spade.peel_state(), 1e-9);
      }
    }
  }
}

// Lemma 2.1 (via Algorithm 1's guarantee): the maintained community is at
// least half as dense as the brute-force optimum, at every point of an
// evolving stream.
TEST_P(SemanticsTest, HalfApproximationHoldsUnderUpdates) {
  Rng rng(2000 + GetParam().size());
  const std::size_t n = 9;
  Spade spade;
  spade.SetSemantics(Sem());
  ASSERT_TRUE(spade.BuildGraph(n, RandomLog(&rng, n, 12)).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(spade.InsertEdge(testing::RandomEdge(&rng, n)).ok());
    const Community c = spade.Detect();
    const double optimum =
        SubgraphDensity(spade.graph(), BruteForceDensest(spade.graph()));
    EXPECT_GE(c.density + 1e-9, 0.5 * optimum) << "after insertion " << i;
  }
}

// Lemma 4.1: positions before the earlier endpoint of an inserted edge are
// untouched.
TEST_P(SemanticsTest, PrefixStability) {
  Rng rng(3000 + GetParam().size());
  const std::size_t n = 30;
  Spade spade;
  spade.SetSemantics(Sem());
  ASSERT_TRUE(spade.BuildGraph(n, RandomLog(&rng, n, 90)).ok());
  for (int i = 0; i < 10; ++i) {
    const std::vector<VertexId> before(spade.peel_state().seq().begin(),
                                       spade.peel_state().seq().end());
    const Edge e = testing::RandomEdge(&rng, n);
    const std::size_t cut = std::min(spade.peel_state().PositionOf(e.src),
                                     spade.peel_state().PositionOf(e.dst));
    ASSERT_TRUE(spade.InsertEdge(e).ok());
    for (std::size_t p = 0; p < cut; ++p) {
      ASSERT_EQ(before[p], spade.peel_state().VertexAt(p));
    }
  }
}

// Property 3.1: density metrics are arithmetic — f(S)/|S| with nonnegative
// vertex weights and positive edge weights. Verify the built-in semantics
// produce weights in the allowed ranges on random graphs.
TEST_P(SemanticsTest, WeightsSatisfyProperty31) {
  Rng rng(4000 + GetParam().size());
  const std::size_t n = 25;
  Spade spade;
  spade.SetSemantics(Sem());
  ASSERT_TRUE(spade.BuildGraph(n, RandomLog(&rng, n, 75)).ok());
  const auto& g = spade.graph();
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(g.VertexWeight(static_cast<VertexId>(v)), 0.0);
    for (const auto& e : g.OutNeighbors(static_cast<VertexId>(v))) {
      EXPECT_GT(e.weight, 0.0);
    }
  }
}

// Axiom 1 (vertex suspiciousness): raising a vertex weight raises g(S) for
// any S containing it.
TEST(AxiomTest, VertexSuspiciousness) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  const std::vector<VertexId> s = {0, 1};
  const double before = SubgraphDensity(g, s);
  g.SetVertexWeight(0, 5.0);
  EXPECT_GT(SubgraphDensity(g, s), before);
}

// Axiom 2 (edge suspiciousness): adding an internal edge raises g(S).
TEST(AxiomTest, EdgeSuspiciousness) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  const std::vector<VertexId> s = {0, 1};
  const double before = SubgraphDensity(g, s);
  ASSERT_TRUE(g.AddEdge(1, 0, 1.0).ok());
  EXPECT_GT(SubgraphDensity(g, s), before);
}

// Axiom 3 (concentration): equal total weight on fewer vertices is denser.
TEST(AxiomTest, Concentration) {
  DynamicGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 6.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 4, 3.0).ok());
  EXPECT_GT(SubgraphDensity(g, {0, 1}), SubgraphDensity(g, {2, 3, 4}));
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, SemanticsTest,
                         ::testing::Values("DG", "DW", "FD"));

// Long-haul soak: a thousand mixed operations on one Spade instance with
// periodic exact cross-checks. Guards against state corruption that only
// manifests after many reorders.
TEST(SoakTest, ThousandMixedUpdates) {
  Rng rng(31337);
  const std::size_t n = 60;
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(n, RandomLog(&rng, n, 120)).ok());
  std::vector<Edge> live;
  for (int step = 0; step < 1000; ++step) {
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 6) {
      const Edge e = testing::RandomEdge(&rng, n);
      live.push_back(e);
      ASSERT_TRUE(spade.InsertEdge(e).ok());
    } else if (op < 8 && !live.empty()) {
      const std::size_t pick = rng.NextBounded(live.size());
      const Edge victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      ASSERT_TRUE(spade.DeleteEdge(victim.src, victim.dst).ok());
    } else {
      std::vector<Edge> batch;
      for (int i = 0; i < 5; ++i) {
        batch.push_back(testing::RandomEdge(&rng, n));
        live.push_back(batch.back());
      }
      ASSERT_TRUE(spade.InsertBatchEdges(batch).ok());
    }
    if (step % 50 == 0) {
      testing::ExpectStateEquals(PeelStatic(spade.graph()),
                                 spade.peel_state());
    }
  }
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state());
}

}  // namespace
}  // namespace spade
