// Randomized differential suite for the window-bearing detectors:
// TimeWindowDetector and PeriodDetector are checked step by step against a
// from-scratch rebuild (PeelStatic over the reference window contents), so
// the insert path, the expiry/delete path and their interleavings must all
// agree with the definition. Also pins the two window-detector seam fixes:
// a rejected Offer leaves the detector untouched (no expiry side effects),
// and monotonicity survives the window draining empty.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "core/period_detector.h"
#include "core/time_window.h"
#include "graph/dynamic_graph.h"
#include "metrics/semantics.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

/// Rebuilds the window's graph from the reference edge list (applied
/// semantic weights) and peels it statically.
PeelState ReferenceState(std::size_t n, const std::deque<Edge>& window,
                         DynamicGraph* out) {
  DynamicGraph g(n);
  for (const Edge& e : window) {
    EXPECT_TRUE(g.AddEdge(e.src, e.dst, e.weight).ok());
  }
  if (out != nullptr) *out = g;
  return PeelStatic(g);
}

TEST(TimeWindowSeamTest, RejectedOfferLeavesDetectorUntouched) {
  const std::size_t n = 6;
  TimeWindowDetector detector(n, /*window_span=*/100, MakeDW());
  ASSERT_TRUE(detector.Offer({0, 1, 3.0, 10}).ok());
  ASSERT_TRUE(detector.Offer({1, 2, 2.0, 50}).ok());
  ASSERT_TRUE(detector.Offer({2, 3, 5.0, 90}).ok());
  const std::size_t edges_before = detector.graph().NumEdges();
  const Community before = detector.Detect();

  // Unknown endpoint at a far-future timestamp: the rejection must happen
  // BEFORE time advances, or the failed Offer would still expire the whole
  // window as a side effect.
  EXPECT_FALSE(detector.Offer({99, 0, 1.0, 1000}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 3u);
  EXPECT_EQ(detector.graph().NumEdges(), edges_before);
  const Community after = detector.Detect();
  EXPECT_EQ(after.members, before.members);
  EXPECT_DOUBLE_EQ(after.density, before.density);

  // Out-of-order timestamp: same guarantee.
  EXPECT_FALSE(detector.Offer({0, 2, 1.0, 5}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 3u);
  EXPECT_EQ(detector.graph().NumEdges(), edges_before);
}

TEST(TimeWindowSeamTest, MonotonicitySurvivesEmptyWindow) {
  TimeWindowDetector detector(4, /*window_span=*/50, MakeDG());
  ASSERT_TRUE(detector.Offer({0, 1, 1.0, 10}).ok());
  // Drain the window completely, then try to reopen the past: with the
  // monotonicity check anchored on window_.back().ts this would be
  // accepted (the window is empty), silently running time backwards.
  ASSERT_TRUE(detector.AdvanceTo(1000).ok());
  ASSERT_EQ(detector.WindowEdgeCount(), 0u);
  EXPECT_FALSE(detector.Offer({1, 2, 1.0, 500}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 0u);
  // Equal-to-high-water timestamps stay allowed (ties arrive together).
  EXPECT_TRUE(detector.Offer({1, 2, 1.0, 1000}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 1u);
}

TEST(TimeWindowDifferentialTest, RandomizedStreamMatchesRebuild) {
  Rng rng(2024);
  const std::size_t n = 16;
  const Timestamp span = 200;
  TimeWindowDetector detector(n, span, MakeDW());
  std::deque<Edge> reference;
  Timestamp now = 0;
  for (int step = 0; step < 400; ++step) {
    now += static_cast<Timestamp>(rng.NextBounded(30));
    if (rng.NextBounded(10) == 0) {
      // Idle tick: expiry with no insertion.
      ASSERT_TRUE(detector.AdvanceTo(now).ok());
    } else {
      Edge e = testing::RandomEdge(&rng, n);
      e.ts = now;
      ASSERT_TRUE(detector.Offer(e).ok());
      reference.push_back(e);  // DW applies the raw weight unchanged
    }
    while (!reference.empty() && reference.front().ts < now - span) {
      reference.pop_front();
    }
    ASSERT_EQ(detector.WindowEdgeCount(), reference.size());
    if (step % 10 == 9) {
      DynamicGraph want_graph;
      const PeelState want = ReferenceState(n, reference, &want_graph);
      ASSERT_EQ(detector.graph().NumEdges(), want_graph.NumEdges());
      testing::ExpectStateEquals(want, detector.peel_state());
    }
  }
}

TEST(PeriodDifferentialTest, RandomizedRetargetsMatchRebuild) {
  // Same differential discipline for the period detector, sweeping random
  // retargets under both built-in semantics whose weights are pure edge
  // functions (a from-scratch rebuild is exact for those).
  for (const auto& sem : {MakeDW(), MakeDG()}) {
    Rng rng(sem.name == "DW" ? 7001 : 7002);
    const std::size_t n = 14;
    std::vector<Edge> log;
    for (std::size_t i = 0; i < 150; ++i) {
      Edge e = testing::RandomEdge(&rng, n);
      e.ts = static_cast<Timestamp>(10 * (i + 1));
      log.push_back(e);
    }
    PeriodDetector detector(n, log, sem);
    DynamicGraph unused(n);
    for (int step = 0; step < 20; ++step) {
      const Timestamp begin =
          static_cast<Timestamp>(rng.NextBounded(1300));
      const Timestamp end =
          begin + static_cast<Timestamp>(40 + rng.NextBounded(500));
      ASSERT_TRUE(detector.SetPeriod(begin, end).ok());
      std::deque<Edge> window;
      for (const Edge& e : log) {
        if (e.ts >= begin && e.ts <= end) {
          Edge applied = e;
          applied.weight = sem.esusp(e, unused);
          window.push_back(applied);
        }
      }
      const PeelState want = ReferenceState(n, window, nullptr);
      testing::ExpectStateEquals(want, detector.peel_state());
    }
  }
}

}  // namespace
}  // namespace spade
