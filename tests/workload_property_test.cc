// Cross-cutting property sweep: every (dataset profile x semantics x
// batching policy) combination must leave the detector in a structurally
// valid canonical peeling, with all replay metrics well-formed.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "datagen/workload.h"
#include "peel/static_peeler.h"
#include "stream/replayer.h"
#include "tests/test_util.h"

namespace spade {
namespace {

using Param = std::tuple<std::string, std::string, std::size_t>;

class WorkloadSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadSweepTest, ReplayLeavesValidState) {
  const auto& [profile, semantics, batch] = GetParam();
  FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 40;
  const bool transaction_profile = profile.rfind("Grab", 0) == 0;
  const Workload w = BuildWorkload(profile, transaction_profile ? 0.0003 : 0.02,
                                   /*seed=*/1234,
                                   transaction_profile ? &mix : nullptr);
  ASSERT_GT(w.stream.size(), 0u);

  Spade spade;
  spade.SetSemantics(MakeSemanticsByName(semantics));
  ASSERT_TRUE(spade.BuildGraph(w.num_vertices, w.initial).ok());

  ReplayOptions options;
  if (batch == 0) {
    options.use_edge_grouping = true;
  } else {
    options.batch_size = batch;
  }
  const ReplayReport report = Replay(&spade, w.stream, options);

  // Metrics sanity.
  EXPECT_EQ(report.edges_processed, w.stream.size());
  EXPECT_GE(report.flushes, 1u);
  EXPECT_GE(report.prevention_ratio, 0.0);
  EXPECT_LE(report.prevention_ratio, 1.0);
  EXPECT_GE(report.total_process_micros, 0.0);
  EXPECT_EQ(spade.graph().NumEdges(), w.initial.size() + w.stream.size());

  // Structural validity of the final peeling (tie order unchecked:
  // semantics weights are continuous).
  testing::ValidateCanonicalSequence(spade.graph(), spade.peel_state(), 1e-6,
                                     /*check_tie_break=*/false);

  // The detected community's density matches the definitional recompute.
  const Community c = spade.Detect();
  if (!c.members.empty()) {
    double f = 0.0;
    std::vector<char> in_set(spade.graph().NumVertices(), 0);
    for (VertexId v : c.members) in_set[v] = 1;
    for (VertexId v : c.members) {
      f += spade.graph().VertexWeight(v);
      for (const auto& e : spade.graph().OutNeighbors(v)) {
        if (in_set[e.vertex]) f += e.weight;
      }
    }
    EXPECT_NEAR(c.density, f / static_cast<double>(c.members.size()), 1e-6);
  }
}

std::string SweepName(const ::testing::TestParamInfo<Param>& info) {
  const std::string profile = std::get<0>(info.param);
  const std::string semantics = std::get<1>(info.param);
  const std::size_t batch = std::get<2>(info.param);
  std::string name = profile + "_" + semantics + "_";
  name += batch == 0 ? "grouping" : "batch" + std::to_string(batch);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesSemanticsBatches, WorkloadSweepTest,
    ::testing::Combine(
        ::testing::Values("Grab1", "Grab4", "Amazon", "Wiki-Vote"),
        ::testing::Values("DG", "DW", "FD"),
        ::testing::Values(std::size_t{1}, std::size_t{64},
                          std::size_t{0} /* edge grouping */)),
    SweepName);

}  // namespace
}  // namespace spade
