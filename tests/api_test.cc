// API-surface tests for the Spade facade: apply-vs-insert parity,
// snapshot restore fallbacks, semantics switching and pipeline composition.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/spade.h"
#include "peel/static_peeler.h"
#include "storage/snapshot.h"
#include "tests/test_util.h"

namespace spade {
namespace {

std::vector<Edge> SmallLog(Rng* rng, std::size_t n, std::size_t m) {
  std::vector<Edge> log;
  for (std::size_t i = 0; i < m; ++i) {
    log.push_back(testing::RandomEdge(rng, n));
  }
  return log;
}

TEST(ApiTest, ApplyEdgeMatchesInsertEdge) {
  Rng rng(201);
  Spade a, b;
  a.SetSemantics(MakeDW());
  b.SetSemantics(MakeDW());
  const auto initial = SmallLog(&rng, 15, 40);
  ASSERT_TRUE(a.BuildGraph(15, initial).ok());
  ASSERT_TRUE(b.BuildGraph(15, initial).ok());
  for (int i = 0; i < 20; ++i) {
    const Edge e = testing::RandomEdge(&rng, 15);
    ASSERT_TRUE(a.InsertEdge(e).ok());
    ASSERT_TRUE(b.ApplyEdge(e).ok());
    testing::ExpectStateEquals(a.peel_state(), b.peel_state(), 0.0);
  }
}

TEST(ApiTest, ApplyBatchMatchesInsertBatch) {
  Rng rng(202);
  Spade a, b;
  a.SetSemantics(MakeDG());
  b.SetSemantics(MakeDG());
  const auto initial = SmallLog(&rng, 15, 40);
  ASSERT_TRUE(a.BuildGraph(15, initial).ok());
  ASSERT_TRUE(b.BuildGraph(15, initial).ok());
  const auto batch = SmallLog(&rng, 15, 25);
  ASSERT_TRUE(a.InsertBatchEdges(batch).ok());
  ASSERT_TRUE(b.ApplyBatchEdges(batch).ok());
  testing::ExpectStateEquals(a.peel_state(), b.peel_state(), 0.0);
}

TEST(ApiTest, DetectIsIdempotent) {
  Rng rng(203);
  Spade spade;
  ASSERT_TRUE(spade.BuildGraph(10, SmallLog(&rng, 10, 30)).ok());
  const Community first = spade.Detect();
  const Community second = spade.Detect();
  EXPECT_EQ(first.members, second.members);
  EXPECT_DOUBLE_EQ(first.density, second.density);
}

TEST(ApiTest, SemanticsNameTracksInstallation) {
  Spade spade;
  EXPECT_EQ(spade.semantics_name(), "DG");
  spade.SetSemantics(MakeFD());
  EXPECT_EQ(spade.semantics_name(), "FD");
  spade.SetSemantics(MakeSemanticsByName("DW"));
  EXPECT_EQ(spade.semantics_name(), "DW");
}

TEST(ApiTest, MakeSemanticsByNameFallsBackToDG) {
  EXPECT_EQ(MakeSemanticsByName("nonsense").name, "DG");
  EXPECT_EQ(MakeSemanticsByName("FD").name, "FD");
}

TEST(ApiTest, RestoreFromGraphOnlySnapshotRepeels) {
  Rng rng(204);
  const std::string path = ::testing::TempDir() + "/spade_api_graphonly.bin";
  DynamicGraph g = testing::RandomGraph(&rng, 12, 30, 4, 1);
  ASSERT_TRUE(SaveSnapshot(path, g, nullptr).ok());

  Spade spade;
  ASSERT_TRUE(spade.RestoreState(path).ok());
  // No serialized peel state: the facade must have re-peeled statically.
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state(),
                             0.0);
  std::remove(path.c_str());
}

TEST(ApiTest, SaveStateFlushesBenignBuffer) {
  Rng rng(205);
  const std::string path = ::testing::TempDir() + "/spade_api_flush.bin";
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  std::vector<Edge> initial = {
      {0, 1, 50.0, 0}, {1, 2, 50.0, 1}, {2, 0, 50.0, 2}, {3, 4, 1.0, 3}};
  ASSERT_TRUE(spade.BuildGraph(6, initial).ok());
  ASSERT_TRUE(spade.ApplyEdge({3, 5, 0.5, 4}).ok());
  ASSERT_GT(spade.PendingBenignEdges(), 0u);
  ASSERT_TRUE(spade.SaveState(path).ok());
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);

  Spade restored;
  restored.SetSemantics(MakeDW());
  ASSERT_TRUE(restored.RestoreState(path).ok());
  EXPECT_EQ(restored.graph().NumEdges(), 5u);  // buffered edge included
  std::remove(path.c_str());
}

TEST(ApiTest, GroupingToggleMidStream) {
  Rng rng(206);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(15, SmallLog(&rng, 15, 60)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(spade.ApplyEdge(testing::RandomEdge(&rng, 15)).ok());
  }
  spade.TurnOnEdgeGrouping();
  for (int i = 0; i < 5; ++i) {
    Edge e = testing::RandomEdge(&rng, 15);
    e.weight = 0.25;
    ASSERT_TRUE(spade.ApplyEdge(e).ok());
  }
  spade.TurnOffEdgeGrouping();
  // Buffered edges still flush through Detect even with grouping off.
  spade.Detect();
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state());
}

TEST(ApiTest, RebuildGraphResetsEverything) {
  Rng rng(207);
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(10, SmallLog(&rng, 10, 20)).ok());
  ASSERT_TRUE(spade.InsertEdge(testing::RandomEdge(&rng, 10)).ok());
  EXPECT_GT(spade.cumulative_stats().affected_vertices, 0u);

  ASSERT_TRUE(spade.BuildGraph(5, SmallLog(&rng, 5, 8)).ok());
  EXPECT_EQ(spade.graph().NumVertices(), 5u);
  EXPECT_EQ(spade.cumulative_stats().affected_vertices, 0u);
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state());
}

TEST(ApiTest, EmptyGraphDetect) {
  Spade spade;
  ASSERT_TRUE(spade.BuildGraph(0, {}).ok());
  const Community c = spade.Detect();
  EXPECT_TRUE(c.members.empty());
  EXPECT_DOUBLE_EQ(c.density, 0.0);
}

TEST(ApiTest, IsolatedVerticesOnlyGraph) {
  Spade spade;
  ASSERT_TRUE(spade.BuildGraph(5, {}).ok());
  const Community c = spade.Detect();
  // All deltas are zero: the whole vertex set ties at density 0.
  EXPECT_EQ(c.members.size(), 5u);
  EXPECT_DOUBLE_EQ(c.density, 0.0);
}

}  // namespace
}  // namespace spade
