// Tests for dataset profiles, the synthetic generators and fraud injection.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "datagen/fraud_injector.h"
#include "datagen/generators.h"
#include "datagen/profiles.h"
#include "datagen/workload.h"

namespace spade {
namespace {

TEST(ProfilesTest, AllSevenTable3Rows) {
  const auto profiles = AllProfiles();
  ASSERT_EQ(profiles.size(), 7u);
  EXPECT_EQ(profiles[0].name, "Grab1");
  EXPECT_EQ(profiles[0].num_edges, 10000000u);
  EXPECT_EQ(profiles[3].name, "Grab4");
  EXPECT_EQ(profiles[3].num_vertices, 6023000u);
  EXPECT_EQ(profiles[4].name, "Amazon");
  EXPECT_EQ(profiles[6].name, "Epinion");
  EXPECT_EQ(profiles[6].num_edges, 841000u);
}

TEST(ProfilesTest, ScalingShrinksCounts) {
  const DatasetProfile full = GetProfile("Grab1", 1.0);
  const DatasetProfile small = GetProfile("Grab1", 0.01);
  EXPECT_EQ(small.num_vertices, full.num_vertices / 100);
  EXPECT_EQ(small.num_edges, full.num_edges / 100);
  EXPECT_EQ(small.increments, full.increments / 100);
  EXPECT_EQ(small.name, "Grab1");
}

TEST(ProfilesTest, UnknownNameFallsBackToGrab1) {
  EXPECT_EQ(GetProfile("NoSuchDataset", 0.5).name, "Grab1");
}

TEST(GeneratorTest, MatchesProfileCounts) {
  const DatasetProfile p = GetProfile("Grab1", 0.002);
  const GeneratedGraph g = GenerateDataset(p, 1);
  EXPECT_EQ(g.num_vertices, p.num_vertices);
  EXPECT_EQ(g.edges.size(), p.num_edges);
}

TEST(GeneratorTest, TransactionEdgesAreCustomerToMerchant) {
  const DatasetProfile p = GetProfile("Grab2", 0.002);
  const GeneratedGraph g = GenerateDataset(p, 2);
  EXPECT_GT(g.merchant_base, 0u);
  EXPECT_LT(g.merchant_base, g.num_vertices);
  for (const Edge& e : g.edges) {
    EXPECT_LT(e.src, g.merchant_base);   // customer side
    EXPECT_GE(e.dst, g.merchant_base);   // merchant side
    EXPECT_LT(e.dst, g.num_vertices);
    EXPECT_GT(e.weight, 0.0);
  }
}

TEST(GeneratorTest, SocialEdgesAvoidSelfLoops) {
  const DatasetProfile p = GetProfile("Wiki-Vote", 0.05);
  const GeneratedGraph g = GenerateDataset(p, 3);
  for (const Edge& e : g.edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, g.num_vertices);
    EXPECT_LT(e.dst, g.num_vertices);
  }
}

TEST(GeneratorTest, TimestampsAreStrictlyIncreasing) {
  const GeneratedGraph g = GenerateDataset(GetProfile("Amazon", 0.2), 4);
  for (std::size_t i = 1; i < g.edges.size(); ++i) {
    EXPECT_LT(g.edges[i - 1].ts, g.edges[i].ts);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const DatasetProfile p = GetProfile("Epinion", 0.01);
  const GeneratedGraph a = GenerateDataset(p, 42);
  const GeneratedGraph b = GenerateDataset(p, 42);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i], b.edges[i]);
  }
}

TEST(GeneratorTest, PowerLawDegreeSkew) {
  // A few vertices should absorb a large share of edges (Figure 9b shape).
  const GeneratedGraph g = GenerateDataset(GetProfile("Grab1", 0.005), 5);
  std::vector<std::size_t> degree(g.num_vertices, 0);
  for (const Edge& e : g.edges) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::sort(degree.rbegin(), degree.rend());
  std::size_t top = 0, total = 0;
  const std::size_t top_count = g.num_vertices / 100 + 1;
  for (std::size_t i = 0; i < degree.size(); ++i) {
    total += degree[i];
    if (i < top_count) top += degree[i];
  }
  // Top 1% of vertices should hold well over 10% of incident edges.
  EXPECT_GT(static_cast<double>(top), 0.1 * static_cast<double>(total));
}

TEST(SplitTest, NinetyTenReplaySplit) {
  GeneratedGraph g = GenerateDataset(GetProfile("Amazon", 0.5), 6);
  const std::size_t total = g.edges.size();
  const SplitDataset split = SplitForReplay(std::move(g));
  EXPECT_EQ(split.initial.size() + split.increments.size(), total);
  EXPECT_NEAR(static_cast<double>(split.initial.size()),
              0.9 * static_cast<double>(total), 1.0);
  // Increments strictly follow the initial graph in time.
  if (!split.initial.empty() && !split.increments.empty()) {
    EXPECT_LT(split.initial.back().ts, split.increments.front().ts);
  }
}

TEST(FraudInjectorTest, PatternShapes) {
  Rng rng(7);
  for (FraudPattern pattern :
       {FraudPattern::kCustomerMerchantCollusion, FraudPattern::kDealHunter,
        FraudPattern::kClickFarming}) {
    FraudInstanceConfig config;
    config.pattern = pattern;
    config.num_transactions = 100;
    config.start_ts = 5000;
    std::vector<VertexId> members;
    const auto edges =
        SynthesizeFraudInstance(config, 0, 1000, 1000, 1100, &rng, &members);
    ASSERT_EQ(edges.size(), 100u);
    EXPECT_FALSE(members.empty());
    std::set<VertexId> member_set(members.begin(), members.end());
    for (const Edge& e : edges) {
      EXPECT_TRUE(member_set.count(e.src));
      EXPECT_TRUE(member_set.count(e.dst));
      EXPECT_LT(e.src, 1000u);
      EXPECT_GE(e.dst, 1000u);
      EXPECT_GE(e.ts, 5000);
      EXPECT_GT(e.weight, 0.0);
    }
  }
}

TEST(FraudInjectorTest, ClickFarmingUsesOneMerchant) {
  Rng rng(8);
  FraudInstanceConfig config;
  config.pattern = FraudPattern::kClickFarming;
  config.num_transactions = 50;
  std::vector<VertexId> members;
  const auto edges =
      SynthesizeFraudInstance(config, 0, 100, 100, 200, &rng, &members);
  std::set<VertexId> merchants;
  for (const Edge& e : edges) merchants.insert(e.dst);
  EXPECT_EQ(merchants.size(), 1u);
}

TEST(FraudInjectorTest, InjectKeepsStreamSortedAndLabeled) {
  LabeledStream stream;
  for (int i = 0; i < 50; ++i) {
    stream.Append({0, 1, 1.0, Timestamp(i) * 100});
  }
  Rng rng(9);
  FraudInstanceConfig config;
  config.num_transactions = 20;
  config.start_ts = 1234;
  config.micros_per_edge = 37;
  std::vector<VertexId> members;
  const auto edges =
      SynthesizeFraudInstance(config, 0, 50, 50, 100, &rng, &members);
  InjectInstances(&stream, {edges}, {members});

  ASSERT_EQ(stream.edges.size(), 70u);
  ASSERT_EQ(stream.group.size(), 70u);
  ASSERT_EQ(stream.group_vertices.size(), 1u);
  std::size_t fraud_count = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(stream.edges[i - 1].ts, stream.edges[i].ts);
    }
    if (stream.IsFraud(i)) {
      ++fraud_count;
      EXPECT_EQ(stream.group[i], 0);
    }
  }
  EXPECT_EQ(fraud_count, 20u);
}

TEST(WorkloadTest, BuildsFraudLabeledWorkload) {
  FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 30;
  const Workload w = BuildWorkload("Grab1", 0.001, 11, &mix);
  EXPECT_EQ(w.profile.name, "Grab1");
  EXPECT_GT(w.initial.size(), 0u);
  EXPECT_GT(w.stream.size(), 0u);
  EXPECT_EQ(w.stream.group_vertices.size(), 3u);  // one per pattern
  std::size_t fraud = 0;
  for (std::size_t i = 0; i < w.stream.size(); ++i) {
    if (w.stream.IsFraud(i)) ++fraud;
  }
  EXPECT_EQ(fraud, 90u);
}

TEST(WorkloadTest, NoFraudWhenMixIsNull) {
  const Workload w = BuildWorkload("Wiki-Vote", 0.02, 12, nullptr);
  EXPECT_TRUE(w.stream.group_vertices.empty());
  for (std::size_t i = 0; i < w.stream.size(); ++i) {
    EXPECT_FALSE(w.stream.IsFraud(i));
  }
}

}  // namespace
}  // namespace spade
