// Tests for the incremental reordering engine: single edge insertion
// (§4.1), batch reordering (Algorithm 2) and edge deletion (Appendix C.1),
// all verified for exact equivalence against the static peeler.

#include "core/incremental_engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

using testing::ExpectStateEquals;
using testing::RandomEdge;
using testing::RandomGraph;
using testing::ValidateCanonicalSequence;

TEST(IncrementalInsertTest, SingleEdgeOnTinyGraph) {
  DynamicGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 3.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 4.0).ok());
  PeelState state = PeelStatic(g);

  IncrementalEngine engine;
  ReorderStats stats;
  const Edge e{0, 3, 5.0, 0};
  ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, &stats).ok());

  ExpectStateEquals(PeelStatic(g), state);
  EXPECT_GT(stats.affected_vertices, 0u);
}

TEST(IncrementalInsertTest, PrefixBeforeFirstEndpointIsUntouched) {
  // Lemma 4.1: positions before the earlier endpoint never change.
  Rng rng(7);
  DynamicGraph g = RandomGraph(&rng, 30, 80);
  PeelState state = PeelStatic(g);
  const std::vector<VertexId> before(state.seq().begin(),
                                     state.seq().end());

  IncrementalEngine engine;
  const Edge e = RandomEdge(&rng, 30);
  const std::size_t cut =
      std::min(state.PositionOf(e.src), state.PositionOf(e.dst));
  ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, nullptr).ok());

  for (std::size_t i = 0; i < cut; ++i) {
    EXPECT_EQ(before[i], state.VertexAt(i)) << "prefix changed at " << i;
  }
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(IncrementalInsertTest, ParallelEdgesAccumulate) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        engine.InsertEdge(&g, &state, {0, 1, 2.0, 0}, nullptr, nullptr).ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
  EXPECT_EQ(g.NumEdges(), 6u);
}

TEST(IncrementalInsertTest, NewVertexJoinsAtHead) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 4.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 4.0).ok());
  PeelState state = PeelStatic(g);

  IncrementalEngine engine;
  // Vertex 5 (and implicitly 3, 4 stay absent) arrives with an edge.
  const Edge e{5, 0, 1.0, 0};
  ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, nullptr).ok());
  ASSERT_EQ(g.NumVertices(), 6u);
  // Gap ids 3 and 4 join as isolated vertices so state covers the graph.
  ASSERT_EQ(state.size(), 6u);
  EXPECT_TRUE(state.ContainsVertex(5));
  ValidateCanonicalSequence(g, state);
  ExpectStateEquals(PeelStatic(g), state);
}

TEST(IncrementalInsertTest, NewVertexWithPrior) {
  DynamicGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  PeelState state = PeelStatic(g);

  IncrementalEngine engine;
  VertexSuspFn prior = [](VertexId, const DynamicGraph&) { return 3.5; };
  ASSERT_TRUE(
      engine.InsertEdge(&g, &state, {2, 0, 1.0, 0}, prior, nullptr).ok());
  EXPECT_DOUBLE_EQ(g.VertexWeight(2), 3.5);
  ValidateCanonicalSequence(g, state);
}

TEST(IncrementalInsertTest, NewVertexPriorIsOrderIndependent) {
  // Regression: when one update introduces several unseen endpoints, every
  // endpoint must take the prior-carrying registration, regardless of
  // whether a higher-id endpoint (whose gap fill spans the lower id) is
  // reached first — within one edge and across a batch.
  VertexSuspFn prior = [](VertexId, const DynamicGraph&) { return 1.5; };
  for (int variant = 0; variant < 3; ++variant) {
    DynamicGraph g(2);
    ASSERT_TRUE(g.AddEdge(0, 1, 2.0).ok());
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    std::vector<Edge> batch;
    if (variant == 0) {
      batch = {{7, 3, 1.0, 0}};  // higher-id endpoint processed first
    } else if (variant == 1) {
      batch = {{3, 7, 1.0, 0}};
    } else {
      batch = {{7, 0, 1.0, 0}, {3, 1, 1.0, 0}};  // across batch edges
    }
    ASSERT_TRUE(engine.InsertBatch(&g, &state, batch, prior, nullptr).ok());
    EXPECT_DOUBLE_EQ(g.VertexWeight(3), 1.5) << "variant " << variant;
    EXPECT_DOUBLE_EQ(g.VertexWeight(7), 1.5) << "variant " << variant;
    // Pure gap ids (never an endpoint) keep the documented prior of 0.
    EXPECT_DOUBLE_EQ(g.VertexWeight(4), 0.0) << "variant " << variant;
    ValidateCanonicalSequence(g, state);
    ExpectStateEquals(PeelStatic(g), state);
  }
}

TEST(IncrementalInsertTest, RejectsNonPositiveWeight) {
  DynamicGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  EXPECT_FALSE(
      engine.InsertEdge(&g, &state, {0, 1, 0.0, 0}, nullptr, nullptr).ok());
  EXPECT_FALSE(
      engine.InsertEdge(&g, &state, {0, 1, -1.0, 0}, nullptr, nullptr).ok());
}

TEST(IncrementalInsertTest, EmptyBatchIsNoOp) {
  DynamicGraph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  ASSERT_TRUE(
      engine.InsertBatch(&g, &state, {}, nullptr, nullptr).ok());
  ExpectStateEquals(PeelStatic(g), state);
}

// Property: after any sequence of single-edge insertions, the maintained
// state equals a from-scratch static peel exactly (integer weights make the
// comparison exact).
TEST(IncrementalInsertTest, RandomizedSingleEdgeEquivalence) {
  Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.NextBounded(30);
    const std::size_t m = rng.NextBounded(3 * n);
    DynamicGraph g = RandomGraph(&rng, n, m, 6, 3);
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    for (int step = 0; step < 25; ++step) {
      const Edge e = RandomEdge(&rng, n);
      ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, nullptr).ok());
      ExpectStateEquals(PeelStatic(g), state);
    }
  }
}

// Property: batch insertion is equivalent to static recomputation, for
// batch sizes spanning one edge to hundreds.
class BatchEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchEquivalenceTest, BatchEqualsStatic) {
  const std::size_t batch_size = GetParam();
  Rng rng(1000 + batch_size);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + rng.NextBounded(40);
    DynamicGraph g = RandomGraph(&rng, n, 2 * n, 6, 2);
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    for (int round = 0; round < 4; ++round) {
      std::vector<Edge> batch;
      for (std::size_t i = 0; i < batch_size; ++i) {
        batch.push_back(RandomEdge(&rng, n));
      }
      ASSERT_TRUE(
          engine.InsertBatch(&g, &state, batch, nullptr, nullptr).ok());
      ExpectStateEquals(PeelStatic(g), state);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64, 256));

// Property: batch insertion commutes with splitting — inserting E1+E2 in
// one batch or two gives the same final state.
TEST(IncrementalInsertTest, BatchSplitConsistency) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.NextBounded(25);
    DynamicGraph g1 = RandomGraph(&rng, n, n, 5, 0);
    // Duplicate the graph by replaying its edges.
    DynamicGraph g2(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (const auto& e : g1.OutNeighbors(static_cast<VertexId>(u))) {
        ASSERT_TRUE(
            g2.AddEdge(static_cast<VertexId>(u), e.vertex, e.weight).ok());
      }
    }
    PeelState s1 = PeelStatic(g1);
    PeelState s2 = PeelStatic(g2);
    std::vector<Edge> all;
    for (int i = 0; i < 20; ++i) all.push_back(RandomEdge(&rng, n));

    IncrementalEngine e1, e2;
    ASSERT_TRUE(e1.InsertBatch(&g1, &s1, all, nullptr, nullptr).ok());
    std::span<const Edge> span(all);
    ASSERT_TRUE(
        e2.InsertBatch(&g2, &s2, span.subspan(0, 10), nullptr, nullptr).ok());
    ASSERT_TRUE(
        e2.InsertBatch(&g2, &s2, span.subspan(10), nullptr, nullptr).ok());
    ExpectStateEquals(s1, s2);
  }
}

TEST(IncrementalDeleteTest, DeleteRestoresPreInsertState) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.NextBounded(20);
    DynamicGraph g = RandomGraph(&rng, n, 2 * n, 5, 2);
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;

    const Edge e = RandomEdge(&rng, n);
    ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, nullptr).ok());
    ASSERT_TRUE(
        engine.DeleteEdge(&g, &state, e.src, e.dst, nullptr, &e.weight).ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
}

TEST(IncrementalDeleteTest, RandomizedDeleteEquivalence) {
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng.NextBounded(25);
    DynamicGraph g = RandomGraph(&rng, n, 3 * n, 5, 2);
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    for (int step = 0; step < 15; ++step) {
      // Pick an existing edge uniformly-ish: random vertex with out-edges.
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      std::size_t guard = 0;
      while (g.OutDegree(u) == 0 && guard++ < 4 * n) {
        u = static_cast<VertexId>(rng.NextBounded(n));
      }
      if (g.OutDegree(u) == 0) break;
      const auto& pick =
          g.OutNeighbors(u)[rng.NextBounded(g.OutDegree(u))];
      ASSERT_TRUE(
          engine.DeleteEdge(&g, &state, u, pick.vertex, nullptr, nullptr)
              .ok());
      ExpectStateEquals(PeelStatic(g), state);
    }
  }
}

TEST(IncrementalDeleteTest, DeleteMissingEdgeFails) {
  DynamicGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  EXPECT_FALSE(engine.DeleteEdge(&g, &state, 1, 2, nullptr, nullptr).ok());
  // Direction matters: (1, 0) was never inserted.
  EXPECT_FALSE(engine.DeleteEdge(&g, &state, 1, 0, nullptr, nullptr).ok());
}

TEST(IncrementalDeleteTest, MixedInsertDeleteEquivalence) {
  Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 4 + rng.NextBounded(20);
    DynamicGraph g = RandomGraph(&rng, n, n, 5, 1);
    PeelState state = PeelStatic(g);
    IncrementalEngine engine;
    std::vector<Edge> live;
    for (std::size_t u = 0; u < n; ++u) {
      for (const auto& e : g.OutNeighbors(static_cast<VertexId>(u))) {
        live.push_back({static_cast<VertexId>(u), e.vertex, e.weight, 0});
      }
    }
    for (int step = 0; step < 30; ++step) {
      if (!live.empty() && rng.NextBool(0.4)) {
        const std::size_t pick = rng.NextBounded(live.size());
        const Edge victim = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        ASSERT_TRUE(engine
                        .DeleteEdge(&g, &state, victim.src, victim.dst,
                                    nullptr, &victim.weight)
                        .ok());
      } else {
        const Edge e = RandomEdge(&rng, n);
        live.push_back(e);
        ASSERT_TRUE(engine.InsertEdge(&g, &state, e, nullptr, nullptr).ok());
      }
      ExpectStateEquals(PeelStatic(g), state);
    }
  }
}

TEST(ReorderStatsTest, AffectedAreaIsBounded) {
  Rng rng(31);
  DynamicGraph g = RandomGraph(&rng, 200, 600, 4, 0);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  ReorderStats stats;
  ASSERT_TRUE(
      engine.InsertEdge(&g, &state, RandomEdge(&rng, 200), nullptr, &stats)
          .ok());
  EXPECT_LE(stats.affected_vertices, 200u);
  EXPECT_GT(stats.affected_vertices, 0u);
  EXPECT_LE(stats.rewritten_span, 200u);
}

}  // namespace
}  // namespace spade
