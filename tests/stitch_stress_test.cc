// Concurrency stress for message-driven stitching: producers hammer the
// router while window expiry and stitch passes run against the same
// boundary-index message queues (worker-side Record, stitcher-side fold /
// compaction / eviction, retire-delta triggers).
//
// The invariant under test is the publication contract: a stitched read
// never OVERSTATES — the density it serves is the exact induced density of
// a real member set no denser than the from-scratch merged peel of the
// final window. Raciness is the point; the test runs in the `stress` ctest
// label and in the TSan CI leg, where the queue hand-offs and the
// retire-vs-stitch fences are checked for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/detection_service.h"
#include "service/sharded_detection_service.h"

namespace spade {
namespace {

constexpr VertexId kVerticesPerTenant = 48;
constexpr std::size_t kShards = 4;

std::vector<Spade> BuildEmptyShards(std::size_t num_shards, std::size_t n) {
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

TEST(StitchStressTest, ConcurrentIngestRetireAndStitchNeverOverstate) {
  const std::size_t n = kShards * kVerticesPerTenant;
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.window.span = 1'500;
  options.stitch.trigger_weight = 200.0;  // event-driven wakeups mid-run
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  std::atomic<bool> producers_done{false};
  std::atomic<Timestamp> clock{1};

  // Producers: mixed per-edge / batched submission, advancing event time so
  // the window keeps expiring behind them. Cross-tenant edges are a steady
  // fraction of the traffic, so the trigger accumulators and the queues
  // stay hot. Strictly iteration-bounded — a wall-clock stop flag would let
  // a fast machine spin the event clock through thousands of window strides
  // and drown the shards in retire markers.
  constexpr int kBatchesPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(9000 + t);
      std::vector<Edge> batch;
      for (int iter = 0; iter < kBatchesPerProducer; ++iter) {
        const Timestamp now =
            clock.fetch_add(1, std::memory_order_relaxed);
        batch.clear();
        for (int i = 0; i < 16; ++i) {
          const auto tenant = rng.NextBounded(kShards);
          auto s = static_cast<VertexId>(tenant * kVerticesPerTenant +
                                         rng.NextBounded(kVerticesPerTenant));
          VertexId d;
          if (i % 4 == 0) {  // cross-tenant
            const auto other = (tenant + 1 + rng.NextBounded(kShards - 1)) %
                               kShards;
            d = static_cast<VertexId>(other * kVerticesPerTenant +
                                      rng.NextBounded(kVerticesPerTenant));
          } else {
            d = static_cast<VertexId>(tenant * kVerticesPerTenant +
                                      rng.NextBounded(kVerticesPerTenant));
            if (d == s) d = (d + 1) % (tenant * kVerticesPerTenant +
                                       kVerticesPerTenant);
          }
          if (d == s) continue;
          batch.push_back(Edge{s, d, 1.0 + 10.0 * rng.NextDouble(), now});
        }
        if (batch.size() % 2 == 0) {
          (void)service.SubmitBatch(batch);
        } else {
          for (const Edge& e : batch) (void)service.Submit(e);
        }
      }
    });
  }

  // Expirer: explicit RetireOlderThan racing the stitcher's own eviction.
  std::thread expirer([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      const Timestamp now = clock.load(std::memory_order_relaxed);
      if (now > 500) (void)service.RetireOlderThan(now - 500);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Explicit StitchNow callers race the trigger-driven background
  // stitcher (trigger_weight > 0 armed it) on the same stitch mutex and
  // cursor, while reads check the published snapshot stays well-formed.
  std::thread stitcher([&] {
    while (!producers_done.load(std::memory_order_acquire)) {
      const GlobalCommunity g = service.StitchNow();
      EXPECT_GE(g.density, 0.0);
      const GlobalCommunity read = service.CurrentGlobalCommunity();
      EXPECT_GE(read.density, 0.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& p : producers) p.join();
  producers_done.store(true, std::memory_order_release);
  expirer.join();
  stitcher.join();

  // Quiesce: drain everything, then run one final pass with no concurrent
  // mutation. Its density must not exceed the from-scratch merged peel of
  // the shards' final windows (the ground truth for "no overstatement").
  service.Drain();
  const GlobalCommunity final_pass = service.StitchNow();

  std::vector<Edge> window;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::vector<Edge> shard_window = service.ShardWindow(s);
    window.insert(window.end(), shard_window.begin(), shard_window.end());
  }
  DetectionService merged(
      [&] {
        Spade spade;
        spade.SetSemantics(MakeDW());
        EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
        return spade;
      }(),
      nullptr);
  for (const Edge& e : window) ASSERT_TRUE(merged.Submit(e).ok());
  merged.Drain();
  const double truth = merged.CurrentCommunity().density;

  EXPECT_LE(final_pass.density, truth + 1e-9);
  const GlobalCommunity read = service.CurrentGlobalCommunity();
  EXPECT_LE(read.density, truth + 1e-9);

  const ShardedServiceStats stats = service.GetStats();
  EXPECT_GT(stats.edges_processed, 0u);
  EXPECT_GT(stats.retired_edges, 0u);
  // Monotone counters prove the message path flowed, regardless of how
  // much of the boundary index the final horizon evicted.
  EXPECT_GE(stats.stitch_triggers, 1u);
  EXPECT_GE(stats.stitch_passes, 1u);
  service.Stop();
}

}  // namespace
}  // namespace spade
