// Tests for work-stealing shard rebalance: the lock-free partition map,
// multi-partition fleets (partitions_per_shard > 1) against independent
// reference detectors, manual partition moves racing live traffic, the
// auto-rebalancer's steal policy under a skewed workload, and placement-
// aware checkpointing (a snapshot taken mid-rebalance restores to a
// bit-identical fleet with the exact live placement).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/partition_map.h"
#include "service/sharded_detection_service.h"
#include "tests/test_util.h"

namespace spade {
namespace {

constexpr VertexId kVerticesPerTenant = 64;

Edge TenantEdge(Rng* rng, std::size_t tenant) {
  const auto base = static_cast<VertexId>(tenant * kVerticesPerTenant);
  auto s = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  auto d = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(kVerticesPerTenant));
  return Edge{static_cast<VertexId>(base + s),
              static_cast<VertexId>(base + d),
              static_cast<double>(1 + rng->NextBounded(6)), 0};
}

/// One detector per PARTITION (tenant % num_partitions), all sharing the
/// global vertex-id space.
std::vector<Spade> BuildPartitions(std::size_t num_partitions,
                                   std::size_t num_tenants,
                                   const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(num_partitions);
  for (const Edge& e : initial) {
    parts[(e.src / kVerticesPerTenant) % num_partitions].push_back(e);
  }
  std::vector<Spade> shards;
  for (std::size_t p = 0; p < num_partitions; ++p) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(
        spade.BuildGraph(num_tenants * kVerticesPerTenant, parts[p]).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

ShardedDetectionServiceOptions RebalanceOptionsFor(
    std::size_t partitions_per_shard) {
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.rebalance.enabled = true;
  options.rebalance.partitions_per_shard = partitions_per_shard;
  return options;
}

TEST(PartitionMapTest, RoutesAndEpochBumps) {
  PartitionMap map(8, 4);
  ASSERT_EQ(map.num_partitions(), 8u);
  for (std::size_t pid = 0; pid < 8; ++pid) {
    EXPECT_EQ(map.ShardOf(pid), pid % 4);
    EXPECT_EQ(map.Read(pid).epoch, 0u);
  }
  // Each publish bumps the epoch; the shard changes atomically with it.
  EXPECT_EQ(map.Publish(5, 2), 1u);
  EXPECT_EQ(map.ShardOf(5), 2u);
  EXPECT_EQ(map.Read(5).epoch, 1u);
  EXPECT_EQ(map.Publish(5, 0), 2u);
  EXPECT_EQ(map.ShardOf(5), 0u);
  EXPECT_EQ(map.Read(5).epoch, 2u);
  // Other entries are untouched.
  EXPECT_EQ(map.ShardOf(1), 1u);
  EXPECT_EQ(map.Read(1).epoch, 0u);
}

// A fleet of 8 partitions packed 4-per-worker must behave exactly like 8
// independent detectors fed the same per-partition streams: same members,
// same densities, every partition addressable by pid.
TEST(RebalanceTest, MultiPartitionFleetMatchesIndependentDetectors) {
  constexpr std::size_t kPartitions = 8;
  Rng rng(4242);
  std::vector<Edge> initial;
  for (int i = 0; i < 400; ++i) {
    initial.push_back(TenantEdge(&rng, rng.NextBounded(kPartitions)));
  }
  std::vector<Edge> stream;
  for (int i = 0; i < 1200; ++i) {
    stream.push_back(TenantEdge(&rng, rng.NextBounded(kPartitions)));
  }

  ShardedDetectionService service(
      BuildPartitions(kPartitions, kPartitions, initial), nullptr,
      RebalanceOptionsFor(/*partitions_per_shard=*/4));
  ASSERT_EQ(service.num_shards(), 2u);
  ASSERT_EQ(service.num_partitions(), kPartitions);
  for (const Edge& e : stream) ASSERT_TRUE(service.Submit(e).ok());
  service.Drain();

  std::vector<Spade> reference =
      BuildPartitions(kPartitions, kPartitions, initial);
  for (auto& r : reference) r.TurnOnEdgeGrouping();
  for (const Edge& e : stream) {
    const std::size_t pid = (e.src / kVerticesPerTenant) % kPartitions;
    ASSERT_TRUE(reference[pid].ApplyEdge(e).ok());
  }

  EXPECT_EQ(service.EdgesProcessed(), stream.size());
  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    Community want = reference[pid].Detect();
    Community got;
    ASSERT_TRUE(service
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        got = s.peel_state().DetectCommunity();
                                      })
                    .ok());
    std::sort(got.members.begin(), got.members.end());
    std::sort(want.members.begin(), want.members.end());
    EXPECT_EQ(got.members, want.members) << "partition " << pid;
    EXPECT_NEAR(got.density, want.density, 1e-9) << "partition " << pid;
  }
}

// Manual partition moves between drained phases: after every move the fleet
// must still equal the independent reference — no edge lost, duplicated, or
// applied to the wrong partition, no matter where the partition lives.
TEST(RebalanceTest, ManualMovesPreserveDifferential) {
  constexpr std::size_t kPartitions = 8;
  constexpr std::size_t kPhases = 6;
  Rng rng(91);
  ShardedDetectionService service(
      BuildPartitions(kPartitions, kPartitions, {}), nullptr,
      RebalanceOptionsFor(/*partitions_per_shard=*/2));
  ASSERT_EQ(service.num_shards(), 4u);

  std::vector<Spade> reference = BuildPartitions(kPartitions, kPartitions, {});
  for (auto& r : reference) r.TurnOnEdgeGrouping();

  std::size_t submitted = 0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    for (int i = 0; i < 200; ++i) {
      const Edge e = TenantEdge(&rng, rng.NextBounded(kPartitions));
      ASSERT_TRUE(service.Submit(e).ok());
      const std::size_t pid = (e.src / kVerticesPerTenant) % kPartitions;
      ASSERT_TRUE(reference[pid].ApplyEdge(e).ok());
      ++submitted;
    }
    service.Drain();
    for (auto& r : reference) r.Detect();  // mirror the drain-time flush
    // Shuffle a random partition onto a random shard (possibly a no-op).
    const std::size_t pid = rng.NextBounded(kPartitions);
    const std::size_t to = rng.NextBounded(service.num_shards());
    ASSERT_TRUE(service.RebalanceNow(pid, to).ok());
    EXPECT_EQ(service.PartitionShard(pid), to);
  }
  service.Drain();

  EXPECT_EQ(service.EdgesProcessed(), submitted);
  const ShardedServiceStats stats = service.GetStats();
  EXPECT_GT(stats.partitions_moved, 0u);
  EXPECT_EQ(stats.steals, 0u);  // manual moves are not steals
  std::size_t owned_total = 0;
  for (const std::size_t p : stats.shard_partitions) owned_total += p;
  EXPECT_EQ(owned_total, kPartitions);

  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    Community want = reference[pid].peel_state().DetectCommunity();
    Community got;
    ASSERT_TRUE(service
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        got = s.peel_state().DetectCommunity();
                                      })
                    .ok());
    std::sort(got.members.begin(), got.members.end());
    std::sort(want.members.begin(), want.members.end());
    EXPECT_EQ(got.members, want.members) << "partition " << pid;
    EXPECT_NEAR(got.density, want.density, 1e-9) << "partition " << pid;
  }
}

// Randomized moves racing CONCURRENT producers: additive DW semantics make
// the final per-partition graph a pure function of the edge multiset, so
// the totals must match the reference no matter how applies interleave
// with moves (forwarded edges land exactly once).
TEST(RebalanceTest, ConcurrentMovesLoseNoEdges) {
  constexpr std::size_t kPartitions = 8;
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 2000;
  ShardedDetectionService service(
      BuildPartitions(kPartitions, kPartitions, {}), nullptr,
      RebalanceOptionsFor(/*partitions_per_shard=*/2));

  // Pre-generate per-producer streams so the submitted multiset is known.
  std::vector<std::vector<Edge>> streams(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    Rng rng(1000 + p);
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      streams[p].push_back(TenantEdge(&rng, rng.NextBounded(kPartitions)));
    }
  }

  std::atomic<bool> stop_moving{false};
  std::thread mover([&] {
    Rng rng(7);
    while (!stop_moving.load(std::memory_order_relaxed)) {
      const std::size_t pid = rng.NextBounded(kPartitions);
      const std::size_t to = rng.NextBounded(service.num_shards());
      ASSERT_TRUE(service.RebalanceNow(pid, to).ok());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Mixed per-edge and batched submission exercises both routing paths.
      const auto& stream = streams[p];
      for (std::size_t i = 0; i < stream.size();) {
        if (i % 3 == 0) {
          ASSERT_TRUE(service.Submit(stream[i]).ok());
          ++i;
        } else {
          const std::size_t take = std::min<std::size_t>(64, stream.size() - i);
          ASSERT_TRUE(
              service.SubmitBatch({stream.data() + i, take}, nullptr).ok());
          i += take;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop_moving.store(true, std::memory_order_relaxed);
  mover.join();
  service.Drain();

  EXPECT_EQ(service.EdgesProcessed(), kProducers * kPerProducer);

  // Per-partition edge totals (count and weight) against a reference fed
  // the same multiset — the order-independent invariants of the additive
  // semantics.
  std::vector<Spade> reference = BuildPartitions(kPartitions, kPartitions, {});
  for (auto& r : reference) r.TurnOnEdgeGrouping();
  for (const auto& stream : streams) {
    for (const Edge& e : stream) {
      const std::size_t pid = (e.src / kVerticesPerTenant) % kPartitions;
      ASSERT_TRUE(reference[pid].ApplyEdge(e).ok());
    }
  }
  for (auto& r : reference) r.Detect();
  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    std::size_t got_edges = 0;
    double got_weight = 0.0;
    ASSERT_TRUE(service
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        got_edges = s.graph().NumEdges();
                                        got_weight = s.graph().TotalWeight();
                                      })
                    .ok());
    EXPECT_EQ(got_edges, reference[pid].graph().NumEdges())
        << "partition " << pid;
    EXPECT_NEAR(got_weight, reference[pid].graph().TotalWeight(), 1e-6)
        << "partition " << pid;
  }
  service.Stop();
}

// The auto-rebalancer must steal from a worker drowning in a hot-tenant
// burst while its peers idle — and the fleet must stay exact.
TEST(RebalanceTest, AutoStealerBalancesSkewedLoad) {
  constexpr std::size_t kPartitions = 8;
  ShardedDetectionServiceOptions options =
      RebalanceOptionsFor(/*partitions_per_shard=*/2);
  options.rebalance.interval_ms = 5;
  options.rebalance.skew_ratio = 2.0;
  options.rebalance.min_queue_depth = 32;
  options.rebalance.min_improvement = 0.01;
  options.rebalance.cooldown_ms = 5;
  // A short queue keeps the producer's blocking handoff tight against the
  // worker's pace, so the recent high-water mark reads "saturated" while
  // applies still flow fast enough that BOTH hot partitions accrue load
  // within one 5ms rebalancer scan (the steal picker needs per-partition
  // loads from the same window to level the pair).
  options.shard.max_queue = 4096;
  ShardedDetectionService service(
      BuildPartitions(kPartitions, kPartitions, {}), nullptr,
      std::move(options));
  ASSERT_EQ(service.num_shards(), 4u);
  // Partitions 0 and 4 both start on worker 0 — the hot pair.
  ASSERT_EQ(service.PartitionShard(0), 0u);
  ASSERT_EQ(service.PartitionShard(4), 0u);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> submitted{0};
  std::thread producer([&] {
    Rng rng(55);
    while (!stop.load(std::memory_order_relaxed)) {
      // 100% of the traffic goes to the two hot partitions, interleaved
      // edge-by-edge so both accrue load inside every rebalancer scan
      // window (the steal picker levels the pair by per-partition load
      // measured over one scan interval).
      std::vector<Edge> chunk;
      for (int i = 0; i < 128; ++i) {
        chunk.push_back(TenantEdge(&rng, i % 2 == 0 ? 0 : 4));
      }
      std::size_t accepted = 0;
      // Fail-fast mode: a full queue rejects the tail of the chunk with a
      // non-OK status. That is the saturation this test is engineering —
      // count what got in and keep pushing.
      (void)service.SubmitBatch(chunk, &accepted);
      submitted.fetch_add(accepted, std::memory_order_relaxed);
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t steals = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    steals = service.GetStats().steals;
    if (steals > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  service.Drain();

  EXPECT_GT(steals, 0u) << "rebalancer never stole under a 2-hot-partition "
                           "skew within 20s";
  EXPECT_EQ(service.EdgesProcessed(), submitted.load());
  // The hot pair no longer shares worker 0 (a steal separated them).
  EXPECT_NE(service.PartitionShard(0), service.PartitionShard(4));
  service.Stop();
}

// Acceptance gate: a checkpoint taken mid-rebalance (non-default placement)
// restores into a fresh fleet bit-identically — same per-partition peel
// state, same graph totals, same benign-buffer depth, same placement.
TEST(RebalanceTest, MidRebalanceCheckpointRestoresBitIdentical) {
  constexpr std::size_t kPartitions = 8;
  const std::string dir = ::testing::TempDir() + "/spade_rebalance_ckpt";
  std::filesystem::remove_all(dir);

  Rng rng(1213);
  std::vector<Edge> initial;
  for (int i = 0; i < 300; ++i) {
    initial.push_back(TenantEdge(&rng, rng.NextBounded(kPartitions)));
  }
  ShardedDetectionService live(
      BuildPartitions(kPartitions, kPartitions, initial), nullptr,
      RebalanceOptionsFor(/*partitions_per_shard=*/2));
  live.SeedBoundaryIndex(initial);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(live.Submit(TenantEdge(&rng, rng.NextBounded(kPartitions))).ok());
  }
  // Mid-stream rebalance: move two partitions off their default owners,
  // then keep streaming so the checkpoint is genuinely mid-flight state.
  ASSERT_TRUE(live.RebalanceNow(1, 3).ok());
  ASSERT_TRUE(live.RebalanceNow(4, 2).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(live.Submit(TenantEdge(&rng, rng.NextBounded(kPartitions))).ok());
  }
  ASSERT_TRUE(live
                  .SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                             nullptr)
                  .ok());

  // A delta epoch on top, still under the moved placement.
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(live.Submit(TenantEdge(&rng, rng.NextBounded(kPartitions))).ok());
  }
  ASSERT_TRUE(live
                  .SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                             nullptr)
                  .ok());

  std::vector<testing::ShardCapture> want(kPartitions);
  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    ASSERT_TRUE(live
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        want[pid].state = s.peel_state();
                                        want[pid].num_edges =
                                            s.graph().NumEdges();
                                        want[pid].total_weight =
                                            s.graph().TotalWeight();
                                        want[pid].pending_benign =
                                            s.PendingBenignEdges();
                                      })
                    .ok());
  }

  ShardedDetectionService restored(
      BuildPartitions(kPartitions, kPartitions, {}), nullptr,
      RebalanceOptionsFor(/*partitions_per_shard=*/2));
  ASSERT_TRUE(restored.RestoreState(dir).ok());
  // Placement follows the checkpoint, not the default layout.
  EXPECT_EQ(restored.PartitionShard(1), 3u);
  EXPECT_EQ(restored.PartitionShard(4), 2u);
  EXPECT_EQ(restored.PartitionShard(0), 0u);
  for (std::size_t pid = 0; pid < kPartitions; ++pid) {
    testing::ShardCapture got;
    ASSERT_TRUE(restored
                    .InspectPartition(pid,
                                      [&](const Spade& s) {
                                        got.state = s.peel_state();
                                        got.num_edges = s.graph().NumEdges();
                                        got.total_weight =
                                            s.graph().TotalWeight();
                                        got.pending_benign =
                                            s.PendingBenignEdges();
                                      })
                    .ok());
    testing::ExpectShardEqualsCapture(want[pid], got);
  }

  // A fleet with rebalancing OFF cannot honor the moved placement and must
  // say so instead of silently restoring it to the wrong workers.
  ShardedDetectionServiceOptions off;
  off.partitioner = TenantPartitioner(kVerticesPerTenant);
  ShardedDetectionService fixed(
      BuildPartitions(kPartitions, kPartitions, {}), nullptr, std::move(off));
  const Status s = fixed.RestoreState(dir);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  live.Stop();
  std::filesystem::remove_all(dir);
}

// Moves on a rebalance-disabled fleet are refused, out-of-range arguments
// are rejected, and a same-shard move is a no-op success.
TEST(RebalanceTest, MoveValidation) {
  ShardedDetectionServiceOptions off;
  off.partitioner = TenantPartitioner(kVerticesPerTenant);
  ShardedDetectionService fixed(BuildPartitions(4, 4, {}), nullptr,
                                std::move(off));
  EXPECT_EQ(fixed.RebalanceNow(0, 1).code(), StatusCode::kFailedPrecondition);

  ShardedDetectionService fleet(BuildPartitions(4, 4, {}), nullptr,
                                RebalanceOptionsFor(1));
  EXPECT_EQ(fleet.RebalanceNow(99, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.RebalanceNow(0, 99).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(fleet.RebalanceNow(2, 2).ok());  // already there
  EXPECT_EQ(fleet.GetStats().partitions_moved, 0u);
  EXPECT_TRUE(fleet.RebalanceNow(2, 0).ok());
  EXPECT_EQ(fleet.PartitionShard(2), 0u);
  EXPECT_EQ(fleet.GetStats().partitions_moved, 1u);
}

}  // namespace
}  // namespace spade
