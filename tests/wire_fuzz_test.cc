// Wire-format fuzz suite (ctest label `stress`): the network analogue of
// corruption_test.cc. Property under test: a single byte flip anywhere in
// a frame — magic, type, flags, length, sequence, payload, CRC trailer —
// is never decoded as a frame, never crashes the reader, and never costs
// more than that one frame: the next intact frame in the stream always
// comes out. At the server level the same property reads: a corrupt BATCH
// frame is never applied, and the stream resynchronizes on the next good
// frame, so retried batches land exactly once.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "net/ingest_server.h"
#include "net/wire_format.h"
#include "service/sharded_detection_service.h"
#include "tests/test_util.h"

namespace spade::net {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kVertices = 64;

std::vector<Edge> MakeEdges(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(testing::RandomEdge(&rng, kVertices, 4));
  }
  return edges;
}

/// Decodes everything currently extractable from `reader`.
std::vector<Frame> DrainFrames(FrameReader* reader) {
  std::vector<Frame> frames;
  Frame frame;
  while (reader->Next(&frame)) frames.push_back(frame);
  return frames;
}

TEST(WireFormat, RoundTripsMixedFrameSequence) {
  const std::vector<Edge> edges = MakeEdges(10, 1);
  AckPayload ack{7, 3};
  const std::string stream =
      EncodeFrame(FrameType::kHello, 0, EncodeU64Payload(42)) +
      EncodeFrame(FrameType::kBatch, 1, EncodeBatchPayload(edges)) +
      EncodeFrame(FrameType::kAck, 1, EncodeAckPayload(ack)) +
      EncodeFrame(FrameType::kHeartbeat, 0, "") +
      EncodeFrame(FrameType::kEpochFile, 9,
                  EncodeEpochFilePayload(9, "shard-0.delta-9", "payload")) +
      EncodeFrame(FrameType::kEpochCommit, 9,
                  EncodeEpochCommitPayload(9, "manifest-bytes"));

  // Feed in awkward slices so header/payload boundaries never line up with
  // Append boundaries.
  FrameReader reader;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    reader.Append(stream.data() + i, std::min<std::size_t>(7, stream.size() - i));
    for (const Frame& f : DrainFrames(&reader)) frames.push_back(f);
  }
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kBatch);
  EXPECT_EQ(frames[1].seq, 1u);
  std::vector<Edge> decoded;
  ASSERT_TRUE(DecodeBatchPayload(frames[1].payload, &decoded));
  ASSERT_EQ(decoded.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(decoded[i].src, edges[i].src);
    EXPECT_EQ(decoded[i].dst, edges[i].dst);
    EXPECT_EQ(decoded[i].weight, edges[i].weight);
    EXPECT_EQ(decoded[i].ts, edges[i].ts);
  }
  AckPayload ack2;
  ASSERT_TRUE(DecodeAckPayload(frames[2].payload, &ack2));
  EXPECT_EQ(ack2.applied, 7u);
  EXPECT_EQ(ack2.durable, 3u);
  EpochFilePayload file;
  ASSERT_TRUE(DecodeEpochFilePayload(frames[4].payload, &file));
  EXPECT_EQ(file.epoch, 9u);
  EXPECT_EQ(file.name, "shard-0.delta-9");
  EXPECT_EQ(file.data, "payload");
  EpochCommitPayload commit;
  ASSERT_TRUE(DecodeEpochCommitPayload(frames[5].payload, &commit));
  EXPECT_EQ(commit.epoch, 9u);
  EXPECT_EQ(commit.manifest, "manifest-bytes");
  EXPECT_EQ(reader.corrupt_frames(), 0u);
  EXPECT_EQ(reader.resync_bytes(), 0u);
}

// The tentpole sweep: flip EVERY byte of the middle frame (every header
// field, every payload byte, every trailer byte) with a seeded mask and
// require (a) the corrupt frame never decodes, (b) both neighbours always
// decode intact, (c) no extra phantom frames appear.
TEST(WireFormat, SingleByteFlipSweepNeverDecodesCorruptFrame) {
  const std::vector<Edge> batch_a = MakeEdges(5, 11);
  const std::vector<Edge> batch_b = MakeEdges(6, 22);
  const std::vector<Edge> batch_c = MakeEdges(7, 33);
  const std::string frame_a =
      EncodeFrame(FrameType::kBatch, 1, EncodeBatchPayload(batch_a));
  const std::string frame_b =
      EncodeFrame(FrameType::kBatch, 2, EncodeBatchPayload(batch_b));
  const std::string frame_c =
      EncodeFrame(FrameType::kBatch, 3, EncodeBatchPayload(batch_c));

  Rng rng(0xF1);
  for (std::size_t pos = 0; pos < frame_b.size(); ++pos) {
    std::string corrupted = frame_b;
    corrupted[pos] ^= static_cast<char>(1 + rng.NextBounded(255));
    const std::string stream = frame_a + corrupted + frame_c;

    FrameReader reader;
    reader.Append(stream.data(), stream.size());
    const std::vector<Frame> frames = DrainFrames(&reader);

    // Frame B must never survive: CRC-64 detects every single-byte error,
    // and a mangled header (magic/type/len) fails the plausibility gates.
    std::size_t intact = 0;
    for (const Frame& f : frames) {
      if (f.seq == 1) {
        EXPECT_EQ(f.payload, EncodeBatchPayload(batch_a)) << "pos=" << pos;
        ++intact;
      } else if (f.seq == 3) {
        EXPECT_EQ(f.payload, EncodeBatchPayload(batch_c)) << "pos=" << pos;
        ++intact;
      } else {
        ADD_FAILURE() << "corrupt frame decoded at flip pos " << pos
                      << " (seq=" << f.seq << ")";
      }
    }
    EXPECT_EQ(intact, 2u) << "lost a good neighbour at flip pos " << pos;
    EXPECT_GE(reader.corrupt_frames() + reader.resync_bytes(), 1u)
        << "flip at pos " << pos << " went unnoticed";
    if (::testing::Test::HasFailure()) return;
  }
}

// Tearing: truncate the stream at every possible byte, then deliver the
// rest. The partial frame must never decode early, and completing the
// bytes must always yield the full sequence (frames survive arbitrary
// Append boundaries).
TEST(WireFormat, TornFramesResumeAtEveryBoundary) {
  const std::vector<Edge> batch = MakeEdges(4, 44);
  const std::string stream =
      EncodeFrame(FrameType::kBatch, 1, EncodeBatchPayload(batch)) +
      EncodeFrame(FrameType::kHeartbeat, 0, "");
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameReader reader;
    reader.Append(stream.data(), cut);
    std::vector<Frame> frames = DrainFrames(&reader);
    reader.Append(stream.data() + cut, stream.size() - cut);
    for (const Frame& f : DrainFrames(&reader)) frames.push_back(f);
    ASSERT_EQ(frames.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(frames[0].seq, 1u) << "cut=" << cut;
    EXPECT_EQ(frames[1].type, FrameType::kHeartbeat) << "cut=" << cut;
    EXPECT_EQ(reader.corrupt_frames(), 0u) << "cut=" << cut;
  }
}

// Duplicated and garbage-separated frames: the reader skips noise of any
// length and never fabricates frames from it.
TEST(WireFormat, ResyncsAcrossGarbageRuns) {
  const std::string good = EncodeFrame(FrameType::kHeartbeat, 0, "");
  Rng rng(0xA5);
  for (std::size_t garbage_len : {1u, 3u, 17u, 64u, 1024u}) {
    std::string garbage(garbage_len, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    const std::string stream = good + garbage + good;
    FrameReader reader;
    reader.Append(stream.data(), stream.size());
    const std::vector<Frame> frames = DrainFrames(&reader);
    // The garbage may accidentally contain the magic, but the CRC gate
    // means it can never produce a decoded frame beyond the two real ones.
    ASSERT_GE(frames.size(), 2u) << "garbage_len=" << garbage_len;
    for (const Frame& f : frames) {
      EXPECT_EQ(f.type, FrameType::kHeartbeat);
      EXPECT_TRUE(f.payload.empty());
    }
  }
}

// Payload-codec fuzz: structural decoders must reject or cleanly decode
// any mutation, never crash or over-read.
TEST(WireFormat, PayloadDecodersSurviveMutations) {
  const std::vector<Edge> edges = MakeEdges(8, 55);
  const std::string payloads[] = {
      EncodeBatchPayload(edges), EncodeAckPayload({5, 2}),
      EncodeU64Payload(123),
      EncodeEpochFilePayload(3, "boundary.tail-3", "data-bytes"),
      EncodeEpochCommitPayload(3, "spade-shard-manifest 3\n")};
  Rng rng(0xC3);
  for (const std::string& base : payloads) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string mutated = base;
      const std::size_t cut = rng.NextBounded(mutated.size() + 1);
      if (rng.NextBool(0.5)) mutated.resize(cut);  // truncate
      if (!mutated.empty() && rng.NextBool(0.7)) {
        mutated[rng.NextBounded(mutated.size())] ^=
            static_cast<char>(1 + rng.NextBounded(255));
      }
      std::vector<Edge> out_edges;
      AckPayload out_ack;
      std::uint64_t out_u64;
      EpochFilePayload out_file;
      EpochCommitPayload out_commit;
      DecodeBatchPayload(mutated, &out_edges);
      DecodeAckPayload(mutated, &out_ack);
      DecodeU64Payload(mutated, &out_u64);
      DecodeEpochFilePayload(mutated, &out_file);
      DecodeEpochCommitPayload(mutated, &out_commit);
    }
  }
}

// Server-level property: corrupt frames interleaved with good ones never
// crash the server, never apply, and never block the next good frame —
// and a batch resent around the corruption applies exactly once.
TEST(WireFormat, ServerResyncsAndAppliesExactlyOnce) {
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    ASSERT_TRUE(spade.BuildGraph(kVertices, {}).ok());
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
  options.shard.detect_every = 16;
  ShardedDetectionService service(std::move(shards), nullptr,
                                  std::move(options));

  IngestServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto conn = TcpConnect(server.port(), 1000);
  ASSERT_NE(conn, nullptr);

  const auto send = [&](const std::string& bytes) {
    ASSERT_TRUE(conn->SendAll(bytes.data(), bytes.size()).ok());
  };
  const auto wait_ack = [&](std::uint64_t want_applied) {
    FrameReader reader;
    char buf[4096];
    for (int i = 0; i < 200; ++i) {
      std::size_t received = 0;
      const IoResult rc = conn->Recv(buf, sizeof(buf), &received, 50);
      if (rc != IoResult::kOk) continue;
      reader.Append(buf, received);
      Frame frame;
      while (reader.Next(&frame)) {
        AckPayload ack;
        if (DecodeAckPayload(frame.payload, &ack) &&
            ack.applied >= want_applied) {
          return true;
        }
      }
    }
    return false;
  };

  send(EncodeFrame(FrameType::kHello, 0, EncodeU64Payload(1)));
  ASSERT_TRUE(wait_ack(0));

  const std::vector<Edge> batch1 = MakeEdges(20, 66);
  const std::vector<Edge> batch2 = MakeEdges(20, 77);
  const std::string f1 =
      EncodeFrame(FrameType::kBatch, 1, EncodeBatchPayload(batch1));
  const std::string f2 =
      EncodeFrame(FrameType::kBatch, 2, EncodeBatchPayload(batch2));

  // Good batch 1, corrupted batch 2, duplicate of batch 1, then intact
  // batch 2: the server must end with exactly batch1+batch2 applied.
  std::string corrupt2 = f2;
  corrupt2[kFrameHeaderSize + 5] ^= 0x40;  // inside the payload
  send(f1);
  ASSERT_TRUE(wait_ack(1));
  send(corrupt2 + f1 + f2);
  ASSERT_TRUE(wait_ack(2));

  server.Stop();

  const IngestServerStats stats = server.GetStats();
  EXPECT_EQ(stats.batches_applied, 2u);
  EXPECT_EQ(stats.edges_applied, batch1.size() + batch2.size());
  EXPECT_GE(stats.duplicate_batches, 1u);
  EXPECT_GE(stats.corrupt_frames + stats.resync_bytes, 1u);

  // State equals an in-process reference fed the same edges once.
  service.Drain();
  std::vector<Spade> ref_shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    ASSERT_TRUE(spade.BuildGraph(kVertices, {}).ok());
    ref_shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions ref_options;
  ref_options.partitioner = Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
  ref_options.shard.detect_every = 16;
  ShardedDetectionService reference(std::move(ref_shards), nullptr,
                                    std::move(ref_options));
  ASSERT_TRUE(reference.SubmitBatch(batch1).ok());
  ASSERT_TRUE(reference.SubmitBatch(batch2).ok());
  reference.Drain();

  for (std::size_t s = 0; s < kShards; ++s) {
    testing::ShardCapture want;
    reference.InspectShard(s, [&](const Spade& spade) {
      want.state = spade.peel_state();
      want.num_edges = spade.graph().NumEdges();
      want.total_weight = spade.graph().TotalWeight();
      want.pending_benign = spade.PendingBenignEdges();
    });
    service.InspectShard(s, [&](const Spade& spade) {
      testing::ShardCapture got;
      got.state = spade.peel_state();
      got.num_edges = spade.graph().NumEdges();
      got.total_weight = spade.graph().TotalWeight();
      got.pending_benign = spade.PendingBenignEdges();
      testing::ExpectShardEqualsCapture(want, got);
    });
  }
}

}  // namespace
}  // namespace spade::net
