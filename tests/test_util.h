// Shared helpers for the Spade test suites: random graph construction with
// exactly-representable weights, and reference validators for peeling
// sequences.

#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "peel/indexed_heap.h"
#include "peel/peel_state.h"

namespace spade::testing {

/// Builds a random multigraph with `n` vertices and `m` edges. Integer
/// weights in [1, max_weight] keep all peeling arithmetic exact in doubles,
/// so incremental and static runs must agree bit-for-bit.
inline DynamicGraph RandomGraph(Rng* rng, std::size_t n, std::size_t m,
                                int max_weight = 8,
                                int max_vertex_weight = 0) {
  DynamicGraph g(n);
  if (max_vertex_weight > 0) {
    for (std::size_t v = 0; v < n; ++v) {
      g.SetVertexWeight(
          static_cast<VertexId>(v),
          static_cast<double>(rng->NextBounded(max_vertex_weight + 1)));
    }
  }
  for (std::size_t i = 0; i < m && n >= 2; ++i) {
    auto src = static_cast<VertexId>(rng->NextBounded(n));
    auto dst = static_cast<VertexId>(rng->NextBounded(n));
    while (dst == src) dst = static_cast<VertexId>(rng->NextBounded(n));
    const auto w =
        static_cast<double>(1 + rng->NextBounded(max_weight));
    EXPECT_TRUE(g.AddEdge(src, dst, w).ok());
  }
  return g;
}

/// Draws a random non-self-loop edge with an integer weight.
inline Edge RandomEdge(Rng* rng, std::size_t n, int max_weight = 8) {
  auto src = static_cast<VertexId>(rng->NextBounded(n));
  auto dst = static_cast<VertexId>(rng->NextBounded(n));
  while (dst == src) dst = static_cast<VertexId>(rng->NextBounded(n));
  return {src, dst, static_cast<double>(1 + rng->NextBounded(max_weight)), 0};
}

/// Asserts two peel states are identical (same sequence, deltas within eps).
inline void ExpectStateEquals(const PeelState& expected,
                              const PeelState& actual, double eps = 1e-9) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected.VertexAt(i), actual.VertexAt(i))
        << "sequence diverges at position " << i;
    ASSERT_NEAR(expected.DeltaAt(i), actual.DeltaAt(i), eps)
        << "delta diverges at position " << i;
  }
}

/// Reference validator: replays the sequence against the graph from
/// definition, checking that (a) each step removes a minimal-weight pending
/// vertex within `eps` (with the canonical smaller-id tie-break when
/// `check_tie_break` is set — disable it for continuous weights, where ulp
/// noise legitimately reorders exact ties), and (b) the stored delta
/// matches the recomputed peeling weight. O(n * (n + E)).
inline void ValidateCanonicalSequence(const DynamicGraph& g,
                                      const PeelState& state,
                                      double eps = 1e-9,
                                      bool check_tie_break = true) {
  const std::size_t n = g.NumVertices();
  ASSERT_EQ(state.size(), n);
  std::vector<char> pending(n, 1);
  std::vector<double> weight(n);
  for (std::size_t v = 0; v < n; ++v) {
    weight[v] = g.WeightedDegree(static_cast<VertexId>(v));
  }
  for (std::size_t step = 0; step < n; ++step) {
    const VertexId u = state.VertexAt(step);
    ASSERT_TRUE(pending[u]) << "vertex repeated at step " << step;
    ASSERT_NEAR(weight[u], state.DeltaAt(step), eps)
        << "stored delta wrong at step " << step;
    // u must be canonical-minimal among pending (within eps slack on ties).
    for (std::size_t v = 0; v < n; ++v) {
      if (!pending[v] || v == u) continue;
      const bool strictly_smaller = weight[v] < weight[u] - eps;
      const bool tie_smaller_id = check_tie_break &&
                                  std::abs(weight[v] - weight[u]) <= eps &&
                                  v < u;
      ASSERT_FALSE(strictly_smaller || tie_smaller_id)
          << "step " << step << ": peeled " << u << " (w=" << weight[u]
          << ") but " << v << " (w=" << weight[v] << ") is smaller";
    }
    pending[u] = 0;
    g.ForEachIncident(u, [&](VertexId v, double w) {
      if (pending[v]) weight[v] -= w;
    });
  }
}

/// Bit-level capture of one shard detector, taken through InspectShard.
/// The recovery and corruption suites compare restored fleets against
/// captures of the live fleet at each checkpoint epoch.
struct ShardCapture {
  PeelState state;
  std::size_t num_edges = 0;
  double total_weight = 0.0;
  std::size_t pending_benign = 0;
};

/// Asserts a restored shard equals a capture exactly (same peeling
/// sequence and deltas, same graph totals, same benign-buffer depth).
inline void ExpectShardEqualsCapture(const ShardCapture& expected,
                                     const ShardCapture& actual) {
  ExpectStateEquals(expected.state, actual.state, 0.0);
  EXPECT_EQ(expected.num_edges, actual.num_edges);
  EXPECT_DOUBLE_EQ(expected.total_weight, actual.total_weight);
  EXPECT_EQ(expected.pending_benign, actual.pending_benign);
}

}  // namespace spade::testing
