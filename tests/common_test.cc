// Tests for the common substrate: Status/Result, logging levels, timers,
// deterministic RNG and histogram/summary statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace spade {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad weight");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::IOError("").code(),         Status::FailedPrecondition("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code(),
  };
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  auto good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  auto bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(42), 42);
  EXPECT_EQ(good.value_or(42), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(LoggingTest, LevelGate) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must not crash and must not abort.
  SPADE_LOG_INFO() << "suppressed";
  SPADE_LOG_WARNING() << "suppressed";
  SetLogLevel(before);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SPADE_CHECK(1 + 1 == 2);
  SPADE_CHECK_EQ(4, 4);
  SPADE_CHECK_LT(1, 2);
  SPADE_CHECK_GE(2, 2);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(double(i));
  EXPECT_GT(sink, 0.0);  // keeps the loop from being optimized away
  EXPECT_GT(t.ElapsedMicros(), 0.0);
  EXPECT_NEAR(t.ElapsedMillis() * 1000.0, t.ElapsedMicros(),
              t.ElapsedMicros());
}

TEST(TimerTest, AccumulatingTimerCountsLaps) {
  AccumulatingTimer acc;
  for (int i = 0; i < 3; ++i) {
    acc.Start();
    acc.Stop();
  }
  EXPECT_EQ(acc.laps(), 3u);
  EXPECT_GE(acc.TotalMicros(), 0.0);
  acc.Reset();
  EXPECT_EQ(acc.laps(), 0u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedChangesStream) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallIndices) {
  Rng rng(11);
  std::size_t low = 0;
  const std::size_t n = 1000;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextZipf(n, 1.1) < n / 10) ++low;
  }
  // A power law places far more than 10% of the mass in the first decile.
  EXPECT_GT(low, 5000u);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextZipf(50, 1.05), 50u);
    EXPECT_EQ(rng.NextZipf(1, 1.05), 0u);
  }
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.Percentile(99), 99.0, 1.1);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
}

TEST(SummaryTest, AddAfterPercentileQuery) {
  Summary s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10.0);
  s.Add(20);
  EXPECT_NEAR(s.Percentile(50), 15.0, 1e-12);
}

TEST(CountHistogramTest, AccumulatesBuckets) {
  CountHistogram h;
  h.Add(3);
  h.Add(3);
  h.Add(7, 5);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.buckets().at(3), 2u);
  EXPECT_EQ(h.buckets().at(7), 5u);
}

TEST(CountHistogramTest, RowsAreSortedByKey) {
  CountHistogram h;
  h.Add(9);
  h.Add(1);
  h.Add(5);
  EXPECT_EQ(h.ToRows(), "1 1\n5 1\n9 1\n");
}

}  // namespace
}  // namespace spade
