// Fuzz-style corruption suite for the snapshot directory formats (ctest
// label `stress`; the stress CI leg runs it under ASan).
//
// Property under test: a random single-byte flip anywhere in a snapshot
// directory — manifest v1/v2/v3, base snapshots, boundary index + tails,
// delta segments — is never silently accepted and never crashes. Binary
// files carry a CRC-64 trailer (which detects every single-byte error), so
// a flip there must make restore either fail cleanly or fall back to the
// durable prefix that excludes the flipped epoch. The v3 manifest carries
// an in-band crc line covering every byte, so any flip there must be
// rejected outright. Legacy v1/v2 manifests have no checksum; for those
// the property is weaker but still absolute: parse never crashes, and a
// restore that succeeds anyway (a flip in an informational field) must be
// byte-for-byte equal to the pristine restore.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"
#include "storage/sharded_snapshot.h"
#include "tests/test_util.h"

namespace spade {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kVertices = 96;

Partitioner ParityPartitioner() {
  return Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
}

std::unique_ptr<ShardedDetectionService> BuildService(
    const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) parts[e.src % kShards].push_back(e);
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(kVertices, parts[s]).ok());
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = ParityPartitioner();
  options.shard.detect_every = 16;
  options.checkpoint.max_chain_length = 1000;
  options.checkpoint.max_delta_base_ratio = 1e9;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

std::vector<testing::ShardCapture> CaptureShards(
    const ShardedDetectionService& service) {
  std::vector<testing::ShardCapture> captures(service.num_shards());
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      captures[s].state = spade.peel_state();
      captures[s].num_edges = spade.graph().NumEdges();
      captures[s].total_weight = spade.graph().TotalWeight();
      captures[s].pending_benign = spade.PendingBenignEdges();
    });
  }
  return captures;
}

std::string ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::filesystem::path& path,
                    const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CorruptionFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/spade_corruption_test";
    work_ = dir_ + ".work";
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(work_);

    // Build a 2-epoch chain: full base (epoch 1), traffic, delta (epoch 2).
    Rng rng(11);
    for (int i = 0; i < 250; ++i) {
      initial_.push_back(testing::RandomEdge(&rng, kVertices));
    }
    auto service = BuildService(initial_);
    EXPECT_TRUE(service->SaveState(dir_).ok());
    captures_.push_back(CaptureShards(*service));  // epoch 1
    std::vector<Edge> chunk;
    for (int i = 0; i < 90; ++i) {
      chunk.push_back(testing::RandomEdge(&rng, kVertices));
    }
    EXPECT_TRUE(service->SubmitBatch(chunk).ok());
    service->Drain();
    ShardedDetectionService::SaveInfo info;
    EXPECT_TRUE(service
                    ->SaveState(dir_, ShardedDetectionService::SaveMode::kAuto,
                                &info)
                    .ok());
    EXPECT_TRUE(info.delta);
    captures_.push_back(CaptureShards(*service));  // epoch 2
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(work_);
  }

  /// Fresh mutable copy of the pristine directory. Restores are allowed
  /// to garbage-collect torn epochs from the directory they recover, so
  /// every trial fuzzes its own copy.
  void ResetWorkDir() {
    std::filesystem::remove_all(work_);
    std::filesystem::copy(dir_, work_,
                          std::filesystem::copy_options::recursive);
  }

  std::string dir_;
  std::string work_;
  std::vector<Edge> initial_;
  std::vector<std::vector<testing::ShardCapture>> captures_;  // [epoch-1]
};

// Every single-byte flip in a CRC-framed binary file is detected: flips in
// epoch-2 chain files force recovery to epoch 1; flips in base files (or
// in the whole-index boundary base) fail the restore outright. Nothing is
// ever silently accepted as a different graph.
TEST_F(CorruptionFuzzTest, BinaryFilesNeverAcceptAFlip) {
  struct Target {
    std::string file;
    bool base;  // base files: restore must fail; chain files: fall back
  };
  std::vector<Target> targets;
  for (std::size_t s = 0; s < kShards; ++s) {
    targets.push_back({ShardSnapshotFileName(s, 1), true});
    targets.push_back({ShardDeltaFileName(s, 2), false});
  }
  targets.push_back({BoundaryIndexFileName(1), true});
  targets.push_back({BoundaryTailFileName(2), false});

  Rng rng(23);
  for (const Target& target : targets) {
    const std::string pristine =
        ReadFileBytes(std::filesystem::path(dir_) / target.file);
    ASSERT_FALSE(pristine.empty()) << target.file;
    const std::size_t trials =
        std::min<std::size_t>(pristine.size(), 150);
    for (std::size_t t = 0; t < trials; ++t) {
      const std::size_t pos =
          trials == pristine.size() ? t : rng.NextBounded(pristine.size());
      std::string flipped = pristine;
      flipped[pos] = static_cast<char>(
          flipped[pos] ^ static_cast<char>(1 + rng.NextBounded(255)));
      ResetWorkDir();
      WriteFileBytes(std::filesystem::path(work_) / target.file, flipped);
      auto victim = BuildService(initial_);
      ShardedDetectionService::RestoreInfo info;
      const Status s = victim->RestoreState(work_, &info);
      if (target.base) {
        // Base flip: unrecoverable, must fail cleanly (phase-1
        // validation, so the victim is untouched — RecoveryTest pins that
        // part).
        ASSERT_FALSE(s.ok())
            << target.file << " flip at " << pos << " was accepted";
      } else {
        // Chain flip: must fall back to epoch 1 (and only epoch 1).
        ASSERT_TRUE(s.ok())
            << target.file << " flip at " << pos << ": " << s.ToString();
        ASSERT_EQ(info.restored_epoch, 1u)
            << target.file << " flip at " << pos << " was accepted";
        const auto restored = CaptureShards(*victim);
        for (std::size_t sh = 0; sh < kShards; ++sh) {
          testing::ExpectShardEqualsCapture(captures_[0][sh], restored[sh]);
        }
      }
      if (::testing::Test::HasFailure()) {
        FAIL() << "stopping after failure at " << target.file << " byte "
               << pos;
      }
    }
  }
}

// The v3 manifest's in-band crc line makes every single-byte flip a parse
// failure — including flips in fields no structural check covers (the
// semantics name, a digit of a file name).
TEST_F(CorruptionFuzzTest, ManifestV3RejectsEveryFlip) {
  const auto path = std::filesystem::path(dir_) / "manifest.spade";
  const std::string pristine = ReadFileBytes(path);
  ASSERT_FALSE(pristine.empty());
  Rng rng(31);
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    std::string flipped = pristine;
    flipped[pos] = static_cast<char>(
        flipped[pos] ^ static_cast<char>(1 + rng.NextBounded(255)));
    WriteFileBytes(path, flipped);
    ShardManifest manifest;
    const Status s = ReadShardManifest(dir_, &manifest);
    EXPECT_FALSE(s.ok()) << "flip at byte " << pos << " ('"
                         << pristine[pos] << "') was accepted";
    // And therefore the restore fails cleanly too.
    auto victim = BuildService(initial_);
    EXPECT_FALSE(victim->RestoreState(dir_).ok());
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after failure at manifest byte " << pos;
    }
  }
  WriteFileBytes(path, pristine);
}

// Legacy v1/v2 manifests predate the crc line. The absolute part of the
// property still holds: no flip crashes, and any flip that still parses
// and restores must restore the same state as the pristine directory.
TEST_F(CorruptionFuzzTest, LegacyManifestFlipsNeverCrashNorCorrupt) {
  // Rewrite the directory as a legacy v2 snapshot: the epoch-1 base files
  // copied to their pre-chain unstamped names, a hand-written v2
  // manifest, chain files ignored.
  for (std::size_t s = 0; s < kShards; ++s) {
    std::filesystem::copy_file(
        std::filesystem::path(dir_) / ShardSnapshotFileName(s, 1),
        std::filesystem::path(dir_) / ShardSnapshotFileName(s),
        std::filesystem::copy_options::overwrite_existing);
  }
  std::filesystem::copy_file(
      std::filesystem::path(dir_) / BoundaryIndexFileName(1),
      std::filesystem::path(dir_) / kBoundaryIndexFileName,
      std::filesystem::copy_options::overwrite_existing);
  const auto path = std::filesystem::path(dir_) / "manifest.spade";
  std::ostringstream v2;
  v2 << "spade-shard-manifest 2\n"
     << "shards " << kShards << "\n"
     << "semantics DW\n";
  for (std::size_t s = 0; s < kShards; ++s) {
    v2 << "file " << s << ' ' << ShardSnapshotFileName(s) << "\n";
  }
  v2 << "boundary " << kBoundaryIndexFileName << "\n";
  const std::string pristine = v2.str();
  WriteFileBytes(path, pristine);

  // Pristine v2 restore = epoch-1 state (the base snapshots ARE epoch 1).
  std::vector<testing::ShardCapture> reference;
  {
    auto victim = BuildService(initial_);
    ShardedDetectionService::RestoreInfo info;
    ASSERT_TRUE(victim->RestoreState(dir_, &info).ok());
    EXPECT_EQ(info.restored_epoch, 0u);  // legacy: no epoch chain
    reference = CaptureShards(*victim);
    for (std::size_t sh = 0; sh < kShards; ++sh) {
      testing::ExpectShardEqualsCapture(captures_[0][sh], reference[sh]);
    }
  }

  Rng rng(41);
  for (std::size_t pos = 0; pos < pristine.size(); ++pos) {
    std::string flipped = pristine;
    flipped[pos] = static_cast<char>(
        flipped[pos] ^ static_cast<char>(1 + rng.NextBounded(255)));
    WriteFileBytes(path, flipped);
    auto victim = BuildService(initial_);
    const Status s = victim->RestoreState(dir_);
    if (s.ok()) {
      const auto restored = CaptureShards(*victim);
      for (std::size_t sh = 0; sh < kShards; ++sh) {
        testing::ExpectShardEqualsCapture(reference[sh], restored[sh]);
      }
      if (::testing::Test::HasFailure()) {
        FAIL() << "flip at v2 manifest byte " << pos
               << " restored a different state";
      }
    }
  }
}

}  // namespace
}  // namespace spade
