// Tests for the fraud-pattern classifier: each injected pattern's community
// must classify back to its own type.

#include "analysis/pattern_classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/fraud_injector.h"
#include "graph/dynamic_graph.h"

namespace spade {
namespace {

constexpr VertexId kMerchantBase = 100;

/// Builds the induced graph of one synthesized fraud instance and returns
/// the instance's member community.
Community MaterializeInstance(FraudPattern pattern, std::size_t txns,
                              DynamicGraph* g, std::uint64_t seed) {
  Rng rng(seed);
  FraudInstanceConfig config;
  config.pattern = pattern;
  config.num_transactions = txns;
  std::vector<VertexId> members;
  const auto edges = SynthesizeFraudInstance(config, 0, kMerchantBase,
                                             kMerchantBase, 200, &rng,
                                             &members);
  *g = DynamicGraph(200);
  for (const Edge& e : edges) {
    EXPECT_TRUE(g->AddEdge(e.src, e.dst, e.weight).ok());
  }
  Community c;
  c.members = members;
  return c;
}

class PatternRoundTripTest : public ::testing::TestWithParam<FraudPattern> {};

TEST_P(PatternRoundTripTest, InjectedPatternClassifiesBack) {
  const FraudPattern pattern = GetParam();
  const CommunityPattern want =
      pattern == FraudPattern::kCustomerMerchantCollusion
          ? CommunityPattern::kCustomerMerchantCollusion
          : pattern == FraudPattern::kDealHunter
                ? CommunityPattern::kDealHunter
                : CommunityPattern::kClickFarming;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DynamicGraph g;
    const Community c = MaterializeInstance(pattern, 200, &g, seed);
    EXPECT_EQ(ClassifyCommunity(g, c, kMerchantBase), want)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternRoundTripTest,
    ::testing::Values(FraudPattern::kCustomerMerchantCollusion,
                      FraudPattern::kDealHunter,
                      FraudPattern::kClickFarming));

TEST(ShapeTest, CountsSidesAndMultiplicity) {
  DynamicGraph g(200);
  // 2 customers x 1 merchant, 6 transactions => multiplicity 3.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.AddEdge(1, 150, 5.0).ok());
    ASSERT_TRUE(g.AddEdge(2, 150, 5.0).ok());
  }
  Community c;
  c.members = {1, 2, 150};
  const CommunityShape shape = ComputeShape(g, c, kMerchantBase);
  EXPECT_EQ(shape.customers, 2u);
  EXPECT_EQ(shape.merchants, 1u);
  EXPECT_EQ(shape.transactions, 6u);
  EXPECT_DOUBLE_EQ(shape.multiplicity, 3.0);
  EXPECT_DOUBLE_EQ(shape.side_ratio, 2.0);
}

TEST(ShapeTest, ExternalEdgesExcluded) {
  DynamicGraph g(200);
  ASSERT_TRUE(g.AddEdge(1, 150, 5.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 160, 5.0).ok());  // 160 outside the community
  Community c;
  c.members = {1, 150};
  const CommunityShape shape = ComputeShape(g, c, kMerchantBase);
  EXPECT_EQ(shape.transactions, 1u);
}

TEST(ClassifierTest, TinyOrOneSidedIsUnknown) {
  DynamicGraph g(200);
  ASSERT_TRUE(g.AddEdge(1, 150, 5.0).ok());
  Community sparse;
  sparse.members = {1, 150};
  EXPECT_EQ(ClassifyCommunity(g, sparse, kMerchantBase),
            CommunityPattern::kUnknown);

  Community customers_only;
  customers_only.members = {1, 2, 3};
  EXPECT_EQ(ClassifyCommunity(g, customers_only, kMerchantBase),
            CommunityPattern::kUnknown);
}

TEST(ClassifierTest, PatternNamesAreDistinct) {
  EXPECT_NE(CommunityPatternName(CommunityPattern::kDealHunter),
            CommunityPatternName(CommunityPattern::kClickFarming));
  EXPECT_EQ(CommunityPatternName(CommunityPattern::kUnknown), "unknown");
}

}  // namespace
}  // namespace spade
