// Tests for the Spade facade: the Listing 1 API surface, built-in semantics
// (DG/DW/FD), edge grouping (Algorithm 3) and its benign-edge guarantees
// (Definition 4.1, Lemmas 4.3/4.4).

#include "core/spade.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "graph/graph_io.h"
#include "metrics/density.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

// A small transaction log: a dense ring {0,1,2} plus background edges.
std::vector<Edge> DenseRingLog() {
  return {
      {0, 1, 10.0, 1}, {1, 2, 10.0, 2}, {2, 0, 10.0, 3},
      {3, 4, 1.0, 4},  {4, 5, 1.0, 5},  {5, 6, 1.0, 6},
  };
}

TEST(SpadeTest, BuildAndDetectWithDG) {
  Spade spade;
  spade.SetSemantics(MakeDG());
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  Community c = spade.Detect();
  std::sort(c.members.begin(), c.members.end());
  // DG ignores weights: ring density 3/3 = 1; whole graph 6/7 < 1.
  EXPECT_EQ(c.members, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(c.density, 1.0);
}

TEST(SpadeTest, DWUsesTransactionAmounts) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  Community c = spade.Detect();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(c.density, 10.0);
}

TEST(SpadeTest, FDWeightsByObjectDegree) {
  Spade spade;
  spade.SetSemantics(MakeFD());
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  const auto& g = spade.graph();
  // Every inserted edge weight must equal 1/log(deg(dst) + 5) evaluated at
  // insertion time; all degrees here are small, so weights are in
  // (1/log(11), 1/log(5)].
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    for (const auto& e : g.OutNeighbors(static_cast<VertexId>(v))) {
      EXPECT_GT(e.weight, 1.0 / std::log(11.0));
      EXPECT_LE(e.weight, 1.0 / std::log(5.0));
    }
  }
  EXPECT_FALSE(spade.Detect().members.empty());
}

TEST(SpadeTest, CustomSemanticsViaVSuspESusp) {
  Spade spade;
  spade.VSusp([](VertexId v, const DynamicGraph&) {
    return v == 3 ? 100.0 : 0.0;  // vertex 3 is known-suspicious
  });
  spade.ESusp([](const Edge&, const DynamicGraph&) { return 0.001; });
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  Community c = spade.Detect();
  // The huge prior makes {3} itself the densest subgraph.
  ASSERT_EQ(c.members.size(), 1u);
  EXPECT_EQ(c.members[0], 3u);
  EXPECT_NEAR(c.density, 100.0, 1.0);
}

TEST(SpadeTest, InsertEdgeUpdatesCommunity) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());

  // A new heavier ring {4,5,6} overtakes the old one.
  for (const Edge& e : std::vector<Edge>{
           {4, 5, 40.0, 10}, {5, 6, 40.0, 11}, {6, 4, 40.0, 12}}) {
    auto r = spade.InsertEdge(e);
    ASSERT_TRUE(r.ok());
  }
  Community c = spade.Detect();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{4, 5, 6}));
}

TEST(SpadeTest, InsertMatchesStaticRecompute) {
  Rng rng(404);
  Spade spade;
  spade.SetSemantics(MakeDW());
  std::vector<Edge> initial;
  for (int i = 0; i < 40; ++i) {
    initial.push_back(testing::RandomEdge(&rng, 20));
  }
  ASSERT_TRUE(spade.BuildGraph(20, initial).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(spade.InsertEdge(testing::RandomEdge(&rng, 20)).ok());
    testing::ExpectStateEquals(PeelStatic(spade.graph()),
                               spade.peel_state());
  }
}

TEST(SpadeTest, InsertBatchMatchesStaticRecompute) {
  Rng rng(405);
  Spade spade;
  spade.SetSemantics(MakeDW());
  std::vector<Edge> initial;
  for (int i = 0; i < 40; ++i) {
    initial.push_back(testing::RandomEdge(&rng, 20));
  }
  ASSERT_TRUE(spade.BuildGraph(20, initial).ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 25; ++i) batch.push_back(testing::RandomEdge(&rng, 20));
    ASSERT_TRUE(spade.InsertBatchEdges(batch).ok());
    testing::ExpectStateEquals(PeelStatic(spade.graph()),
                               spade.peel_state());
  }
}

TEST(SpadeTest, DeleteEdgeMatchesStaticRecompute) {
  Rng rng(406);
  Spade spade;
  spade.SetSemantics(MakeDW());
  std::vector<Edge> initial;
  for (int i = 0; i < 30; ++i) {
    initial.push_back(testing::RandomEdge(&rng, 15));
  }
  ASSERT_TRUE(spade.BuildGraph(15, initial).ok());
  for (int i = 0; i < 10; ++i) {
    const Edge& victim = initial[rng.NextBounded(initial.size())];
    const Status s = spade.DeleteEdge(victim.src, victim.dst);
    if (s.ok()) {
      testing::ExpectStateEquals(PeelStatic(spade.graph()),
                                 spade.peel_state());
    }
  }
}

TEST(SpadeTest, LoadGraphFromFile) {
  const std::string path = ::testing::TempDir() + "/spade_load_test.txt";
  ASSERT_TRUE(SaveEdgeList(path, DenseRingLog()).ok());
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.LoadGraph(path).ok());
  EXPECT_EQ(spade.graph().NumVertices(), 7u);
  EXPECT_EQ(spade.graph().NumEdges(), 6u);
  std::remove(path.c_str());
}

TEST(SpadeTest, LoadGraphMissingFileFails) {
  Spade spade;
  EXPECT_FALSE(spade.LoadGraph("/nonexistent/graph.txt").ok());
}

TEST(SpadeTest, RejectsOutOfRangeInitialEdge) {
  Spade spade;
  std::vector<Edge> edges = {{0, 9, 1.0, 0}};
  EXPECT_FALSE(spade.BuildGraph(3, edges).ok());
}

// --- Edge grouping (Algorithm 3) ---

TEST(EdgeGroupingTest, BenignEdgesAreBuffered) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  // g(S_P) = 10; an edge between two degree-1 outsiders with tiny weight
  // cannot lift either endpoint to the community density.
  auto r = spade.InsertEdge({3, 6, 0.5, 20});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(spade.PendingBenignEdges(), 1u);
  // The cached community is returned unchanged (Lemma 4.4).
  Community c = std::move(r).value();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{0, 1, 2}));
}

TEST(EdgeGroupingTest, UrgentEdgeFlushesBuffer) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  ASSERT_TRUE(spade.InsertEdge({3, 6, 0.5, 20}).ok());
  ASSERT_EQ(spade.PendingBenignEdges(), 1u);
  // An edge heavy enough to rival the community is urgent.
  ASSERT_TRUE(spade.InsertEdge({3, 6, 50.0, 21}).ok());
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state());
}

TEST(EdgeGroupingTest, DetectFlushesBuffer) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  ASSERT_TRUE(spade.InsertEdge({3, 6, 0.5, 20}).ok());
  ASSERT_TRUE(spade.InsertEdge({4, 6, 0.5, 21}).ok());
  EXPECT_EQ(spade.PendingBenignEdges(), 2u);
  spade.Detect();
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);
  EXPECT_EQ(spade.graph().NumEdges(), 8u);
  testing::ExpectStateEquals(PeelStatic(spade.graph()), spade.peel_state());
}

TEST(EdgeGroupingTest, BufferCapForcesFlush) {
  SpadeOptions options;
  options.enable_edge_grouping = true;
  options.max_benign_buffer = 3;
  Spade spade(options);
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(10, DenseRingLog()).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        spade.InsertEdge({static_cast<VertexId>(3 + i),
                          static_cast<VertexId>(7 + (i % 3)), 0.01, 0})
            .ok());
  }
  // Buffer held at most 3; the next benign edge cannot extend it.
  ASSERT_TRUE(spade.InsertEdge({5, 8, 0.01, 0}).ok());
  EXPECT_EQ(spade.PendingBenignEdges(), 0u);
}

TEST(EdgeGroupingTest, IsBenignMatchesDefinition41) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  const auto& g = spade.graph();
  const double threshold = spade.peel_state().BestDensity();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Edge e = testing::RandomEdge(&rng, 7, 12);
    const bool benign = spade.IsBenign(e);
    const bool def = g.WeightedDegree(e.src) + e.weight < threshold &&
                     g.WeightedDegree(e.dst) + e.weight < threshold;
    EXPECT_EQ(benign, def) << "edge " << e.src << "->" << e.dst << " w "
                           << e.weight;
  }
}

// Lemma 4.3/4.4: inserting a benign edge never produces a *better* (denser)
// community, and its endpoints stay outside the detected community.
TEST(EdgeGroupingTest, BenignInsertionCannotImproveCommunity) {
  Rng rng(505);
  for (int trial = 0; trial < 20; ++trial) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    spade.TurnOnEdgeGrouping();
    std::vector<Edge> initial;
    for (int i = 0; i < 50; ++i) {
      initial.push_back(testing::RandomEdge(&rng, 15));
    }
    ASSERT_TRUE(spade.BuildGraph(15, initial).ok());
    const double before = spade.peel_state().BestDensity();

    Edge e = testing::RandomEdge(&rng, 15, 1);
    e.weight = 0.125;  // tiny weight: likely benign
    if (!spade.IsBenign(e)) continue;
    ASSERT_TRUE(spade.InsertEdge(e).ok());
    Community after = spade.Detect();  // forces the flush

    const bool endpoints_out =
        std::find(after.members.begin(), after.members.end(), e.src) ==
            after.members.end() &&
        std::find(after.members.begin(), after.members.end(), e.dst) ==
            after.members.end();
    // Lemma 4.4: endpoints outside S_P' or the density did not improve.
    EXPECT_TRUE(endpoints_out || after.density < before + 1e-9);
  }
}

TEST(SpadeTest, CumulativeStatsAccumulate) {
  Spade spade;
  spade.SetSemantics(MakeDG());
  ASSERT_TRUE(spade.BuildGraph(7, DenseRingLog()).ok());
  ASSERT_TRUE(spade.InsertEdge({3, 5, 1.0, 0}).ok());
  ASSERT_TRUE(spade.InsertEdge({4, 6, 1.0, 0}).ok());
  EXPECT_GT(spade.cumulative_stats().affected_vertices, 0u);
  spade.ResetStats();
  EXPECT_EQ(spade.cumulative_stats().affected_vertices, 0u);
}

}  // namespace
}  // namespace spade
