// Tests for dense-subgraph enumeration (Appendix C.2) and the sliding
// time-window detector (Appendix C.3).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/enumeration.h"
#include "core/time_window.h"
#include "metrics/density.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

DynamicGraph TwoRingGraph() {
  // Ring A {0,1,2} heavy, ring B {3,4,5} lighter, a bridge, an outlier 6.
  DynamicGraph g(7);
  EXPECT_TRUE(g.AddEdge(0, 1, 9.0).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 9.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 0, 9.0).ok());
  EXPECT_TRUE(g.AddEdge(3, 4, 4.0).ok());
  EXPECT_TRUE(g.AddEdge(4, 5, 4.0).ok());
  EXPECT_TRUE(g.AddEdge(5, 3, 4.0).ok());
  EXPECT_TRUE(g.AddEdge(2, 3, 0.5).ok());
  return g;
}

TEST(EnumerationTest, FindsBothRingsInDensityOrder) {
  DynamicGraph g = TwoRingGraph();
  EnumerateOptions options;
  options.max_communities = 8;
  options.min_density = 0.1;
  const auto communities = EnumerateDenseSubgraphs(g, options);
  ASSERT_GE(communities.size(), 2u);

  auto sorted = communities[0].members;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(communities[0].density, 9.0);

  sorted = communities[1].members;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(communities[1].density, 4.0);

  // Densities are non-increasing.
  for (std::size_t i = 1; i < communities.size(); ++i) {
    EXPECT_LE(communities[i].density, communities[i - 1].density + 1e-9);
  }
}

TEST(EnumerationTest, CommunitiesAreDisjoint) {
  Rng rng(8);
  DynamicGraph g = testing::RandomGraph(&rng, 40, 150, 6, 0);
  EnumerateOptions options;
  options.max_communities = 6;
  const auto communities = EnumerateDenseSubgraphs(g, options);
  std::set<VertexId> seen;
  for (const auto& c : communities) {
    for (VertexId v : c.members) {
      EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " repeated";
    }
  }
}

TEST(EnumerationTest, RespectsMaxCommunities) {
  Rng rng(9);
  DynamicGraph g = testing::RandomGraph(&rng, 40, 120, 5, 0);
  EnumerateOptions options;
  options.max_communities = 2;
  EXPECT_LE(EnumerateDenseSubgraphs(g, options).size(), 2u);
}

TEST(EnumerationTest, RespectsMinDensity) {
  DynamicGraph g = TwoRingGraph();
  EnumerateOptions options;
  options.min_density = 5.0;  // only ring A qualifies
  const auto communities = EnumerateDenseSubgraphs(g, options);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_DOUBLE_EQ(communities[0].density, 9.0);
}

TEST(EnumerationTest, EmptyGraph) {
  DynamicGraph g;
  EXPECT_TRUE(EnumerateDenseSubgraphs(g, {}).empty());
}

TEST(EnumerationTest, ReportedDensityMatchesDefinition) {
  Rng rng(10);
  DynamicGraph g = testing::RandomGraph(&rng, 30, 100, 5, 1);
  const auto communities = EnumerateDenseSubgraphs(g, {});
  ASSERT_FALSE(communities.empty());
  // The first community is measured on the full graph.
  EXPECT_NEAR(communities[0].density,
              SubgraphDensity(g, communities[0].members), 1e-9);
}

// --- Time-window detection (Appendix C.3) ---

TEST(TimeWindowTest, ExpiresOldEdges) {
  TimeWindowDetector detector(5, /*window_span=*/100, MakeDW());
  ASSERT_TRUE(detector.Offer({0, 1, 5.0, 10}).ok());
  ASSERT_TRUE(detector.Offer({1, 2, 5.0, 50}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 2u);
  // ts=160 pushes the horizon to 60: the first two edges expire.
  ASSERT_TRUE(detector.Offer({2, 3, 5.0, 160}).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 1u);
  EXPECT_EQ(detector.graph().NumEdges(), 1u);
}

TEST(TimeWindowTest, RejectsOutOfOrderTimestamps) {
  TimeWindowDetector detector(5, 100, MakeDW());
  ASSERT_TRUE(detector.Offer({0, 1, 1.0, 50}).ok());
  EXPECT_FALSE(detector.Offer({1, 2, 1.0, 40}).ok());
}

TEST(TimeWindowTest, RejectsUnknownVertices) {
  TimeWindowDetector detector(3, 100, MakeDW());
  EXPECT_FALSE(detector.Offer({0, 9, 1.0, 1}).ok());
}

TEST(TimeWindowTest, DetectsCurrentWindowCommunity) {
  TimeWindowDetector detector(8, /*window_span=*/1000, MakeDW());
  // Burst A at t=0..2, burst B at t=2000..2002 (A expired by then).
  for (const Edge& e : std::vector<Edge>{
           {0, 1, 9.0, 0}, {1, 2, 9.0, 1}, {2, 0, 9.0, 2}}) {
    ASSERT_TRUE(detector.Offer(e).ok());
  }
  Community c = detector.Detect();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{0, 1, 2}));

  for (const Edge& e : std::vector<Edge>{
           {4, 5, 6.0, 2000}, {5, 6, 6.0, 2001}, {6, 4, 6.0, 2002}}) {
    ASSERT_TRUE(detector.Offer(e).ok());
  }
  c = detector.Detect();
  std::sort(c.members.begin(), c.members.end());
  EXPECT_EQ(c.members, (std::vector<VertexId>{4, 5, 6}));
  EXPECT_EQ(detector.graph().NumEdges(), 3u);
}

TEST(TimeWindowTest, WindowStateMatchesStaticPeelOfWindowGraph) {
  Rng rng(99);
  TimeWindowDetector detector(12, /*window_span=*/64, MakeDW());
  Timestamp ts = 0;
  for (int i = 0; i < 200; ++i) {
    ts += rng.NextBounded(10);
    Edge e = testing::RandomEdge(&rng, 12);
    e.ts = ts;
    ASSERT_TRUE(detector.Offer(e).ok());
    testing::ExpectStateEquals(PeelStatic(detector.graph()),
                               detector.peel_state());
  }
}

TEST(TimeWindowTest, AdvanceToDrainsEverything) {
  TimeWindowDetector detector(4, 10, MakeDG());
  ASSERT_TRUE(detector.Offer({0, 1, 1.0, 0}).ok());
  ASSERT_TRUE(detector.Offer({1, 2, 1.0, 5}).ok());
  ASSERT_TRUE(detector.AdvanceTo(1000).ok());
  EXPECT_EQ(detector.WindowEdgeCount(), 0u);
  EXPECT_EQ(detector.graph().NumEdges(), 0u);
}

}  // namespace
}  // namespace spade
