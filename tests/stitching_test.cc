// Cross-shard stitching: the sharded-vs-merged differential suite.
//
//  * Differential: seeded randomized streams (same generator shape as
//    differential_test.cc, insert-only since the service has no delete
//    path) driven into a stitched ShardedDetectionService at 2/4/8 shards
//    AND into one single-shard DetectionService; the stitched global
//    community's density must match the merged detector's within
//    tie-exactness — including streams whose densest community is entirely
//    cross-shard (every one of its edges is a boundary edge).
//  * Routing property: for hash, tenant and an adversarial
//    round-robin-by-edge partitioner, every submitted edge lands in exactly
//    one shard's detector, plus the boundary index iff its endpoints' home
//    shards differ (the double-count/drop seam).
//  * Tenant regression: a cross-tenant ring used to be silently routed into
//    the source tenant's shard with no record; it must now be recorded and
//    detected by the stitch pass, surviving save/restore.
//
// The randomized differentials are labeled `stress` in ctest and run in a
// dedicated CI matrix leg under ASan and TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/dynamic_graph.h"
#include "metrics/density.h"
#include "metrics/semantics.h"
#include "service/detection_service.h"
#include "service/sharded_detection_service.h"

namespace spade {
namespace {

// ------------------------------------------------------------------------
// Stream generators (differential_test.cc's shape, insert-only).
// ------------------------------------------------------------------------

/// Uniform background edge over [0, n) with a continuous weight, so peeling
/// ties are singleton and the merged-vs-stitched comparison is not at the
/// mercy of tie-break order across two different peels.
Edge BackgroundEdge(Rng* rng, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{s, d, 0.5 + 5.0 * rng->NextDouble(), 0};
}

/// Appends `edges` heavy ring edges over `ring` (consecutive pairs, cycled)
/// to `stream`, starting at `at`.
void InjectRing(std::vector<Edge>* stream, std::size_t at,
                const std::vector<VertexId>& ring, std::size_t edges,
                double weight, Rng* rng) {
  for (std::size_t i = 0; i < edges; ++i) {
    const VertexId s = ring[i % ring.size()];
    const VertexId d = ring[(i + 1) % ring.size()];
    stream->insert(
        stream->begin() + static_cast<std::ptrdiff_t>(
                              std::min(at + i, stream->size())),
        Edge{s, d, weight * (0.9 + 0.2 * rng->NextDouble()), 0});
  }
}

std::vector<Spade> BuildEmptyShards(std::size_t num_shards, std::size_t n) {
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
    shards.push_back(std::move(spade));
  }
  return shards;
}

Spade BuildMergedDetector(std::size_t n) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  EXPECT_TRUE(spade.BuildGraph(n, {}).ok());
  return spade;
}

/// Drives the stream into the service with a mix of per-edge and batched
/// submission (both paths must record boundary edges identically).
void SubmitAll(ShardedDetectionService* service,
               const std::vector<Edge>& stream) {
  std::size_t i = 0;
  while (i < stream.size()) {
    if (i % 3 == 0) {
      ASSERT_TRUE(service->Submit(stream[i]).ok());
      ++i;
    } else {
      const std::size_t len = std::min<std::size_t>(37, stream.size() - i);
      ASSERT_TRUE(
          service
              ->SubmitBatch(std::span<const Edge>(stream.data() + i, len))
              .ok());
      i += len;
    }
  }
}

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------------------------
// Differential suite: stitched sharded service vs one merged detector.
// ------------------------------------------------------------------------

class StitchDifferentialTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StitchDifferentialTest, StitchedDensityMatchesMergedDetector) {
  const std::size_t num_shards = GetParam();
  Rng rng(1300 + num_shards);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 64 + rng.NextBounded(64);

    // Hash-routed service over empty detectors; the whole stream goes
    // through the router so the boundary index sees every cross-home edge.
    ShardedDetectionServiceOptions options;
    options.partitioner = HashOfSourcePartitioner();
    ShardedDetectionService service(BuildEmptyShards(num_shards, n), nullptr,
                                    options);

    // Random background plus one dominant ring at random ids (whatever
    // homes the hash assigns them) — the community every detector must
    // agree on.
    std::vector<Edge> stream;
    for (std::size_t i = 0; i < 12 * n; ++i) {
      stream.push_back(BackgroundEdge(&rng, n));
    }
    std::vector<VertexId> ring;
    while (ring.size() < 6) {
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (std::find(ring.begin(), ring.end(), v) == ring.end()) {
        ring.push_back(v);
      }
    }
    InjectRing(&stream, stream.size() / 3, ring, 120, 50.0, &rng);

    SubmitAll(&service, stream);
    service.Drain();
    const GlobalCommunity stitched = service.StitchNow();

    // Merged reference: the same stream through one single-shard service.
    DetectionService merged_service(BuildMergedDetector(n), nullptr);
    for (const Edge& e : stream) ASSERT_TRUE(merged_service.Submit(e).ok());
    merged_service.Drain();
    const Community merged = merged_service.CurrentCommunity();

    EXPECT_NEAR(stitched.density, merged.density, 1e-9)
        << "shards=" << num_shards << " trial=" << trial;
    EXPECT_EQ(Sorted(stitched.members), Sorted(merged.members))
        << "shards=" << num_shards << " trial=" << trial;
    for (const VertexId v : ring) {
      EXPECT_NE(std::find(stitched.members.begin(), stitched.members.end(),
                          v),
                stitched.members.end());
    }

    // The stitched read mode serves the same answer, lock-free.
    const Community read =
        service.CurrentCommunity(
            ShardedDetectionService::GlobalReadMode::kStitched);
    EXPECT_NEAR(read.density, merged.density, 1e-9);

    // Exactness from definition: the stitched density equals g(S) of the
    // stitched member set on a merged graph of the whole stream (DW edge
    // suspiciousness is the raw weight, so AddEdge reproduces it).
    DynamicGraph merged_graph(n);
    for (const Edge& e : stream) {
      merged_graph.EnsureVertices(std::max(e.src, e.dst) + 1);
      ASSERT_TRUE(merged_graph.AddEdge(e.src, e.dst, e.weight).ok());
    }
    EXPECT_NEAR(SubgraphDensity(merged_graph, stitched.members),
                stitched.density, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, StitchDifferentialTest,
                         ::testing::Values(2u, 4u, 8u));

// The blind spot the stitch exists for: a community whose EVERY edge is a
// boundary edge. Ring vertices alternate between home-shard pools, so no
// single shard ever holds two consecutive members' edge.
TEST_P(StitchDifferentialTest, EntirelyCrossShardCommunityIsStitched) {
  const std::size_t num_shards = GetParam();
  const std::size_t n = 128;
  Rng rng(7100 + num_shards);

  ShardedDetectionServiceOptions options;
  options.partitioner = HashOfSourcePartitioner();
  ShardedDetectionService service(BuildEmptyShards(num_shards, n), nullptr,
                                  options);

  // Two pools by home shard; alternating between them makes every
  // consecutive ring pair cross-home.
  std::vector<VertexId> pool_a, pool_b;
  for (VertexId v = 0; v < n; ++v) {
    if (service.HomeShardOf(v) == 0) {
      pool_a.push_back(v);
    } else if (service.HomeShardOf(v) == 1) {
      pool_b.push_back(v);
    }
  }
  ASSERT_GE(pool_a.size(), 3u);
  ASSERT_GE(pool_b.size(), 3u);
  std::vector<VertexId> ring;
  for (int i = 0; i < 3; ++i) {
    ring.push_back(pool_a[static_cast<std::size_t>(i)]);
    ring.push_back(pool_b[static_cast<std::size_t>(i)]);
  }

  std::vector<Edge> stream;
  for (std::size_t i = 0; i < 8 * n; ++i) {
    stream.push_back(BackgroundEdge(&rng, n));
  }
  InjectRing(&stream, stream.size() / 2, ring, 120, 50.0, &rng);

  SubmitAll(&service, stream);
  service.Drain();

  // Every ring edge crossed homes, so all 120 are indexed (plus whatever
  // the background contributed).
  EXPECT_GE(service.GetStats().boundary_edges, 120u);

  // The per-shard argmax cannot see the ring's full density: no shard holds
  // more than a fraction of its edges.
  const Community argmax = service.CurrentCommunity();

  const GlobalCommunity stitched = service.StitchNow();
  EXPECT_TRUE(stitched.stitched);
  EXPECT_GT(stitched.density, argmax.density);
  EXPECT_GE(stitched.shards.size(), 2u);
  for (const VertexId v : ring) {
    EXPECT_NE(
        std::find(stitched.members.begin(), stitched.members.end(), v),
        stitched.members.end());
  }

  // Merged reference agrees exactly.
  DetectionService merged_service(BuildMergedDetector(n), nullptr);
  for (const Edge& e : stream) ASSERT_TRUE(merged_service.Submit(e).ok());
  merged_service.Drain();
  const Community merged = merged_service.CurrentCommunity();
  EXPECT_NEAR(stitched.density, merged.density, 1e-9);
  EXPECT_EQ(Sorted(stitched.members), Sorted(merged.members));
}

// ------------------------------------------------------------------------
// Routing property: exactly one detector, boundary index iff cross-home.
// ------------------------------------------------------------------------

struct NamedPartitioner {
  const char* name;
  Partitioner partitioner;
};

std::vector<NamedPartitioner> PartitionersUnderTest() {
  std::vector<NamedPartitioner> out;
  out.push_back({"hash", HashOfSourcePartitioner()});
  out.push_back({"tenant", TenantPartitioner(16)});
  // Adversarial round-robin-by-edge: routing ignores the endpoints
  // entirely, so routed-shard and home-shard disagree almost always. Homes
  // still come from a well-defined vertex function (required: boundary
  // detection is a statement about homes, not about where an edge landed).
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  out.push_back(
      {"round-robin",
       Partitioner(
           [counter](const Edge&) {
             return counter->fetch_add(1, std::memory_order_relaxed);
           },
           [](VertexId v) -> std::size_t { return v % 3; })});
  return out;
}

TEST(RoutingPropertyTest, ExactlyOneDetectorAndBoundaryIffCrossHome) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kVertices = 96;
  for (auto& [name, partitioner] : PartitionersUnderTest()) {
    Rng rng(555);
    ShardedDetectionServiceOptions options;
    options.partitioner = partitioner;
    ShardedDetectionService service(BuildEmptyShards(kShards, kVertices),
                                    nullptr, options);

    std::vector<Edge> stream;
    for (int i = 0; i < 600; ++i) {
      stream.push_back(BackgroundEdge(&rng, kVertices));
    }
    SubmitAll(&service, stream);
    service.Drain();

    std::uint64_t expected_boundary = 0;
    for (const Edge& e : stream) {
      if (service.HomeShardOf(e.src) != service.HomeShardOf(e.dst)) {
        ++expected_boundary;
      }
    }

    const ShardedServiceStats stats = service.GetStats();
    std::uint64_t landed = 0;
    for (const std::uint64_t per_shard : stats.shard_edges) {
      landed += per_shard;
    }
    // Exactly once in a detector...
    EXPECT_EQ(landed, stream.size()) << name;
    // ...plus the boundary index iff the endpoints' homes differ.
    EXPECT_EQ(stats.boundary_edges, expected_boundary) << name;
    EXPECT_GT(expected_boundary, 0u) << name;

    // The indexed edges are exactly the cross-home subset (multiset).
    std::vector<Edge> indexed = service.boundary_index().SnapshotEdges();
    EXPECT_EQ(indexed.size(), expected_boundary) << name;
    for (const Edge& e : indexed) {
      EXPECT_NE(service.HomeShardOf(e.src), service.HomeShardOf(e.dst))
          << name;
    }
    service.Stop();
  }
}

TEST(RoutingPropertyTest, BuiltInPartitionersRouteToSourceHome) {
  constexpr std::size_t kShards = 4;
  for (auto& [name, partitioner] : PartitionersUnderTest()) {
    if (std::string_view(name) == "round-robin") continue;
    ShardedDetectionServiceOptions options;
    options.partitioner = partitioner;
    ShardedDetectionService service(BuildEmptyShards(kShards, 64), nullptr,
                                    options);
    Rng rng(99);
    for (int i = 0; i < 100; ++i) {
      const Edge e = BackgroundEdge(&rng, 64);
      EXPECT_EQ(service.ShardOf(e), service.HomeShardOf(e.src)) << name;
    }
  }
}

// ------------------------------------------------------------------------
// Tenant regression: cross-tenant edges are recorded and stitchable.
// ------------------------------------------------------------------------

constexpr VertexId kVerticesPerTenant = 64;

TEST(TenantStitchingTest, CrossTenantRingIsRecordedAndDetected) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(2024);

  std::mutex alert_mutex;
  std::vector<GlobalCommunity> stitch_alerts;
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.stitch.on_stitch_alert = [&](const GlobalCommunity& g) {
    std::lock_guard<std::mutex> lock(alert_mutex);
    stitch_alerts.push_back(g);
  };
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  // Intra-tenant background in both tenants.
  std::vector<Edge> stream;
  for (int i = 0; i < 400; ++i) {
    const auto base = static_cast<VertexId>((i % 2) * kVerticesPerTenant);
    Edge e = BackgroundEdge(&rng, kVerticesPerTenant);
    e.src += base;
    e.dst += base;
    stream.push_back(e);
  }
  // A collusion ring alternating between tenant 0 and tenant 1 accounts:
  // every ring edge is cross-tenant.
  const std::vector<VertexId> ring = {
      10, static_cast<VertexId>(kVerticesPerTenant + 10),
      11, static_cast<VertexId>(kVerticesPerTenant + 11),
      12, static_cast<VertexId>(kVerticesPerTenant + 12)};
  InjectRing(&stream, stream.size() / 2, ring, 90, 40.0, &rng);

  SubmitAll(&service, stream);
  service.Drain();

  // The fix under regression: before it, these 90 edges were routed into
  // the source tenant's shard with no record anywhere.
  EXPECT_EQ(service.GetStats().boundary_edges, 90u);

  const Community argmax = service.CurrentCommunity();
  const GlobalCommunity stitched = service.StitchNow();
  EXPECT_TRUE(stitched.stitched);
  EXPECT_GT(stitched.density, argmax.density);
  EXPECT_EQ(stitched.shards, (std::vector<std::size_t>{0, 1}));
  for (const VertexId v : ring) {
    EXPECT_NE(
        std::find(stitched.members.begin(), stitched.members.end(), v),
        stitched.members.end());
  }
  {
    std::lock_guard<std::mutex> lock(alert_mutex);
    ASSERT_EQ(stitch_alerts.size(), 1u);
    EXPECT_EQ(stitch_alerts[0].shards, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(Sorted(stitch_alerts[0].members), Sorted(stitched.members));
  }

  // Merged reference: the ring's density is exactly what one detector over
  // everything reports.
  DetectionService merged_service(BuildMergedDetector(n), nullptr);
  for (const Edge& e : stream) ASSERT_TRUE(merged_service.Submit(e).ok());
  merged_service.Drain();
  EXPECT_NEAR(stitched.density, merged_service.CurrentCommunity().density,
              1e-9);

  // Save/restore round-trips the boundary index; the restored fleet
  // re-stitches the same ring without replaying the stream.
  const std::string dir = ::testing::TempDir() + "/stitching_snapshot";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(service.SaveState(dir).ok());
  service.Stop();

  ShardedDetectionServiceOptions restore_options;
  restore_options.partitioner = TenantPartitioner(kVerticesPerTenant);
  ShardedDetectionService restored(BuildEmptyShards(kShards, n), nullptr,
                                   restore_options);
  ASSERT_TRUE(restored.RestoreState(dir).ok());
  EXPECT_EQ(restored.GetStats().boundary_edges, 90u);
  const GlobalCommunity restitched = restored.StitchNow();
  EXPECT_TRUE(restitched.stitched);
  EXPECT_NEAR(restitched.density, stitched.density, 1e-9);
  EXPECT_EQ(Sorted(restitched.members), Sorted(stitched.members));
  std::filesystem::remove_all(dir);
}

// A background stitcher publishes without any explicit StitchNow call.
TEST(TenantStitchingTest, PeriodicStitcherPublishes) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(77);
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.stitch.interval_ms = 5;
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  std::vector<Edge> stream;
  const std::vector<VertexId> ring = {
      3, static_cast<VertexId>(kVerticesPerTenant + 3),
      4, static_cast<VertexId>(kVerticesPerTenant + 4)};
  InjectRing(&stream, 0, ring, 60, 30.0, &rng);
  SubmitAll(&service, stream);
  service.Drain();

  // Wait (bounded) for the stitcher to observe the drained state.
  GlobalCommunity g;
  for (int i = 0; i < 500; ++i) {
    g = service.CurrentGlobalCommunity();
    if (g.stitched) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(g.stitched);
  EXPECT_GE(service.GetStats().stitch_passes, 1u);
  service.Stop();
}

// ------------------------------------------------------------------------
// Message-driven stitching: triggers, truncation, expiry, compaction.
// ------------------------------------------------------------------------

// Regression: a single-shard service with interval_ms > 0 used to never
// start the stitcher (silently: stitch_passes stayed 0 and a kStitched
// read never carried provenance). It must behave as the 1-shard member of
// the sharded family: passes run, the published global community is the
// shard's own argmax with shards == {0}.
TEST(MessageDrivenStitchingTest, SingleShardIntervalStitches) {
  Rng rng(501);
  ShardedDetectionServiceOptions options;
  options.stitch.interval_ms = 5;
  ShardedDetectionService service(BuildEmptyShards(1, 64), nullptr, options);

  std::vector<Edge> stream;
  const std::vector<VertexId> ring = {7, 8, 9};
  InjectRing(&stream, 0, ring, 60, 30.0, &rng);
  SubmitAll(&service, stream);
  service.Drain();

  GlobalCommunity g;
  for (int i = 0; i < 500; ++i) {
    g = service.CurrentGlobalCommunity();
    if (g.stitch_pass >= 1 && !g.members.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(service.GetStats().stitch_passes, 1u);
  EXPECT_GE(g.stitch_pass, 1u);
  EXPECT_FALSE(g.stitched);  // one shard: the argmax republished, tagged
  EXPECT_EQ(g.shards, (std::vector<std::size_t>{0}));
  EXPECT_NEAR(g.density, service.CurrentCommunity().density, 1e-12);
  service.Stop();
}

// Event-driven freshness: with interval_ms == 0 and a trigger threshold,
// the cross-shard ring must become visible through
// CurrentGlobalCommunity() without any timer to wait out — the workers'
// weight deltas wake the stitcher the moment the seam accumulates enough.
TEST(MessageDrivenStitchingTest, TriggerWakesStitcherWithoutTimer) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(502);
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.stitch.interval_ms = 0;        // no timer at all
  options.stitch.trigger_weight = 50.0;  // a few ring edges cross this
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  std::vector<Edge> stream;
  const std::vector<VertexId> ring = {
      5, static_cast<VertexId>(kVerticesPerTenant + 5),
      6, static_cast<VertexId>(kVerticesPerTenant + 6)};
  InjectRing(&stream, 0, ring, 80, 30.0, &rng);
  SubmitAll(&service, stream);
  service.Drain();

  GlobalCommunity g;
  for (int i = 0; i < 500; ++i) {
    g = service.CurrentGlobalCommunity();
    if (g.stitched) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const ShardedServiceStats stats = service.GetStats();
  EXPECT_TRUE(g.stitched);
  EXPECT_GE(stats.stitch_triggers, 1u);
  EXPECT_GE(stats.stitch_passes, 1u);
  EXPECT_EQ(g.shards, (std::vector<std::size_t>{0, 1}));
  // The differential anchor: the triggered pass is exact, not heuristic.
  DetectionService merged(BuildMergedDetector(n), nullptr);
  for (const Edge& e : stream) ASSERT_TRUE(merged.Submit(e).ok());
  merged.Drain();
  EXPECT_NEAR(g.density, merged.CurrentCommunity().density, 1e-9);
  service.Stop();
}

// Regression: StitchNow used to truncate the seam candidate set at
// max_seam_vertices silently. The pass must now report the truncation on
// its result and in the service stats, and the background stitcher must
// escalate a truncated triggered pass to an unbounded one so the
// published density still converges to the merged answer.
TEST(MessageDrivenStitchingTest, SeamTruncationIsReportedAndEscalated) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(503);

  // Many distinct boundary vertices (every cross-tenant pair once) so a
  // tiny budget must drop candidates.
  std::vector<Edge> stream;
  for (VertexId v = 0; v < 40; ++v) {
    stream.push_back(Edge{v, static_cast<VertexId>(kVerticesPerTenant + v),
                          5.0 + 0.1 * static_cast<double>(v), 0});
  }
  const std::vector<VertexId> ring = {
      2, static_cast<VertexId>(kVerticesPerTenant + 2),
      3, static_cast<VertexId>(kVerticesPerTenant + 3)};
  InjectRing(&stream, stream.size(), ring, 60, 30.0, &rng);

  {
    ShardedDetectionServiceOptions options;
    options.partitioner = TenantPartitioner(kVerticesPerTenant);
    options.stitch.max_seam_vertices = 2;  // binding: << 80 candidates
    ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                    options);
    SubmitAll(&service, stream);
    service.Drain();
    const GlobalCommunity g = service.StitchNow();
    EXPECT_TRUE(g.seam_truncated);
    EXPECT_GE(service.GetStats().seam_truncated, 1u);
  }
  {
    // Same workload through the trigger-driven stitcher: it runs the
    // budgeted pass, sees the truncation, and retries unbounded — the
    // eventual published density matches the merged detector exactly.
    ShardedDetectionServiceOptions options;
    options.partitioner = TenantPartitioner(kVerticesPerTenant);
    options.stitch.max_seam_vertices = 2;
    options.stitch.trigger_weight = 50.0;
    ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                    options);
    SubmitAll(&service, stream);
    service.Drain();
    DetectionService merged(BuildMergedDetector(n), nullptr);
    for (const Edge& e : stream) ASSERT_TRUE(merged.Submit(e).ok());
    merged.Drain();
    const double want = merged.CurrentCommunity().density;
    GlobalCommunity g;
    for (int i = 0; i < 500; ++i) {
      g = service.CurrentGlobalCommunity();
      if (g.stitched && std::abs(g.density - want) < 1e-9) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(g.stitched);
    EXPECT_NEAR(g.density, want, 1e-9);
    EXPECT_GE(service.GetStats().seam_truncated, 1u);
    service.Stop();
  }
}

// Regression for the "inserts only ⇒ density only grows" fast path in
// CurrentGlobalCommunity: after a window-expiry retire pass shrinks a
// contributing shard, a stitched read must fall back to the live argmax
// instead of serving the stale (now overstated) stitched snapshot.
TEST(MessageDrivenStitchingTest, RetiredSeamIsNotServedStale) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(504);
  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.window.span = 10'000;
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  // Old cross-tenant ring at ts 100, newer intra-tenant background at
  // ts 500 (all inside the window so nothing expires during ingest).
  std::vector<Edge> stream;
  const std::vector<VertexId> ring = {
      8, static_cast<VertexId>(kVerticesPerTenant + 8),
      9, static_cast<VertexId>(kVerticesPerTenant + 9)};
  InjectRing(&stream, 0, ring, 60, 30.0, &rng);
  for (Edge& e : stream) e.ts = 100;
  for (int i = 0; i < 200; ++i) {
    Edge e = BackgroundEdge(&rng, kVerticesPerTenant);
    e.ts = 500;
    stream.push_back(e);
  }
  SubmitAll(&service, stream);
  service.Drain();

  const GlobalCommunity before = service.StitchNow();
  ASSERT_TRUE(before.stitched);
  ASSERT_GT(before.density, 0.0);

  // Expire the ring. The retire pass announces itself before deleting
  // (and again after), so by the time the deletions land the stitched
  // snapshot is already dropped.
  ASSERT_TRUE(service.RetireOlderThan(200).ok());
  service.Drain();

  const GlobalCommunity after = service.CurrentGlobalCommunity();
  const Community argmax = service.CurrentCommunity(
      ShardedDetectionService::GlobalReadMode::kArgmax);
  EXPECT_LT(after.density, before.density);
  EXPECT_NEAR(after.density, argmax.density, 1e-12);
  EXPECT_FALSE(after.stitched);
  EXPECT_GE(service.GetStats().retired_edges, 60u);
}

// Compaction: after a stitch pass folds the queues, consumed raw edges
// collapse into per-vertex weight blocks — totals, save/restore and
// re-stitching stay exact, and the resident footprint drops well below
// the uncompacted build of the same history.
TEST(MessageDrivenStitchingTest, CompactedBoundarySaveRestoreExact) {
  constexpr std::size_t kShards = 2;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(505);

  std::vector<Edge> stream;
  const std::vector<VertexId> ring = {
      10, static_cast<VertexId>(kVerticesPerTenant + 10),
      11, static_cast<VertexId>(kVerticesPerTenant + 11),
      12, static_cast<VertexId>(kVerticesPerTenant + 12)};
  InjectRing(&stream, 0, ring, 300, 20.0, &rng);

  const auto build = [&](bool compact) {
    ShardedDetectionServiceOptions options;
    options.partitioner = TenantPartitioner(kVerticesPerTenant);
    options.stitch.compact_boundary = compact;
    return options;
  };

  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  build(true));
  SubmitAll(&service, stream);
  service.Drain();
  const GlobalCommunity stitched = service.StitchNow();
  ASSERT_TRUE(stitched.stitched);

  const ShardedServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.boundary_edges, 300u);  // totals survive compaction
  EXPECT_GE(stats.boundary_compacted_edges, 200u);
  EXPECT_EQ(stats.boundary_unconsumed_edges, 0u);

  // A/B the resident footprint against the same history uncompacted.
  ShardedDetectionService raw_service(BuildEmptyShards(kShards, n), nullptr,
                                      build(false));
  SubmitAll(&raw_service, stream);
  raw_service.Drain();
  (void)raw_service.StitchNow();
  const ShardedServiceStats raw_stats = raw_service.GetStats();
  EXPECT_EQ(raw_stats.boundary_compacted_edges, 0u);
  EXPECT_LE(stats.boundary_resident_bytes,
            raw_stats.boundary_resident_bytes / 2);

  // Save after compaction (a format-2 base), restore, and re-stitch: the
  // compacted index must reproduce the exact stitched answer.
  const std::string dir = ::testing::TempDir() + "/compacted_boundary";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(service.SaveState(dir).ok());
  service.Stop();

  ShardedDetectionService restored(BuildEmptyShards(kShards, n), nullptr,
                                   build(true));
  ASSERT_TRUE(restored.RestoreState(dir).ok());
  EXPECT_EQ(restored.GetStats().boundary_edges, 300u);
  const GlobalCommunity restitched = restored.StitchNow();
  EXPECT_TRUE(restitched.stitched);
  EXPECT_NEAR(restitched.density, stitched.density, 1e-9);
  EXPECT_EQ(Sorted(restitched.members), Sorted(stitched.members));
  std::filesystem::remove_all(dir);
}

// Per-pair trigger overrides: with the fleet-wide trigger_weight unset, an
// override on pair {0, 1} arms the stitcher for that seam alone. The same
// ring traffic on the non-overridden pair {0, 2} must accumulate weight
// silently and never wake anything.
TEST(MessageDrivenStitchingTest, PairOverrideArmsOnlyItsPair) {
  constexpr std::size_t kShards = 3;
  const std::size_t n = kShards * kVerticesPerTenant;

  auto build = [&] {
    ShardedDetectionServiceOptions options;
    options.partitioner = TenantPartitioner(kVerticesPerTenant);
    options.stitch.interval_ms = 0;     // no timer
    options.stitch.trigger_weight = 0;  // fleet-wide trigger unset...
    options.stitch.pair_trigger_overrides.push_back({0, 1, 50.0});  // ...
    return options;                     // but {0, 1} armed on its own
  };
  auto ring_across = [&](std::size_t other_tenant) {
    Rng rng(611);
    std::vector<Edge> stream;
    const std::vector<VertexId> ring = {
        5, static_cast<VertexId>(other_tenant * kVerticesPerTenant + 5),
        6, static_cast<VertexId>(other_tenant * kVerticesPerTenant + 6)};
    InjectRing(&stream, 0, ring, 80, 30.0, &rng);
    return stream;
  };

  {
    // Ring across the overridden pair: the trigger fires with no timer.
    ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                    build());
    const std::vector<Edge> stream = ring_across(1);
    SubmitAll(&service, stream);
    service.Drain();
    GlobalCommunity g;
    for (int i = 0; i < 500; ++i) {
      g = service.CurrentGlobalCommunity();
      if (g.stitched) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(g.stitched);
    EXPECT_GE(service.GetStats().stitch_triggers, 1u);
    DetectionService merged(BuildMergedDetector(n), nullptr);
    for (const Edge& e : stream) ASSERT_TRUE(merged.Submit(e).ok());
    merged.Drain();
    EXPECT_NEAR(g.density, merged.CurrentCommunity().density, 1e-9);
    service.Stop();
  }
  {
    // Same ring weight across {0, 2}: no override, fleet trigger unset —
    // the boundary index records the seam but the stitcher never wakes.
    ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                    build());
    SubmitAll(&service, ring_across(2));
    service.Drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const ShardedServiceStats stats = service.GetStats();
    EXPECT_EQ(stats.stitch_triggers, 0u);
    EXPECT_EQ(stats.stitch_passes, 0u);
    EXPECT_GT(stats.boundary_edges, 0u);  // the seam IS recorded
    service.Stop();
  }
}

// A weight <= 0 override DISARMS one pair under a fleet-wide trigger: the
// muted seam accumulates weight without waking the stitcher, while any
// other pair still fires at the fleet threshold.
TEST(MessageDrivenStitchingTest, PairOverrideCanMuteOnePair) {
  constexpr std::size_t kShards = 3;
  const std::size_t n = kShards * kVerticesPerTenant;
  Rng rng(613);

  ShardedDetectionServiceOptions options;
  options.partitioner = TenantPartitioner(kVerticesPerTenant);
  options.stitch.interval_ms = 0;
  options.stitch.trigger_weight = 50.0;
  options.stitch.pair_trigger_overrides.push_back({0, 1, 0.0});  // muted
  ShardedDetectionService service(BuildEmptyShards(kShards, n), nullptr,
                                  options);

  // Heavy traffic on the muted pair first: must not trigger.
  std::vector<Edge> muted;
  const std::vector<VertexId> muted_ring = {
      5, static_cast<VertexId>(kVerticesPerTenant + 5),
      6, static_cast<VertexId>(kVerticesPerTenant + 6)};
  InjectRing(&muted, 0, muted_ring, 80, 30.0, &rng);
  SubmitAll(&service, muted);
  service.Drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(service.GetStats().stitch_triggers, 0u);

  // The non-overridden pair {0, 2} still fires at the fleet threshold.
  std::vector<Edge> live;
  const std::vector<VertexId> live_ring = {
      7, static_cast<VertexId>(2 * kVerticesPerTenant + 7),
      8, static_cast<VertexId>(2 * kVerticesPerTenant + 8)};
  InjectRing(&live, 0, live_ring, 80, 30.0, &rng);
  SubmitAll(&service, live);
  service.Drain();
  GlobalCommunity g;
  for (int i = 0; i < 500; ++i) {
    g = service.CurrentGlobalCommunity();
    if (g.stitched) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(g.stitched);
  EXPECT_GE(service.GetStats().stitch_triggers, 1u);
  service.Stop();
}

}  // namespace
}  // namespace spade
