// Randomized differential tests for the incremental update hot path:
//
//  * mixed InsertEdge / InsertBatchEdges / DeleteEdge streams (with
//    new-vertex edges and parallel edges) driven through the Spade facade
//    under all three built-in semantics, asserting the reordered PeelState
//    equals a from-scratch PeelStatic of the final weighted graph exactly,
//  * the O(1) stored-delta gray recovery against the legacy from-graph
//    recomputation it replaced (both must produce identical states),
//  * PeelState's blocked suffix-sum / hull detection against the naive
//    linear suffix scan, under Assign/BumpDelta churn and head insertions,
//  * epoch wrap-around in the engine's stamp arrays.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/incremental_engine.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "peel/static_peeler.h"
#include "tests/test_util.h"

namespace spade {
namespace {

using testing::ExpectStateEquals;
using testing::RandomGraph;
using testing::ValidateCanonicalSequence;

// ------------------------------------------------------------------------
// Mixed update streams through the Spade facade, all three semantics.
// ------------------------------------------------------------------------

class MixedStreamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MixedStreamTest, IncrementalMatchesStaticAfterEveryUpdate) {
  const std::string algo = GetParam();
  // Seed off the name's content, not its length, so each semantics replays
  // a distinct stream shape.
  Rng rng(990 + static_cast<std::uint64_t>(algo[0]) * 31 +
          static_cast<std::uint64_t>(algo[1]));
  for (int trial = 0; trial < 8; ++trial) {
    std::size_t n = 4 + rng.NextBounded(16);
    Spade spade;
    spade.SetSemantics(MakeSemanticsByName(algo));

    std::vector<Edge> initial;
    for (std::size_t i = 0; i < 2 * n; ++i) {
      auto s = static_cast<VertexId>(rng.NextBounded(n));
      auto d = static_cast<VertexId>(rng.NextBounded(n));
      while (d == s) d = static_cast<VertexId>(rng.NextBounded(n));
      initial.push_back(
          {s, d, static_cast<double>(1 + rng.NextBounded(5)), 0});
    }
    ASSERT_TRUE(spade.BuildGraph(n, initial).ok());
    std::vector<Edge> live = initial;

    for (int step = 0; step < 40; ++step) {
      const std::uint64_t dice = rng.NextBounded(10);
      if (dice < 4) {
        // Single insertion; 1-in-4 of these targets a brand-new vertex id
        // (exercising head insertion), and duplicates of live edges create
        // parallel copies.
        Edge e;
        if (rng.NextBool(0.25)) {
          e.src = static_cast<VertexId>(n + rng.NextBounded(3));
          e.dst = static_cast<VertexId>(rng.NextBounded(n));
          n = std::max<std::size_t>(n, e.src + 1);
        } else if (!live.empty() && rng.NextBool(0.3)) {
          e = live[rng.NextBounded(live.size())];  // parallel edge
        } else {
          e.src = static_cast<VertexId>(rng.NextBounded(n));
          e.dst = static_cast<VertexId>(rng.NextBounded(n));
        }
        while (e.dst == e.src) {
          e.dst = static_cast<VertexId>(rng.NextBounded(n));
        }
        e.weight = static_cast<double>(1 + rng.NextBounded(5));
        ASSERT_TRUE(spade.InsertEdge(e).ok());
        live.push_back(e);
      } else if (dice < 7) {
        // Batch insertion.
        std::vector<Edge> batch;
        const std::size_t batch_size = 1 + rng.NextBounded(8);
        for (std::size_t i = 0; i < batch_size; ++i) {
          auto s = static_cast<VertexId>(rng.NextBounded(n));
          auto d = static_cast<VertexId>(rng.NextBounded(n));
          while (d == s) d = static_cast<VertexId>(rng.NextBounded(n));
          batch.push_back(
              {s, d, static_cast<double>(1 + rng.NextBounded(5)), 0});
        }
        ASSERT_TRUE(spade.InsertBatchEdges(batch).ok());
        live.insert(live.end(), batch.begin(), batch.end());
      } else if (!live.empty()) {
        // Deletion of a random live edge (Spade removes the most recently
        // inserted parallel copy, so drop the last matching entry).
        const std::size_t pick = rng.NextBounded(live.size());
        const Edge victim = live[pick];
        ASSERT_TRUE(spade.DeleteEdge(victim.src, victim.dst).ok());
        for (std::size_t i = live.size(); i-- > 0;) {
          if (live[i].src == victim.src && live[i].dst == victim.dst) {
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
      // The maintained state must equal a from-scratch peel of the final
      // weighted graph. DG/DW weights are integers here, so the comparison
      // is exact, ties included. FD weights are continuous (1/log terms):
      // the incremental and static paths sum them in different orders, so
      // structurally tied vertices can legitimately swap within an ulp —
      // validate canonicality without the tie-break check instead.
      if (algo == "FD") {
        testing::ValidateCanonicalSequence(spade.graph(), spade.peel_state(),
                                           1e-9, /*check_tie_break=*/false);
        const PeelState reference = PeelStatic(spade.graph());
        EXPECT_NEAR(reference.BestDensity(),
                    spade.peel_state().BestDensity(), 1e-9);
      } else {
        const PeelState reference = PeelStatic(spade.graph());
        ExpectStateEquals(reference, spade.peel_state());
        EXPECT_EQ(reference.BestStart(), spade.peel_state().BestStart());
        EXPECT_NEAR(reference.BestDensity(),
                    spade.peel_state().BestDensity(), 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, MixedStreamTest,
                         ::testing::Values("DG", "DW", "FD"));

// ------------------------------------------------------------------------
// Stored-delta recovery vs the legacy from-graph recomputation.
// ------------------------------------------------------------------------

TEST(RecoveryModeTest, StoredDeltaMatchesLegacyOnMixedStreams) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.NextBounded(24);
    DynamicGraph g1 = RandomGraph(&rng, n, 2 * n, 6, 2);
    DynamicGraph g2(n);
    for (std::size_t v = 0; v < n; ++v) {
      g2.SetVertexWeight(static_cast<VertexId>(v),
                         g1.VertexWeight(static_cast<VertexId>(v)));
    }
    for (std::size_t u = 0; u < n; ++u) {
      for (const auto& e : g1.OutNeighbors(static_cast<VertexId>(u))) {
        ASSERT_TRUE(
            g2.AddEdge(static_cast<VertexId>(u), e.vertex, e.weight).ok());
      }
    }
    PeelState s1 = PeelStatic(g1);
    PeelState s2 = PeelStatic(g2);
    IncrementalEngine recovery;  // default: stored-delta recovery on
    IncrementalEngine legacy(IncrementalOptions{.stored_delta_recovery =
                                                    false});
    for (int step = 0; step < 30; ++step) {
      const Edge e = testing::RandomEdge(&rng, n);
      if (rng.NextBool(0.3) && g1.NumEdges() > 0) {
        const Status d1 = recovery.DeleteEdge(&g1, &s1, e.src, e.dst,
                                              nullptr, nullptr);
        const Status d2 =
            legacy.DeleteEdge(&g2, &s2, e.src, e.dst, nullptr, nullptr);
        ASSERT_EQ(d1.ok(), d2.ok());
      } else {
        ASSERT_TRUE(recovery.InsertEdge(&g1, &s1, e, nullptr, nullptr).ok());
        ASSERT_TRUE(legacy.InsertEdge(&g2, &s2, e, nullptr, nullptr).ok());
      }
      ExpectStateEquals(s2, s1);
    }
  }
}

TEST(RecoveryModeTest, InsertionsUseO1RecoveryNotRescans) {
  Rng rng(7);
  DynamicGraph g = RandomGraph(&rng, 100, 400, 4, 0);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  ReorderStats stats;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .InsertEdge(&g, &state, testing::RandomEdge(&rng, 100),
                                nullptr, &stats)
                    .ok());
  }
  // Every affected vertex beyond the two endpoints enters the queue through
  // the O(1) recovery; the legacy path would report zero.
  EXPECT_GT(stats.recovery_lookups, 0u);
}

// ------------------------------------------------------------------------
// Blocked detection index vs the naive linear scan.
// ------------------------------------------------------------------------

struct NaiveBest {
  std::size_t start;
  double density;
};

NaiveBest NaiveScan(const PeelState& state) {
  const std::size_t n = state.size();
  double suffix = 0.0;
  double best = 0.0;
  std::size_t best_start = n;
  for (std::size_t i = n; i-- > 0;) {
    suffix += state.DeltaAt(i);
    const double density = suffix / static_cast<double>(n - i);
    if (density >= best) {
      best = density;
      best_start = i;
    }
  }
  return {best_start, best};
}

TEST(BlockedDetectTest, MatchesNaiveScanUnderChurn) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    // Sizes straddling several block widths, including exact multiples.
    const std::size_t n = 1 + rng.NextBounded(700);
    PeelState state(n);
    for (std::size_t v = 0; v < n; ++v) {
      // Small integer deltas force plenty of exact density ties, which must
      // resolve to the smallest start exactly like the linear scan.
      state.Append(static_cast<VertexId>(v),
                   static_cast<double>(rng.NextBounded(4)));
    }
    for (int round = 0; round < 30; ++round) {
      const NaiveBest expect = NaiveScan(state);
      EXPECT_EQ(expect.start, state.BestStart());
      EXPECT_DOUBLE_EQ(expect.density, state.BestDensity());
      const std::size_t k = rng.NextBounded(state.size() + 1);
      double suffix = 0.0;
      for (std::size_t i = k; i < state.size(); ++i) {
        suffix += state.DeltaAt(i);
      }
      EXPECT_NEAR(suffix, state.SuffixWeight(k), 1e-9);
      // Churn: rewrite a span (Assign keeps the vertex/position bijection by
      // swapping two entries), bump a delta, occasionally insert at head.
      const std::size_t i = rng.NextBounded(state.size());
      const std::size_t j = rng.NextBounded(state.size());
      const VertexId vi = state.VertexAt(i);
      const VertexId vj = state.VertexAt(j);
      const double di = state.DeltaAt(i);
      const double dj = state.DeltaAt(j);
      state.Assign(i, vj, dj);
      state.Assign(j, vi, di);
      state.BumpDelta(rng.NextBounded(state.size()),
                      static_cast<double>(rng.NextBounded(3)));
    }
  }
}

TEST(BlockedDetectTest, HeadInsertionStressMatchesNaive) {
  Rng rng(555);
  PeelState state(8);
  for (std::size_t v = 0; v < 8; ++v) {
    state.Append(static_cast<VertexId>(v),
                 static_cast<double>(1 + rng.NextBounded(4)));
  }
  // Hundreds of head insertions cross several front-slack regrowths; every
  // existing position must shift by exactly one each time and detection must
  // stay exact.
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<VertexId>(8 + i);
    const VertexId old_head = state.VertexAt(0);
    state.InsertVertexAtHead(v, static_cast<double>(rng.NextBounded(3)));
    ASSERT_EQ(state.VertexAt(0), v);
    ASSERT_EQ(state.PositionOf(v), 0u);
    ASSERT_EQ(state.PositionOf(old_head), 1u);
    if (i % 37 == 0) {
      const NaiveBest expect = NaiveScan(state);
      ASSERT_EQ(expect.start, state.BestStart());
      ASSERT_DOUBLE_EQ(expect.density, state.BestDensity());
    }
  }
  ASSERT_EQ(state.size(), 508u);
  for (std::size_t i = 0; i < state.size(); ++i) {
    ASSERT_EQ(state.PositionOf(state.VertexAt(i)), i);
  }
}

// Blocked+SIMD detection vs the naive linear scan, exercised on EVERY
// dispatch target compiled into this binary (the sanitizer legs build
// scalar-only; the AVX2 CI leg sweeps scalar/sse2/avx2 here). Integer
// deltas make every density tie exact, so start positions must match the
// reference scan tie-for-tie, while base_ is steered through mid-block
// values by head insertions and across GrowFront arena relocations.
TEST(BlockedDetectTest, DispatchTargetsTieExactAcrossHeadSlackAndGrowth) {
  for (const auto& target : simd::CompiledSimdTargets()) {
    SCOPED_TRACE(target.name);
    simd::SetSimdTargetForTesting(&target);
    Rng rng(808);
    for (int trial = 0; trial < 6; ++trial) {
      const std::size_t n0 = 1 + rng.NextBounded(600);
      PeelState state(n0);
      for (std::size_t v = 0; v < n0; ++v) {
        state.Append(static_cast<VertexId>(v),
                     static_cast<double>(rng.NextBounded(4)));
      }
      VertexId next = static_cast<VertexId>(n0);
      for (int round = 0; round < 120; ++round) {
        // A fresh head insertion every round decrements base_ through every
        // offset within its block and forces several GrowFront relocations
        // per trial (the arena copy must land blocks/hulls on the new
        // stride without disturbing tie resolution).
        state.InsertVertexAtHead(next++,
                                 static_cast<double>(rng.NextBounded(3)));
        state.BumpDelta(rng.NextBounded(state.size()),
                        static_cast<double>(rng.NextBounded(3)));
        if (round % 7 == 0) {
          const NaiveBest expect = NaiveScan(state);
          ASSERT_EQ(expect.start, state.BestStart());
          ASSERT_DOUBLE_EQ(expect.density, state.BestDensity());
          double suffix = 0.0;
          const std::size_t k = rng.NextBounded(state.size() + 1);
          for (std::size_t i = k; i < state.size(); ++i) {
            suffix += state.DeltaAt(i);
          }
          EXPECT_DOUBLE_EQ(suffix, state.SuffixWeight(k));
        }
      }
    }
  }
  simd::SetSimdTargetForTesting(nullptr);
}

// The bit-identity contract end to end: with continuous (non-integer)
// deltas, Detect must return the same density BITS on every compiled
// dispatch target — the whole point of the canonical association orders.
TEST(BlockedDetectTest, DetectBitIdenticalAcrossDispatchTargets) {
  const auto targets = simd::CompiledSimdTargets();
  Rng rng(6060);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 1 + rng.NextBounded(1400);
    std::vector<double> deltas(n);
    for (auto& d : deltas) {
      d = static_cast<double>(rng.NextBounded(1 << 20)) / 1048576.0 * 3.7;
    }
    double ref_density = 0.0;
    std::size_t ref_start = 0;
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      simd::SetSimdTargetForTesting(&targets[ti]);
      PeelState state(n);
      for (std::size_t v = 0; v < n; ++v) {
        state.Append(static_cast<VertexId>(v), deltas[v]);
      }
      const double density = state.BestDensity();
      const std::size_t start = state.BestStart();
      if (ti == 0) {
        ref_density = density;
        ref_start = start;
      } else {
        EXPECT_EQ(std::memcmp(&density, &ref_density, sizeof density), 0)
            << targets[ti].name << " vs " << targets[0].name
            << " trial " << trial;
        EXPECT_EQ(start, ref_start) << targets[ti].name;
      }
    }
  }
  simd::SetSimdTargetForTesting(nullptr);
}

// ------------------------------------------------------------------------
// Epoch wrap-around.
// ------------------------------------------------------------------------

TEST(EpochWrapTest, StaleStampsDoNotAliasAcrossWrap) {
  Rng rng(99);
  DynamicGraph g = RandomGraph(&rng, 20, 60, 5, 2);
  PeelState state = PeelStatic(g);
  IncrementalEngine engine;
  // First update runs at epoch 1, stamping colors/emitted/recovery slots
  // with 1. Jumping to the max epoch makes the next bump wrap back to 1 —
  // without the wrap fix those ancient stamps read as current and corrupt
  // the merge.
  ASSERT_TRUE(engine
                  .InsertEdge(&g, &state, testing::RandomEdge(&rng, 20),
                              nullptr, nullptr)
                  .ok());
  engine.ForceEpochForTesting(0xFFFFFFFFu);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine
                    .InsertEdge(&g, &state, testing::RandomEdge(&rng, 20),
                                nullptr, nullptr)
                    .ok());
    ExpectStateEquals(PeelStatic(g), state);
  }
}

}  // namespace
}  // namespace spade
