// Replication and wire-ingest suite (ctest label `stress`): seal/ship/
// apply through real loopback sockets, the seqmap exactly-once bookkeeping,
// bounded drains, warm-standby incremental apply, staged-tail promotion,
// client spill-and-recover, fault-injected delivery — plus the regression
// test for epoch numbering in a checkpoint directory shared with foreign
// files (spill buffers, seqmaps, editor droppings).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "metrics/semantics.h"
#include "net/faulty_transport.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/replicator.h"
#include "net/wire_format.h"
#include "service/detection_service.h"
#include "service/sharded_detection_service.h"
#include "storage/sharded_snapshot.h"
#include "tests/test_util.h"

namespace spade::net {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 2;
constexpr std::size_t kVertices = 96;

Partitioner ParityPartitioner() {
  return Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
}

std::unique_ptr<ShardedDetectionService> BuildService(
    const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) parts[e.src % kShards].push_back(e);
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    EXPECT_TRUE(spade.BuildGraph(kVertices, parts[s]).ok());
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = ParityPartitioner();
  options.shard.detect_every = 16;
  options.checkpoint.max_chain_length = 1000;
  options.checkpoint.max_delta_base_ratio = 1e9;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

std::vector<testing::ShardCapture> CaptureShards(
    const ShardedDetectionService& service) {
  std::vector<testing::ShardCapture> captures(service.num_shards());
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      captures[s].state = spade.peel_state();
      captures[s].num_edges = spade.graph().NumEdges();
      captures[s].total_weight = spade.graph().TotalWeight();
      captures[s].pending_benign = spade.PendingBenignEdges();
    });
  }
  return captures;
}

void ExpectServicesEqual(const ShardedDetectionService& expected,
                         const ShardedDetectionService& actual) {
  const auto want = CaptureShards(expected);
  const auto got = CaptureShards(actual);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    testing::ExpectShardEqualsCapture(want[s], got[s]);
  }
}

std::vector<Edge> MakeEdges(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    edges.push_back(testing::RandomEdge(&rng, kVertices, 4));
  }
  return edges;
}

std::string ResetWorkDir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / "spade_replication" / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

void WriteJunkFile(const fs::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// Polls `fn` (which returns bool) until true or the deadline.
bool PollFor(int timeout_ms, const std::function<bool()>& fn) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return fn();
}

// --------------------------------------------------------------------------
// S1: bounded-wait drain.

TEST(DrainFor, BoundedWaitMatchesUnboundedDrain) {
  const std::vector<Edge> initial = MakeEdges(64, 1);
  auto service = BuildService(initial);
  auto reference = BuildService(initial);

  EXPECT_TRUE(service->DrainFor(std::chrono::milliseconds(1000)));  // idle

  const std::vector<Edge> stream = MakeEdges(512, 2);
  ASSERT_TRUE(service->SubmitBatch(stream).ok());
  ASSERT_TRUE(reference->SubmitBatch(stream).ok());
  EXPECT_TRUE(service->DrainFor(std::chrono::milliseconds(10'000)));
  reference->Drain();
  ExpectServicesEqual(*reference, *service);
}

TEST(DrainFor, SingleShardServiceBoundedWait) {
  Spade spade;
  spade.SetSemantics(MakeDW());
  ASSERT_TRUE(spade.BuildGraph(kVertices, {}).ok());
  DetectionService service(std::move(spade), nullptr);
  EXPECT_TRUE(service.DrainFor(std::chrono::milliseconds(500)));
  for (const Edge& e : MakeEdges(256, 3)) {
    ASSERT_TRUE(service.Submit(e).ok());
  }
  EXPECT_TRUE(service.DrainFor(std::chrono::milliseconds(10'000)));
  service.Stop();
}

// --------------------------------------------------------------------------
// S3 regression: foreign files in the checkpoint directory (client spill
// buffers, seqmaps, random droppings) must neither perturb epoch numbering
// nor be garbage-collected as stale chain artifacts.

TEST(NextEpochForDir, IgnoresForeignFilesAndNeverDeletesThem) {
  const std::string dir = ResetWorkDir("foreign_files");
  auto service = BuildService(MakeEdges(48, 4));

  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(service
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                              &info)
                  .ok());
  EXPECT_EQ(info.epoch, 1u);

  // Foreign files that merely LOOK epoch-ish. None of these match the
  // exact artifact grammar, so none may perturb the next epoch.
  const std::vector<std::string> foreign = {
      "ingest.seqmap-900",        // seqmap (replicated beside the chain)
      "ingest.spill-901",         // client spill buffer sharing the dir
      "foo.delta-902",            // wrong stem
      "shard-0.delta-90x",        // non-numeric epoch
      "shard-x.snapshot-903",     // non-numeric shard
      "shard-0.delta-",           // empty epoch
      "boundary.tail-90 4",       // embedded space
      "shard-0.snapshot-99999999999999999999",  // epoch overflows u64
  };
  for (const std::string& name : foreign) {
    WriteJunkFile(fs::path(dir) / name, "junk");
  }

  ASSERT_TRUE(service->SubmitBatch(MakeEdges(32, 5)).ok());
  service->Drain();
  ASSERT_TRUE(service
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                              &info)
                  .ok());
  EXPECT_EQ(info.epoch, 2u) << "foreign files perturbed epoch numbering";

  // A full save garbage-collects stale chain artifacts; foreign files must
  // survive it untouched.
  ASSERT_TRUE(service->SubmitBatch(MakeEdges(32, 6)).ok());
  service->Drain();
  ASSERT_TRUE(service
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                              &info)
                  .ok());
  EXPECT_EQ(info.epoch, 3u);
  for (const std::string& name : foreign) {
    EXPECT_TRUE(fs::exists(fs::path(dir) / name))
        << name << " was deleted by chain GC";
  }

  // Control: a REAL epoch-stamped artifact does reserve its epoch. The
  // scan only runs for a writer without a live chain for the directory (a
  // fresh service), which is exactly the crash-restart case it protects.
  WriteJunkFile(fs::path(dir) / "shard-0.delta-41", "junk");
  auto fresh = BuildService(MakeEdges(16, 7));
  ASSERT_TRUE(fresh
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                              &info)
                  .ok());
  EXPECT_EQ(info.epoch, 42u);
}

// --------------------------------------------------------------------------
// Seqmap capture: SealEpoch's map matches exactly what was applied.

TEST(IngestSeal, SeqmapMatchesAppliedWatermark) {
  const std::string dir = ResetWorkDir("seal_seqmap");
  auto service = BuildService({});

  IngestServer server(service.get());
  ASSERT_TRUE(server.Start().ok());

  IngestClientOptions copts;
  copts.ports = {server.port()};
  copts.stream_id = 77;
  copts.batch_edges = 32;
  IngestClient client(copts);
  for (const Edge& e : MakeEdges(100, 8)) {
    ASSERT_TRUE(client.Submit(e).ok());
  }
  ASSERT_TRUE(client.WaitAcked(10'000).ok());
  const std::uint64_t sealed_seq = client.last_sealed_seq();
  EXPECT_EQ(sealed_seq, 4u);  // 100 edges / 32 per batch -> 4 batches

  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(
      server.SealEpoch(dir, ShardedDetectionService::SaveMode::kAuto, &info)
          .ok());

  std::uint64_t epoch = 0;
  SeqMap seqs;
  const std::string seqmap_path =
      (fs::path(dir) / SeqMapFileName(info.epoch)).string();
  ASSERT_TRUE(ReadSeqMapFile(seqmap_path, &epoch, &seqs).ok());
  EXPECT_EQ(epoch, info.epoch);
  ASSERT_EQ(seqs.count(77u), 1u);
  EXPECT_EQ(seqs[77], sealed_seq);

  // MarkDurable propagates to the client on its next ack.
  server.MarkDurable(info.epoch);
  ASSERT_TRUE(client.WaitDurable(10'000).ok());
  EXPECT_EQ(client.GetStats().durable_seq, sealed_seq);

  server.Stop();
}

// --------------------------------------------------------------------------
// ApplyChainEpoch: warm-standby single-epoch increments are bit-identical
// to the live primary.

TEST(ApplyChainEpoch, IncrementalEpochsMatchPrimary) {
  const std::string dir = ResetWorkDir("apply_chain");
  const std::vector<Edge> initial = MakeEdges(64, 9);
  auto primary = BuildService(initial);

  ShardedDetectionService::SaveInfo info;
  ASSERT_TRUE(primary
                  ->SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                              &info)
                  .ok());
  ASSERT_EQ(info.epoch, 1u);

  auto standby = BuildService({});
  ASSERT_TRUE(standby->RestoreState(dir).ok());
  ExpectServicesEqual(*primary, *standby);

  for (std::uint64_t e = 2; e <= 4; ++e) {
    ASSERT_TRUE(primary->SubmitBatch(MakeEdges(48, 10 + e)).ok());
    primary->Drain();
    ASSERT_TRUE(primary
                    ->SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                                &info)
                    .ok());
    ASSERT_EQ(info.epoch, e);
    std::uint64_t replayed = 0;
    ASSERT_TRUE(standby
                    ->ApplyChainEpoch(dir, e, std::chrono::milliseconds(10'000),
                                      &replayed)
                    .ok());
    EXPECT_GT(replayed, 0u);
    ExpectServicesEqual(*primary, *standby);
  }

  // Guard rails: out-of-range targets are rejected crisply.
  EXPECT_EQ(standby->ApplyChainEpoch(dir, 99, std::chrono::milliseconds(1000))
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(standby->ApplyChainEpoch(dir, 1, std::chrono::milliseconds(1000))
                .code(),
            StatusCode::kOutOfRange);
}

// --------------------------------------------------------------------------
// Replicator -> Standby over real sockets, eager replay: follower tracks
// the primary epoch by epoch.

TEST(Replication, EagerStandbyTracksPrimary) {
  const std::string pdir = ResetWorkDir("eager_primary");
  const std::string fdir = ResetWorkDir("eager_follower");
  const std::vector<Edge> initial = MakeEdges(64, 20);
  auto primary = BuildService(initial);
  auto follower = BuildService({});

  Replicator repl(primary.get(), nullptr, pdir);
  ASSERT_TRUE(repl.Start().ok());

  StandbyOptions sopts;
  sopts.primary_port = repl.port();
  sopts.eager_replay = true;
  sopts.lease_ms = 60'000;  // never expires in this test
  Standby standby(follower.get(), fdir, sopts);
  ASSERT_TRUE(standby.Start().ok());
  ASSERT_TRUE(PollFor(10'000, [&] { return repl.HasFollower(); }));

  for (std::uint64_t e = 1; e <= 3; ++e) {
    if (e > 1) {
      ASSERT_TRUE(primary->SubmitBatch(MakeEdges(48, 20 + e)).ok());
      primary->Drain();
    }
    ShardedDetectionService::SaveInfo info;
    ASSERT_TRUE(repl.SealAndShip(e == 1
                                     ? ShardedDetectionService::SaveMode::kFull
                                     : ShardedDetectionService::SaveMode::kDelta,
                                 &info)
                    .ok());
    ASSERT_EQ(info.epoch, e);
    ASSERT_TRUE(
        PollFor(10'000, [&] { return standby.applied_epoch() == e; }))
        << "standby never applied epoch " << e;
    ExpectServicesEqual(*primary, *follower);
  }

  EXPECT_EQ(repl.acked_epoch(), 3u);
  standby.Stop();
  repl.Stop();
}

// --------------------------------------------------------------------------
// Staged tail + Promote: failover time is the tail replay, and the result
// is bit-identical to the primary's last sealed epoch.

TEST(Replication, StagedTailPromoteMatchesLastSealedEpoch) {
  const std::string pdir = ResetWorkDir("staged_primary");
  const std::string fdir = ResetWorkDir("staged_follower");
  const std::vector<Edge> initial = MakeEdges(64, 30);
  auto primary = BuildService(initial);
  auto follower = BuildService({});

  Replicator repl(primary.get(), nullptr, pdir);
  ASSERT_TRUE(repl.Start().ok());

  StandbyOptions sopts;
  sopts.primary_port = repl.port();
  sopts.eager_replay = false;  // stage the tail; Promote pays the replay
  sopts.lease_ms = 60'000;
  Standby standby(follower.get(), fdir, sopts);
  ASSERT_TRUE(standby.Start().ok());
  ASSERT_TRUE(PollFor(10'000, [&] { return repl.HasFollower(); }));

  for (std::uint64_t e = 1; e <= 4; ++e) {
    if (e > 1) {
      ASSERT_TRUE(primary->SubmitBatch(MakeEdges(40, 30 + e)).ok());
      primary->Drain();
    }
    ShardedDetectionService::SaveInfo info;
    ASSERT_TRUE(repl.SealAndShip(e == 1
                                     ? ShardedDetectionService::SaveMode::kFull
                                     : ShardedDetectionService::SaveMode::kDelta,
                                 &info)
                    .ok());
    ASSERT_EQ(info.epoch, e);
  }
  ASSERT_TRUE(PollFor(10'000, [&] { return standby.committed_epoch() == 4; }));
  // First commit restored the base; the rest is a staged tail.
  EXPECT_EQ(standby.applied_epoch(), 1u);

  repl.Stop();  // primary goes away

  PromoteInfo promote;
  ASSERT_TRUE(standby.Promote(&promote).ok());
  EXPECT_EQ(promote.epoch, 4u);
  EXPECT_EQ(promote.replayed_epochs, 3u);
  EXPECT_FALSE(promote.full_restore);
  EXPECT_GT(promote.replayed_edges, 0u);

  ExpectServicesEqual(*primary, *follower);

  // Bit-identity against the replicated directory itself: a fresh service
  // restored from the follower's dir equals the promoted live state.
  auto verifier = BuildService({});
  ASSERT_TRUE(verifier->RestoreState(fdir).ok());
  ExpectServicesEqual(*verifier, *follower);
}

// --------------------------------------------------------------------------
// Client graceful degradation: spill to disk while the primary is down,
// recover completely once it returns.

TEST(IngestClient, SpillsWhileDownAndRecovers) {
  const std::string spill_dir = ResetWorkDir("client_spill");

  // Reserve a port with a listener, then close it: connects will fail.
  int dead_port = 0;
  {
    TcpListener probe;
    ASSERT_TRUE(probe.Listen(0).ok());
    dead_port = probe.port();
    probe.Close();
  }

  IngestClientOptions copts;
  copts.ports = {dead_port};
  copts.stream_id = 5;
  copts.batch_edges = 16;
  copts.max_buffered_batches = 4;
  copts.spill_dir = spill_dir;
  copts.max_connect_retries = 1;
  copts.connect_timeout_ms = 50;
  copts.ack_timeout_ms = 100;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 8;
  IngestClient client(copts);

  const std::vector<Edge> stream = MakeEdges(20 * 16, 40);
  for (const Edge& e : stream) ASSERT_TRUE(client.Submit(e).ok());
  EXPECT_EQ(client.last_sealed_seq(), 20u);

  // Primary unreachable: Wait fails, buffered batches spill to disk.
  EXPECT_FALSE(client.WaitAcked(500).ok());
  EXPECT_GT(client.GetStats().spilled_batches, 0u);
  std::size_t spill_files = 0;
  for (const auto& entry : fs::directory_iterator(spill_dir)) {
    (void)entry;
    ++spill_files;
  }
  EXPECT_GT(spill_files, 0u);

  // Primary comes back (on a fresh port): repoint and deliver everything.
  auto service = BuildService({});
  IngestServer server(service.get());
  ASSERT_TRUE(server.Start().ok());
  client.SetPorts({server.port()});
  ASSERT_TRUE(client.WaitAcked(20'000).ok());
  server.Stop();
  service->Drain();

  EXPECT_GT(client.GetStats().reloaded_batches, 0u);
  const IngestServerStats sstats = server.GetStats();
  EXPECT_EQ(sstats.batches_applied, 20u);
  EXPECT_EQ(sstats.edges_applied, stream.size());

  auto reference = BuildService({});
  ASSERT_TRUE(reference->SubmitBatch(stream).ok());
  reference->Drain();
  ExpectServicesEqual(*reference, *service);

  // All spill files were consumed on delivery.
  spill_files = 0;
  for (const auto& entry : fs::directory_iterator(spill_dir)) {
    (void)entry;
    ++spill_files;
  }
  EXPECT_EQ(spill_files, 0u);
}

// --------------------------------------------------------------------------
// Fault-injected delivery: with the shim mangling outbound frames, retry +
// sequence dedup still lands every batch exactly once.

TEST(IngestClient, ExactlyOnceThroughFaultySchedule) {
  auto service = BuildService({});
  IngestServer server(service.get());
  ASSERT_TRUE(server.Start().ok());

  FaultPlan plan;
  plan.seed = 0xFA17;
  plan.p_drop = 0.05;
  plan.p_truncate = 0.05;
  plan.p_flip = 0.10;
  plan.p_duplicate = 0.10;
  plan.p_reorder = 0.10;
  plan.max_faults = 60;  // guarantee an eventually clean channel

  IngestClientOptions copts;
  copts.ports = {server.port()};
  copts.stream_id = 9;
  copts.batch_edges = 16;
  copts.ack_timeout_ms = 100;
  // Vary the seed per (re)connection: a fixed seed would replay the same
  // fault schedule against every reconnect attempt (e.g. always dropping
  // the HELLO), which can livelock. Still fully deterministic.
  auto attempt = std::make_shared<int>(0);
  copts.wrap_transport = [plan, attempt](std::unique_ptr<Connection> inner) {
    FaultPlan p = plan;
    p.seed = plan.seed + static_cast<std::uint64_t>((*attempt)++);
    return WrapFaulty(std::move(inner), p);
  };
  IngestClient client(copts);

  const std::vector<Edge> stream = MakeEdges(30 * 16, 50);
  for (const Edge& e : stream) ASSERT_TRUE(client.Submit(e).ok());
  ASSERT_TRUE(client.WaitAcked(60'000).ok());
  server.Stop();
  service->Drain();

  const IngestServerStats sstats = server.GetStats();
  EXPECT_EQ(sstats.batches_applied, 30u) << "a batch was lost or duplicated";
  EXPECT_EQ(sstats.edges_applied, stream.size());

  auto reference = BuildService({});
  ASSERT_TRUE(reference->SubmitBatch(stream).ok());
  reference->Drain();
  ExpectServicesEqual(*reference, *service);
}

}  // namespace
}  // namespace spade::net
