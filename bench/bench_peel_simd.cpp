// Scalar-vs-SIMD sweep over the peel hot-path kernels (DESIGN.md §8):
//
//  1. fixed_order_sum_512 / suffix_scan_512 / iota_8192 — the raw simd.h
//     kernels on cache-resident data, per dispatch target. The sum is
//     16 independent lanes (throughput-bound: the vector win is the point
//     of the exercise); the scan carries the suffix dependence through
//     every group (latency-bound: reported honestly, near-1x is expected).
//  2. block_sum_refresh — in-situ block-sum path: every block of a 64Ki
//     PeelState dirtied, then one SuffixWeight(0) refreshing all 128 cached
//     sums through FixedOrderSum.
//  3. detect_after_edge — end to end: single-edge insert through the
//     incremental engine plus one blocked Detect, per dispatch target via
//     the override seam. CI gates regressions on this entry.
//
// Emits BENCH_peel.json (path = argv[1], default ./): one entry per
// experiment with {name, n, scalar_us, simd_us, speedup, target}. scalar_us
// always comes from the always-built scalar reference; simd_us from the
// compile-time dispatch target (equal when the build is scalar-only).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/incremental_engine.h"
#include "peel/peel_state.h"
#include "peel/static_peeler.h"

namespace spade::bench {
namespace {

struct Entry {
  std::string name;
  std::size_t n = 0;
  double scalar_us = 0.0;
  double simd_us = 0.0;
  std::string target;
  std::string note;
  double speedup() const { return scalar_us / simd_us; }
};

constexpr std::size_t kBlockLen = 512;  // PeelState::kBlock
constexpr std::size_t kBlocks = 4;      // 16 KiB of doubles: L1-resident

/// Per-call microseconds of `op` (which must consume its own results).
template <typename Op>
double MicrosPerCall(Op&& op, std::size_t calls_per_iteration) {
  return BenchmarkSecondsPerIteration(op) /
         static_cast<double>(calls_per_iteration) * 1e6;
}

Entry BenchFixedOrderSum(const simd::SimdTarget& scalar,
                         const simd::SimdTarget& vec) {
  Rng rng(101);
  std::vector<double> data(kBlocks * kBlockLen);
  for (auto& d : data) d = rng.NextDouble() * 4.0;
  const auto measure = [&](const simd::SimdTarget& t) {
    return MicrosPerCall(
        [&] {
          volatile double guard = 0.0;
          for (std::size_t b = 0; b < kBlocks; ++b) {
            guard = t.fixed_order_sum(data.data() + b * kBlockLen, kBlockLen);
          }
          (void)guard;
        },
        kBlocks);
  };
  Entry e;
  e.name = "fixed_order_sum_512";
  e.n = kBlockLen;
  e.note = "block-sum/detect-tail microkernel, us per 512-wide reduction";
  e.scalar_us = measure(scalar);
  e.simd_us = measure(vec);
  e.target = vec.name;
  return e;
}

Entry BenchSuffixScan(const simd::SimdTarget& scalar,
                      const simd::SimdTarget& vec) {
  Rng rng(102);
  std::vector<double> data(kBlocks * kBlockLen);
  std::vector<double> out(kBlockLen);
  for (auto& d : data) d = rng.NextDouble() * 4.0;
  const auto measure = [&](const simd::SimdTarget& t) {
    return MicrosPerCall(
        [&] {
          volatile double guard = 0.0;
          for (std::size_t b = 0; b < kBlocks; ++b) {
            guard = t.suffix_scan_block(data.data() + b * kBlockLen,
                                        kBlockLen, out.data());
          }
          (void)guard;
        },
        kBlocks);
  };
  Entry e;
  e.name = "suffix_scan_512";
  e.n = kBlockLen;
  e.note = "hull pre-pass, carry-chain latency-bound (near-1x expected)";
  e.scalar_us = measure(scalar);
  e.simd_us = measure(vec);
  e.target = vec.name;
  return e;
}

Entry BenchIota(const simd::SimdTarget& scalar, const simd::SimdTarget& vec) {
  constexpr std::size_t kN = 8192;
  std::vector<std::uint32_t> out(kN);
  const auto measure = [&](const simd::SimdTarget& t) {
    return MicrosPerCall(
        [&] {
          t.iota_u32(out.data(), kN, 0);
          volatile std::uint32_t guard = out[kN - 1];
          (void)guard;
        },
        1);
  };
  Entry e;
  e.name = "iota_8192";
  e.n = kN;
  e.note = "heap AssignAll leaf fill, us per 8192-wide iota";
  e.scalar_us = measure(scalar);
  e.simd_us = measure(vec);
  e.target = vec.name;
  return e;
}

/// Every cached block sum dirtied, one SuffixWeight(0) refreshing all of
/// them: the block-sum path exactly as Detect's tail walk consumes it.
Entry BenchBlockSumRefresh(const simd::SimdTarget& scalar,
                           const simd::SimdTarget& vec) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  Rng rng(103);
  PeelState state(kN);
  for (std::size_t v = 0; v < kN; ++v) {
    state.Append(static_cast<VertexId>(v), rng.NextDouble() * 4.0);
  }
  const auto measure = [&](const simd::SimdTarget& t) {
    simd::SetSimdTargetForTesting(&t);
    const double us = MicrosPerCall(
        [&] {
          for (std::size_t i = 0; i < kN; i += kBlockLen) {
            state.BumpDelta(i, 0.0);  // dirties the block, keeps the bits
          }
          volatile double guard = state.SuffixWeight(0);
          (void)guard;
        },
        1);
    simd::SetSimdTargetForTesting(nullptr);
    return us;
  };
  Entry e;
  e.name = "block_sum_refresh";
  e.n = kN;
  e.note = "all 128 block sums refreshed, 512KB stream: L2-bandwidth-bound";
  e.scalar_us = measure(scalar);
  e.simd_us = measure(vec);
  e.target = vec.name;
  return e;
}

/// End to end: one single-edge insert through the incremental engine plus
/// one blocked Detect, per dispatch target. Mirrors bench_incremental's
/// detect_after_edge workload shape so the two JSONs stay comparable.
Entry BenchDetectAfterEdge(const simd::SimdTarget& scalar,
                           const simd::SimdTarget& vec) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  constexpr std::size_t kUpdates = 256;
  Rng graph_rng(17);
  DynamicGraph g0(kN);
  for (std::size_t i = 0; i < 4 * kN; ++i) {
    auto s = static_cast<VertexId>(graph_rng.NextZipf(kN, 0.9));
    auto d = static_cast<VertexId>(graph_rng.NextZipf(kN, 0.9));
    while (d == s) d = static_cast<VertexId>(graph_rng.NextZipf(kN, 0.9));
    (void)g0.AddEdge(s, d, 1.0 + 9.0 * graph_rng.NextDouble());
  }
  const PeelState s0 = PeelStatic(g0);
  Rng rng(19);
  std::vector<Edge> stream;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    Edge e;
    e.src = static_cast<VertexId>(rng.NextZipf(kN, 0.9));
    e.dst = static_cast<VertexId>(rng.NextZipf(kN, 0.9));
    while (e.dst == e.src) {
      e.dst = static_cast<VertexId>(rng.NextZipf(kN, 0.9));
    }
    e.weight = 0.01 + 0.04 * rng.NextDouble();
    stream.push_back(e);
  }

  // One timed replay under `t`, seconds. The scalar and vector passes are
  // interleaved rep by rep below so slow host-wide drift (frequency, noisy
  // co-tenants on a 1-core runner) hits both targets alike instead of
  // whichever was measured second.
  const auto replay = [&](const simd::SimdTarget& t) {
    simd::SetSimdTargetForTesting(&t);
    DynamicGraph g = g0;
    PeelState state = s0;
    IncrementalEngine engine;
    volatile double guard = 0.0;
    Timer timer;
    for (const Edge& e : stream) {
      (void)engine.InsertEdge(&g, &state, e, nullptr, nullptr);
      guard = state.BestDensity();
    }
    const double elapsed = timer.ElapsedSeconds();
    (void)guard;
    simd::SetSimdTargetForTesting(nullptr);
    return elapsed;
  };
  double best_scalar_s = 0.0, best_vec_s = 0.0;
  constexpr int kReps = 7;
  for (int rep = 0; rep <= kReps; ++rep) {
    const double s = replay(scalar);
    const double v = replay(vec);
    if (rep == 0) continue;  // warmup
    if (best_scalar_s == 0.0 || s < best_scalar_s) best_scalar_s = s;
    if (best_vec_s == 0.0 || v < best_vec_s) best_vec_s = v;
  }
  Entry e;
  e.name = "detect_after_edge";
  e.n = kN;
  e.note = "single-edge insert + blocked Detect, us per update";
  e.scalar_us = best_scalar_s / static_cast<double>(kUpdates) * 1e6;
  e.simd_us = best_vec_s / static_cast<double>(kUpdates) * 1e6;
  e.target = vec.name;
  return e;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const auto targets = spade::simd::CompiledSimdTargets();
  const spade::simd::SimdTarget& scalar = targets.front();
  const spade::simd::SimdTarget& vec = targets.back();

  std::printf("# peel hot-path scalar-vs-SIMD sweep (vector target: %s)\n",
              vec.name);
  std::printf("%-22s %10s %12s %12s %9s  %s\n", "experiment", "n",
              "scalar(us)", "simd(us)", "speedup", "note");

  std::vector<Entry> entries;
  entries.push_back(BenchFixedOrderSum(scalar, vec));
  entries.push_back(BenchSuffixScan(scalar, vec));
  entries.push_back(BenchIota(scalar, vec));
  entries.push_back(BenchBlockSumRefresh(scalar, vec));
  entries.push_back(BenchDetectAfterEdge(scalar, vec));

  for (const Entry& e : entries) {
    std::printf("%-22s %10zu %12.4f %12.4f %8.2fx  %s\n", e.name.c_str(),
                e.n, e.scalar_us, e.simd_us, e.speedup(), e.note.c_str());
  }

  const std::string path = out_dir + "/BENCH_peel.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  WriteBenchMeta(
      f, std::string("{\"active_target\": \"") + vec.name + "\"}");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"n\": %zu, \"scalar_us\": %.4f, "
        "\"simd_us\": %.4f, \"speedup\": %.2f, \"target\": \"%s\", "
        "\"note\": \"%s\"}%s\n",
        e.name.c_str(), e.n, e.scalar_us, e.simd_us, e.speedup(),
        e.target.c_str(), e.note.c_str(),
        i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
