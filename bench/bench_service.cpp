// Shard-count sweep for the sharded detection service on a synthetic
// multi-tenant workload: T tenants, each an independent dense-ish
// transaction community with one injected fraud ring, streamed interleaved
// (the way tenant traffic actually arrives at one ingest endpoint).
//
// Configurations: 1 / 2 / 4 / 8 shards with tenant-keyed routing. The
// 1-shard case is the pre-refactor service — every tenant's updates funnel
// through one detector whose merged peeling sequence interleaves all
// tenants, so each reorder's affected window spans T× more slots. Sharding
// wins twice: on multi-core hosts the shard workers run in parallel, and on
// ANY host each shard's affected area is tenant-local, so the aggregate
// work itself shrinks (the κ-Join partition-decomposition argument, not
// just thread-level parallelism).
//
// Emits BENCH_service.json (path = argv[1], default ./) with one entry per
// shard count: aggregate submit throughput, speedup vs 1 shard, and
// fraud-group submit→alert latency percentiles. The repo commits a
// reference copy; CI uploads a fresh one per run.

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "stream/labeled_stream.h"
#include "stream/replayer.h"

namespace spade::bench {
namespace {

struct TenantConfig {
  std::size_t tenants = 8;
  std::size_t vertices_per_tenant = 2048;
  std::size_t initial_per_tenant = 4000;
  std::size_t stream_per_tenant = 6000;
  /// Legitimate dense cluster present from t=0 in every tenant. It pins the
  /// benign-classification threshold (Definition 4.1 compares against the
  /// current best density) to the same value in every shard configuration,
  /// so 1-shard and N-shard runs do identical detection work per edge and
  /// the sweep compares reorder cost, not vigilance. Without it a merged
  /// detector inherits the *global* max density as its threshold and
  /// silently under-detects the other tenants.
  std::size_t whale_size = 8;
  std::size_t whale_edges = 100;
  double whale_weight = 40.0;
  /// Fraud ring injected mid-stream; overtakes the whale and must alert.
  std::size_t ring_size = 6;
  std::size_t ring_edges = 120;
  double ring_weight = 60.0;
  std::uint64_t seed = 42;
};

struct TenantWorkload {
  std::size_t num_vertices = 0;
  std::vector<Edge> initial;
  LabeledStream stream;
};

/// Draws an intra-tenant endpoint pair. Endpoints are uniform, not skewed:
/// uniform updates land in the weight-dense middle of the peeling sequence,
/// where a merged multi-tenant sequence interleaves every tenant's vertices
/// and the reorder window between two same-tenant endpoints picks up ~T×
/// more slots — the regime the tenant partition removes. (Continuous
/// weights keep peeling ties singleton.)
Edge RandomTenantEdge(Rng* rng, VertexId base, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{static_cast<VertexId>(base + s), static_cast<VertexId>(base + d),
              1.0 + 9.0 * rng->NextDouble(), 0};
}

/// Builds the interleaved multi-tenant workload: per-tenant initial graphs
/// plus round-robin-interleaved update streams with one fraud ring burst
/// per tenant.
TenantWorkload BuildTenantWorkload(const TenantConfig& cfg) {
  TenantWorkload w;
  w.num_vertices = cfg.tenants * cfg.vertices_per_tenant;
  Rng rng(cfg.seed);

  std::vector<std::vector<Edge>> tenant_stream(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    const auto base =
        static_cast<VertexId>(t * cfg.vertices_per_tenant);
    for (std::size_t i = 0; i < cfg.initial_per_tenant; ++i) {
      w.initial.push_back(
          RandomTenantEdge(&rng, base, cfg.vertices_per_tenant));
    }
    // Whale cluster: heavy legitimate edges among a small vertex set at the
    // top of the tenant's id range (disjoint from the fraud ring below).
    for (std::size_t i = 0; i < cfg.whale_edges; ++i) {
      const auto a = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      auto b = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      while (b == a) {
        b = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      }
      const VertexId top = base + static_cast<VertexId>(
                                      cfg.vertices_per_tenant -
                                      cfg.ring_size - cfg.whale_size);
      w.initial.push_back(Edge{top + a, top + b,
                               cfg.whale_weight * (0.9 + 0.2 * rng.NextDouble()),
                               0});
    }
    for (std::size_t i = 0; i < cfg.stream_per_tenant; ++i) {
      tenant_stream[t].push_back(
          RandomTenantEdge(&rng, base, cfg.vertices_per_tenant));
    }
    // Fraud ring: a small vertex set hammered with heavy parallel edges,
    // starting a third of the way into the tenant's stream.
    std::vector<VertexId> ring;
    for (std::size_t i = 0; i < cfg.ring_size; ++i) {
      ring.push_back(static_cast<VertexId>(
          base + cfg.vertices_per_tenant - 1 - i));
    }
    const std::size_t burst_at = tenant_stream[t].size() / 3;
    for (std::size_t i = 0; i < cfg.ring_edges; ++i) {
      const VertexId s = ring[i % ring.size()];
      const VertexId d = ring[(i + 1) % ring.size()];
      Edge e{s, d, cfg.ring_weight * (0.9 + 0.2 * rng.NextDouble()), 0};
      tenant_stream[t].insert(
          tenant_stream[t].begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(burst_at + i, tenant_stream[t].size())),
          e);
    }
    w.stream.group_vertices.push_back(ring);
  }

  // Round-robin interleave (tenant traffic multiplexed at the endpoint).
  Timestamp ts = 0;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (std::size_t t = 0; t < cfg.tenants; ++t) {
      if (i >= tenant_stream[t].size()) continue;
      any = true;
      Edge e = tenant_stream[t][i];
      e.ts = ts++;
      const bool fraud = e.weight >= cfg.ring_weight * 0.9;
      w.stream.Append(e, fraud ? static_cast<std::int32_t>(t) : kNormalEdge);
    }
    if (!any) break;
  }
  return w;
}

/// One detector per shard, each holding the initial graphs of its tenants.
std::vector<Spade> BuildShards(const TenantWorkload& w,
                               const TenantConfig& cfg,
                               std::size_t num_shards) {
  std::vector<std::vector<Edge>> parts(num_shards);
  for (const Edge& e : w.initial) {
    parts[(e.src / cfg.vertices_per_tenant) % num_shards].push_back(e);
  }
  std::vector<Spade> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(w.num_vertices, parts[s]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  return shards;
}

struct SweepEntry {
  std::size_t shards = 0;
  std::size_t edges = 0;
  double wall_s = 0.0;
  double eps = 0.0;
  double speedup = 1.0;
  double fraud_p50_us = 0.0;
  double fraud_p95_us = 0.0;
  std::size_t groups_detected = 0;
  std::uint64_t alerts = 0;
  std::uint64_t detections = 0;
};

SweepEntry RunConfig(const TenantWorkload& w, const TenantConfig& cfg,
                     std::size_t num_shards) {
  ServiceReplayOptions options;
  options.num_producers = 4;
  options.service.shard.block_when_full = true;
  // Tight flush cadence: the sweep measures reorder cost, and a 64-edge
  // grouping window keeps flush work the dominant term at every shard
  // count (detection cadence is identical across configs by construction).
  options.service.shard.detect_every = 64;
  options.service.partitioner =
      TenantPartitioner(static_cast<VertexId>(cfg.vertices_per_tenant));

  const ServiceReplayReport report = ReplayThroughService(
      BuildShards(w, cfg, num_shards), w.stream, options);

  SweepEntry e;
  e.shards = num_shards;
  e.edges = report.edges_submitted;
  e.wall_s = report.wall_seconds;
  e.eps = report.SubmitThroughputEps();
  e.fraud_p50_us = report.fraud_latency_micros.count() > 0
                       ? report.fraud_latency_micros.Percentile(50)
                       : 0.0;
  e.fraud_p95_us = report.fraud_latency_micros.count() > 0
                       ? report.fraud_latency_micros.Percentile(95)
                       : 0.0;
  e.groups_detected = report.groups_detected;
  e.alerts = report.alerts;
  e.detections = report.detections;
  return e;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  TenantConfig cfg;
  const TenantWorkload w = BuildTenantWorkload(cfg);
  std::printf("# sharded service sweep: %zu tenants, %zu vertices, "
              "%zu initial edges, %zu stream edges, %zu fraud rings\n\n",
              cfg.tenants, w.num_vertices, w.initial.size(), w.stream.size(),
              w.stream.group_vertices.size());
  std::printf("%7s %10s %9s %12s %9s %12s %12s %9s %7s %8s\n", "shards", "edges",
              "wall(s)", "edges/s", "speedup", "fraud p50", "fraud p95",
              "detected", "alerts", "detects");

  // One discarded warm-up run so the 1-shard baseline does not pay the
  // allocator/page-fault cold start that later configs skip (that would
  // inflate every speedup_vs_1).
  (void)RunConfig(w, cfg, 1);

  std::vector<SweepEntry> entries;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    SweepEntry e = RunConfig(w, cfg, shards);
    if (!entries.empty()) e.speedup = e.eps / entries.front().eps;
    std::printf("%7zu %10zu %9.3f %12.0f %8.2fx %10.0fus %10.0fus %6zu/%zu %7llu %8llu\n",
                e.shards, e.edges, e.wall_s, e.eps, e.speedup, e.fraud_p50_us,
                e.fraud_p95_us, e.groups_detected, cfg.tenants,
                static_cast<unsigned long long>(e.alerts),
                static_cast<unsigned long long>(e.detections));
    entries.push_back(e);
  }

  const std::string path = out_dir + "/BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": {\"tenants\": %zu, \"vertices\": %zu, "
               "\"initial_edges\": %zu, \"stream_edges\": %zu},\n",
               cfg.tenants, w.num_vertices, w.initial.size(),
               w.stream.size());
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SweepEntry& e = entries[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"edges\": %zu, \"wall_s\": %.4f, "
        "\"edges_per_s\": %.0f, \"speedup_vs_1\": %.2f, "
        "\"fraud_p50_us\": %.0f, \"fraud_p95_us\": %.0f, "
        "\"groups_detected\": %zu, \"alerts\": %llu, "
        "\"detections\": %llu}%s\n",
        e.shards, e.edges, e.wall_s, e.eps, e.speedup, e.fraud_p50_us,
        e.fraud_p95_us, e.groups_detected,
        static_cast<unsigned long long>(e.alerts),
        static_cast<unsigned long long>(e.detections),
        i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
