// Shard-count sweep for the sharded detection service on a synthetic
// multi-tenant workload: T tenants, each an independent dense-ish
// transaction community with one injected fraud ring, streamed interleaved
// (the way tenant traffic actually arrives at one ingest endpoint).
//
// Configurations: 1 / 2 / 4 / 8 shards with tenant-keyed routing. The
// 1-shard case is the pre-refactor service — every tenant's updates funnel
// through one detector whose merged peeling sequence interleaves all
// tenants, so each reorder's affected window spans T× more slots. Sharding
// wins twice: on multi-core hosts the shard workers run in parallel, and on
// ANY host each shard's affected area is tenant-local, so the aggregate
// work itself shrinks (the κ-Join partition-decomposition argument, not
// just thread-level parallelism).
//
// Emits BENCH_service.json (path = argv[1], default ./) with one entry per
// shard count: aggregate submit throughput, speedup vs 1 shard, and
// fraud-group submit→alert latency percentiles. The repo commits a
// reference copy; CI uploads a fresh one per run.
//
// Second workload: the cross-shard ring. Hash-of-source routing splits a
// fraud ring's edges across every shard (each consecutive member pair has
// different home shards), so no per-shard view ever contains the ring at
// its real density — the blind spot the boundary-edge index + stitch pass
// close. The sweep reports argmax vs stitched recall/density against the
// 1-shard merged detector, plus the retained aggregate throughput, and
// emits BENCH_stitching.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "bench/bench_meta.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "stream/labeled_stream.h"
#include "stream/replayer.h"

namespace spade::bench {
namespace {

struct TenantConfig {
  std::size_t tenants = 8;
  std::size_t vertices_per_tenant = 2048;
  std::size_t initial_per_tenant = 4000;
  std::size_t stream_per_tenant = 6000;
  /// Legitimate dense cluster present from t=0 in every tenant. It pins the
  /// benign-classification threshold (Definition 4.1 compares against the
  /// current best density) to the same value in every shard configuration,
  /// so 1-shard and N-shard runs do identical detection work per edge and
  /// the sweep compares reorder cost, not vigilance. Without it a merged
  /// detector inherits the *global* max density as its threshold and
  /// silently under-detects the other tenants.
  std::size_t whale_size = 8;
  std::size_t whale_edges = 100;
  double whale_weight = 40.0;
  /// Fraud ring injected mid-stream; overtakes the whale and must alert.
  std::size_t ring_size = 6;
  std::size_t ring_edges = 120;
  double ring_weight = 60.0;
  std::uint64_t seed = 42;
};

struct TenantWorkload {
  std::size_t num_vertices = 0;
  std::vector<Edge> initial;
  LabeledStream stream;
};

/// Draws an intra-tenant endpoint pair. Endpoints are uniform, not skewed:
/// uniform updates land in the weight-dense middle of the peeling sequence,
/// where a merged multi-tenant sequence interleaves every tenant's vertices
/// and the reorder window between two same-tenant endpoints picks up ~T×
/// more slots — the regime the tenant partition removes. (Continuous
/// weights keep peeling ties singleton.)
Edge RandomTenantEdge(Rng* rng, VertexId base, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{static_cast<VertexId>(base + s), static_cast<VertexId>(base + d),
              1.0 + 9.0 * rng->NextDouble(), 0};
}

/// Builds the interleaved multi-tenant workload: per-tenant initial graphs
/// plus round-robin-interleaved update streams with one fraud ring burst
/// per tenant.
TenantWorkload BuildTenantWorkload(const TenantConfig& cfg) {
  TenantWorkload w;
  w.num_vertices = cfg.tenants * cfg.vertices_per_tenant;
  Rng rng(cfg.seed);

  std::vector<std::vector<Edge>> tenant_stream(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    const auto base =
        static_cast<VertexId>(t * cfg.vertices_per_tenant);
    for (std::size_t i = 0; i < cfg.initial_per_tenant; ++i) {
      w.initial.push_back(
          RandomTenantEdge(&rng, base, cfg.vertices_per_tenant));
    }
    // Whale cluster: heavy legitimate edges among a small vertex set at the
    // top of the tenant's id range (disjoint from the fraud ring below).
    for (std::size_t i = 0; i < cfg.whale_edges; ++i) {
      const auto a = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      auto b = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      while (b == a) {
        b = static_cast<VertexId>(rng.NextBounded(cfg.whale_size));
      }
      const VertexId top = base + static_cast<VertexId>(
                                      cfg.vertices_per_tenant -
                                      cfg.ring_size - cfg.whale_size);
      w.initial.push_back(Edge{top + a, top + b,
                               cfg.whale_weight * (0.9 + 0.2 * rng.NextDouble()),
                               0});
    }
    for (std::size_t i = 0; i < cfg.stream_per_tenant; ++i) {
      tenant_stream[t].push_back(
          RandomTenantEdge(&rng, base, cfg.vertices_per_tenant));
    }
    // Fraud ring: a small vertex set hammered with heavy parallel edges,
    // starting a third of the way into the tenant's stream.
    std::vector<VertexId> ring;
    for (std::size_t i = 0; i < cfg.ring_size; ++i) {
      ring.push_back(static_cast<VertexId>(
          base + cfg.vertices_per_tenant - 1 - i));
    }
    const std::size_t burst_at = tenant_stream[t].size() / 3;
    for (std::size_t i = 0; i < cfg.ring_edges; ++i) {
      const VertexId s = ring[i % ring.size()];
      const VertexId d = ring[(i + 1) % ring.size()];
      Edge e{s, d, cfg.ring_weight * (0.9 + 0.2 * rng.NextDouble()), 0};
      tenant_stream[t].insert(
          tenant_stream[t].begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(burst_at + i, tenant_stream[t].size())),
          e);
    }
    w.stream.group_vertices.push_back(ring);
  }

  // Round-robin interleave (tenant traffic multiplexed at the endpoint).
  Timestamp ts = 0;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (std::size_t t = 0; t < cfg.tenants; ++t) {
      if (i >= tenant_stream[t].size()) continue;
      any = true;
      Edge e = tenant_stream[t][i];
      e.ts = ts++;
      const bool fraud = e.weight >= cfg.ring_weight * 0.9;
      w.stream.Append(e, fraud ? static_cast<std::int32_t>(t) : kNormalEdge);
    }
    if (!any) break;
  }
  return w;
}

/// One detector per shard, each holding the initial graphs of its tenants.
std::vector<Spade> BuildShards(const TenantWorkload& w,
                               const TenantConfig& cfg,
                               std::size_t num_shards) {
  std::vector<std::vector<Edge>> parts(num_shards);
  for (const Edge& e : w.initial) {
    parts[(e.src / cfg.vertices_per_tenant) % num_shards].push_back(e);
  }
  std::vector<Spade> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(w.num_vertices, parts[s]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  return shards;
}

struct SweepEntry {
  std::size_t shards = 0;
  std::size_t edges = 0;
  double wall_s = 0.0;
  double eps = 0.0;
  double speedup = 1.0;
  double fraud_p50_us = 0.0;
  double fraud_p95_us = 0.0;
  std::size_t groups_detected = 0;
  std::uint64_t alerts = 0;
  std::uint64_t detections = 0;
};

SweepEntry RunConfig(const TenantWorkload& w, const TenantConfig& cfg,
                     std::size_t num_shards) {
  ServiceReplayOptions options;
  options.num_producers = 4;
  options.service.shard.block_when_full = true;
  // Tight flush cadence: the sweep measures reorder cost, and a 64-edge
  // grouping window keeps flush work the dominant term at every shard
  // count (detection cadence is identical across configs by construction).
  options.service.shard.detect_every = 64;
  options.service.partitioner =
      TenantPartitioner(static_cast<VertexId>(cfg.vertices_per_tenant));

  const ServiceReplayReport report = ReplayThroughService(
      BuildShards(w, cfg, num_shards), w.stream, options);

  SweepEntry e;
  e.shards = num_shards;
  e.edges = report.edges_submitted;
  e.wall_s = report.wall_seconds;
  e.eps = report.SubmitThroughputEps();
  e.fraud_p50_us = report.fraud_latency_micros.count() > 0
                       ? report.fraud_latency_micros.Percentile(50)
                       : 0.0;
  e.fraud_p95_us = report.fraud_latency_micros.count() > 0
                       ? report.fraud_latency_micros.Percentile(95)
                       : 0.0;
  e.groups_detected = report.groups_detected;
  e.alerts = report.alerts;
  e.detections = report.detections;
  return e;
}

// ---------------------------------------------------------------------------
// Cross-shard ring workload (stitching bench).

struct StitchConfig {
  std::size_t vertices = 8192;
  std::size_t background_edges = 64000;
  /// One legitimate whale clique per home-residue class (mod 8). Members of
  /// a clique share their splitmix home at 8 shards — hence also at 4 and 2
  /// (equal mod 8 implies equal mod its divisors) — so every shard at every
  /// swept count holds whales of the same density and the benign threshold
  /// (Definition 4.1) is pinned equal across configs, merged included.
  std::size_t whale_size = 8;
  std::size_t whale_edges = 100;
  double whale_weight = 40.0;
  /// Fraud ring whose 8 members cover all 8 home residues: every
  /// consecutive pair crosses shards at 2, 4 and 8 shards, so the ring is
  /// invisible to any per-shard argmax and fully boundary-indexed.
  std::size_t ring_size = 8;
  std::size_t ring_edges = 160;
  double ring_weight = 60.0;
  std::uint64_t seed = 4242;
};

struct StitchWorkload {
  std::size_t num_vertices = 0;
  LabeledStream stream;
  std::vector<VertexId> ring;
};

StitchWorkload BuildStitchWorkload(const StitchConfig& cfg) {
  StitchWorkload w;
  w.num_vertices = cfg.vertices;
  Rng rng(cfg.seed);
  const Partitioner hash = HashOfSourcePartitioner();
  const auto residue = [&hash](VertexId v) { return hash.home(v) % 8; };

  // Bucket vertex ids by home residue; whales and the ring draw from them.
  std::vector<std::vector<VertexId>> pools(8);
  for (VertexId v = 0; v < cfg.vertices; ++v) {
    pools[residue(v)].push_back(v);
  }
  std::unordered_set<VertexId> reserved;
  for (std::size_t r = 0; r < 8; ++r) {
    w.ring.push_back(pools[r][0]);
    reserved.insert(pools[r][0]);
  }

  std::vector<Edge> edges;
  // Whales first so every shard's threshold is anchored before the random
  // traffic arrives.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < cfg.whale_edges; ++i) {
      const auto a = pools[r][1 + rng.NextBounded(cfg.whale_size)];
      auto b = pools[r][1 + rng.NextBounded(cfg.whale_size)];
      while (b == a) b = pools[r][1 + rng.NextBounded(cfg.whale_size)];
      edges.push_back(
          Edge{a, b, cfg.whale_weight * (0.9 + 0.2 * rng.NextDouble()), 0});
    }
  }
  for (std::size_t i = 0; i < cfg.background_edges; ++i) {
    auto s = static_cast<VertexId>(rng.NextBounded(cfg.vertices));
    auto d = static_cast<VertexId>(rng.NextBounded(cfg.vertices));
    while (d == s || reserved.count(s) != 0 || reserved.count(d) != 0) {
      s = static_cast<VertexId>(rng.NextBounded(cfg.vertices));
      d = static_cast<VertexId>(rng.NextBounded(cfg.vertices));
    }
    edges.push_back(Edge{s, d, 1.0 + 9.0 * rng.NextDouble(), 0});
  }
  // Ring burst a third of the way in, consecutive members always in
  // different home shards.
  const std::size_t burst_at = edges.size() / 3;
  for (std::size_t i = 0; i < cfg.ring_edges; ++i) {
    const VertexId s = w.ring[i % w.ring.size()];
    const VertexId d = w.ring[(i + 1) % w.ring.size()];
    edges.insert(
        edges.begin() + static_cast<std::ptrdiff_t>(
                            std::min(burst_at + i, edges.size())),
        Edge{s, d, cfg.ring_weight * (0.9 + 0.2 * rng.NextDouble()), 0});
  }

  Timestamp ts = 0;
  for (Edge e : edges) {
    e.ts = ts++;
    const bool fraud = e.weight >= cfg.ring_weight * 0.9;
    w.stream.Append(e, fraud ? 0 : kNormalEdge);
  }
  w.stream.group_vertices.push_back(w.ring);
  return w;
}

std::vector<Spade> BuildHashShards(const StitchWorkload& w,
                                   std::size_t num_shards) {
  std::vector<Spade> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(w.num_vertices, {});
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  return shards;
}

double RingRecall(const std::vector<VertexId>& ring,
                  const std::vector<VertexId>& members) {
  const std::unordered_set<VertexId> set(members.begin(), members.end());
  std::size_t hit = 0;
  for (const VertexId v : ring) hit += set.count(v);
  return ring.empty() ? 0.0
                      : static_cast<double>(hit) /
                            static_cast<double>(ring.size());
}

struct StitchEntry {
  std::size_t shards = 0;
  double eps = 0.0;
  double speedup = 1.0;
  double argmax_recall = 0.0;
  double argmax_density = 0.0;
  double stitched_recall = 0.0;
  double stitched_density = 0.0;
  double stitch_ms = 0.0;
  std::uint64_t boundary_edges = 0;
  std::size_t seam_vertices = 0;
  std::size_t seam_edges = 0;
  bool stitched_flag = false;
};

StitchEntry RunStitchConfig(const StitchWorkload& w, std::size_t num_shards) {
  ServiceReplayOptions options;
  options.num_producers = 4;
  options.final_stitch = true;
  options.service.shard.block_when_full = true;
  options.service.shard.detect_every = 64;
  options.service.partitioner = HashOfSourcePartitioner();

  const ServiceReplayReport report =
      ReplayThroughService(BuildHashShards(w, num_shards), w.stream, options);

  StitchEntry e;
  e.shards = num_shards;
  e.eps = report.SubmitThroughputEps();
  e.argmax_recall = RingRecall(w.ring, report.final_argmax.members);
  e.argmax_density = report.final_argmax.density;
  e.stitched_recall = RingRecall(w.ring, report.final_stitched.members);
  e.stitched_density = report.final_stitched.density;
  e.stitch_ms = report.stitch_millis;
  e.boundary_edges = report.boundary_edges;
  e.seam_vertices = report.final_stitched.seam_vertices;
  e.seam_edges = report.final_stitched.seam_edges;
  e.stitched_flag = report.final_stitched.stitched;
  return e;
}

// ------------------------------------------------------------------------
// Message-driven stitching: freshness sweep + boundary residency A/B.
// ------------------------------------------------------------------------

/// One event-driven configuration of the cross-shard ring workload: how
/// long until the ring is visible through CurrentGlobalCommunity with NO
/// explicit StitchNow call, and how many recorded boundary edges the
/// stitcher still had not folded once ingest drained (the stitched read's
/// staleness in edges).
struct FreshnessEntry {
  double trigger_weight = 0.0;
  std::uint32_t interval_ms = 0;
  std::uint64_t stitch_triggers = 0;
  std::uint64_t stitch_passes = 0;
  std::uint64_t unconsumed_after_drain = 0;
  bool stitched_visible = false;
  double visibility_ms = 0.0;
  double stitched_recall = 0.0;
};

FreshnessEntry RunFreshnessConfig(const StitchWorkload& w,
                                  std::size_t num_shards,
                                  double trigger_weight,
                                  std::uint32_t interval_ms) {
  ShardedDetectionServiceOptions options;
  options.partitioner = HashOfSourcePartitioner();
  options.shard.block_when_full = true;
  options.shard.detect_every = 64;
  options.stitch.interval_ms = interval_ms;
  options.stitch.trigger_weight = trigger_weight;
  ShardedDetectionService service(BuildHashShards(w, num_shards), nullptr,
                                  options);

  const std::vector<Edge>& edges = w.stream.edges;
  constexpr std::size_t kChunk = 512;
  for (std::size_t i = 0; i < edges.size(); i += kChunk) {
    const std::size_t len = std::min(kChunk, edges.size() - i);
    (void)service.SubmitBatch(std::span<const Edge>(edges.data() + i, len));
  }
  service.Drain();

  FreshnessEntry e;
  e.trigger_weight = trigger_weight;
  e.interval_ms = interval_ms;
  const auto drained = std::chrono::steady_clock::now();
  for (int i = 0; i < 2000; ++i) {
    const GlobalCommunity g = service.CurrentGlobalCommunity();
    if (g.stitched) {
      e.stitched_visible = true;
      e.visibility_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - drained)
              .count();
      e.stitched_recall = RingRecall(w.ring, g.members);
      break;
    }
    // No stitcher configured: the ring can never become visible. Bail
    // instead of burning the full poll budget.
    if (trigger_weight <= 0.0 && interval_ms == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ShardedServiceStats stats = service.GetStats();
  e.stitch_triggers = stats.stitch_triggers;
  e.stitch_passes = stats.stitch_passes;
  e.unconsumed_after_drain = stats.boundary_unconsumed_edges;
  service.Stop();
  return e;
}

/// Boundary-index residency under a windowed, repeat-heavy stream holding
/// 4 windows of history: with compaction the consumed queue prefix
/// collapses to per-pair per-vertex weight sums, so resident bytes track
/// the (small) hot vertex set instead of the window's edge count.
struct ResidencyResult {
  std::size_t window_edges = 0;
  std::size_t resident_compacted = 0;
  std::size_t resident_raw = 0;
  std::uint64_t compacted_edges = 0;
  double ratio = 1.0;
};

ResidencyResult RunResidencyAB(std::size_t num_shards) {
  constexpr std::size_t kVertices = 1024;
  constexpr std::size_t kHotPool = 256;   // repeat-heavy: edges recur
  constexpr std::size_t kEdges = 65536;
  constexpr Timestamp kSpan = 16384;      // stream holds 4 windows

  std::vector<Edge> edges;
  edges.reserve(kEdges);
  Rng rng(777);
  for (std::size_t i = 0; i < kEdges; ++i) {
    auto s = static_cast<VertexId>(rng.NextBounded(kHotPool));
    auto d = static_cast<VertexId>(rng.NextBounded(kHotPool));
    while (d == s) d = static_cast<VertexId>(rng.NextBounded(kHotPool));
    edges.push_back(Edge{s, d, 1.0 + 9.0 * rng.NextDouble(),
                         static_cast<Timestamp>(i)});
  }

  ResidencyResult r;
  r.window_edges = static_cast<std::size_t>(kSpan);
  for (const bool compact : {true, false}) {
    ShardedDetectionServiceOptions options;
    options.partitioner = HashOfSourcePartitioner();
    options.shard.block_when_full = true;
    options.shard.detect_every = 64;
    options.window.span = kSpan;
    options.stitch.compact_boundary = compact;

    std::vector<Spade> shards;
    for (std::size_t s = 0; s < num_shards; ++s) {
      Spade spade;
      spade.SetSemantics(MakeDW());
      if (!spade.BuildGraph(kVertices, {}).ok()) std::exit(1);
      shards.push_back(std::move(spade));
    }
    ShardedDetectionService service(std::move(shards), nullptr, options);

    // Stitch passes interleave with ingest (16 per stream) — each fold
    // consumes the queues, and with compaction on, collapses them.
    constexpr std::size_t kSlice = kEdges / 16;
    for (std::size_t i = 0; i < kEdges; i += kSlice) {
      (void)service.SubmitBatch(
          std::span<const Edge>(edges.data() + i,
                                std::min(kSlice, kEdges - i)));
      service.Drain();
      (void)service.StitchNow();
    }
    const ShardedServiceStats stats = service.GetStats();
    if (compact) {
      r.resident_compacted = stats.boundary_resident_bytes;
      r.compacted_edges = stats.boundary_compacted_edges;
    } else {
      r.resident_raw = stats.boundary_resident_bytes;
    }
    service.Stop();
  }
  if (r.resident_raw > 0) {
    r.ratio = static_cast<double>(r.resident_compacted) /
              static_cast<double>(r.resident_raw);
  }
  return r;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  TenantConfig cfg;
  const TenantWorkload w = BuildTenantWorkload(cfg);
  std::printf("# sharded service sweep: %zu tenants, %zu vertices, "
              "%zu initial edges, %zu stream edges, %zu fraud rings\n\n",
              cfg.tenants, w.num_vertices, w.initial.size(), w.stream.size(),
              w.stream.group_vertices.size());
  std::printf("%7s %10s %9s %12s %9s %12s %12s %9s %7s %8s\n", "shards", "edges",
              "wall(s)", "edges/s", "speedup", "fraud p50", "fraud p95",
              "detected", "alerts", "detects");

  // One discarded warm-up run so the 1-shard baseline does not pay the
  // allocator/page-fault cold start that later configs skip (that would
  // inflate every speedup_vs_1).
  (void)RunConfig(w, cfg, 1);

  std::vector<SweepEntry> entries;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    SweepEntry e = RunConfig(w, cfg, shards);
    if (!entries.empty()) e.speedup = e.eps / entries.front().eps;
    std::printf("%7zu %10zu %9.3f %12.0f %8.2fx %10.0fus %10.0fus %6zu/%zu %7llu %8llu\n",
                e.shards, e.edges, e.wall_s, e.eps, e.speedup, e.fraud_p50_us,
                e.fraud_p95_us, e.groups_detected, cfg.tenants,
                static_cast<unsigned long long>(e.alerts),
                static_cast<unsigned long long>(e.detections));
    entries.push_back(e);
  }

  const std::string path = out_dir + "/BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfgjson[128];
    std::snprintf(cfgjson, sizeof(cfgjson),
                  "{\"tenants\": %zu, \"semantics\": \"DW\"}",
                  cfg.tenants);
    spade::bench::WriteBenchMeta(f, cfgjson);
  }
  std::fprintf(f, "  \"workload\": {\"tenants\": %zu, \"vertices\": %zu, "
               "\"initial_edges\": %zu, \"stream_edges\": %zu},\n",
               cfg.tenants, w.num_vertices, w.initial.size(),
               w.stream.size());
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SweepEntry& e = entries[i];
    std::fprintf(
        f,
        "    {\"shards\": %zu, \"edges\": %zu, \"wall_s\": %.4f, "
        "\"edges_per_s\": %.0f, \"speedup_vs_1\": %.2f, "
        "\"fraud_p50_us\": %.0f, \"fraud_p95_us\": %.0f, "
        "\"groups_detected\": %zu, \"alerts\": %llu, "
        "\"detections\": %llu}%s\n",
        e.shards, e.edges, e.wall_s, e.eps, e.speedup, e.fraud_p50_us,
        e.fraud_p95_us, e.groups_detected,
        static_cast<unsigned long long>(e.alerts),
        static_cast<unsigned long long>(e.detections),
        i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());

  // ---- cross-shard ring workload (stitching sweep) ----
  StitchConfig scfg;
  const StitchWorkload sw = BuildStitchWorkload(scfg);
  std::printf("\n# cross-shard ring sweep: %zu vertices, %zu stream edges, "
              "ring of %zu split across every shard\n\n",
              sw.num_vertices, sw.stream.size(), sw.ring.size());
  std::printf("%7s %12s %9s %13s %15s %10s %10s %10s\n", "shards", "edges/s",
              "speedup", "argmax-recall", "stitched-recall", "density",
              "merged", "stitch-ms");

  (void)RunStitchConfig(sw, 1);  // warm-up, same rationale as above

  std::vector<StitchEntry> sentries;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    StitchEntry e = RunStitchConfig(sw, shards);
    if (!sentries.empty()) e.speedup = e.eps / sentries.front().eps;
    const double merged_density =
        sentries.empty() ? e.stitched_density : sentries.front().stitched_density;
    std::printf("%7zu %12.0f %8.2fx %13.2f %15.2f %10.1f %10.1f %10.1f\n",
                e.shards, e.eps, e.speedup, e.argmax_recall,
                e.stitched_recall, e.stitched_density, merged_density,
                e.stitch_ms);
    sentries.push_back(e);
  }

  // ---- freshness sweep: how fast does the ring surface with no explicit
  // stitch call, and how far behind do the queues sit after ingest? ----
  std::printf("\n# freshness sweep (4 shards, event-driven stitching)\n\n");
  std::printf("%15s %11s %9s %8s %12s %13s %8s\n", "trigger-weight",
              "interval-ms", "triggers", "passes", "unconsumed",
              "visible-ms", "recall");
  std::vector<FreshnessEntry> fentries;
  for (const auto& [tw, ims] :
       std::vector<std::pair<double, std::uint32_t>>{
           {0.0, 0}, {0.0, 20}, {4096.0, 0}, {256.0, 0}}) {
    const FreshnessEntry e = RunFreshnessConfig(sw, 4, tw, ims);
    std::printf("%15.0f %11u %9llu %8llu %12llu %13s %8.2f\n",
                e.trigger_weight, e.interval_ms,
                static_cast<unsigned long long>(e.stitch_triggers),
                static_cast<unsigned long long>(e.stitch_passes),
                static_cast<unsigned long long>(e.unconsumed_after_drain),
                e.stitched_visible
                    ? std::to_string(e.visibility_ms).substr(0, 6).c_str()
                    : "never",
                e.stitched_recall);
    fentries.push_back(e);
  }

  // ---- boundary residency A/B: compaction on vs off, windowed stream
  // holding 4 windows of repeat-heavy history ----
  const ResidencyResult rr = RunResidencyAB(4);
  std::printf("\n# boundary residency (4 shards, windowed 4x history): "
              "compacted %zu B vs raw %zu B (ratio %.3f, %llu edges in "
              "blocks)\n",
              rr.resident_compacted, rr.resident_raw, rr.ratio,
              static_cast<unsigned long long>(rr.compacted_edges));

  const std::string spath = out_dir + "/BENCH_stitching.json";
  std::FILE* sf = std::fopen(spath.c_str(), "w");
  if (sf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", spath.c_str());
    return 1;
  }
  std::fprintf(sf, "{\n");
  {
    char cfgjson[128];
    std::snprintf(cfgjson, sizeof(cfgjson),
                  "{\"ring_size\": %zu, \"semantics\": \"DW\"}",
                  scfg.ring_size);
    spade::bench::WriteBenchMeta(sf, cfgjson);
  }
  std::fprintf(sf,
               "  \"workload\": {\"vertices\": %zu, \"stream_edges\": %zu, "
               "\"ring_size\": %zu, \"ring_edges\": %zu},\n",
               sw.num_vertices, sw.stream.size(), scfg.ring_size,
               scfg.ring_edges);
  std::fprintf(sf, "  \"merged_density\": %.4f,\n",
               sentries.front().stitched_density);
  std::fprintf(sf, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sentries.size(); ++i) {
    const StitchEntry& e = sentries[i];
    const double merged_density = sentries.front().stitched_density;
    std::fprintf(
        sf,
        "    {\"shards\": %zu, \"edges_per_s\": %.0f, \"speedup_vs_1\": "
        "%.2f, \"argmax_recall\": %.3f, \"argmax_density\": %.4f, "
        "\"stitched_recall\": %.3f, \"stitched_density\": %.4f, "
        "\"density_ratio_vs_merged\": %.4f, \"stitched\": %s, "
        "\"stitch_ms\": %.2f, \"boundary_edges\": %llu, "
        "\"seam_vertices\": %zu, \"seam_edges\": %zu}%s\n",
        e.shards, e.eps, e.speedup, e.argmax_recall, e.argmax_density,
        e.stitched_recall, e.stitched_density,
        merged_density > 0.0 ? e.stitched_density / merged_density : 0.0,
        e.stitched_flag ? "true" : "false", e.stitch_ms,
        static_cast<unsigned long long>(e.boundary_edges), e.seam_vertices,
        e.seam_edges, i + 1 == sentries.size() ? "" : ",");
  }
  std::fprintf(sf, "  ],\n");
  std::fprintf(sf, "  \"freshness\": [\n");
  for (std::size_t i = 0; i < fentries.size(); ++i) {
    const FreshnessEntry& e = fentries[i];
    std::fprintf(
        sf,
        "    {\"trigger_weight\": %.0f, \"interval_ms\": %u, "
        "\"stitch_triggers\": %llu, \"stitch_passes\": %llu, "
        "\"unconsumed_edges_after_drain\": %llu, \"stitched_visible\": %s, "
        "\"visibility_ms\": %.2f, \"stitched_recall\": %.3f}%s\n",
        e.trigger_weight, e.interval_ms,
        static_cast<unsigned long long>(e.stitch_triggers),
        static_cast<unsigned long long>(e.stitch_passes),
        static_cast<unsigned long long>(e.unconsumed_after_drain),
        e.stitched_visible ? "true" : "false", e.visibility_ms,
        e.stitched_recall, i + 1 == fentries.size() ? "" : ",");
  }
  std::fprintf(sf, "  ],\n");
  std::fprintf(sf,
               "  \"residency\": {\"shards\": 4, \"window_edges\": %zu, "
               "\"resident_bytes_compacted\": %zu, \"resident_bytes_raw\": "
               "%zu, \"compacted_over_raw_ratio\": %.4f, "
               "\"compacted_edges\": %llu}\n",
               rr.window_edges, rr.resident_compacted, rr.resident_raw,
               rr.ratio, static_cast<unsigned long long>(rr.compacted_edges));
  std::fprintf(sf, "}\n");
  std::fclose(sf);
  std::printf("\nwrote %s\n", spath.c_str());
  return 0;
}
