// Ablation: community-extraction strategy.
//
// Spade's reorder is O(affected area), but Detect() rescans suffix means in
// O(n) (DESIGN.md §2.7). This harness separates the two costs across graph
// sizes, quantifying when lazy detection (detect once per batch) matters
// versus detect-per-edge.

#include <cstdio>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  std::printf("# ablation: reorder cost vs Detect() extraction cost (DW)\n");
  std::printf("%-10s %10s %10s %16s %16s %16s\n", "dataset", "|V|", "|E|",
              "reorder(us/e)", "detect(us)", "insert+detect(us/e)");

  for (const char* name : {"Grab1", "Grab2", "Grab3", "Grab4"}) {
    const Workload w = BuildWorkload(name, ScaleFor(name), /*seed=*/91);

    // Reorder-only replay.
    double reorder_us;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      Timer timer;
      for (const Edge& e : w.stream.edges) {
        if (!spade.ApplyEdge(e).ok()) return 1;
      }
      reorder_us =
          timer.ElapsedMicros() / static_cast<double>(w.stream.size());
    }

    // One Detect() on a dirty state.
    double detect_us;
    std::size_t nv, ne;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      std::vector<Edge> all(w.stream.edges);
      if (!spade.ApplyBatchEdges(all).ok()) return 1;
      if (!spade.ApplyEdge(w.stream.edges.front()).ok()) return 1;
      Timer timer;
      volatile double guard = spade.Detect().density;
      (void)guard;
      detect_us = timer.ElapsedMicros();
      nv = spade.graph().NumVertices();
      ne = spade.graph().NumEdges();
    }

    // Insert + Detect on every edge.
    double both_us;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      Timer timer;
      for (const Edge& e : w.stream.edges) {
        if (!spade.ApplyEdge(e).ok()) return 1;
        volatile double guard = spade.Detect().density;
        (void)guard;
      }
      both_us = timer.ElapsedMicros() / static_cast<double>(w.stream.size());
    }

    std::printf("%-10s %10zu %10zu %16.3f %16.3f %16.3f\n", name, nv, ne,
                reorder_us, detect_us, both_us);
    std::fflush(stdout);
  }
  std::printf("\n# Detect() is array-sequential O(n); per-edge detection "
              "multiplies cost by the scan/reorder ratio, which is why the "
              "deployment detects per flush, not per edge.\n");
  return 0;
}
