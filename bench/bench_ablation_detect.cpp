// Ablation: community-extraction strategy.
//
// Spade's reorder is O(affected area); Detect() used to rescan suffix means
// in O(n) and now costs O(span + n/B) through the blocked detection index
// (DESIGN.md §2.7, §3.2). This harness separates the two costs across graph
// sizes, quantifying when lazy detection (detect once per batch) matters
// versus detect-per-edge.

#include <cstdio>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  std::printf("# ablation: reorder cost vs Detect() extraction cost (DW)\n");
  std::printf("%-10s %10s %10s %16s %16s %16s\n", "dataset", "|V|", "|E|",
              "reorder(us/e)", "detect(us)", "insert+detect(us/e)");

  for (const char* name : {"Grab1", "Grab2", "Grab3", "Grab4"}) {
    const Workload w = BuildWorkload(name, ScaleFor(name), /*seed=*/91);

    // Reorder-only replay.
    double reorder_us;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      Timer timer;
      for (const Edge& e : w.stream.edges) {
        if (!spade.ApplyEdge(e).ok()) return 1;
      }
      reorder_us =
          timer.ElapsedMicros() / static_cast<double>(w.stream.size());
    }

    // One Detect() on a fully dirty state (cold start: every block of the
    // detection index rebuilds, the worst case a single call can hit).
    double detect_us;
    std::size_t nv, ne;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      std::vector<Edge> all(w.stream.edges);
      if (!spade.ApplyBatchEdges(all).ok()) return 1;
      if (!spade.ApplyEdge(w.stream.edges.front()).ok()) return 1;
      Timer timer;
      volatile double guard = spade.Detect().density;
      (void)guard;
      detect_us = timer.ElapsedMicros();
      nv = spade.graph().NumVertices();
      ne = spade.graph().NumEdges();
    }

    // Insert + Detect on every edge.
    double both_us;
    {
      Spade spade = MakeSpadeFor(w, "DW");
      Timer timer;
      for (const Edge& e : w.stream.edges) {
        if (!spade.ApplyEdge(e).ok()) return 1;
        volatile double guard = spade.Detect().density;
        (void)guard;
      }
      both_us = timer.ElapsedMicros() / static_cast<double>(w.stream.size());
    }

    std::printf("%-10s %10zu %10zu %16.3f %16.3f %16.3f\n", name, nv, ne,
                reorder_us, detect_us, both_us);
    std::fflush(stdout);
  }
  std::printf("\n# The one-shot column is a cold-start Detect() (every block "
              "rebuilds, O(n)); steady-state detection after a single edge "
              "only rebuilds the rewritten span (DESIGN.md §3.2), which is "
              "why detect-per-edge is now viable and per-flush detection is "
              "a throughput choice rather than a necessity.\n");
  return 0;
}
