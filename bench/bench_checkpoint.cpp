// Checkpoint-cost sweep: full vs delta SaveState as the graph grows at a
// fixed ingest rate (ISSUE 4 acceptance).
//
// Full checkpointing rewrites every shard's snapshot, so its cost is
// O(graph) — it grows with the age of the deployment even when traffic is
// flat. Delta checkpointing (per-shard applied-history segments + a
// boundary tail + a tiny manifest) costs O(edges since the last
// checkpoint). The sweep holds per-checkpoint traffic constant and scales
// the resident graph: full save time/bytes climb with graph size while
// delta save time/bytes stay flat, so the ratio — the number the JSON is
// really for — grows without bound. The acceptance bar is >= 5x on the
// large-graph / low-traffic configuration; on the largest config here the
// byte ratio alone is in the hundreds.
//
// A second section pins the chain behavior at fixed graph size: per-epoch
// delta cost is flat across a 8-epoch chain, and the chain restores to the
// final epoch (sanity-checking that the cheap saves are actually
// restorable, not just small).
//
// Emits BENCH_checkpoint.json (path = argv[1], default ./). The repo
// commits a reference copy; CI uploads a fresh one per run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "bench/bench_meta.h"
#include "common/timer.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"

namespace spade::bench {

// Outside the anonymous namespace: main() prints them into the JSON, so
// the emitted workload description can never drift from what actually ran.
constexpr std::size_t kShards = 4;
constexpr std::size_t kTrafficEdges = 4000;
constexpr std::size_t kChainVertices = 65536;

namespace {

Edge RandomEdge(Rng* rng, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{s, d, 1.0 + 9.0 * rng->NextDouble(), 0};
}

std::unique_ptr<ShardedDetectionService> BuildService(
    std::size_t num_vertices, const std::vector<Edge>& initial) {
  const Partitioner partitioner = HashOfSourcePartitioner();
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) {
    parts[partitioner.edge_key(e) % kShards].push_back(e);
  }
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(num_vertices, parts[s]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  // The sweep isolates full-vs-delta cost; keep the policy out of the way.
  options.checkpoint.max_chain_length = 1 << 20;
  options.checkpoint.max_delta_base_ratio = 1e18;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

struct SweepRow {
  std::size_t vertices = 0;
  std::size_t initial_edges = 0;
  double full_ms = 0.0;
  std::uint64_t full_bytes = 0;
  double delta_ms = 0.0;
  std::uint64_t delta_bytes = 0;
  std::size_t delta_edges = 0;
};

SweepRow RunConfig(std::size_t num_vertices, std::uint64_t seed,
                   const std::string& dir) {
  SweepRow row;
  row.vertices = num_vertices;
  row.initial_edges = num_vertices * 5;
  Rng rng(seed);
  std::vector<Edge> initial;
  initial.reserve(row.initial_edges);
  for (std::size_t i = 0; i < row.initial_edges; ++i) {
    initial.push_back(RandomEdge(&rng, num_vertices));
  }
  auto service = BuildService(num_vertices, initial);

  // Checkpoint baseline (not measured: the first save in a directory is
  // always full, whatever the mode).
  ShardedDetectionService::SaveInfo info;
  Status st = service->SaveState(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "baseline save failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  // Fixed traffic slice, then the measured delta checkpoint.
  std::vector<Edge> traffic;
  traffic.reserve(kTrafficEdges);
  for (std::size_t i = 0; i < kTrafficEdges; ++i) {
    traffic.push_back(RandomEdge(&rng, num_vertices));
  }
  service->SubmitBatch(traffic);
  service->Drain();
  {
    Timer timer;
    st = service->SaveState(dir, ShardedDetectionService::SaveMode::kDelta,
                            &info);
    row.delta_ms = timer.ElapsedMicros() * 1e-3;
  }
  if (!st.ok() || !info.delta) {
    std::fprintf(stderr, "delta save failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  row.delta_bytes = info.bytes_written;
  row.delta_edges = info.delta_edges;

  // The measured full checkpoint of the same detector state (what every
  // checkpoint would cost without the delta path).
  {
    Timer timer;
    st = service->SaveState(dir, ShardedDetectionService::SaveMode::kFull,
                            &info);
    row.full_ms = timer.ElapsedMicros() * 1e-3;
  }
  if (!st.ok() || info.delta) {
    std::fprintf(stderr, "full save failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  row.full_bytes = info.bytes_written;
  return row;
}

struct ChainReport {
  std::size_t epochs = 0;
  double delta_ms_min = 1e18, delta_ms_max = 0.0;
  std::uint64_t delta_bytes_min = ~0ull, delta_bytes_max = 0;
  double restore_ms = 0.0;
  std::uint64_t restored_epoch = 0;
  std::size_t replayed_edges = 0;
  bool restore_ok = false;
};

ChainReport RunChain(std::size_t num_vertices, std::uint64_t seed,
                     const std::string& dir) {
  ChainReport report;
  Rng rng(seed);
  std::vector<Edge> initial;
  for (std::size_t i = 0; i < num_vertices * 5; ++i) {
    initial.push_back(RandomEdge(&rng, num_vertices));
  }
  auto service = BuildService(num_vertices, initial);
  service->SaveState(dir);

  constexpr std::size_t kEpochs = 8;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::vector<Edge> traffic;
    for (std::size_t i = 0; i < kTrafficEdges; ++i) {
      traffic.push_back(RandomEdge(&rng, num_vertices));
    }
    service->SubmitBatch(traffic);
    service->Drain();
    ShardedDetectionService::SaveInfo info;
    Timer timer;
    const Status st = service->SaveState(
        dir, ShardedDetectionService::SaveMode::kDelta, &info);
    const double ms = timer.ElapsedMicros() * 1e-3;
    if (!st.ok()) {
      std::fprintf(stderr, "chain save failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    report.delta_ms_min = std::min(report.delta_ms_min, ms);
    report.delta_ms_max = std::max(report.delta_ms_max, ms);
    report.delta_bytes_min = std::min(report.delta_bytes_min,
                                      info.bytes_written);
    report.delta_bytes_max = std::max(report.delta_bytes_max,
                                      info.bytes_written);
  }
  report.epochs = kEpochs;

  auto restored = BuildService(num_vertices, initial);
  ShardedDetectionService::RestoreInfo rinfo;
  Timer timer;
  const Status st = restored->RestoreState(dir, &rinfo);
  report.restore_ms = timer.ElapsedMicros() * 1e-3;
  report.restore_ok = st.ok();
  report.restored_epoch = rinfo.restored_epoch;
  report.replayed_edges = rinfo.delta_edges_replayed;
  return report;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::string snap_dir = out_dir + "/bench_checkpoint_snapshots";

  const std::size_t vertex_sweep[] = {16384, 32768, 65536, 131072};
  std::vector<spade::bench::SweepRow> rows;
  for (const std::size_t v : vertex_sweep) {
    rows.push_back(spade::bench::RunConfig(v, 42 + v, snap_dir));
    std::fprintf(stderr,
                 "vertices=%zu full=%.1fms/%llu B delta=%.1fms/%llu B\n",
                 rows.back().vertices, rows.back().full_ms,
                 static_cast<unsigned long long>(rows.back().full_bytes),
                 rows.back().delta_ms,
                 static_cast<unsigned long long>(rows.back().delta_bytes));
  }
  const spade::bench::ChainReport chain =
      spade::bench::RunChain(spade::bench::kChainVertices, 77, snap_dir);

  const std::string path = out_dir + "/BENCH_checkpoint.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfg[128];
    std::snprintf(cfg, sizeof(cfg),
                  "{\"shards\": %zu, \"chain_vertices\": %zu}",
                  spade::bench::kShards, spade::bench::kChainVertices);
    spade::bench::WriteBenchMeta(f, cfg);
  }
  std::fprintf(f,
               "  \"workload\": {\"shards\": %zu, "
               "\"traffic_edges_per_checkpoint\": %zu, "
               "\"initial_edges_per_vertex\": 5, \"semantics\": \"DW\"},\n",
               spade::bench::kShards, spade::bench::kTrafficEdges);
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"vertices\": %zu, \"initial_edges\": %zu, "
        "\"full_save_ms\": %.2f, \"full_save_bytes\": %llu, "
        "\"delta_save_ms\": %.2f, \"delta_save_bytes\": %llu, "
        "\"delta_edges\": %zu, \"time_speedup\": %.1f, "
        "\"bytes_ratio\": %.1f}%s\n",
        r.vertices, r.initial_edges, r.full_ms,
        static_cast<unsigned long long>(r.full_bytes), r.delta_ms,
        static_cast<unsigned long long>(r.delta_bytes), r.delta_edges,
        r.delta_ms > 0.0 ? r.full_ms / r.delta_ms : 0.0,
        r.delta_bytes > 0
            ? static_cast<double>(r.full_bytes) /
                  static_cast<double>(r.delta_bytes)
            : 0.0,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"chain\": {\"vertices\": %zu, \"epochs\": %zu, "
      "\"delta_save_ms_min\": %.2f, \"delta_save_ms_max\": %.2f, "
      "\"delta_save_bytes_min\": %llu, \"delta_save_bytes_max\": %llu, "
      "\"restore_ok\": %s, \"restored_epoch\": %llu, "
      "\"replayed_edges\": %zu, \"restore_ms\": %.1f}\n",
      spade::bench::kChainVertices, chain.epochs, chain.delta_ms_min,
      chain.delta_ms_max,
      static_cast<unsigned long long>(chain.delta_bytes_min),
      static_cast<unsigned long long>(chain.delta_bytes_max),
      chain.restore_ok ? "true" : "false",
      static_cast<unsigned long long>(chain.restored_epoch),
      chain.replayed_edges, chain.restore_ms);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
