// Ablation: affected-area size distribution.
//
// The paper attributes the up-to-six-orders-of-magnitude speedup to Spade
// "inspecting only the affected area" — on average 3.5e-4 / 7.2e-4 / 2.5e-7
// of the edges for DG / DW / FD. This harness replays single-edge
// insertions and reports the distribution of |V_T| (vertices entering the
// pending queue) and the touched-edge fraction per algorithm.
//
// Expected shape: medians of a few vertices, heavy tail, and FD touching
// the smallest fraction (its down-weighted edges keep reorderings local).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/histogram.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::string profile = "Grab3";
  const Workload w =
      BuildWorkload(profile, ScaleFor(profile), /*seed=*/83, nullptr);
  PrintDatasetHeader({w});

  std::printf("# ablation: affected area per single-edge insertion\n");
  std::printf("%-6s %10s %10s %10s %10s %14s %16s\n", "algo", "V_T.p50",
              "V_T.p99", "V_T.max", "span.p50", "edges.frac",
              "us/edge (mean)");

  for (const Algo& a : Algos()) {
    Spade spade = MakeSpadeFor(w, a.name);
    Summary affected, span;
    double touched_total = 0;
    Timer timer;
    for (const Edge& e : w.stream.edges) {
      const ReorderStats before = spade.cumulative_stats();
      if (!spade.InsertEdge(e).ok()) return 1;
      const ReorderStats& after = spade.cumulative_stats();
      affected.Add(static_cast<double>(after.affected_vertices -
                                       before.affected_vertices));
      span.Add(static_cast<double>(after.rewritten_span -
                                   before.rewritten_span));
      touched_total += static_cast<double>(after.touched_edges -
                                           before.touched_edges);
    }
    const double elapsed = timer.ElapsedMicros();
    const double per_insert_fraction =
        touched_total / static_cast<double>(w.stream.size()) /
        (2.0 * static_cast<double>(spade.graph().NumEdges()));
    std::printf("%-6s %10.0f %10.0f %10.0f %10.0f %14.2e %16.3f\n", a.name,
                affected.Percentile(50), affected.Percentile(99),
                affected.max(), span.Percentile(50), per_insert_fraction,
                elapsed / static_cast<double>(w.stream.size()));
    std::fflush(stdout);
  }
  return 0;
}
