// Figure 9a: prevention ratio versus latency for the edge-grouping
// variants (IncDGG/IncDWG/IncFDG) and the batch-1K variants
// (IncDG-1K/IncDW-1K/IncFD-1K).
//
// Expected shape: prevention decreases as latency grows; the grouping
// variants sit in the high-prevention/low-latency corner, while the
// batch-1K variants pay queueing latency and prevent less — the paper
// reports up to 88.34%/86.53%/92.47% prevention for grouping.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  FraudMix mix;
  mix.instances_per_pattern = 3;
  mix.transactions_per_instance = 250;
  const std::string profile = "Grab1";
  const Workload w =
      BuildWorkload(profile, ScaleFor(profile), /*seed=*/37, &mix);
  PrintDatasetHeader({w});

  std::printf("# Figure 9a rows: variant, mean fraud latency (ms), "
              "prevention ratio\n");
  std::printf("%-10s %14s %12s\n", "variant", "latency(ms)", "prevention");

  for (const Algo& a : Algos()) {
    // Edge grouping.
    {
      Spade spade = MakeSpadeFor(w, a.name);
      ReplayOptions options;
      options.use_edge_grouping = true;
      const ReplayReport r = Replay(&spade, w.stream, options);
      std::printf("%-10s %14.3f %12.4f\n", a.group_name,
                  r.fraud_latency_micros.mean() / 1000.0,
                  r.prevention_ratio);
    }
    // Batch-1K.
    {
      Spade spade = MakeSpadeFor(w, a.name);
      ReplayOptions options;
      options.batch_size = 1000;
      const ReplayReport r = Replay(&spade, w.stream, options);
      std::printf("%-10s %14.3f %12.4f\n",
                  (std::string(a.inc_name) + "-1K").c_str(),
                  r.fraud_latency_micros.mean() / 1000.0,
                  r.prevention_ratio);
    }
    std::fflush(stdout);
  }

  // The latency sweep behind the curve: prevention as a function of the
  // batch-size-induced latency.
  std::printf("\n# prevention-vs-latency sweep (IncDW, batch size varied)\n");
  std::printf("%-8s %14s %12s\n", "batch", "latency(ms)", "prevention");
  for (std::size_t b : {1u, 10u, 50u, 100u, 250u, 500u, 1000u, 2000u}) {
    Spade spade = MakeSpadeFor(w, "DW");
    ReplayOptions options;
    options.batch_size = b;
    const ReplayReport r = Replay(&spade, w.stream, options);
    std::printf("%-8zu %14.3f %12.4f\n", b,
                r.fraud_latency_micros.mean() / 1000.0, r.prevention_ratio);
    std::fflush(stdout);
  }
  return 0;
}
