// Figure 10: efficiency comparison between the static peeling algorithms
// and their Spade-incrementalized versions at |ΔE| = 1, per dataset.
//
// The paper reports up to 4.17e3x (DG), 1.63e3x (DW) and 1.96e6x (FD)
// speedups; the reproduction should show the same ordering with factors
// growing with graph size (the static cost scales with |E| while the
// incremental cost tracks the affected area only).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::vector<std::string> names = {"Grab1",  "Grab2",     "Grab3",
                                          "Grab4",  "Amazon",    "Wiki-Vote",
                                          "Epinion"};
  std::vector<Workload> workloads;
  for (const std::string& name : names) {
    workloads.push_back(BuildWorkload(name, ScaleFor(name), /*seed=*/23));
  }
  PrintDatasetHeader(workloads);

  std::printf("# Figure 10: per-detection elapsed time (us), |dE| = 1\n");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s %9s %9s %9s\n", "dataset",
              "DG", "IncDG", "DW", "IncDW", "FD", "IncFD", "xDG", "xDW",
              "xFD");

  for (const Workload& w : workloads) {
    std::printf("%-10s", w.profile.name.c_str());
    double static_us[3] = {0, 0, 0};
    double inc_us[3] = {0, 0, 0};
    int idx = 0;
    for (const Algo& a : Algos()) {
      // Static: the baseline re-peels the whole graph for every insertion.
      {
        Spade spade = MakeSpadeFor(w, a.name);
        std::vector<Edge> all(w.stream.edges);
        if (!spade.InsertBatchEdges(all).ok()) return 1;
        static_us[idx] = MeasureStaticSeconds(spade.graph()) * 1e6;
      }
      // Incremental: replay the increments one edge at a time.
      {
        Spade spade = MakeSpadeFor(w, a.name);
        ReplayOptions options;
        options.batch_size = 1;
        options.detect_after_flush = false;
        const ReplayReport report = Replay(&spade, w.stream, options);
        inc_us[idx] = report.MeanMicrosPerEdge();
      }
      std::printf(" %12.1f %12.3f", static_us[idx], inc_us[idx]);
      ++idx;
    }
    for (int i = 0; i < 3; ++i) {
      std::printf(" %9.0f", inc_us[i] > 0 ? static_us[i] / inc_us[i] : 0.0);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
