// Micro-benchmarks (google-benchmark): the primitive operations whose
// costs compose the table/figure results — static peeling, single-edge
// incremental insertion, batch insertion, deletion, benign classification
// and heap operations.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/incremental_engine.h"
#include "core/spade.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"
#include "peel/indexed_heap.h"
#include "peel/static_peeler.h"

namespace spade {
namespace {

/// Power-law topology like the transaction datasets; `zipf` false gives a
/// uniform random multigraph — the adversarial case where peeling weights
/// cluster and an insertion displaces its endpoint across a large span.
DynamicGraph MakeGraph(std::size_t n, std::size_t m, std::uint64_t seed,
                       bool zipf = true) {
  Rng rng(seed);
  DynamicGraph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId s, d;
    if (zipf) {
      s = static_cast<VertexId>(rng.NextZipf(n, 0.9));
      d = static_cast<VertexId>(rng.NextZipf(n, 0.9));
      while (d == s) d = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    } else {
      s = static_cast<VertexId>(rng.NextBounded(n));
      d = static_cast<VertexId>(rng.NextBounded(n));
      while (d == s) d = static_cast<VertexId>(rng.NextBounded(n));
    }
    (void)g.AddEdge(s, d, 1.0 + rng.NextDouble() * 9.0);
  }
  return g;
}

Edge RandomZipfEdge(Rng* rng, std::size_t n) {
  Edge e;
  e.src = static_cast<VertexId>(rng->NextZipf(n, 0.9));
  e.dst = static_cast<VertexId>(rng->NextZipf(n, 0.9));
  while (e.dst == e.src) {
    e.dst = static_cast<VertexId>(rng->NextZipf(n, 0.9));
  }
  e.weight = 1.0 + rng->NextDouble() * 9.0;
  return e;
}

void BM_StaticPeel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DynamicGraph g = MakeGraph(n, 4 * n, 7);
  for (auto _ : state) {
    PeelState peel = PeelStatic(g);
    benchmark::DoNotOptimize(peel.BestDensity());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StaticPeel)->Range(1 << 10, 1 << 16)->Complexity();

void BM_IncrementalInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DynamicGraph g = MakeGraph(n, 4 * n, 11);
  PeelState peel = PeelStatic(g);
  IncrementalEngine engine;
  Rng rng(13);
  for (auto _ : state) {
    const Edge e = RandomZipfEdge(&rng, n);
    const Status s = engine.InsertEdge(&g, &peel, e, nullptr, nullptr);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_IncrementalInsert)->Range(1 << 10, 1 << 16);

void BM_IncrementalInsertUniformWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DynamicGraph g = MakeGraph(n, 4 * n, 11, /*zipf=*/false);
  PeelState peel = PeelStatic(g);
  IncrementalEngine engine;
  Rng rng(13);
  for (auto _ : state) {
    Edge e;
    e.src = static_cast<VertexId>(rng.NextBounded(n));
    e.dst = static_cast<VertexId>(rng.NextBounded(n));
    while (e.dst == e.src) {
      e.dst = static_cast<VertexId>(rng.NextBounded(n));
    }
    e.weight = 1.0 + rng.NextDouble() * 9.0;
    const Status s = engine.InsertEdge(&g, &peel, e, nullptr, nullptr);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_IncrementalInsertUniformWorstCase)->Range(1 << 12, 1 << 14);

void BM_BatchInsert(benchmark::State& state) {
  const std::size_t n = 1 << 14;
  const auto batch = static_cast<std::size_t>(state.range(0));
  DynamicGraph g = MakeGraph(n, 4 * n, 17);
  PeelState peel = PeelStatic(g);
  IncrementalEngine engine;
  Rng rng(19);
  for (auto _ : state) {
    std::vector<Edge> edges(batch);
    for (Edge& e : edges) e = RandomZipfEdge(&rng, n);
    const Status s = engine.InsertBatch(&g, &peel, edges, nullptr, nullptr);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchInsert)->RangeMultiplier(8)->Range(1, 4096);

void BM_DeleteEdge(benchmark::State& state) {
  const std::size_t n = 1 << 13;
  DynamicGraph g = MakeGraph(n, 4 * n, 23);
  PeelState peel = PeelStatic(g);
  IncrementalEngine engine;
  Rng rng(29);
  for (auto _ : state) {
    // Insert-then-delete keeps the graph size stable across iterations.
    const Edge e = RandomZipfEdge(&rng, n);
    (void)engine.InsertEdge(&g, &peel, e, nullptr, nullptr);
    const Status s =
        engine.DeleteEdge(&g, &peel, e.src, e.dst, nullptr, &e.weight);
    benchmark::DoNotOptimize(s.ok());
  }
}
BENCHMARK(BM_DeleteEdge);

void BM_Detect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DynamicGraph g = MakeGraph(n, 4 * n, 31);
  PeelState peel = PeelStatic(g);
  for (auto _ : state) {
    peel.InvalidateBest();
    benchmark::DoNotOptimize(peel.BestDensity());
  }
}
BENCHMARK(BM_Detect)->Range(1 << 10, 1 << 18);

void BM_IsBenign(benchmark::State& state) {
  const Workload w = BuildWorkload("Grab1", 0.001, 37);
  Spade spade;
  spade.SetSemantics(MakeDW());
  spade.TurnOnEdgeGrouping();
  if (!spade.BuildGraph(w.num_vertices, w.initial).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(41);
  for (auto _ : state) {
    Edge e;
    e.src = static_cast<VertexId>(rng.NextBounded(w.num_vertices));
    e.dst = static_cast<VertexId>(rng.NextBounded(w.num_vertices));
    while (e.dst == e.src) {
      e.dst = static_cast<VertexId>(rng.NextBounded(w.num_vertices));
    }
    e.weight = rng.NextDouble() * 10.0;
    benchmark::DoNotOptimize(spade.IsBenign(e));
  }
}
BENCHMARK(BM_IsBenign);

void BM_HeapPushPop(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  IndexedMinHeap heap(n);
  Rng rng(43);
  for (auto _ : state) {
    for (VertexId v = 0; v < 1024; ++v) {
      heap.Push(v, rng.NextDouble());
    }
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(heap.Pop());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2048);
}
BENCHMARK(BM_HeapPushPop);

}  // namespace
}  // namespace spade

BENCHMARK_MAIN();
