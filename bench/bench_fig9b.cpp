// Figure 9b: degree distribution of the (synthetic) Grab transaction graph.
//
// Expected shape: a power law — most vertices have small degree, a long
// tail of high-degree hubs. This is the property that makes most edge
// insertions benign (both endpoints low-degree), which edge grouping
// exploits.

#include <cstdio>

#include "analysis/graph_stats.h"
#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::string profile = "Grab4";
  const Workload w =
      BuildWorkload(profile, ScaleFor(profile), /*seed=*/41, nullptr);
  PrintDatasetHeader({w});

  Spade spade = MakeSpadeFor(w, "DG");
  std::vector<Edge> all(w.stream.edges);
  if (!spade.InsertBatchEdges(all).ok()) return 1;

  const CountHistogram hist = DegreeDistribution(spade.graph());
  std::printf("# Figure 9b rows: degree frequency\n");
  std::printf("%s", hist.ToRows().c_str());

  // Power-law sanity summary: share of vertices below small degrees and
  // the maximum hub degree.
  std::uint64_t below8 = 0;
  std::uint64_t max_degree = 0;
  for (const auto& [degree, freq] : hist.buckets()) {
    if (degree < 8) below8 += freq;
    max_degree = degree;
  }
  std::printf("\n# %.1f%% of vertices have degree < 8; max degree = %llu\n",
              100.0 * static_cast<double>(below8) /
                  static_cast<double>(hist.total()),
              static_cast<unsigned long long>(max_degree));
  return 0;
}
