// Replicated-ingest bench: wire throughput through the framed TCP front
// end, and failover time as a function of the staged epoch tail a standby
// must replay at Promote().
//
// Two measurements:
//
//   * wire ingest — IngestClient -> loopback TCP -> IngestServer ->
//     ShardedDetectionService, end-to-end (submit + frame + ack + apply)
//     edges/s. The in-process SubmitBatch figures in BENCH_ingest.json are
//     the upper bound; the gap is the framing + socket + dedup cost.
//
//   * failover sweep — a primary seals 1 full + T delta epochs into a
//     Standby running with eager_replay=false, so the whole delta tail is
//     staged on disk; Promote() then pays exactly the tail replay. The
//     sweep over T shows failover time ~= tail-chain replay cost (ISSUE:
//     the quantity a deployment tunes with its seal cadence). An eager
//     control run (same tail, eager_replay=true) shows the warm standby
//     promoting in ~constant time with nothing left to replay.
//
// Emits BENCH_replication.json (path = argv[1], default "."). The repo
// commits a reference copy; CI re-runs the bench and fails when the
// 8-epoch staged promote time regresses more than 30% (plus a small
// absolute slack for timer noise) against the committed reference.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_meta.h"
#include "common/rng.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/replicator.h"
#include "service/sharded_detection_service.h"

namespace spade::bench {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 4;
constexpr std::size_t kVertices = 8192;
constexpr std::size_t kEdgesPerEpoch = 20'000;
constexpr std::size_t kWireEdges = 200'000;
constexpr std::size_t kDetectEvery = 2048;
constexpr std::size_t kWhaleSize = 8;
constexpr std::size_t kWhaleEdges = 100;
constexpr double kWhaleWeight = 40.0;

Partitioner ParityPartitioner() {
  return Partitioner(
      [](const Edge& e) -> std::size_t { return e.src % kShards; },
      [](VertexId v) -> std::size_t { return v % kShards; });
}

std::unique_ptr<ShardedDetectionService> BuildService(
    const std::vector<Edge>& initial) {
  std::vector<std::vector<Edge>> parts(kShards);
  for (const Edge& e : initial) parts[e.src % kShards].push_back(e);
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(kVertices, parts[s]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.partitioner = ParityPartitioner();
  options.shard.detect_every = kDetectEvery;
  options.checkpoint.max_chain_length = 1000;
  options.checkpoint.max_delta_base_ratio = 1e9;
  auto service = std::make_unique<ShardedDetectionService>(
      std::move(shards), nullptr, std::move(options));
  service->SeedBoundaryIndex(initial);
  return service;
}

/// One dense high-weight clique per shard (vertices congruent mod
/// kShards stay shard-local under the parity partitioner). Exactly the
/// bench_ingest device: the whales pin the benign-classification
/// threshold well above the random traffic, so stream edges buffer
/// benignly instead of each forcing an urgent detection — the bench then
/// measures the wire/replication path, not detection cost.
std::vector<Edge> MakeWhales() {
  Rng rng(99);
  std::vector<Edge> edges;
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t i = 0; i < kWhaleEdges; ++i) {
      const auto a =
          static_cast<VertexId>(s + kShards * rng.NextBounded(kWhaleSize));
      auto b =
          static_cast<VertexId>(s + kShards * rng.NextBounded(kWhaleSize));
      while (b == a) {
        b = static_cast<VertexId>(s + kShards * rng.NextBounded(kWhaleSize));
      }
      edges.push_back(
          Edge{a, b, kWhaleWeight * (0.9 + 0.2 * rng.NextDouble()), 0});
    }
  }
  return edges;
}

std::vector<Edge> MakeEdges(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto s = static_cast<VertexId>(rng.NextBounded(kVertices));
    auto d = static_cast<VertexId>(rng.NextBounded(kVertices));
    while (d == s) d = static_cast<VertexId>(rng.NextBounded(kVertices));
    edges.push_back(Edge{s, d, 1.0 + 3.0 * rng.NextDouble(), 0});
  }
  return edges;
}

std::string ResetWorkDir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / "spade_bench_repl" / leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

bool PollFor(int timeout_ms, const std::function<bool()>& fn) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

// ---------------------------------------------------------------------------

struct WireEntry {
  double wall_s = 0.0;
  double eps = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t resent = 0;
};

WireEntry RunWireIngest() {
  auto service = BuildService(MakeWhales());
  net::IngestServer server(service.get());
  if (!server.Start().ok()) std::exit(1);

  net::IngestClientOptions copts;
  copts.ports = {server.port()};
  copts.batch_edges = 512;
  copts.send_window = 16;
  net::IngestClient client(copts);

  const std::vector<Edge> stream = MakeEdges(kWireEdges, 7);
  const auto start = std::chrono::steady_clock::now();
  for (const Edge& e : stream) (void)client.Submit(e);
  (void)client.Flush();
  if (!client.WaitAcked(120'000).ok()) {
    std::fprintf(stderr, "wire ingest never fully acked\n");
    std::exit(1);
  }
  service->Drain();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  WireEntry e;
  e.wall_s = wall;
  e.eps = static_cast<double>(stream.size()) / wall;
  e.batches = server.GetStats().batches_applied;
  e.resent = client.GetStats().resent_batches;
  server.Stop();
  return e;
}

struct FailoverEntry {
  std::size_t staged_epochs = 0;
  bool eager = false;
  std::uint64_t replayed_epochs = 0;
  std::uint64_t replayed_edges = 0;
  bool full_restore = false;
  double promote_ms = 0.0;
  double ms_per_kedge = 0.0;
};

FailoverEntry RunFailover(std::size_t staged_epochs, bool eager) {
  const std::string pdir = ResetWorkDir("primary");
  const std::string fdir = ResetWorkDir("follower");
  std::vector<Edge> initial = MakeWhales();
  const std::vector<Edge> seed_edges = MakeEdges(kEdgesPerEpoch, 11);
  initial.insert(initial.end(), seed_edges.begin(), seed_edges.end());
  auto primary = BuildService(initial);
  auto follower = BuildService({});

  net::Replicator repl(primary.get(), nullptr, pdir);
  if (!repl.Start().ok()) std::exit(1);

  net::StandbyOptions sopts;
  sopts.primary_port = repl.port();
  sopts.eager_replay = eager;
  sopts.lease_ms = 600'000;  // promotion is driven explicitly here
  net::Standby standby(follower.get(), fdir, sopts);
  if (!standby.Start().ok()) std::exit(1);
  if (!PollFor(10'000, [&] { return repl.HasFollower(); })) std::exit(1);

  const std::uint64_t last_epoch = 1 + staged_epochs;
  for (std::uint64_t e = 1; e <= last_epoch; ++e) {
    if (e > 1) {
      (void)primary->SubmitBatch(MakeEdges(kEdgesPerEpoch, 100 + e));
      primary->Drain();
    }
    ShardedDetectionService::SaveInfo info;
    const Status st = repl.SealAndShip(
        e == 1 ? ShardedDetectionService::SaveMode::kFull
               : ShardedDetectionService::SaveMode::kDelta,
        &info);
    if (!st.ok()) {
      std::fprintf(stderr, "SealAndShip epoch %llu: %s\n",
                   static_cast<unsigned long long>(e), st.ToString().c_str());
      std::exit(1);
    }
  }
  if (!PollFor(60'000,
               [&] { return standby.committed_epoch() == last_epoch; })) {
    std::exit(1);
  }
  if (eager &&
      !PollFor(60'000, [&] { return standby.applied_epoch() == last_epoch; })) {
    std::exit(1);
  }
  repl.Stop();  // primary "dies"

  net::PromoteInfo promote;
  if (!standby.Promote(&promote).ok()) std::exit(1);
  if (promote.epoch != last_epoch) {
    std::fprintf(stderr, "promoted to epoch %llu, wanted %llu\n",
                 static_cast<unsigned long long>(promote.epoch),
                 static_cast<unsigned long long>(last_epoch));
    std::exit(1);
  }

  FailoverEntry entry;
  entry.staged_epochs = staged_epochs;
  entry.eager = eager;
  entry.replayed_epochs = promote.replayed_epochs;
  entry.replayed_edges = promote.replayed_edges;
  entry.full_restore = promote.full_restore;
  entry.promote_ms = promote.promote_millis;
  entry.ms_per_kedge =
      promote.replayed_edges > 0
          ? promote.promote_millis * 1000.0 /
                static_cast<double>(promote.replayed_edges)
          : 0.0;
  return entry;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  std::printf("# replication bench: %zu shards, %zu vertices, %zu edges per "
              "epoch, %u core(s)\n\n",
              kShards, kVertices, kEdgesPerEpoch, CoresAvailable());

  const WireEntry wire = RunWireIngest();
  std::printf("wire ingest: %zu edges in %.3f s -> %.0f edges/s "
              "(%llu batches, %llu resent)\n\n",
              kWireEdges, wire.wall_s, wire.eps,
              static_cast<unsigned long long>(wire.batches),
              static_cast<unsigned long long>(wire.resent));

  std::printf("%8s %6s %9s %10s %12s %12s\n", "staged", "eager", "replayed",
              "edges", "promote-ms", "ms/1k-edge");
  (void)RunFailover(1, false);  // warm-up (allocator, page cache)

  std::vector<FailoverEntry> entries;
  for (const std::size_t staged : {1, 2, 4, 8}) {
    entries.push_back(RunFailover(staged, /*eager=*/false));
  }
  entries.push_back(RunFailover(8, /*eager=*/true));  // warm-standby control
  for (const FailoverEntry& e : entries) {
    std::printf("%8zu %6s %9llu %10llu %12.2f %12.3f\n", e.staged_epochs,
                e.eager ? "yes" : "no",
                static_cast<unsigned long long>(e.replayed_epochs),
                static_cast<unsigned long long>(e.replayed_edges),
                e.promote_ms, e.ms_per_kedge);
  }

  const std::string path = out_dir + "/BENCH_replication.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfg[192];
    std::snprintf(cfg, sizeof(cfg),
                  "{\"shards\": %zu, \"vertices\": %zu, "
                  "\"edges_per_epoch\": %zu, \"wire_edges\": %zu, "
                  "\"detect_every\": %zu, \"semantics\": \"DW\"}",
                  kShards, kVertices, kEdgesPerEpoch, kWireEdges,
                  kDetectEvery);
    WriteBenchMeta(f, cfg);
  }
  std::fprintf(f,
               "  \"wire_ingest\": {\"edges\": %zu, \"wall_s\": %.4f, "
               "\"edges_per_s\": %.0f, \"batches\": %llu, "
               "\"resent_batches\": %llu},\n",
               kWireEdges, wire.wall_s, wire.eps,
               static_cast<unsigned long long>(wire.batches),
               static_cast<unsigned long long>(wire.resent));
  std::fprintf(f, "  \"failover\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const FailoverEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"staged_epochs\": %zu, \"eager\": %s, "
                 "\"replayed_epochs\": %llu, \"replayed_edges\": %llu, "
                 "\"full_restore\": %s, \"promote_ms\": %.2f, "
                 "\"ms_per_1k_edges\": %.3f}%s\n",
                 e.staged_epochs, e.eager ? "true" : "false",
                 static_cast<unsigned long long>(e.replayed_epochs),
                 static_cast<unsigned long long>(e.replayed_edges),
                 e.full_restore ? "true" : "false", e.promote_ms,
                 e.ms_per_kedge, i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
