// Work-stealing rebalance benchmark: hot-tenant-skewed end-to-end
// throughput at 8 shards x 4 partitions each, rebalance OFF vs ON, plus a
// uniform-admission control.
//
// Skewed workload: 32 tenants (one partition each), four "hot" tenants
// (0, 8, 16, 24) carry ~60% of the stream. Under the identity placement
// pid % 8 every hot partition starts on shard 0, so the OFF run serializes
// the majority of the stream behind one worker while seven idle. The ON
// run lets the rebalancer steal hot partitions onto idle workers
// mid-stream. Reported per run: end-to-end throughput (submit start ->
// drained), the busiest shard's share of applied edges (the balance the
// stealer achieves — meaningful at every core count), steals and forwarded
// edges.
//
// The 1.5x end-to-end target only materializes when workers run on their
// own cores: on a single-core box every worker time-shares one CPU, so
// moving a partition cannot change the serial apply total. The emitted
// JSON records cores_available; the CI gate applies the speedup bar only
// when the machine can express parallelism, and gates the balance + steal
// counters (and the uniform-admission control) everywhere.
//
// Uniform control: evenly spread traffic, admission measured against
// parked consumers (same latch technique as bench_ingest) — the
// partition-map indirection on the submit path must cost nothing
// measurable, OFF vs ON.
//
// Emits BENCH_rebalance.json (path = argv[1], default ./). The repo
// commits a reference copy; CI re-runs the bench, uploads the fresh JSON,
// and gates against the committed numbers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_meta.h"
#include "common/rng.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"

namespace spade::bench {
namespace {

struct RebalanceConfig {
  std::size_t partitions = 32;  // tenants == partitions
  std::size_t shards = 8;       // partitions_per_shard = 4
  std::size_t vertices_per_tenant = 2048;
  std::size_t initial_per_tenant = 500;
  std::size_t stream_edges = 60'000;
  /// Fraction (per mille) of the skewed stream on the four hot tenants.
  std::size_t hot_per_mille = 600;
  std::size_t producers = 4;
  std::size_t detect_every = 2048;
  /// Whale clique per tenant keeps routine traffic benign-buffered (see
  /// bench_ingest) so the runs measure ingest + steals, not detection.
  std::size_t whale_size = 8;
  std::size_t whale_edges = 100;
  double whale_weight = 40.0;
  std::uint64_t seed = 4321;
};

Edge RandomTenantEdge(Rng* rng, VertexId base, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{static_cast<VertexId>(base + s), static_cast<VertexId>(base + d),
              1.0 + 9.0 * rng->NextDouble(), 0};
}

std::vector<Edge> BuildInitial(const RebalanceConfig& cfg, Rng* rng) {
  std::vector<Edge> initial;
  for (std::size_t t = 0; t < cfg.partitions; ++t) {
    const auto base = static_cast<VertexId>(t * cfg.vertices_per_tenant);
    for (std::size_t i = 0; i < cfg.initial_per_tenant; ++i) {
      initial.push_back(RandomTenantEdge(rng, base, cfg.vertices_per_tenant));
    }
    for (std::size_t i = 0; i < cfg.whale_edges; ++i) {
      const auto a =
          static_cast<VertexId>(base + rng->NextBounded(cfg.whale_size));
      auto b = static_cast<VertexId>(base + rng->NextBounded(cfg.whale_size));
      while (b == a) {
        b = static_cast<VertexId>(base + rng->NextBounded(cfg.whale_size));
      }
      initial.push_back(
          Edge{a, b, cfg.whale_weight * (0.9 + 0.2 * rng->NextDouble()), 0});
    }
  }
  return initial;
}

/// `skewed` concentrates hot_per_mille of the edges on tenants ≡ 0 mod 8
/// (all of which the identity placement parks on shard 0); uniform spreads
/// them round-robin.
std::vector<Edge> BuildStream(const RebalanceConfig& cfg, bool skewed,
                              Rng* rng) {
  std::vector<Edge> stream;
  stream.reserve(cfg.stream_edges);
  const std::size_t hot_count = cfg.partitions / 8;  // tenants 0,8,16,24
  for (std::size_t i = 0; i < cfg.stream_edges; ++i) {
    std::size_t tenant;
    if (skewed) {
      tenant = rng->NextBounded(1000) < cfg.hot_per_mille
                   ? 8 * rng->NextBounded(hot_count)
                   : rng->NextBounded(cfg.partitions);
    } else {
      tenant = i % cfg.partitions;
    }
    const auto base = static_cast<VertexId>(tenant * cfg.vertices_per_tenant);
    Edge e = RandomTenantEdge(rng, base, cfg.vertices_per_tenant);
    e.ts = static_cast<Timestamp>(i);
    stream.push_back(e);
  }
  return stream;
}

std::vector<Spade> BuildPartitions(const RebalanceConfig& cfg,
                                   const std::vector<Edge>& initial) {
  const std::size_t n = cfg.partitions * cfg.vertices_per_tenant;
  std::vector<std::vector<Edge>> parts(cfg.partitions);
  for (const Edge& e : initial) {
    parts[(e.src / cfg.vertices_per_tenant) % cfg.partitions].push_back(e);
  }
  std::vector<Spade> shards;
  shards.reserve(cfg.partitions);
  for (std::size_t p = 0; p < cfg.partitions; ++p) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(n, parts[p]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  return shards;
}

ShardedDetectionServiceOptions BaseOptions(const RebalanceConfig& cfg,
                                           bool rebalance_on) {
  ShardedDetectionServiceOptions options;
  options.partitioner =
      TenantPartitioner(static_cast<VertexId>(cfg.vertices_per_tenant));
  options.shard.detect_every = cfg.detect_every;
  options.shard.block_when_full = true;
  options.rebalance.partitions_per_shard = cfg.partitions / cfg.shards;
  options.rebalance.enabled = rebalance_on;
  if (rebalance_on) {
    options.rebalance.interval_ms = 5;
    options.rebalance.skew_ratio = 2.0;
    options.rebalance.min_queue_depth = 64;
    options.rebalance.min_improvement = 0.02;
    options.rebalance.cooldown_ms = 20;
    options.rebalance.quiesce_timeout_ms = 5;
  }
  return options;
}

struct Entry {
  bool rebalance_on = false;
  double wall_s = 0.0;
  double eps = 0.0;            // end-to-end (drained)
  double admission_eps = 0.0;  // producers-done
  double max_share = 0.0;      // busiest shard's fraction of applied edges
  std::uint64_t steals = 0;
  std::uint64_t moved = 0;
  std::uint64_t forwarded = 0;
};

/// One skewed end-to-end run: bounded queues tie the producers to the
/// workers' pace, so the wall clock is apply-side — exactly where a steal
/// pays (or visibly cannot, on one core).
Entry RunSkewed(const RebalanceConfig& cfg, const std::vector<Edge>& initial,
                const std::vector<Edge>& stream, bool rebalance_on) {
  ShardedDetectionServiceOptions options = BaseOptions(cfg, rebalance_on);
  options.shard.max_queue = 8192;
  ShardedDetectionService service(BuildPartitions(cfg, initial), nullptr,
                                  options);

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = stream.size();
  constexpr std::size_t kChunk = 1024;
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t start =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (start >= n) break;
        const std::size_t end = std::min(start + kChunk, n);
        (void)service.SubmitBatch(
            std::span<const Edge>(stream.data() + start, end - start),
            nullptr);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double submit_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  service.Drain();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  Entry e;
  e.rebalance_on = rebalance_on;
  e.wall_s = wall_s;
  e.eps = static_cast<double>(n) / wall_s;
  e.admission_eps = static_cast<double>(n) / submit_s;
  const ShardedServiceStats stats = service.GetStats();
  std::uint64_t total = 0, peak = 0;
  for (const std::uint64_t edges : stats.shard_edges) {
    total += edges;
    peak = std::max(peak, edges);
  }
  e.max_share =
      total > 0 ? static_cast<double>(peak) / static_cast<double>(total) : 0.0;
  e.steals = stats.steals;
  e.moved = stats.partitions_moved;
  e.forwarded = stats.forwarded_edges;
  service.Stop();
  return e;
}

/// Uniform admission control with parked consumers (bench_ingest's latch):
/// measures only the router -> worker handoff, where the rebalance mode
/// adds its partition-map read.
Entry RunUniformAdmission(const RebalanceConfig& cfg,
                          const std::vector<Edge>& initial,
                          const std::vector<Edge>& stream, bool rebalance_on) {
  ShardedDetectionServiceOptions options = BaseOptions(cfg, rebalance_on);
  // Nothing drains while producers run; the whole stream must fit.
  options.shard.max_queue = stream.size() + 64;
  if (rebalance_on) {
    // Parked consumers mean unbounded apparent skew; freeze the stealer so
    // the control measures the submit path, not quiesce stalls.
    options.rebalance.interval_ms = 0;
  }

  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool latch_open = false;
  ShardedDetectionService service(
      BuildPartitions(cfg, initial),
      [&](std::size_t, const Community&) {
        std::unique_lock<std::mutex> lock(latch_mutex);
        latch_cv.wait(lock, [&] { return latch_open; });
      },
      options);

  for (std::size_t t = 0; t < cfg.partitions; ++t) {
    const auto base = static_cast<VertexId>(t * cfg.vertices_per_tenant);
    const Edge plug{base, static_cast<VertexId>(base + 1),
                    cfg.whale_weight * 1000.0, 0};
    (void)service.Submit(plug);
  }
  while (service.AlertsDelivered() < cfg.shards) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = stream.size();
  constexpr std::size_t kChunk = 1024;
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t start =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (start >= n) break;
        const std::size_t end = std::min(start + kChunk, n);
        std::size_t enqueued = 0;
        (void)service.SubmitBatch(
            std::span<const Edge>(stream.data() + start, end - start),
            &enqueued);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double submit_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  {
    std::lock_guard<std::mutex> lock(latch_mutex);
    latch_open = true;
  }
  latch_cv.notify_all();
  service.Drain();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  Entry e;
  e.rebalance_on = rebalance_on;
  e.wall_s = wall_s;
  e.eps = static_cast<double>(n) / wall_s;
  e.admission_eps = static_cast<double>(n) / submit_s;
  service.Stop();
  return e;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  RebalanceConfig cfg;
  spade::Rng rng(cfg.seed);
  const std::vector<spade::Edge> initial = BuildInitial(cfg, &rng);
  const std::vector<spade::Edge> skewed_stream = BuildStream(cfg, true, &rng);
  const std::vector<spade::Edge> uniform_stream =
      BuildStream(cfg, false, &rng);
  const unsigned cores = CoresAvailable();
  std::printf("# rebalance bench: %zu partitions on %zu shards, %zu stream "
              "edges (%zu%% hot on shard 0's partitions), %u core(s)\n\n",
              cfg.partitions, cfg.shards, cfg.stream_edges,
              cfg.hot_per_mille / 10, cores);

  // Warm-up (allocator + page-fault cold start).
  (void)RunSkewed(cfg, initial, skewed_stream, false);

  constexpr int kReps = 3;
  const auto best_skewed = [&](bool on) {
    Entry best;
    for (int r = 0; r < kReps; ++r) {
      const Entry e = RunSkewed(cfg, initial, skewed_stream, on);
      if (e.eps > best.eps) best = e;
    }
    return best;
  };
  const auto best_uniform = [&](bool on) {
    Entry best;
    for (int r = 0; r < kReps; ++r) {
      const Entry e = RunUniformAdmission(cfg, initial, uniform_stream, on);
      if (e.admission_eps > best.admission_eps) best = e;
    }
    return best;
  };

  std::printf("%10s %9s %12s %12s %10s %7s %10s\n", "mode", "wall(s)",
              "e2e-eps", "admit-eps", "max-share", "steals", "forwarded");
  const Entry skew_off = best_skewed(false);
  std::printf("%10s %9.3f %12.0f %12.0f %9.1f%% %7llu %10llu\n", "skew-off",
              skew_off.wall_s, skew_off.eps, skew_off.admission_eps,
              100.0 * skew_off.max_share,
              static_cast<unsigned long long>(skew_off.steals),
              static_cast<unsigned long long>(skew_off.forwarded));
  const Entry skew_on = best_skewed(true);
  std::printf("%10s %9.3f %12.0f %12.0f %9.1f%% %7llu %10llu\n", "skew-on",
              skew_on.wall_s, skew_on.eps, skew_on.admission_eps,
              100.0 * skew_on.max_share,
              static_cast<unsigned long long>(skew_on.steals),
              static_cast<unsigned long long>(skew_on.forwarded));

  const Entry uni_off = best_uniform(false);
  const Entry uni_on = best_uniform(true);
  std::printf("%10s %9.3f %12.0f %12.0f\n", "uni-off", uni_off.wall_s,
              uni_off.eps, uni_off.admission_eps);
  std::printf("%10s %9.3f %12.0f %12.0f\n", "uni-on", uni_on.wall_s,
              uni_on.eps, uni_on.admission_eps);

  const double speedup = skew_off.eps > 0.0 ? skew_on.eps / skew_off.eps : 0.0;
  const double admission_ratio = uni_off.admission_eps > 0.0
                                     ? uni_on.admission_eps /
                                           uni_off.admission_eps
                                     : 0.0;
  std::printf("\n# skewed e2e speedup (on/off): %.2fx%s\n", speedup,
              cores < cfg.shards
                  ? "  [workers time-share cores; speedup needs cores >= "
                    "shards]"
                  : "");
  std::printf("# busiest-shard share: %.1f%% -> %.1f%%\n",
              100.0 * skew_off.max_share, 100.0 * skew_on.max_share);
  std::printf("# uniform admission on/off: %.2fx\n", admission_ratio);

  const std::string path = out_dir + "/BENCH_rebalance.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfgjson[200];
    std::snprintf(cfgjson, sizeof(cfgjson),
                  "{\"reps\": %d, \"batch_chunk\": 1024, \"producers\": %zu, "
                  "\"semantics\": \"DW\"}",
                  kReps, cfg.producers);
    WriteBenchMeta(f, cfgjson);
  }
  std::fprintf(f,
               "  \"workload\": {\"partitions\": %zu, \"shards\": %zu, "
               "\"stream_edges\": %zu, \"hot_per_mille\": %zu, "
               "\"detect_every\": %zu},\n",
               cfg.partitions, cfg.shards, cfg.stream_edges, cfg.hot_per_mille,
               cfg.detect_every);
  std::fprintf(f, "  \"cores_available\": %u,\n", cores);
  std::fprintf(f,
               "  \"skewed\": {\"off_eps\": %.0f, \"on_eps\": %.0f, "
               "\"speedup\": %.3f, \"max_share_off\": %.4f, "
               "\"max_share_on\": %.4f, \"steals\": %llu, "
               "\"partitions_moved\": %llu, \"forwarded_edges\": %llu},\n",
               skew_off.eps, skew_on.eps, speedup, skew_off.max_share,
               skew_on.max_share,
               static_cast<unsigned long long>(skew_on.steals),
               static_cast<unsigned long long>(skew_on.moved),
               static_cast<unsigned long long>(skew_on.forwarded));
  std::fprintf(f,
               "  \"uniform_admission\": {\"off_eps\": %.0f, \"on_eps\": "
               "%.0f, \"ratio\": %.3f}\n}\n",
               uni_off.admission_eps, uni_on.admission_eps, admission_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
