// Table 4: time for incremental maintenance by varying batch sizes.
//
// For each dataset: static DG/DW/FD elapsed seconds (one from-scratch peel
// of the full graph — what the baseline pays per detection), then the
// average per-edge time of IncDG/IncDW/IncFD replaying the 10% increment
// stream at batch sizes {1, 10, 100, 1K, 100K}.
//
// Expected shape vs the paper: incremental per-edge cost is orders of
// magnitude below a static re-run, shrinks further as the batch grows, and
// IncFD is the cheapest incremental variant (FD's down-weighted edges keep
// the affected area small).

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::vector<std::string> names = {"Grab1",  "Grab2",     "Grab3",
                                          "Grab4",  "Amazon",    "Wiki-Vote",
                                          "Epinion"};
  const std::vector<std::size_t> batch_sizes = {1, 10, 100, 1000, 100000};

  std::vector<Workload> workloads;
  for (const std::string& name : names) {
    workloads.push_back(BuildWorkload(name, ScaleFor(name), /*seed=*/17));
  }
  PrintDatasetHeader(workloads);

  std::printf("# Table 4: static seconds | incremental avg us/edge by "
              "batch size\n");
  std::printf("%-10s %8s %8s %8s", "dataset", "DG(s)", "DW(s)", "FD(s)");
  for (std::size_t b : batch_sizes) {
    for (const Algo& a : Algos()) {
      std::printf(" %9s", (std::string(a.inc_name) + "-" +
                           (b >= 1000 ? std::to_string(b / 1000) + "K"
                                      : std::to_string(b)))
                              .c_str());
    }
  }
  std::printf("\n");

  for (const Workload& w : workloads) {
    std::printf("%-10s", w.profile.name.c_str());

    // Static baseline: one full peel of the complete (initial + increment)
    // weighted graph per algorithm.
    for (const Algo& a : Algos()) {
      Spade spade = MakeSpadeFor(w, a.name);
      std::vector<Edge> all(w.stream.edges);
      if (!spade.InsertBatchEdges(all).ok()) return 1;
      std::printf(" %8.3f", MeasureStaticSeconds(spade.graph()));
    }

    for (std::size_t b : batch_sizes) {
      for (const Algo& a : Algos()) {
        Spade spade = MakeSpadeFor(w, a.name);
        ReplayOptions options;
        options.batch_size = b;
        options.detect_after_flush = false;  // measure reorder cost only
        const ReplayReport report = Replay(&spade, w.stream, options);
        std::printf(" %9s", FormatMicros(report.MeanMicrosPerEdge()).c_str());
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
