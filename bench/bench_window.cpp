// Sliding-window expiry at service scale (ISSUE 8 acceptance).
//
// Two claims the JSON pins:
//
//   1. Steady-state memory is O(window), not O(history): a windowed
//      sharded service streaming k windows' worth of traffic holds a flat
//      resident edge set (shard graphs + window logs + boundary index)
//      while cumulative history grows k-fold. The gate is resident at 4x
//      history <= 1.5x resident at 1x history.
//
//   2. Retire keeps up with ingest: expiring E edges through the retire
//      pass (window-log pop + recorded-weight deletion + detection) runs
//      within 2x of inserting those same E edges through the full
//      admission path (ratio >= 0.5).
//
// Emits BENCH_window.json (path = argv[1], default ./). The repo commits
// a reference copy; CI uploads a fresh one per run.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"

namespace spade::bench {

constexpr std::size_t kShards = 4;
constexpr std::size_t kVertices = 16384;
constexpr Timestamp kSpan = 1'000'000;  // 1 s of event time in us
constexpr std::size_t kEdgesPerWindow = 50'000;
constexpr std::size_t kWindows = 4;
constexpr std::size_t kThroughputEdges = 100'000;

namespace {

Edge RandomEdge(Rng* rng, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{s, d, 1.0 + 9.0 * rng->NextDouble(), 0};
}

std::unique_ptr<ShardedDetectionService> BuildService(Timestamp stride) {
  std::vector<Spade> shards;
  for (std::size_t s = 0; s < kShards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(kVertices, {});
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  ShardedDetectionServiceOptions options;
  options.window.span = kSpan;
  options.window.stride = stride;
  return std::make_unique<ShardedDetectionService>(std::move(shards),
                                                   nullptr, options);
}

std::size_t ResidentEdges(const ShardedDetectionService& service,
                          std::size_t* graph_edges, std::size_t* window_edges,
                          std::size_t* boundary_edges) {
  *graph_edges = 0;
  *window_edges = 0;
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    service.InspectShard(s, [&](const Spade& spade) {
      *graph_edges += spade.graph().NumEdges();
    });
    *window_edges += service.ShardWindow(s).size();
  }
  *boundary_edges = static_cast<std::size_t>(
      service.boundary_index().TotalEdges());
  return *graph_edges + *window_edges + *boundary_edges;
}

struct MemoryRow {
  std::size_t window_multiple = 0;
  std::size_t history_edges = 0;
  std::size_t resident_edges = 0;
  std::size_t graph_edges = 0;
  std::size_t window_edges = 0;
  std::size_t boundary_edges = 0;
  std::uint64_t retired_edges = 0;
};

/// Streams kWindows windows' worth of timestamped traffic, expiring to the
/// moving horizon, and samples the resident edge set after each window.
std::vector<MemoryRow> RunMemorySweep() {
  auto service = BuildService(/*stride=*/0);  // default: span / 8
  Rng rng(42);
  std::vector<MemoryRow> rows;
  Timestamp now = 0;
  const Timestamp step = kSpan / kEdgesPerWindow;
  std::vector<Edge> chunk;
  for (std::size_t w = 1; w <= kWindows; ++w) {
    for (std::size_t submitted = 0; submitted < kEdgesPerWindow;) {
      chunk.clear();
      for (std::size_t i = 0; i < 2048 && submitted < kEdgesPerWindow;
           ++i, ++submitted) {
        Edge e = RandomEdge(&rng, kVertices);
        now += step;
        e.ts = now;
        chunk.push_back(e);
      }
      const Status st = service->SubmitBatch(chunk);
      if (!st.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    service->Drain();
    // Catch the expiry up to the final horizon (covers the tail the stride
    // trigger has not reached yet) and evict the boundary index.
    Status st = service->RetireOlderThan(now - kSpan);
    if (!st.ok()) {
      std::fprintf(stderr, "retire failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    service->Drain();
    MemoryRow row;
    row.window_multiple = w;
    row.history_edges = w * kEdgesPerWindow;
    row.resident_edges = ResidentEdges(*service, &row.graph_edges,
                                       &row.window_edges,
                                       &row.boundary_edges);
    row.retired_edges = service->EdgesRetired();
    rows.push_back(row);
    std::fprintf(stderr,
                 "window %zux: history=%zu resident=%zu (graph=%zu "
                 "window=%zu boundary=%zu) retired=%llu\n",
                 row.window_multiple, row.history_edges, row.resident_edges,
                 row.graph_edges, row.window_edges, row.boundary_edges,
                 static_cast<unsigned long long>(row.retired_edges));
  }
  return rows;
}

struct ThroughputReport {
  std::size_t edges = 0;
  double ingest_ms = 0.0;
  double retire_ms = 0.0;
  std::uint64_t retired = 0;
};

/// Inserts kThroughputEdges inside one window span, then expires them all
/// with a single horizon pass; both legs are drain-bounded wall clock.
ThroughputReport RunThroughput() {
  // Stride = span keeps the automatic trigger quiet (every timestamp stays
  // inside the first window), so each leg measures exactly one thing.
  auto service = BuildService(/*stride=*/kSpan);
  Rng rng(77);
  ThroughputReport report;
  report.edges = kThroughputEdges;
  std::vector<Edge> traffic;
  traffic.reserve(kThroughputEdges);
  const Timestamp step = kSpan / kThroughputEdges;
  for (std::size_t i = 0; i < kThroughputEdges; ++i) {
    Edge e = RandomEdge(&rng, kVertices);
    e.ts = static_cast<Timestamp>(i + 1) * step;
    traffic.push_back(e);
  }
  {
    Timer timer;
    const Status st = service->SubmitBatch(traffic);
    service->Drain();
    report.ingest_ms = timer.ElapsedMicros() * 1e-3;
    if (!st.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  {
    Timer timer;
    const Status st = service->RetireOlderThan(kSpan + 1);
    service->Drain();
    report.retire_ms = timer.ElapsedMicros() * 1e-3;
    if (!st.ok()) {
      std::fprintf(stderr, "retire failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  report.retired = service->EdgesRetired();
  std::fprintf(stderr, "throughput: ingest %.1f ms, retire %.1f ms (%llu "
               "edges retired)\n",
               report.ingest_ms, report.retire_ms,
               static_cast<unsigned long long>(report.retired));
  return report;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const auto rows = spade::bench::RunMemorySweep();
  const auto tp = spade::bench::RunThroughput();

  const double ingest_meps =
      tp.ingest_ms > 0.0 ? tp.edges / tp.ingest_ms * 1e-3 : 0.0;
  const double retire_meps =
      tp.retire_ms > 0.0 ? tp.edges / tp.retire_ms * 1e-3 : 0.0;

  const std::string path = out_dir + "/BENCH_window.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfg[192];
    std::snprintf(cfg, sizeof(cfg),
                  "{\"shards\": %zu, \"vertices\": %zu, \"span_us\": %lld, "
                  "\"edges_per_window\": %zu, \"windows\": %zu}",
                  spade::bench::kShards, spade::bench::kVertices,
                  static_cast<long long>(spade::bench::kSpan),
                  spade::bench::kEdgesPerWindow, spade::bench::kWindows);
    spade::bench::WriteBenchMeta(f, cfg);
  }
  std::fprintf(f, "  \"memory_sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"window_multiple\": %zu, \"history_edges\": %zu, "
                 "\"resident_edges\": %zu, \"graph_edges\": %zu, "
                 "\"window_edges\": %zu, \"boundary_edges\": %zu, "
                 "\"retired_edges\": %llu}%s\n",
                 r.window_multiple, r.history_edges, r.resident_edges,
                 r.graph_edges, r.window_edges, r.boundary_edges,
                 static_cast<unsigned long long>(r.retired_edges),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  const double growth =
      rows.front().resident_edges > 0
          ? static_cast<double>(rows.back().resident_edges) /
                static_cast<double>(rows.front().resident_edges)
          : 0.0;
  std::fprintf(f,
               "  \"resident_growth_at_%zux_history\": %.3f,\n",
               spade::bench::kWindows, growth);
  std::fprintf(f,
               "  \"throughput\": {\"edges\": %zu, \"ingest_ms\": %.1f, "
               "\"ingest_meps\": %.3f, \"retire_ms\": %.1f, "
               "\"retire_meps\": %.3f, \"retired_edges\": %llu, "
               "\"retire_to_ingest_ratio\": %.3f}\n",
               tp.edges, tp.ingest_ms, ingest_meps, tp.retire_ms,
               retire_meps, static_cast<unsigned long long>(tp.retired),
               tp.ingest_ms > 0.0 && tp.retire_ms > 0.0
                   ? ingest_meps > 0.0 ? retire_meps / ingest_meps : 0.0
                   : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
