// Ingest-pipeline sweep: producers × shards × handoff mode.
//
// Admission methodology: each run first submits one heavy "plug" edge per
// tenant; the resulting per-shard alert callback parks every shard worker
// on a latch (the same consumer-parked technique the backpressure tests
// use). With consumers parked and the queue budget sized to hold the whole
// stream, the producers' wall time measures exactly the router→worker
// handoff — partitioner evaluations, budget claims, ring publishes — with
// no interference from apply work (which matters especially when
// cores < shards and workers would otherwise time-share the producers'
// CPUs). Boundary recording lives on the worker side of the handoff now —
// inside the apply path — so neither mode pays it during admission. The
// latch then opens and Drain() completes the run; end-to-end time is
// reported alongside.
//
// Modes per configuration:
//   * per-edge  — every edge goes through Submit(), paying the partitioner,
//     the queue-budget claim and the ring cell individually. This is the
//     PR's baseline.
//   * batched   — SubmitBatch chunks of 1024 edges: one RouterScratch
//     partition pass, one lock-free ring handoff per shard per chunk.
//
// A final pinned run repeats the best configuration with shard workers
// pinned round-robin onto the available cores (ShardedDetectionService-
// Options::shard_cpus). The emitted BENCH_ingest.json records
// cores_available so single-core CI boxes are honestly labeled — the
// pinned figures only demonstrate multi-core scaling when cores > 1.
//
// Emits BENCH_ingest.json (path = argv[1], default ./). The repo commits a
// reference copy; CI re-runs the bench, uploads the fresh JSON, and fails
// if the batched 8-shard admission throughput regresses more than 30%
// against the committed reference.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "bench/bench_meta.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"
#include "stream/labeled_stream.h"

namespace spade::bench {
namespace {

/// The single-core 8-shard aggregate throughput from the committed
/// BENCH_service.json (detect-heavy workload) — the cross-bench reference
/// the pinned ingest run is compared against.
constexpr double kServiceRef8ShardEps = 83186.0;

struct IngestConfig {
  std::size_t tenants = 8;
  std::size_t vertices_per_tenant = 4096;
  std::size_t initial_per_tenant = 2000;
  /// Kept below the 65536-slab ring bound per shard, so neither handoff
  /// mode throttles during the admission phase even at 1 shard — the
  /// admission comparison then measures the router+handoff cost itself,
  /// not queue backpressure.
  std::size_t stream_per_tenant = 8000;
  /// Fraction (per mille) of stream edges rewired to a cross-tenant
  /// destination, so the workers' boundary-recording hook (and the
  /// stitch-trigger accumulators behind it) is exercised under load, not
  /// just in tests.
  std::size_t cross_per_mille = 100;
  /// Coarse detection cadence: ingest (routing + handoff + apply) stays
  /// the dominant term, not community extraction.
  std::size_t detect_every = 2048;
  /// Legitimate dense clique per tenant (same device as bench_service):
  /// it pins the benign-classification threshold well above random
  /// traffic, so stream edges buffer benignly instead of each forcing an
  /// urgent flush + detection — without it the sweep would measure
  /// detection cost, not the handoff.
  std::size_t whale_size = 8;
  std::size_t whale_edges = 100;
  double whale_weight = 40.0;
  std::uint64_t seed = 1234;
};

struct IngestWorkload {
  std::size_t num_vertices = 0;
  std::vector<Edge> initial;
  LabeledStream stream;
};

Edge RandomTenantEdge(Rng* rng, VertexId base, std::size_t n) {
  auto s = static_cast<VertexId>(rng->NextBounded(n));
  auto d = static_cast<VertexId>(rng->NextBounded(n));
  while (d == s) d = static_cast<VertexId>(rng->NextBounded(n));
  return Edge{static_cast<VertexId>(base + s), static_cast<VertexId>(base + d),
              1.0 + 9.0 * rng->NextDouble(), 0};
}

IngestWorkload BuildIngestWorkload(const IngestConfig& cfg) {
  IngestWorkload w;
  w.num_vertices = cfg.tenants * cfg.vertices_per_tenant;
  Rng rng(cfg.seed);
  std::vector<std::vector<Edge>> tenant_stream(cfg.tenants);
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    const auto base = static_cast<VertexId>(t * cfg.vertices_per_tenant);
    for (std::size_t i = 0; i < cfg.initial_per_tenant; ++i) {
      w.initial.push_back(
          RandomTenantEdge(&rng, base, cfg.vertices_per_tenant));
    }
    for (std::size_t i = 0; i < cfg.whale_edges; ++i) {
      const auto a =
          static_cast<VertexId>(base + rng.NextBounded(cfg.whale_size));
      auto b = static_cast<VertexId>(base + rng.NextBounded(cfg.whale_size));
      while (b == a) {
        b = static_cast<VertexId>(base + rng.NextBounded(cfg.whale_size));
      }
      w.initial.push_back(
          Edge{a, b, cfg.whale_weight * (0.9 + 0.2 * rng.NextDouble()), 0});
    }
    for (std::size_t i = 0; i < cfg.stream_per_tenant; ++i) {
      Edge e = RandomTenantEdge(&rng, base, cfg.vertices_per_tenant);
      if (rng.NextBounded(1000) < cfg.cross_per_mille) {
        // Rewire the destination into a random other tenant: a boundary
        // edge under tenant routing.
        const std::size_t other =
            (t + 1 + rng.NextBounded(cfg.tenants - 1)) % cfg.tenants;
        e.dst = static_cast<VertexId>(other * cfg.vertices_per_tenant +
                                      rng.NextBounded(cfg.vertices_per_tenant));
      }
      tenant_stream[t].push_back(e);
    }
  }
  Timestamp ts = 0;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (std::size_t t = 0; t < cfg.tenants; ++t) {
      if (i >= tenant_stream[t].size()) continue;
      any = true;
      Edge e = tenant_stream[t][i];
      e.ts = ts++;
      w.stream.Append(e, kNormalEdge);
    }
    if (!any) break;
  }
  return w;
}

std::vector<Spade> BuildShards(const IngestWorkload& w,
                               const IngestConfig& cfg,
                               std::size_t num_shards) {
  std::vector<std::vector<Edge>> parts(num_shards);
  for (const Edge& e : w.initial) {
    parts[(e.src / cfg.vertices_per_tenant) % num_shards].push_back(e);
  }
  std::vector<Spade> shards;
  shards.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    Spade spade;
    spade.SetSemantics(MakeDW());
    const Status st = spade.BuildGraph(w.num_vertices, parts[s]);
    if (!st.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    shards.push_back(std::move(spade));
  }
  return shards;
}

struct Entry {
  std::size_t shards = 0;
  std::size_t producers = 0;
  bool batched = false;
  bool pinned = false;
  double wall_s = 0.0;
  double eps = 0.0;            // end-to-end (drained)
  double admission_eps = 0.0;  // producers-done (the handoff capacity)
  std::size_t queue_hwm = 0;
  std::uint64_t boundary_edges = 0;
};

Entry Run(const IngestWorkload& w, const IngestConfig& cfg,
          std::size_t num_shards, std::size_t producers, bool batched,
          const std::vector<int>& shard_cpus = {}) {
  ShardedDetectionServiceOptions options;
  options.shard.block_when_full = true;
  options.shard.detect_every = cfg.detect_every;
  // The whole stream must fit: admission is measured against parked
  // consumers, so nothing drains while producers run.
  options.shard.max_queue = w.stream.size() + 64;
  options.partitioner =
      TenantPartitioner(static_cast<VertexId>(cfg.vertices_per_tenant));
  options.shard_cpus = shard_cpus;

  // Consumer-parking latch: the first alert on each shard (triggered by
  // the per-tenant plug edges below) blocks its worker until the
  // producers have finished, so the admission phase measures only the
  // ingest path.
  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool latch_open = false;
  ShardedDetectionService service(
      BuildShards(w, cfg, num_shards),
      [&](std::size_t, const Community&) {
        std::unique_lock<std::mutex> lock(latch_mutex);
        latch_cv.wait(lock, [&] { return latch_open; });
      },
      options);

  // Plugs: one community-changing heavy edge per tenant (tenants cover
  // every shard at every swept shard count; extra plugs for a shard just
  // queue behind its parked worker).
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    const auto base = static_cast<VertexId>(t * cfg.vertices_per_tenant);
    const Edge plug{base, static_cast<VertexId>(base + 1),
                    cfg.whale_weight * 1000.0, 0};
    (void)service.Submit(plug);
  }
  // Every shard alerting means every worker is parked (or a few
  // instructions from parking) inside the latch callback.
  while (service.AlertsDelivered() < num_shards) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = w.stream.size();
  constexpr std::size_t kChunk = 1024;
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t start =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (start >= n) break;
        const std::size_t end = std::min(start + kChunk, n);
        if (batched) {
          std::size_t enqueued = 0;
          (void)service.SubmitBatch(
              std::span<const Edge>(w.stream.edges.data() + start,
                                    end - start),
              &enqueued);
        } else {
          for (std::size_t i = start; i < end; ++i) {
            (void)service.Submit(w.stream.edges[i]);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double submit_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  {
    std::lock_guard<std::mutex> lock(latch_mutex);
    latch_open = true;
  }
  latch_cv.notify_all();
  service.Drain();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  Entry e;
  e.shards = num_shards;
  e.producers = producers;
  e.batched = batched;
  e.pinned = !shard_cpus.empty();
  e.wall_s = wall_s;
  e.eps = static_cast<double>(n) / wall_s;
  e.admission_eps = static_cast<double>(n) / submit_s;
  const ShardedServiceStats stats = service.GetStats();
  for (const std::size_t hwm : stats.shard_queue_hwm) {
    e.queue_hwm = std::max(e.queue_hwm, hwm);
  }
  e.boundary_edges = stats.boundary_edges;
  service.Stop();
  return e;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  IngestConfig cfg;
  const IngestWorkload w = BuildIngestWorkload(cfg);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("# ingest sweep: %zu tenants, %zu vertices, %zu stream edges, "
              "%u core(s) available\n\n",
              cfg.tenants, w.num_vertices, w.stream.size(), cores);
  std::printf("%7s %10s %9s %9s %12s %12s %9s %10s %10s\n", "shards",
              "producers", "mode", "wall(s)", "e2e-eps", "admit-eps",
              "vs-edge", "queue-hwm", "boundary");

  // Warm-up: allocator + page-fault cold start must not penalize the first
  // measured configuration.
  (void)Run(w, cfg, 1, 1, /*batched=*/true);

  // The admission phase of one run is a few milliseconds; repeat each
  // configuration and keep the best admission (classic microbench floor —
  // the run least perturbed by scheduling) with its run's e2e numbers.
  constexpr int kReps = 5;
  const auto best_of = [&](std::size_t shards, std::size_t producers,
                           bool batched) {
    Entry best;
    for (int r = 0; r < kReps; ++r) {
      const Entry e = Run(w, cfg, shards, producers, batched);
      if (e.admission_eps > best.admission_eps) best = e;
    }
    return best;
  };

  std::vector<Entry> entries;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    for (const std::size_t producers : {1, 4}) {
      const Entry per_edge = best_of(shards, producers, false);
      const Entry batched = best_of(shards, producers, true);
      for (const Entry& e : {per_edge, batched}) {
        // The handoff comparison is on admission throughput: end-to-end is
        // apply-bound whenever cores < shards (the workers and producers
        // time-share), which would hide the handoff cost entirely.
        const double ratio = e.batched && per_edge.admission_eps > 0.0
                                 ? e.admission_eps / per_edge.admission_eps
                                 : 1.0;
        std::printf("%7zu %10zu %9s %9.3f %12.0f %12.0f %8.2fx %10zu %10llu\n",
                    e.shards, e.producers, e.batched ? "batch" : "per-edge",
                    e.wall_s, e.eps, e.admission_eps, ratio, e.queue_hwm,
                    static_cast<unsigned long long>(e.boundary_edges));
        entries.push_back(e);
      }
    }
  }

  // Pinned run: the best sweep configuration (8 shards, 4 producers,
  // batched) with shard workers pinned round-robin onto real cores.
  std::vector<int> cpus;
  for (unsigned c = 0; c < cores; ++c) cpus.push_back(static_cast<int>(c));
  Entry pinned;
  for (int r = 0; r < kReps; ++r) {
    const Entry e = Run(w, cfg, 8, 4, /*batched=*/true, cpus);
    if (e.admission_eps > pinned.admission_eps) pinned = e;
  }
  std::printf("%7zu %10zu %9s %9.3f %12.0f %12.0f %8s %10zu %10llu  "
              "(pinned on %u core%s)\n",
              pinned.shards, pinned.producers, "batch", pinned.wall_s,
              pinned.eps, pinned.admission_eps, "-", pinned.queue_hwm,
              static_cast<unsigned long long>(pinned.boundary_edges), cores,
              cores == 1 ? "" : "s");
  std::printf("\n# service-bench reference (single-core 8-shard, "
              "detect-heavy): %.0f edges/s; pinned ingest run: %.0f "
              "(%.1fx)\n",
              kServiceRef8ShardEps, pinned.eps,
              pinned.eps / kServiceRef8ShardEps);

  const std::string path = out_dir + "/BENCH_ingest.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  {
    char cfgjson[160];
    std::snprintf(cfgjson, sizeof(cfgjson),
                  "{\"reps\": %d, \"batch_chunk\": 1024, "
                  "\"semantics\": \"DW\"}",
                  kReps);
    spade::bench::WriteBenchMeta(f, cfgjson);
  }
  std::fprintf(f,
               "  \"workload\": {\"tenants\": %zu, \"vertices\": %zu, "
               "\"initial_edges\": %zu, \"stream_edges\": %zu, "
               "\"cross_per_mille\": %zu, \"detect_every\": %zu},\n",
               cfg.tenants, w.num_vertices, w.initial.size(), w.stream.size(),
               cfg.cross_per_mille, cfg.detect_every);
  std::fprintf(f, "  \"cores_available\": %u,\n", cores);
  std::fprintf(f, "  \"service_ref_8shard_eps\": %.0f,\n",
               kServiceRef8ShardEps);
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"producers\": %zu, \"mode\": "
                 "\"%s\", \"wall_s\": %.4f, \"edges_per_s\": %.0f, "
                 "\"admission_eps\": %.0f, \"queue_hwm\": %zu, "
                 "\"boundary_edges\": %llu},\n",
                 e.shards, e.producers, e.batched ? "batch" : "per_edge",
                 e.wall_s, e.eps, e.admission_eps, e.queue_hwm,
                 static_cast<unsigned long long>(e.boundary_edges));
  }
  // The pinned entry closes the sweep array so the regression gate can
  // address it uniformly.
  std::fprintf(f,
               "    {\"shards\": %zu, \"producers\": %zu, \"mode\": "
               "\"batch_pinned\", \"wall_s\": %.4f, \"edges_per_s\": %.0f, "
               "\"admission_eps\": %.0f, \"queue_hwm\": %zu, "
               "\"boundary_edges\": %llu}\n  ],\n",
               pinned.shards, pinned.producers, pinned.wall_s, pinned.eps,
               pinned.admission_eps, pinned.queue_hwm,
               static_cast<unsigned long long>(pinned.boundary_edges));
  std::fprintf(f, "  \"pinned_beats_service_ref\": %s\n}\n",
               pinned.eps > kServiceRef8ShardEps ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
