// Shared infrastructure for the table/figure reproduction harnesses.
//
// Every harness prints the dataset statistics header (Table 3 at the active
// scale) and then the rows/series of its table or figure. Absolute numbers
// depend on the host; the shapes (who wins, by what factor, where the
// crossovers fall) are what EXPERIMENTS.md compares against the paper.
//
// Scale control: SPADE_BENCH_SCALE multiplies each profile's default bench
// scale (1.0 keeps the defaults; the paper's full sizes need
// SPADE_BENCH_SCALE far above what a CI box should attempt).

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/spade.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"
#include "peel/static_peeler.h"
#include "stream/replayer.h"

namespace spade::bench {

/// Multiplier from the environment (default 1.0).
inline double EnvScale() {
  const char* s = std::getenv("SPADE_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

/// Default per-profile scale keeping a full harness under a few minutes on
/// a laptop while preserving each dataset's relative size ordering.
inline double DefaultScale(const std::string& profile_name) {
  if (profile_name == "Amazon") return 0.30;
  if (profile_name == "Wiki-Vote") return 0.30;
  if (profile_name == "Epinion") return 0.05;
  return 0.004;  // Grab1-4
}

inline double ScaleFor(const std::string& profile_name) {
  double s = DefaultScale(profile_name) * EnvScale();
  return s > 1.0 ? 1.0 : s;
}

/// The three built-in peeling algorithms of the evaluation.
struct Algo {
  const char* name;        // "DG" / "DW" / "FD"
  const char* inc_name;    // "IncDG" / ...
  const char* group_name;  // "IncDGG" / ...
};
inline const std::vector<Algo>& Algos() {
  static const std::vector<Algo> algos = {
      {"DG", "IncDG", "IncDGG"},
      {"DW", "IncDW", "IncDWG"},
      {"FD", "IncFD", "IncFDG"},
  };
  return algos;
}

/// Warmup + adaptive-iteration measurement (the dsharlet/array pattern from
/// SNIPPETS.md): runs `op` once untimed to warm caches and allocators, then
/// grows the iteration count until a timed run exceeds `min_time_s`, so
/// short operations are averaged over enough repetitions to be stable
/// enough to gate regressions. Returns seconds per iteration.
template <typename Op>
inline double BenchmarkSecondsPerIteration(Op&& op, double min_time_s = 0.1,
                                           int max_trials = 10) {
  op();  // warmup
  long iterations = 1;
  double per_iteration_s = 0.0;
  for (int trial = 0; trial < max_trials; ++trial) {
    Timer timer;
    for (long j = 0; j < iterations; ++j) op();
    const double elapsed = timer.ElapsedSeconds();
    per_iteration_s = elapsed / static_cast<double>(iterations);
    if (elapsed > min_time_s) break;
    const long next = static_cast<long>(
        std::ceil((min_time_s * 2) / std::max(per_iteration_s, 1e-12)));
    iterations = std::min(std::max(next, iterations), iterations * 10);
  }
  return per_iteration_s;
}

/// One full static peel (the baseline's per-detection cost), seconds.
/// Warmed up and averaged over adaptive iterations so small graphs do not
/// report timer noise.
inline double MeasureStaticSeconds(const DynamicGraph& g) {
  return BenchmarkSecondsPerIteration(
      [&g] {
        PeelState state = PeelStatic(g);
        // Consume the result so the optimizer cannot drop the peel.
        volatile double guard = state.BestDensity();
        (void)guard;
      },
      /*min_time_s=*/0.05);
}

/// Builds a Spade over the workload's initial graph under `algo` semantics.
inline Spade MakeSpadeFor(const Workload& w, const std::string& algo) {
  Spade spade;
  spade.SetSemantics(MakeSemanticsByName(algo));
  const Status s = spade.BuildGraph(w.num_vertices, w.initial);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildGraph failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return spade;
}

/// Prints the Table 3 header for the profiles a harness uses.
inline void PrintDatasetHeader(const std::vector<Workload>& workloads) {
  std::printf("# datasets (Table 3 at bench scale)\n");
  std::printf("# %-10s %10s %10s %8s %12s %s\n", "name", "|V|", "|E|",
              "avg.deg", "increments", "type");
  for (const Workload& w : workloads) {
    const std::size_t edges = w.initial.size() + w.stream.size();
    std::printf("# %-10s %10zu %10zu %8.2f %12zu %s\n",
                w.profile.name.c_str(), w.num_vertices, edges,
                w.num_vertices ? 2.0 * static_cast<double>(edges) /
                                     static_cast<double>(w.num_vertices)
                               : 0.0,
                w.stream.size(), w.profile.type.c_str());
  }
  std::printf("\n");
}

/// Human formatting for microsecond means: "-" below one microsecond, like
/// the paper's Table 4.
inline std::string FormatMicros(double us) {
  if (us <= 0) return "-";
  if (us < 1.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", us);
  return buf;
}

}  // namespace spade::bench
