// Shared infrastructure for the table/figure reproduction harnesses.
//
// Every harness prints the dataset statistics header (Table 3 at the active
// scale) and then the rows/series of its table or figure. Absolute numbers
// depend on the host; the shapes (who wins, by what factor, where the
// crossovers fall) are what EXPERIMENTS.md compares against the paper.
//
// Scale control: SPADE_BENCH_SCALE multiplies each profile's default bench
// scale (1.0 keeps the defaults; the paper's full sizes need
// SPADE_BENCH_SCALE far above what a CI box should attempt).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/spade.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"
#include "peel/static_peeler.h"
#include "stream/replayer.h"

namespace spade::bench {

/// Multiplier from the environment (default 1.0).
inline double EnvScale() {
  const char* s = std::getenv("SPADE_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

/// Default per-profile scale keeping a full harness under a few minutes on
/// a laptop while preserving each dataset's relative size ordering.
inline double DefaultScale(const std::string& profile_name) {
  if (profile_name == "Amazon") return 0.30;
  if (profile_name == "Wiki-Vote") return 0.30;
  if (profile_name == "Epinion") return 0.05;
  return 0.004;  // Grab1-4
}

inline double ScaleFor(const std::string& profile_name) {
  double s = DefaultScale(profile_name) * EnvScale();
  return s > 1.0 ? 1.0 : s;
}

/// The three built-in peeling algorithms of the evaluation.
struct Algo {
  const char* name;        // "DG" / "DW" / "FD"
  const char* inc_name;    // "IncDG" / ...
  const char* group_name;  // "IncDGG" / ...
};
inline const std::vector<Algo>& Algos() {
  static const std::vector<Algo> algos = {
      {"DG", "IncDG", "IncDGG"},
      {"DW", "IncDW", "IncDWG"},
      {"FD", "IncFD", "IncFDG"},
  };
  return algos;
}

/// One full static peel (the baseline's per-detection cost), seconds.
inline double MeasureStaticSeconds(const DynamicGraph& g) {
  Timer timer;
  PeelState state = PeelStatic(g);
  // Consume the result so the optimizer cannot drop the peel.
  volatile double guard = state.BestDensity();
  (void)guard;
  return timer.ElapsedSeconds();
}

/// Builds a Spade over the workload's initial graph under `algo` semantics.
inline Spade MakeSpadeFor(const Workload& w, const std::string& algo) {
  Spade spade;
  spade.SetSemantics(MakeSemanticsByName(algo));
  const Status s = spade.BuildGraph(w.num_vertices, w.initial);
  if (!s.ok()) {
    std::fprintf(stderr, "BuildGraph failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return spade;
}

/// Prints the Table 3 header for the profiles a harness uses.
inline void PrintDatasetHeader(const std::vector<Workload>& workloads) {
  std::printf("# datasets (Table 3 at bench scale)\n");
  std::printf("# %-10s %10s %10s %8s %12s %s\n", "name", "|V|", "|E|",
              "avg.deg", "increments", "type");
  for (const Workload& w : workloads) {
    const std::size_t edges = w.initial.size() + w.stream.size();
    std::printf("# %-10s %10zu %10zu %8.2f %12zu %s\n",
                w.profile.name.c_str(), w.num_vertices, edges,
                w.num_vertices ? 2.0 * static_cast<double>(edges) /
                                     static_cast<double>(w.num_vertices)
                               : 0.0,
                w.stream.size(), w.profile.type.c_str());
  }
  std::printf("\n");
}

/// Human formatting for microsecond means: "-" below one microsecond, like
/// the paper's Table 4.
inline std::string FormatMicros(double us) {
  if (us <= 0) return "-";
  if (us < 1.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", us);
  return buf;
}

}  // namespace spade::bench
