// Shared provenance block for every emitted BENCH_*.json: how many cores
// the process could actually use, when it ran, and the knobs that shaped
// the numbers. Committed reference JSONs carry the same block, so a
// regression investigation can always answer "what machine, when, which
// config" without digging through CI logs.

#pragma once

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace spade::bench {

/// Cores available to THIS process: the affinity mask when the platform
/// exposes one (taskset/cgroup-restricted CI boxes lie through
/// hardware_concurrency), the hardware count otherwise.
inline unsigned CoresAvailable() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  return std::max(1u, std::thread::hardware_concurrency());
}

/// UTC ISO-8601, e.g. "2026-08-07T12:34:56Z".
inline std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Optimization level of this binary (bench numbers from a debug build
/// are not comparable to the committed references).
inline const char* BuildType() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

/// Writes the meta member (plus trailing comma + newline) into an open
/// JSON object. `config_json` must be a complete JSON value describing
/// the bench's knobs, e.g. "{\"reps\": 5}".
inline void WriteBenchMeta(std::FILE* f, const std::string& config_json) {
  std::fprintf(f,
               "  \"meta\": {\"cores_available\": %u, \"timestamp\": "
               "\"%s\", \"build\": \"%s\", \"config\": %s},\n",
               CoresAvailable(), UtcTimestamp().c_str(), BuildType(),
               config_json.c_str());
}

}  // namespace spade::bench
