// Before/after microbench for the three update hot-path optimizations:
//
//  1. hub_update — end-to-end Spade-style updates (insert + detect) on a
//     high-degree-hub workload. "before" = legacy from-graph pending-weight
//     recomputation + naive O(n) suffix-scan detection; "after" = stored-
//     delta O(1) gray recovery + blocked suffix-sum/hull detection.
//  2. detect_after_edge — Detect() right after a single-edge insertion:
//     naive O(n) scan vs the blocked index (O(span + n/B log B)).
//  3. vertex_insert — registering a brand-new vertex at the head of the
//     peeling sequence: the old physical front-insert + full position-index
//     rebuild (simulated) vs the head-offset scheme.
//
// Emits BENCH_incremental.json (path = argv[1], default ./) with one entry
// per experiment: {name, n, before_us, after_us, speedup, ...}. The repo
// commits a reference copy; CI uploads a fresh one per run as an artifact.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/bench_meta.h"
#include "common/rng.h"
#include "core/incremental_engine.h"
#include "peel/peel_state.h"
#include "peel/static_peeler.h"

namespace spade::bench {
namespace {

/// The pre-optimization Detect(): linear suffix scan over the deltas.
double NaiveBestDensity(const PeelState& state) {
  const std::size_t n = state.size();
  const auto delta = state.delta();
  double suffix = 0.0;
  double best = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    suffix += delta[i];
    const double density = suffix / static_cast<double>(n - i);
    if (density >= best) best = density;
  }
  return best;
}

/// Power-law multigraph with one very high-degree hub (vertex 0): the
/// adversarial case for per-push incident rescans. Edge weights are
/// continuous (transaction amounts), so peeling-weight ties are singletons
/// and an insertion's displacement reflects the weight perturbation rather
/// than the size of an integer tie class.
DynamicGraph MakeHubGraph(std::size_t n, std::size_t m, std::size_t hub_deg,
                          std::uint64_t seed) {
  Rng rng(seed);
  DynamicGraph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    auto s = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    auto d = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    while (d == s) d = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    (void)g.AddEdge(s, d, 1.0 + 9.0 * rng.NextDouble());
  }
  for (std::size_t i = 0; i < hub_deg; ++i) {
    auto d = static_cast<VertexId>(1 + rng.NextBounded(n - 1));
    (void)g.AddEdge(0, d, 1.0 + 9.0 * rng.NextDouble());
  }
  return g;
}

struct LatencyPercentiles {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Order statistics over one un-averaged pass: the tail (arena regrowths,
/// long displacement merges) is exactly what the best-of means hide.
LatencyPercentiles PercentilesFromMicros(std::vector<double> us) {
  LatencyPercentiles r;
  if (us.empty()) return r;
  std::sort(us.begin(), us.end());
  r.p50_us = us[us.size() / 2];
  r.p99_us = us[std::min(us.size() - 1, us.size() * 99 / 100)];
  return r;
}

struct Entry {
  std::string name;
  std::size_t n = 0;
  double before_us = 0.0;
  double after_us = 0.0;
  LatencyPercentiles after_pct;  // per-op latencies of the optimized path
  std::string note;
  double speedup() const { return before_us / after_us; }
};

/// Replays `stream` through `update` against fresh copies of (g0, s0),
/// timing only the replay (the copies — megabytes of adjacency vectors —
/// stay outside the timer). One warmup rep, then the best of `reps` timed
/// reps, in microseconds per update. When `pct` is non-null, one extra rep
/// times every update individually and reports its p50/p99.
template <typename UpdateFn>
double MeasureUpdateBatchMicros(const DynamicGraph& g0, const PeelState& s0,
                                const std::vector<Edge>& stream,
                                UpdateFn&& update, int reps = 5,
                                LatencyPercentiles* pct = nullptr) {
  double best_s = 0.0;
  for (int rep = 0; rep <= reps; ++rep) {
    DynamicGraph g = g0;
    PeelState state = s0;
    volatile double guard = 0.0;
    Timer timer;
    for (const Edge& e : stream) guard = update(&g, &state, e);
    const double elapsed = timer.ElapsedSeconds();
    (void)guard;
    if (rep == 0) continue;  // warmup
    if (best_s == 0.0 || elapsed < best_s) best_s = elapsed;
  }
  if (pct != nullptr) {
    DynamicGraph g = g0;
    PeelState state = s0;
    volatile double guard = 0.0;
    std::vector<double> per_op_us;
    per_op_us.reserve(stream.size());
    for (const Edge& e : stream) {
      Timer timer;
      guard = update(&g, &state, e);
      per_op_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    (void)guard;
    *pct = PercentilesFromMicros(std::move(per_op_us));
  }
  return best_s / static_cast<double>(stream.size()) * 1e6;
}

/// Hub workload: every update touches the hub, so the legacy path rescans
/// the hub's whole incident list per push and the naive Detect rescans the
/// whole sequence per update. Light edge weights keep the displacement of
/// the hub within the peeling sequence small — the regime where the
/// optimized costs (per-push rescans, O(n) detection) dominate; heavy
/// weights displace the hub across a long span, sequence-maintenance work
/// both paths share. K updates per timed iteration, state restored from a
/// pristine copy outside the timer.
Entry BenchHubUpdate(std::size_t n, std::size_t hub_deg, std::size_t k,
                     bool heavy) {
  const DynamicGraph g0 = MakeHubGraph(n, 4 * n, hub_deg, 7);
  const PeelState s0 = PeelStatic(g0);
  Rng rng(11);
  std::vector<Edge> stream;
  for (std::size_t i = 0; i < k; ++i) {
    auto d = static_cast<VertexId>(1 + rng.NextBounded(n - 1));
    const double w =
        heavy ? 1.0 + 9.0 * rng.NextDouble() : 0.01 + 0.04 * rng.NextDouble();
    stream.push_back({0, d, w, 0});
  }

  Entry e;
  const auto run = [&](bool optimized) {
    IncrementalEngine engine(
        IncrementalOptions{.stored_delta_recovery = optimized});
    return MeasureUpdateBatchMicros(
        g0, s0, stream,
        [&](DynamicGraph* g, PeelState* state, const Edge& ed) {
          (void)engine.InsertEdge(g, state, ed, nullptr, nullptr);
          return optimized ? state->BestDensity() : NaiveBestDensity(*state);
        },
        5, optimized ? &e.after_pct : nullptr);
  };

  e.name = heavy ? "hub_update_heavy" : "hub_update";
  e.n = n;
  e.note = std::string("insert+detect per update, hub degree ") +
           std::to_string(hub_deg) +
           (heavy ? ", heavy edges (long displacement)" : ", light edges");
  e.before_us = run(false);
  e.after_us = run(true);
  return e;
}

/// Detect() immediately after a single-edge update, naive vs blocked.
Entry BenchDetectAfterEdge(std::size_t n, std::size_t k) {
  const DynamicGraph g0 = MakeHubGraph(n, 4 * n, 0, 17);
  const PeelState s0 = PeelStatic(g0);
  Rng rng(19);
  std::vector<Edge> stream;
  for (std::size_t i = 0; i < k; ++i) {
    Edge e;
    e.src = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    e.dst = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    while (e.dst == e.src) {
      e.dst = static_cast<VertexId>(rng.NextZipf(n, 0.9));
    }
    e.weight = 0.01 + 0.04 * rng.NextDouble();
    stream.push_back(e);
  }

  Entry e;
  const auto run = [&](bool blocked) {
    IncrementalEngine engine;
    return MeasureUpdateBatchMicros(
        g0, s0, stream,
        [&](DynamicGraph* g, PeelState* state, const Edge& ed) {
          (void)engine.InsertEdge(g, state, ed, nullptr, nullptr);
          return blocked ? state->BestDensity() : NaiveBestDensity(*state);
        },
        5, blocked ? &e.after_pct : nullptr);
  };

  e.name = "detect_after_edge";
  e.n = n;
  e.note = "one Detect per single-edge insert";
  e.before_us = run(false);
  e.after_us = run(true);
  return e;
}

/// Head insertion: the old representation front-inserted into both arrays
/// and rebuilt the whole position index per new vertex (simulated below on
/// identical data); the head-offset scheme writes one slot.
Entry BenchVertexInsert(std::size_t n, std::size_t inserts) {
  Rng rng(23);
  std::vector<double> deltas(n);
  for (auto& d : deltas) d = static_cast<double>(1 + rng.NextBounded(8));

  Entry e;
  e.name = "vertex_insert";
  e.n = n;
  e.note = std::to_string(inserts) + " head insertions on a size-" +
           std::to_string(n) + " sequence";

  // Before: physical front-insert + full pos_ rebuild (the seed behavior).
  struct LegacyState {
    std::vector<VertexId> seq;
    std::vector<double> delta;
    std::vector<std::size_t> pos;
    void InsertVertexAtHead(VertexId v, double d0) {
      if (v >= pos.size()) pos.resize(v + 1, static_cast<std::size_t>(-1));
      seq.insert(seq.begin(), v);
      delta.insert(delta.begin(), d0);
      for (std::size_t i = 0; i < seq.size(); ++i) pos[seq[i]] = i;
    }
  };
  e.before_us = BenchmarkSecondsPerIteration([&] {
                  LegacyState legacy;
                  legacy.pos.assign(n, static_cast<std::size_t>(-1));
                  for (std::size_t v = 0; v < n; ++v) {
                    legacy.pos[v] = v;
                    legacy.seq.push_back(static_cast<VertexId>(v));
                    legacy.delta.push_back(deltas[v]);
                  }
                  for (std::size_t i = 0; i < inserts; ++i) {
                    legacy.InsertVertexAtHead(static_cast<VertexId>(n + i),
                                              0.0);
                  }
                }) /
                static_cast<double>(inserts) * 1e6;

  e.after_us = BenchmarkSecondsPerIteration([&] {
                 PeelState state(n);
                 for (std::size_t v = 0; v < n; ++v) {
                   state.Append(static_cast<VertexId>(v), deltas[v]);
                 }
                 for (std::size_t i = 0; i < inserts; ++i) {
                   state.InsertVertexAtHead(static_cast<VertexId>(n + i),
                                            0.0);
                 }
               }) /
               static_cast<double>(inserts) * 1e6;

  // Per-op tail: amortized O(1) with occasional GrowFront relocations —
  // the p99 is where those spikes show.
  {
    PeelState state(n);
    for (std::size_t v = 0; v < n; ++v) {
      state.Append(static_cast<VertexId>(v), deltas[v]);
    }
    std::vector<double> per_op_us;
    per_op_us.reserve(inserts);
    for (std::size_t i = 0; i < inserts; ++i) {
      Timer timer;
      state.InsertVertexAtHead(static_cast<VertexId>(n + i), 0.0);
      per_op_us.push_back(timer.ElapsedSeconds() * 1e6);
    }
    e.after_pct = PercentilesFromMicros(std::move(per_op_us));
  }
  return e;
}

}  // namespace
}  // namespace spade::bench

int main(int argc, char** argv) {
  using namespace spade::bench;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  std::vector<Entry> entries;
  std::printf("# incremental hot-path before/after microbench\n");
  std::printf("%-18s %10s %12s %12s %9s %10s %10s  %s\n", "experiment", "n",
              "before(us)", "after(us)", "speedup", "p50(us)", "p99(us)",
              "note");

  entries.push_back(BenchHubUpdate(1 << 16, 3000, 256, /*heavy=*/false));
  entries.push_back(BenchHubUpdate(1 << 16, 3000, 256, /*heavy=*/true));
  entries.push_back(BenchDetectAfterEdge(1 << 16, 256));
  entries.push_back(BenchVertexInsert(1 << 14, 1024));

  for (const Entry& e : entries) {
    std::printf("%-18s %10zu %12.3f %12.3f %8.2fx %10.3f %10.3f  %s\n",
                e.name.c_str(), e.n, e.before_us, e.after_us, e.speedup(),
                e.after_pct.p50_us, e.after_pct.p99_us, e.note.c_str());
  }

  const std::string path = out_dir + "/BENCH_incremental.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  spade::bench::WriteBenchMeta(f, "{\"semantics\": \"DW\"}");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %zu, \"before_us\": %.3f, "
                 "\"after_us\": %.3f, \"speedup\": %.2f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"note\": \"%s\"}%s\n",
                 e.name.c_str(), e.n, e.before_us, e.after_us, e.speedup(),
                 e.after_pct.p50_us, e.after_pct.p99_us, e.note.c_str(),
                 i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
