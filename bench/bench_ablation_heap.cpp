// Ablation: pending-queue implementation for the static peeler — the
// indexed binary heap (decrease-key in place) versus a lazy-deletion
// std::priority_queue (stale entries skipped at pop).
//
// The lazy heap pushes one entry per incident-edge relaxation, so its queue
// grows to O(|E|); the indexed heap stays at O(|V|) with in-place updates.
// Both produce identical peel sequences (weight-only order; ties may
// differ).

#include <cstdio>
#include <queue>
#include <vector>

#include "bench/bench_util.h"
#include "graph/csr_graph.h"

using namespace spade;
using namespace spade::bench;

namespace {

/// Static peel with a lazy-deletion priority queue.
double PeelLazySeconds(const CsrGraph& g, double* density_out) {
  Timer timer;
  const std::size_t n = g.NumVertices();
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<double> weight(n);
  std::vector<char> peeled(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    weight[v] = g.WeightedDegree(static_cast<VertexId>(v));
    heap.emplace(weight[v], static_cast<VertexId>(v));
  }
  std::vector<double> delta;
  delta.reserve(n);
  while (!heap.empty()) {
    const auto [w, u] = heap.top();
    heap.pop();
    if (peeled[u] || w != weight[u]) continue;  // stale entry
    peeled[u] = 1;
    delta.push_back(w);
    for (const auto& e : g.Incident(u)) {
      if (!peeled[e.vertex]) {
        weight[e.vertex] -= e.weight;
        heap.emplace(weight[e.vertex], e.vertex);
      }
    }
  }
  // Best suffix mean.
  double suffix = 0, best = 0;
  for (std::size_t i = delta.size(); i-- > 0;) {
    suffix += delta[i];
    const double d = suffix / static_cast<double>(delta.size() - i);
    if (d >= best) best = d;
  }
  *density_out = best;
  return timer.ElapsedSeconds();
}

}  // namespace

int main() {
  std::printf("# ablation: indexed heap vs lazy-deletion heap "
              "(static peel, DW)\n");
  std::printf("%-10s %10s %10s %14s %14s %8s\n", "dataset", "|V|", "|E|",
              "indexed(s)", "lazy(s)", "ratio");

  for (const char* name : {"Grab1", "Grab2", "Grab3", "Grab4", "Epinion"}) {
    const Workload w = BuildWorkload(name, ScaleFor(name), /*seed=*/97);
    Spade spade = MakeSpadeFor(w, "DW");
    std::vector<Edge> all(w.stream.edges);
    if (!spade.InsertBatchEdges(all).ok()) return 1;

    const CsrGraph csr(spade.graph());
    const double indexed_s = MeasureStaticSeconds(spade.graph());
    double lazy_density = 0;
    const double lazy_s = PeelLazySeconds(csr, &lazy_density);

    // Cross-check: both strategies find the same community density (ties
    // may reorder the tail, so compare within a small relative tolerance).
    const double indexed_density = spade.peel_state().BestDensity();
    if (std::abs(indexed_density - lazy_density) >
        1e-3 * std::max(1.0, indexed_density)) {
      std::fprintf(stderr, "density mismatch: %f vs %f\n", indexed_density,
                   lazy_density);
      return 1;
    }

    std::printf("%-10s %10zu %10zu %14.4f %14.4f %8.2f\n", name,
                spade.graph().NumVertices(), spade.graph().NumEdges(),
                indexed_s, lazy_s, indexed_s > 0 ? lazy_s / indexed_s : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
