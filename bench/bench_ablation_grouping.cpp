// Ablation: benign-buffer capacity in edge grouping (Algorithm 3).
//
// Sweeps the buffer cap from 1 (degenerates to per-edge processing) to
// unbounded, measuring elapsed time, fraud latency and prevention. The
// design point: a large buffer amortizes reordering over benign traffic
// without hurting prevention, because urgent (fraud-like) edges bypass the
// buffer entirely.

#include <cstdio>
#include <limits>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  FraudMix mix;
  mix.instances_per_pattern = 2;
  mix.transactions_per_instance = 250;
  const std::string profile = "Grab2";
  const Workload w =
      BuildWorkload(profile, ScaleFor(profile), /*seed=*/71, &mix);
  PrintDatasetHeader({w});

  std::printf("# ablation: benign-buffer capacity (DW semantics)\n");
  std::printf("%-12s %12s %10s %14s %12s\n", "buffer-cap", "E(us/edge)",
              "flushes", "latency(ms)", "prevention");

  for (std::size_t cap : {std::size_t(1), std::size_t(16), std::size_t(64),
                          std::size_t(256), std::size_t(1024),
                          std::size_t(4096),
                          std::numeric_limits<std::size_t>::max()}) {
    SpadeOptions options;
    options.enable_edge_grouping = true;
    options.max_benign_buffer = cap;
    Spade spade(options);
    spade.SetSemantics(MakeDW());
    if (!spade.BuildGraph(w.num_vertices, w.initial).ok()) return 1;

    ReplayOptions replay;
    replay.use_edge_grouping = true;
    const ReplayReport r = Replay(&spade, w.stream, replay);
    if (cap == std::numeric_limits<std::size_t>::max()) {
      std::printf("%-12s", "unbounded");
    } else {
      std::printf("%-12zu", cap);
    }
    std::printf(" %12.3f %10zu %14.3f %12.4f\n", r.MeanMicrosPerEdge(),
                r.flushes, r.fraud_latency_micros.mean() / 1000.0,
                r.prevention_ratio);
    std::fflush(stdout);
  }
  return 0;
}
