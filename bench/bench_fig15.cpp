// Figure 15: fraud-instance enumeration over a week of 28 timespans.
//
// A seven-day synthetic stream carries fraud instances of all three
// patterns at random times. The stream is cut into 28 equal timespans; in
// each, the detector state is advanced and the dense instances in the
// current graph are enumerated (Appendix C.2). Each row reports the number
// of fraud instances surfaced in that timespan, normalized to the first
// timespan's count like the paper's bars.

#include <algorithm>
#include <array>
#include <cstdio>
#include <set>
#include <vector>

#include "analysis/pattern_classifier.h"
#include "bench/bench_util.h"
#include "core/enumeration.h"
#include "datagen/fraud_injector.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::string profile = "Grab1";
  Workload w = BuildWorkload(profile, ScaleFor(profile), /*seed=*/61, nullptr);

  // Inject 14 instances (mixed patterns) across the stream's time range.
  Rng rng(4242);
  std::vector<std::vector<Edge>> instances;
  std::vector<std::vector<VertexId>> members;
  const Timestamp t0 = w.stream.edges.front().ts;
  const Timestamp t1 = w.stream.edges.back().ts;
  const FraudPattern patterns[] = {FraudPattern::kCustomerMerchantCollusion,
                                   FraudPattern::kDealHunter,
                                   FraudPattern::kClickFarming};
  for (int i = 0; i < 14; ++i) {
    FraudInstanceConfig config;
    config.pattern = patterns[i % 3];
    config.num_transactions = 150;
    config.start_ts =
        t0 + static_cast<Timestamp>(rng.NextBounded(
                 static_cast<std::uint64_t>(t1 - t0) * 9 / 10));
    config.micros_per_edge = 400;
    std::vector<VertexId> vs;
    instances.push_back(SynthesizeFraudInstance(
        config, 0, w.merchant_base, w.merchant_base,
        static_cast<VertexId>(w.num_vertices), &rng, &vs));
    members.push_back(std::move(vs));
  }
  InjectInstances(&w.stream, instances, members);
  PrintDatasetHeader({w});

  // Replay timespan by timespan; after each, enumerate dense instances and
  // check which injected groups newly appear.
  constexpr int kTimespans = 28;
  Spade spade = MakeSpadeFor(w, "DW");
  std::vector<char> reported(members.size(), 0);
  std::size_t cursor = 0;
  std::vector<int> per_span(kTimespans, 0);
  // Per-pattern counts (collusion / deal-hunter / click-farming / unknown),
  // classified by community shape like the paper's stacked bars.
  std::vector<std::array<int, 4>> per_span_pattern(kTimespans, {0, 0, 0, 0});

  for (int span = 0; span < kTimespans; ++span) {
    const Timestamp span_end =
        t0 + (t1 - t0) * static_cast<Timestamp>(span + 1) / kTimespans;
    std::vector<Edge> chunk;
    while (cursor < w.stream.size() &&
           w.stream.edges[cursor].ts <= span_end) {
      chunk.push_back(w.stream.edges[cursor]);
      ++cursor;
    }
    if (!chunk.empty() && !spade.InsertBatchEdges(chunk).ok()) return 1;

    EnumerateOptions options;
    options.max_communities = 8;
    options.min_density = 2.0 * spade.graph().TotalWeight() /
                          static_cast<double>(spade.graph().NumVertices());
    const auto communities =
        EnumerateDenseSubgraphs(spade.graph(), options);
    for (const Community& c : communities) {
      const std::set<VertexId> community_set(c.members.begin(),
                                             c.members.end());
      for (std::size_t gid = 0; gid < members.size(); ++gid) {
        if (reported[gid]) continue;
        std::size_t hit = 0;
        for (VertexId v : members[gid]) hit += community_set.count(v);
        if (hit * 2 >= members[gid].size()) {  // majority of the ring
          reported[gid] = 1;
          ++per_span[span];
          const CommunityPattern pattern =
              ClassifyCommunity(spade.graph(), c, w.merchant_base);
          ++per_span_pattern[span][static_cast<int>(pattern)];
        }
      }
    }
  }

  std::printf("# Figure 15 rows: timespan day new-instances "
              "collusion deal-hunter click-farming unknown "
              "normalized-to-T1\n");
  const int first = std::max(per_span[0], 1);
  int total = 0;
  for (int span = 0; span < kTimespans; ++span) {
    total += per_span[span];
    std::printf("T%-3d day%-2d %3d   %3d %3d %3d %3d %8.2f\n", span + 1,
                span / 4 + 1, per_span[span], per_span_pattern[span][0],
                per_span_pattern[span][1], per_span_pattern[span][2],
                per_span_pattern[span][3],
                static_cast<double>(per_span[span]) /
                    static_cast<double>(first));
  }
  std::printf("# %d of %zu injected instances surfaced across the week\n",
              total, members.size());
  return 0;
}
