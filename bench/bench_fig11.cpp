// Figure 11 (a-f): elapsed time E and latency L by varying the batch size
// from 1 to 1000, for IncDG / IncDW / IncFD on Grab1-4.
//
// Expected shape: E decreases monotonically with batch size (stale
// reorderings get coalesced); L increases with batch size and is dominated
// by queueing time; the smaller Grab1 stream queues longer than Grab4 at
// the same batch size (fewer edges per second at equal pacing), matching
// the paper's observation that L(Grab1) > L(Grab4).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::vector<std::string> names = {"Grab1", "Grab2", "Grab3", "Grab4"};
  const std::vector<std::size_t> batch_sizes = {1,   10,  50,  100,
                                                200, 500, 1000};
  FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 200;

  std::vector<Workload> workloads;
  for (const std::string& name : names) {
    workloads.push_back(BuildWorkload(name, ScaleFor(name), /*seed=*/31, &mix));
  }
  PrintDatasetHeader(workloads);

  for (const Algo& a : Algos()) {
    std::printf("# Figure 11 series: %s — E (us/edge) by batch size\n",
                a.inc_name);
    std::printf("%-8s", "batch");
    for (const Workload& w : workloads) {
      std::printf(" %12s", w.profile.name.c_str());
    }
    std::printf("   |");
    for (const Workload& w : workloads) {
      std::printf(" %12s", (w.profile.name + ".L").c_str());
    }
    std::printf("\n");

    for (std::size_t b : batch_sizes) {
      std::printf("%-8zu", b);
      std::vector<double> latencies;
      for (const Workload& w : workloads) {
        Spade spade = MakeSpadeFor(w, a.name);
        ReplayOptions options;
        options.batch_size = b;
        const ReplayReport r = Replay(&spade, w.stream, options);
        std::printf(" %12.3f", r.MeanMicrosPerEdge());
        latencies.push_back(r.fraud_latency_micros.mean());
      }
      std::printf("   |");
      for (double l : latencies) std::printf(" %12.0f", l);
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
