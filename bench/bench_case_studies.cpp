// Case studies (Figures 12d / 13d-f): for each of the three Grab fraud
// patterns, compare when the incremental detector flags the ring against a
// periodic-static deployment, and count the fraudulent transactions issued
// inside the detection gap (the paper reports 720 / 71 / 1853 gap
// transactions for collusion / deal-hunter / click-farming).
//
// Deployment model for the static baseline: re-run the peeling every P
// seconds where P is the measured from-scratch runtime (the paper's "we can
// execute fraud detection every 30 seconds because one run takes 28 s",
// scaled to this host); a ring detected by the incremental engine at time t
// is detected by the periodic run that *starts* after t and lands at its
// finish time.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/fraud_injector.h"

using namespace spade;
using namespace spade::bench;

int main() {
  struct Case {
    FraudPattern pattern;
    const char* algo;      // the paper pairs each pattern with a semantics
    std::size_t txns;      // fraud transactions in the instance
  };
  const std::vector<Case> cases = {
      {FraudPattern::kCustomerMerchantCollusion, "DG", 738},
      {FraudPattern::kDealHunter, "DW", 80},
      {FraudPattern::kClickFarming, "FD", 1899},
  };

  const std::string profile = "Grab1";
  const double scale = ScaleFor(profile);

  for (const Case& c : cases) {
    // A workload with exactly one instance of this pattern.
    FraudMix mix;
    mix.instances_per_pattern = 0;  // patterns injected manually below
    Workload w = BuildWorkload(profile, scale, /*seed=*/51, nullptr);

    Rng rng(977 + static_cast<std::uint64_t>(c.pattern));
    FraudInstanceConfig config;
    config.pattern = c.pattern;
    config.num_transactions = c.txns;
    config.start_ts =
        w.stream.edges.front().ts +
        (w.stream.edges.back().ts - w.stream.edges.front().ts) / 3;
    config.micros_per_edge = 1000;  // ~1 ms between fraudulent transactions
    std::vector<VertexId> members;
    const auto edges = SynthesizeFraudInstance(
        config, 0, w.merchant_base, w.merchant_base,
        static_cast<VertexId>(w.num_vertices), &rng, &members);
    InjectInstances(&w.stream, {edges}, {members});

    // Incremental per-edge replay (the paper's IncXX line).
    Spade spade = MakeSpadeFor(w, c.algo);
    ReplayOptions options;
    options.batch_size = 1;
    const ReplayReport report = Replay(&spade, w.stream, options);
    const double t0 = static_cast<double>(config.start_ts);
    const double t_inc = report.group_detection_time.empty()
                             ? -1.0
                             : report.group_detection_time[0];

    // Periodic-static deployment.
    const double period_us = MeasureStaticSeconds(spade.graph()) * 1e6;
    double t_static = -1.0;
    if (t_inc >= 0) {
      const double k = std::floor(t_inc / period_us) + 1.0;
      t_static = k * period_us + period_us;  // next start + full run
    }

    std::printf("=== %s (Inc%s vs periodic %s) ===\n",
                FraudPatternName(c.pattern).c_str(), c.algo, c.algo);
    if (t_inc < 0) {
      std::printf("  incremental: instance not detected (%zu txns)\n\n",
                  c.txns);
      continue;
    }
    std::printf("  fraud starts at        T0 = %.3f s (stream time)\n",
                t0 / 1e6);
    std::printf("  Inc%s detects at       T1 = T0 + %.3f s\n", c.algo,
                (t_inc - t0) / 1e6);
    std::printf("  periodic %s detects at T2 = T0 + %.3f s "
                "(re-run period %.3f s)\n",
                c.algo, (t_static - t0) / 1e6, period_us / 1e6);

    std::size_t in_gap = 0;
    for (std::size_t i = 0; i < w.stream.size(); ++i) {
      if (w.stream.group[i] != 0) continue;
      const double ts = static_cast<double>(w.stream.edges[i].ts);
      if (ts > t_inc && ts <= t_static) ++in_gap;
    }
    std::printf("  fraudulent transactions in the gap (T1, T2]: %zu of "
                "%zu\n",
                in_gap, c.txns);

    // Paper-scale extrapolation: at the full Table 3 size the static run
    // takes |E_full|/|E_bench| times longer (peeling is near-linear in
    // |E|), so the re-run period and hence the gap stretch by that factor.
    const DatasetProfile full = GetProfile(profile, 1.0);
    const double edge_ratio =
        static_cast<double>(full.num_edges) /
        static_cast<double>(w.initial.size() + w.stream.size());
    const double period_full_us = period_us * edge_ratio;
    const double t_static_full =
        (std::floor(t_inc / period_full_us) + 1.0) * period_full_us +
        period_full_us;
    std::size_t in_gap_full = 0;
    for (std::size_t i = 0; i < w.stream.size(); ++i) {
      if (w.stream.group[i] != 0) continue;
      const double ts = static_cast<double>(w.stream.edges[i].ts);
      if (ts > t_inc && ts <= t_static_full) ++in_gap_full;
    }
    std::printf("  at paper scale (period ~%.1f s): %zu of %zu "
                "transactions land in the gap\n\n",
                period_full_us / 1e6, in_gap_full, c.txns);
    std::fflush(stdout);
  }
  return 0;
}
