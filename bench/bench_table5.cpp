// Table 5: elapsed time E and latency L of static algorithms, incremental
// batch-1K, and edge grouping, on the Grab profiles.
//
// E is the average wall-clock cost per streamed edge. L is the simulated
// fraud-activity latency (Eq. 4: queueing + processing). For the static
// baseline, the deployment model is the paper's periodic re-run: a fraud
// edge waits on average half a detection period plus the full run, with the
// period equal to the static runtime — exactly the "detect every 30s
// because the run takes ~30s" loop of Figure 1.
//
// Expected shape: batch-1K minimizes E but pays queueing latency; edge
// grouping is nearly as cheap as batching while its latency stays orders of
// magnitude below (99.99% of batch latency is queueing, which grouping
// only imposes on benign edges).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace spade;
using namespace spade::bench;

int main() {
  const std::vector<std::string> names = {"Grab1", "Grab2", "Grab3", "Grab4"};
  FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 200;

  std::vector<Workload> workloads;
  for (const std::string& name : names) {
    workloads.push_back(BuildWorkload(name, ScaleFor(name), /*seed=*/29, &mix));
  }
  PrintDatasetHeader(workloads);

  std::printf("# Table 5: E = avg us/edge, L = mean fraud latency (us)\n");
  std::printf("%-8s", "dataset");
  for (const Algo& a : Algos()) {
    std::printf(" %10s %12s", (std::string(a.name) + ".E").c_str(),
                (std::string(a.name) + ".L").c_str());
  }
  for (const Algo& a : Algos()) {
    std::printf(" %10s %12s", (std::string(a.inc_name) + "1K.E").c_str(),
                (std::string(a.inc_name) + "1K.L").c_str());
  }
  for (const Algo& a : Algos()) {
    std::printf(" %10s %12s", (std::string(a.group_name) + ".E").c_str(),
                (std::string(a.group_name) + ".L").c_str());
  }
  std::printf("\n");

  for (const Workload& w : workloads) {
    std::printf("%-8s", w.profile.name.c_str());

    // Static deployment: E = one full peel per detection; L = half a
    // period of queueing plus the run itself.
    for (const Algo& a : Algos()) {
      Spade spade = MakeSpadeFor(w, a.name);
      std::vector<Edge> all(w.stream.edges);
      if (!spade.InsertBatchEdges(all).ok()) return 1;
      const double run_us = MeasureStaticSeconds(spade.graph()) * 1e6;
      std::printf(" %10.1f %12.0f", run_us, 1.5 * run_us);
    }

    for (const Algo& a : Algos()) {
      Spade spade = MakeSpadeFor(w, a.name);
      ReplayOptions options;
      options.batch_size = 1000;
      const ReplayReport r = Replay(&spade, w.stream, options);
      std::printf(" %10.2f %12.0f", r.MeanMicrosPerEdge(),
                  r.fraud_latency_micros.mean());
    }

    for (const Algo& a : Algos()) {
      Spade spade = MakeSpadeFor(w, a.name);
      ReplayOptions options;
      options.use_edge_grouping = true;
      const ReplayReport r = Replay(&spade, w.stream, options);
      std::printf(" %10.2f %12.0f", r.MeanMicrosPerEdge(),
                  r.fraud_latency_micros.mean());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
