// Quickstart: the paper's Listing 2 end-to-end — plug in the Fraudar (FD)
// suspiciousness functions, load a transaction graph, stream edge
// insertions, and watch Spade keep the fraudulent community current.
//
//   ./quickstart [edge_list_path]
//
// Without an argument, a small synthetic transaction graph is generated.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/spade.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"

namespace {

double vsusp(spade::VertexId v, const spade::DynamicGraph& g) {
  // Prior suspiciousness from side information stored on the graph.
  return g.VertexWeight(v);
}

double esusp(const spade::Edge& e, const spade::DynamicGraph& g) {
  // Fraudar's camouflage-resistant weighting: 1 / log(deg(object) + 5).
  return 1.0 / std::log(static_cast<double>(g.Degree(e.dst)) + 5.0);
}

}  // namespace

int main(int argc, char** argv) {
  spade::Spade spade;
  spade.VSusp(vsusp);            // plug in the vertex suspiciousness
  spade.ESusp(esusp);            // plug in the edge suspiciousness
  spade.TurnOnEdgeGrouping();    // enable Algorithm 3

  std::vector<spade::Edge> increments;
  if (argc > 1) {
    const spade::Status s = spade.LoadGraph(argv[1]);
    if (!s.ok()) {
      std::fprintf(stderr, "LoadGraph failed: %s\n", s.ToString().c_str());
      return 1;
    }
  } else {
    spade::FraudMix mix;
    mix.transactions_per_instance = 200;
    const spade::Workload w =
        spade::BuildWorkload("Grab1", /*scale=*/0.001, /*seed=*/7, &mix);
    const spade::Status s = spade.BuildGraph(w.num_vertices, w.initial);
    if (!s.ok()) {
      std::fprintf(stderr, "BuildGraph failed: %s\n", s.ToString().c_str());
      return 1;
    }
    increments = w.stream.edges;
    std::printf("synthetic graph: %zu vertices, %zu initial edges, "
                "%zu streamed edges\n",
                w.num_vertices, w.initial.size(), increments.size());
  }

  spade::Community community = spade.Detect();
  std::printf("initial community: %zu vertices, density %.3f\n",
              community.members.size(), community.density);

  // Stream the updates; Spade reorders incrementally (benign edges batch,
  // urgent edges flush immediately).
  for (const spade::Edge& e : increments) {
    auto result = spade.InsertEdge(e);
    if (!result.ok()) {
      std::fprintf(stderr, "InsertEdge failed: %s\n",
                    result.status().ToString().c_str());
      return 1;
    }
  }

  community = spade.Detect();
  std::printf("final community:   %zu vertices, density %.3f\n",
              community.members.size(), community.density);
  std::printf("fraudster ids:");
  for (std::size_t i = 0; i < community.members.size() && i < 12; ++i) {
    std::printf(" %u", community.members[i]);
  }
  if (community.members.size() > 12) std::printf(" ...");
  std::printf("\n");

  const spade::ReorderStats& stats = spade.cumulative_stats();
  std::printf("incremental work: %zu affected vertices, %zu touched edges, "
              "%zu rewritten positions across all reorders\n",
              stats.affected_vertices, stats.touched_edges,
              stats.rewritten_span);
  return 0;
}
