// Custom semantics: shows Spade's programmability goal — a developer
// defines a brand-new peeling algorithm ("amount-per-transaction anomaly")
// with ~15 lines of suspiciousness functions, and the framework
// incrementalizes it with no further work (the paper's ~20-vs-100 lines of
// code claim).

#include <cmath>
#include <cstdio>

#include "core/spade.h"
#include "datagen/workload.h"
#include "metrics/semantics.h"

int main() {
  // Semantics: an edge is suspicious when its amount is far above what the
  // destination merchant usually sees (amount / sqrt(current degree)), and
  // recently created accounts (high ids in this synthetic world) carry a
  // small prior.
  spade::FraudSemantics anomaly;
  anomaly.name = "AmountAnomaly";
  anomaly.vsusp = [](spade::VertexId v, const spade::DynamicGraph& g) {
    return v + 1 >= g.NumVertices() * 9 / 10 ? 0.5 : 0.0;
  };
  anomaly.esusp = [](const spade::Edge& e, const spade::DynamicGraph& g) {
    const double deg = static_cast<double>(g.Degree(e.dst)) + 1.0;
    return e.weight / std::sqrt(deg);
  };

  spade::FraudMix mix;
  mix.transactions_per_instance = 250;
  const spade::Workload w =
      spade::BuildWorkload("Grab1", /*scale=*/0.001, /*seed=*/99, &mix);

  // Run the same workload under DG, DW, FD and the custom semantics.
  const spade::FraudSemantics all[] = {spade::MakeDG(), spade::MakeDW(),
                                       spade::MakeFD(), anomaly};
  for (const auto& semantics : all) {
    spade::Spade spade;
    spade.SetSemantics(semantics);
    if (!spade.BuildGraph(w.num_vertices, w.initial).ok()) {
      std::fprintf(stderr, "build failed\n");
      return 1;
    }
    for (const spade::Edge& e : w.stream.edges) {
      if (!spade.InsertEdge(e).ok()) {
        std::fprintf(stderr, "insert failed\n");
        return 1;
      }
    }
    const spade::Community c = spade.Detect();
    std::printf("%-14s community: %4zu vertices, density %10.4f, "
                "affected vertices so far: %zu\n",
                semantics.name.c_str(), c.members.size(), c.density,
                spade.cumulative_stats().affected_vertices);
  }
  std::printf("\nAll four semantics were incrementalized by the same "
              "engine; only VSusp/ESusp changed.\n");
  return 0;
}
