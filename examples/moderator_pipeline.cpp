// Moderator pipeline: the paper's Figure 1 deployment loop end to end —
// multiple transaction producers submit concurrently to a DetectionService;
// the service incrementally maintains the fraudulent community and alerts a
// moderator callback, which classifies each alert's fraud pattern and
// "bans" the accounts.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/pattern_classifier.h"
#include "datagen/workload.h"
#include "service/detection_service.h"

int main() {
  spade::FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 250;
  const spade::Workload w =
      spade::BuildWorkload("Grab1", /*scale=*/0.001, /*seed=*/77, &mix);

  spade::Spade detector;
  detector.SetSemantics(spade::MakeDW());
  if (!detector.BuildGraph(w.num_vertices, w.initial).ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  std::mutex print_mutex;
  std::atomic<int> banned{0};
  const spade::VertexId merchant_base = w.merchant_base;
  spade::DetectionService service(
      std::move(detector),
      [&](const spade::Community& community) {
        const std::lock_guard<std::mutex> lock(print_mutex);
        ++banned;
        std::printf("[moderator] alert: %zu accounts, density %.2f\n",
                    community.members.size(), community.density);
      });

  // Two producers split the stream and submit concurrently (out of order
  // between threads, like independent payment gateways).
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t);
           i < w.stream.size(); i += 2) {
        while (!service.Submit(w.stream.edges[i]).ok()) {
          std::this_thread::yield();  // backpressure
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Drain();

  spade::Community final_community = service.CurrentCommunity();
  service.Stop();

  std::printf("\nprocessed %llu transactions, delivered %llu alerts\n",
              static_cast<unsigned long long>(service.EdgesProcessed()),
              static_cast<unsigned long long>(service.AlertsDelivered()));
  std::printf("final community: %zu accounts, density %.2f\n",
              final_community.members.size(), final_community.density);

  // Classify what the moderators are looking at. The classifier needs the
  // graph; rebuild a reference detector for the inspection step.
  spade::Spade inspector;
  inspector.SetSemantics(spade::MakeDW());
  if (inspector.BuildGraph(w.num_vertices, w.initial).ok()) {
    std::vector<spade::Edge> all(w.stream.edges);
    if (inspector.InsertBatchEdges(all).ok()) {
      const spade::CommunityPattern pattern = spade::ClassifyCommunity(
          inspector.graph(), final_community, merchant_base);
      std::printf("pattern: %s\n",
                  spade::CommunityPatternName(pattern).c_str());
    }
  }
  return 0;
}
