// Fraud patterns: reproduces the spirit of the paper's case studies
// (Figures 12/13) — injects the three Grab fraud patterns into a live
// transaction stream and shows how quickly the incremental detector flags
// each ring, versus how long a 60-second periodic static re-run would take.

#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/graph_stats.h"
#include "core/spade.h"
#include "datagen/workload.h"
#include "stream/replayer.h"

int main() {
  spade::FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 300;
  const spade::Workload w =
      spade::BuildWorkload("Grab2", /*scale=*/0.001, /*seed=*/42, &mix);

  std::printf("workload: %zu vertices, %zu initial edges, %zu streamed "
              "(%zu fraud groups)\n\n",
              w.num_vertices, w.initial.size(), w.stream.size(),
              w.stream.group_vertices.size());

  spade::Spade spade;
  spade.SetSemantics(spade::MakeDW());
  if (!spade.BuildGraph(w.num_vertices, w.initial).ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  spade::ReplayOptions options;
  options.batch_size = 1;  // react to every transaction
  const spade::ReplayReport report =
      spade::Replay(&spade, w.stream, options);

  const char* names[] = {"customer-merchant collusion", "deal-hunter",
                         "click-farming"};
  for (std::size_t gid = 0; gid < report.group_detection_time.size(); ++gid) {
    const double t = report.group_detection_time[gid];
    // Transactions of this group arriving after detection are prevented.
    std::size_t total = 0, prevented = 0;
    for (std::size_t i = 0; i < w.stream.size(); ++i) {
      if (w.stream.group[i] != static_cast<std::int32_t>(gid)) continue;
      ++total;
      if (t >= 0 && static_cast<double>(w.stream.edges[i].ts) > t) {
        ++prevented;
      }
    }
    std::printf("%-28s: ", names[gid % 3]);
    if (t < 0) {
      std::printf("not detected (%zu transactions)\n", total);
    } else {
      std::printf("detected; %zu/%zu subsequent transactions preventable\n",
                  prevented, total);
    }
  }

  std::printf("\noverall prevention ratio R = %.2f%%\n",
              100.0 * report.prevention_ratio);
  std::printf("mean reorder cost: %.2f us/edge over %zu edges\n",
              report.MeanMicrosPerEdge(), report.edges_processed);

  // Contrast with the periodic-static deployment the paper's Figure 12(d)
  // describes: a 60 s cadence leaves every transaction issued inside the
  // window undetected.
  const spade::Community final_community = spade.Detect();
  const spade::LabelMetrics metrics =
      spade::EvaluateAgainstLabels(final_community, w.stream);
  std::printf("\nfinal community: %zu members, density %.2f "
              "(precision %.2f, recall %.2f vs injected labels)\n",
              final_community.members.size(), final_community.density,
              metrics.Precision(), metrics.Recall());
  return 0;
}
