// Arbitrary-period fraud detection (Appendix C.3): load a timestamped
// transaction log once, then retarget the detector across periods — a
// forensic sweep ("when was this ring active?") whose cost per retarget is
// the symmetric difference between periods, not a rebuild.

#include <cstdio>

#include "core/period_detector.h"
#include "datagen/workload.h"

int main() {
  spade::FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 200;
  const spade::Workload w =
      spade::BuildWorkload("Grab1", /*scale=*/0.0008, /*seed=*/33, &mix);

  const spade::Timestamp t0 = w.stream.edges.front().ts;
  const spade::Timestamp t1 = w.stream.edges.back().ts;
  std::printf("log: %zu edges over [%lld, %lld]\n\n", w.stream.size(),
              static_cast<long long>(t0), static_cast<long long>(t1));

  spade::PeriodDetector detector(w.num_vertices, w.stream.edges,
                                 spade::MakeDW());

  // Sweep eight half-overlapping periods across the log — each retarget
  // reuses the previous period's state (Figure 17's slide case).
  const spade::Timestamp width = (t1 - t0) / 5;
  for (int step = 0; step < 8; ++step) {
    const spade::Timestamp begin = t0 + step * (t1 - t0 - width) / 7;
    const spade::Timestamp end = begin + width;
    const spade::Status s = detector.SetPeriod(begin, end);
    if (!s.ok()) {
      std::fprintf(stderr, "SetPeriod failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const spade::Community c = detector.Detect();
    std::printf("period [%10lld, %10lld]  %6zu edges  community: %4zu "
                "vertices, density %8.2f\n",
                static_cast<long long>(begin), static_cast<long long>(end),
                detector.EdgesInPeriod(), c.members.size(), c.density);
  }

  // Zoom into the densest half of the last period (containment case).
  const auto [begin, end] = detector.period();
  const spade::Timestamp mid = begin + (end - begin) / 2;
  if (!detector.SetPeriod(begin, mid).ok()) return 1;
  const spade::Community zoom = detector.Detect();
  std::printf("\nzoom [%lld, %lld]: %zu vertices, density %.2f\n",
              static_cast<long long>(begin), static_cast<long long>(mid),
              zoom.members.size(), zoom.density);
  return 0;
}
