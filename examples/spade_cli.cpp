// spade_cli: a small operational front-end over the library — load a graph,
// stream updates from a file, detect/enumerate communities, save/restore
// detector snapshots.
//
// Usage:
//   spade_cli detect    <graph.txt> [DG|DW|FD]
//   spade_cli stream    <initial.txt> <updates.txt> [DG|DW|FD]
//   spade_cli enumerate <graph.txt> [max_communities]
//   spade_cli snapshot  <graph.txt> <out.bin>
//   spade_cli restore   <in.bin>
//
// Edge files are "src dst [weight] [ts]" rows ('#' comments allowed).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/graph_stats.h"
#include "core/enumeration.h"
#include "core/spade.h"
#include "graph/graph_io.h"
#include "metrics/semantics.h"
#include "storage/snapshot.h"

namespace {

int Fail(const spade::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

void PrintCommunity(const spade::Community& c) {
  std::printf("community: %zu vertices, density %.4f\n", c.members.size(),
              c.density);
  std::printf("members:");
  for (std::size_t i = 0; i < c.members.size() && i < 24; ++i) {
    std::printf(" %u", c.members[i]);
  }
  if (c.members.size() > 24) std::printf(" ... (%zu more)",
                                         c.members.size() - 24);
  std::printf("\n");
}

int CmdDetect(const std::string& path, const std::string& algo) {
  spade::Spade detector;
  detector.SetSemantics(spade::MakeSemanticsByName(algo));
  if (spade::Status s = detector.LoadGraph(path); !s.ok()) return Fail(s);
  std::printf("loaded %zu vertices, %zu edges; semantics %s\n",
              detector.graph().NumVertices(), detector.graph().NumEdges(),
              detector.semantics_name().c_str());
  PrintCommunity(detector.Detect());
  return 0;
}

int CmdStream(const std::string& initial, const std::string& updates,
              const std::string& algo) {
  spade::Spade detector;
  detector.SetSemantics(spade::MakeSemanticsByName(algo));
  detector.TurnOnEdgeGrouping();
  if (spade::Status s = detector.LoadGraph(initial); !s.ok()) return Fail(s);

  auto edges = spade::LoadEdgeList(updates);
  if (!edges.ok()) return Fail(edges.status());
  std::printf("streaming %zu updates into %zu/%zu graph...\n",
              edges.value().size(), detector.graph().NumVertices(),
              detector.graph().NumEdges());
  for (const spade::Edge& e : edges.value()) {
    if (spade::Status s = detector.ApplyEdge(e); !s.ok()) return Fail(s);
  }
  PrintCommunity(detector.Detect());
  const auto& stats = detector.cumulative_stats();
  std::printf("affected vertices: %zu; touched edges: %zu\n",
              stats.affected_vertices, stats.touched_edges);
  return 0;
}

int CmdEnumerate(const std::string& path, std::size_t max_communities) {
  spade::Spade detector;
  if (spade::Status s = detector.LoadGraph(path); !s.ok()) return Fail(s);
  spade::EnumerateOptions options;
  options.max_communities = max_communities;
  const auto communities =
      spade::EnumerateDenseSubgraphs(detector.graph(), options);
  std::printf("%zu dense communities:\n", communities.size());
  for (std::size_t i = 0; i < communities.size(); ++i) {
    std::printf("#%zu ", i + 1);
    PrintCommunity(communities[i]);
  }
  return 0;
}

int CmdSnapshot(const std::string& graph_path, const std::string& out) {
  spade::Spade detector;
  if (spade::Status s = detector.LoadGraph(graph_path); !s.ok()) {
    return Fail(s);
  }
  if (spade::Status s = detector.SaveState(out); !s.ok()) return Fail(s);
  std::printf("snapshot written to %s\n", out.c_str());
  return 0;
}

int CmdRestore(const std::string& in) {
  spade::Spade detector;
  if (spade::Status s = detector.RestoreState(in); !s.ok()) return Fail(s);
  std::printf("restored %zu vertices, %zu edges\n",
              detector.graph().NumVertices(), detector.graph().NumEdges());
  PrintCommunity(detector.Detect());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: spade_cli detect|stream|enumerate|snapshot|restore "
                 "...\n");
    return 2;
  }
  const std::string& cmd = args[0];
  if (cmd == "detect" && args.size() >= 2) {
    return CmdDetect(args[1], args.size() > 2 ? args[2] : "DG");
  }
  if (cmd == "stream" && args.size() >= 3) {
    return CmdStream(args[1], args[2], args.size() > 3 ? args[3] : "DG");
  }
  if (cmd == "enumerate" && args.size() >= 2) {
    return CmdEnumerate(
        args[1], args.size() > 2
                     ? static_cast<std::size_t>(std::atoi(args[2].c_str()))
                     : 8);
  }
  if (cmd == "snapshot" && args.size() >= 3) {
    return CmdSnapshot(args[1], args[2]);
  }
  if (cmd == "restore" && args.size() >= 2) {
    return CmdRestore(args[1]);
  }
  std::fprintf(stderr, "unknown or incomplete command '%s'\n", cmd.c_str());
  return 2;
}
