// Sharded multi-tenant deployment: four marketplaces ("tenants") share one
// detection service, each routed to its own shard by a tenant-key
// partitioner. Shards are fully independent detectors, so one tenant's
// whale community cannot raise another tenant's benign threshold or crowd
// it out of the global argmax — the failure mode of funneling every tenant
// through a single detector.
//
// The demo streams normal traffic into all tenants, injects a fraud ring
// into tenant 2, shows the shard-tagged alert, then grows a CROSS-tenant
// collusion ring (accounts in tenants 0 and 3): each of its edges is
// recorded in the boundary index as it is routed, and a stitch pass
// detects the ring at its exact global density — invisible to any single
// shard's view. Finally the whole fleet (boundary index included) is saved
// into one snapshot directory and restored into a fresh service.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "core/spade.h"
#include "metrics/semantics.h"
#include "service/sharded_detection_service.h"

namespace {

constexpr std::size_t kTenants = 4;
constexpr spade::VertexId kVerticesPerTenant = 512;

spade::Edge RandomTenantEdge(spade::Rng* rng, std::size_t tenant) {
  const auto base =
      static_cast<spade::VertexId>(tenant * kVerticesPerTenant);
  auto s = static_cast<spade::VertexId>(rng->NextBounded(kVerticesPerTenant));
  auto d = static_cast<spade::VertexId>(rng->NextBounded(kVerticesPerTenant));
  while (d == s) {
    d = static_cast<spade::VertexId>(rng->NextBounded(kVerticesPerTenant));
  }
  return spade::Edge{static_cast<spade::VertexId>(base + s),
                     static_cast<spade::VertexId>(base + d),
                     1.0 + 4.0 * rng->NextDouble(), 0};
}

std::vector<spade::Spade> BuildTenantShards(std::uint64_t seed) {
  spade::Rng rng(seed);
  std::vector<spade::Spade> shards;
  for (std::size_t t = 0; t < kTenants; ++t) {
    std::vector<spade::Edge> initial;
    for (int i = 0; i < 1200; ++i) {
      initial.push_back(RandomTenantEdge(&rng, t));
    }
    // A stable legitimate "whale" cluster per tenant: it anchors the
    // tenant's community (so routine traffic is classified benign and does
    // not alert) until the fraud ring overtakes it.
    const auto base = static_cast<spade::VertexId>(t * kVerticesPerTenant);
    for (int i = 0; i < 40; ++i) {
      const auto a = static_cast<spade::VertexId>(base + i % 8);
      const auto b = static_cast<spade::VertexId>(base + (i + 1 + i / 8) % 8);
      if (a == b) continue;
      initial.push_back({a, b, 20.0 + rng.NextDouble(), 0});
    }
    spade::Spade detector;
    detector.SetSemantics(spade::MakeDW());
    if (!detector.BuildGraph(kTenants * kVerticesPerTenant, initial).ok()) {
      std::fprintf(stderr, "BuildGraph failed\n");
      std::exit(1);
    }
    shards.push_back(std::move(detector));
  }
  return shards;
}

}  // namespace

int main() {
  std::atomic<int> tenant2_alerts{0};
  std::atomic<std::size_t> last_size[kTenants] = {};
  spade::ShardedDetectionServiceOptions options;
  options.partitioner = spade::TenantPartitioner(kVerticesPerTenant);
  // Work-stealing rebalance on: a tenant whose traffic spikes can have its
  // partition stolen by an idle worker (the demo's traffic is too tame to
  // trigger a steal, but the stats below show the counters wired up).
  options.rebalance.enabled = true;
  options.rebalance.interval_ms = 20;
  // Pin shard workers round-robin onto the machine's cores (a no-op hint
  // on a single-core host, and on non-Linux platforms).
  const unsigned cores =
      std::max(1u, std::thread::hardware_concurrency());
  for (unsigned c = 0; c < cores; ++c) {
    options.shard_cpus.push_back(static_cast<int>(c));
  }
  options.stitch.on_stitch_alert = [](const spade::GlobalCommunity& g) {
    std::printf("  [stitched alert] %zu accounts, density %.1f, spanning"
                " shards {", g.members.size(), g.density);
    for (std::size_t i = 0; i < g.shards.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : ", ", g.shards[i]);
    }
    std::printf("}\n");
  };

  spade::ShardedDetectionService service(
      BuildTenantShards(/*seed=*/7),
      [&](std::size_t shard, const spade::Community& c) {
        // Alerts also fire on pure density drift; print only when the
        // member set changes size to keep the demo readable.
        if (last_size[shard].exchange(c.members.size()) !=
            c.members.size()) {
          std::printf("  [alert] shard %zu: community of %zu accounts, "
                      "density %.1f\n",
                      shard, c.members.size(), c.density);
        }
        if (shard == 2) ++tenant2_alerts;
      },
      options);

  std::printf("== %zu tenants, %zu shards, tenant-key routing ==\n",
              kTenants, service.num_shards());

  // Normal traffic across all tenants.
  spade::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    (void)service.Submit(RandomTenantEdge(&rng, i % kTenants));
  }

  // Tenant 2 grows a collusion ring: heavy repeated transactions among six
  // accounts.
  const auto base = static_cast<spade::VertexId>(2 * kVerticesPerTenant);
  for (int i = 0; i < 90; ++i) {
    const auto a = static_cast<spade::VertexId>(base + 500 + i % 6);
    const auto b = static_cast<spade::VertexId>(base + 500 + (i + 1) % 6);
    (void)service.Submit({a, b, 40.0, 0});
  }
  service.Drain();

  const spade::Community top = service.CurrentCommunity();
  std::printf("\nglobal top community: shard %zu, %zu accounts, "
              "density %.1f\n",
              service.TopShard(), top.members.size(), top.density);
  std::printf("tenant-2 alerts: %d (ring lives in shard 2)\n",
              tenant2_alerts.load());

  // A cross-tenant collusion ring: accounts in tenants 0 and 3 trade
  // heavily with each other. Every edge is cross-tenant, so each lands in
  // its source tenant's shard AND in the boundary index — no single shard
  // ever sees the ring whole.
  std::printf("\n== cross-tenant collusion (tenants 0 and 3) ==\n");
  const auto t0 = static_cast<spade::VertexId>(0 * kVerticesPerTenant);
  const auto t3 = static_cast<spade::VertexId>(3 * kVerticesPerTenant);
  const spade::VertexId cross_ring[6] = {
      static_cast<spade::VertexId>(t0 + 100),
      static_cast<spade::VertexId>(t3 + 100),
      static_cast<spade::VertexId>(t0 + 101),
      static_cast<spade::VertexId>(t3 + 101),
      static_cast<spade::VertexId>(t0 + 102),
      static_cast<spade::VertexId>(t3 + 102)};
  for (int i = 0; i < 120; ++i) {
    (void)service.Submit(
        {cross_ring[i % 6], cross_ring[(i + 1) % 6], 60.0, 0});
  }
  service.Drain();

  const spade::Community argmax_view = service.CurrentCommunity();
  std::printf("per-shard argmax sees density %.1f — the ring's edges are "
              "split, no shard holds them all\n", argmax_view.density);
  const spade::GlobalCommunity stitched = service.StitchNow();
  std::printf("stitch pass: %s community of %zu accounts at exact global "
              "density %.1f (seam: %zu vertices, %zu edges)\n",
              stitched.stitched ? "cross-shard" : "single-shard",
              stitched.members.size(), stitched.density,
              stitched.seam_vertices, stitched.seam_edges);

  const spade::ShardedServiceStats stats = service.GetStats();
  std::printf("boundary index: %llu cross-shard edges, %llu stitch passes\n",
              static_cast<unsigned long long>(stats.boundary_edges),
              static_cast<unsigned long long>(stats.stitch_passes));
  std::printf("rebalance: %llu steals, %llu partitions moved, %llu edges "
              "forwarded across %zu partitions\n",
              static_cast<unsigned long long>(stats.steals),
              static_cast<unsigned long long>(stats.partitions_moved),
              static_cast<unsigned long long>(stats.forwarded_edges),
              stats.num_partitions);
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    std::printf("shard %zu: %llu edges, %llu alerts, %llu detections, "
                "queue high-water %zu, %zu partition%s, busy %.1f%%\n",
                s, static_cast<unsigned long long>(stats.shard_edges[s]),
                static_cast<unsigned long long>(stats.shard_alerts[s]),
                static_cast<unsigned long long>(stats.shard_detections[s]),
                stats.shard_queue_hwm[s], stats.shard_partitions[s],
                stats.shard_partitions[s] == 1 ? "" : "s",
                100.0 * stats.shard_busy_fraction[s]);
  }

  // Persist the fleet and restore it into a brand-new service.
  const std::string dir = "/tmp/spade_sharded_demo";
  if (!service.SaveState(dir).ok()) {
    std::fprintf(stderr, "SaveState failed\n");
    return 1;
  }
  service.Stop();

  spade::ShardedDetectionService restored(BuildTenantShards(/*seed=*/1234),
                                          nullptr, options);
  if (!restored.RestoreState(dir).ok()) {
    std::fprintf(stderr, "RestoreState failed\n");
    return 1;
  }
  const spade::Community back = restored.CurrentCommunity();
  std::printf("\nrestored from %s: top community has %zu accounts, "
              "density %.1f\n", dir.c_str(), back.members.size(),
              back.density);
  // The boundary index travels with the snapshot: the restored fleet
  // re-detects the cross-tenant ring without replaying a single edge.
  const spade::GlobalCommunity restitched = restored.StitchNow();
  std::printf("restored stitch pass: density %.1f (same cross-tenant ring: "
              "%s)\n", restitched.density,
              restitched.density == stitched.density ? "yes" : "no");
  std::filesystem::remove_all(dir);
  return 0;
}
