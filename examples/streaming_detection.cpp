// Streaming detection: compares the three deployment modes the paper
// evaluates — per-edge incremental, batch-1K, and edge grouping — on one
// labeled stream, reporting elapsed time E, latency L and prevention R.

#include <cstdio>

#include "core/spade.h"
#include "datagen/workload.h"
#include "stream/replayer.h"

namespace {

void RunMode(const spade::Workload& w, const char* label,
             const spade::ReplayOptions& options) {
  spade::Spade spade;
  spade.SetSemantics(spade::MakeDW());
  if (!spade.BuildGraph(w.num_vertices, w.initial).ok()) {
    std::fprintf(stderr, "build failed\n");
    std::exit(1);
  }
  const spade::ReplayReport report = spade::Replay(&spade, w.stream, options);
  std::printf("%-14s E=%9.3f us/edge  flushes=%6zu  "
              "fraud latency p50=%10.0f us  R=%6.2f%%\n",
              label, report.MeanMicrosPerEdge(), report.flushes,
              report.fraud_latency_micros.Percentile(50),
              100.0 * report.prevention_ratio);
}

}  // namespace

int main() {
  spade::FraudMix mix;
  mix.instances_per_pattern = 2;
  mix.transactions_per_instance = 250;
  const spade::Workload w =
      spade::BuildWorkload("Grab3", /*scale=*/0.002, /*seed=*/3, &mix);
  std::printf("stream of %zu edges over %zu vertices "
              "(%zu fraud instances)\n\n",
              w.stream.size(), w.num_vertices, w.stream.group_vertices.size());

  spade::ReplayOptions per_edge;
  per_edge.batch_size = 1;
  RunMode(w, "per-edge", per_edge);

  spade::ReplayOptions batch100;
  batch100.batch_size = 100;
  RunMode(w, "batch-100", batch100);

  spade::ReplayOptions batch1k;
  batch1k.batch_size = 1000;
  RunMode(w, "batch-1K", batch1k);

  spade::ReplayOptions grouping;
  grouping.use_edge_grouping = true;
  RunMode(w, "edge-grouping", grouping);

  std::printf("\nEdge grouping keeps per-edge cost near batch mode while "
              "flushing urgent (fraud-like) edges immediately, which is why "
              "its prevention ratio tracks the per-edge mode.\n");
  return 0;
}
