// Time-window detection (Appendix C.3): maintain the fraudulent community
// of the last N time units of a transaction stream with insert + expire
// reordering, and enumerate multiple concurrent fraud instances
// (Appendix C.2) inside the window.

#include <cstdio>

#include "core/enumeration.h"
#include "core/time_window.h"
#include "datagen/workload.h"

int main() {
  spade::FraudMix mix;
  mix.instances_per_pattern = 1;
  mix.transactions_per_instance = 200;
  const spade::Workload w =
      spade::BuildWorkload("Grab1", /*scale=*/0.0008, /*seed=*/21, &mix);

  // Window spans ~5% of the stream's time range.
  const spade::Timestamp t0 = w.stream.edges.front().ts;
  const spade::Timestamp t1 = w.stream.edges.back().ts;
  const spade::Timestamp span = (t1 - t0) / 20;

  spade::TimeWindowDetector detector(w.num_vertices, span, spade::MakeDW());
  std::printf("sliding window of %lld us over %zu streamed edges\n\n",
              static_cast<long long>(span), w.stream.size());

  std::size_t step = 0;
  const std::size_t report_every = w.stream.size() / 8 + 1;
  for (const spade::Edge& e : w.stream.edges) {
    const spade::Status s = detector.Offer(e);
    if (!s.ok()) {
      std::fprintf(stderr, "offer failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (++step % report_every == 0) {
      const spade::Community c = detector.Detect();
      std::printf("t=%10lld  window=%6zu edges  community: %4zu vertices, "
                  "density %8.2f\n",
                  static_cast<long long>(e.ts), detector.WindowEdgeCount(),
                  c.members.size(), c.density);
    }
  }

  // Enumerate distinct dense instances inside the final window.
  spade::EnumerateOptions options;
  options.max_communities = 5;
  options.min_density = 1.0;
  const auto instances =
      spade::EnumerateDenseSubgraphs(detector.graph(), options);
  std::printf("\n%zu dense instances in the final window:\n",
              instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    std::printf("  #%zu: %zu vertices, density %.2f\n", i + 1,
                instances[i].members.size(), instances[i].density);
  }
  return 0;
}
