// Density-metric evaluation on explicit vertex sets. These routines are the
// reference ("from definition") implementations used by tests and the
// brute-force optimum finder; the peeling engines never call them on hot
// paths.

#pragma once

#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace spade {

/// f(S): total suspiciousness of the induced subgraph G[S]
/// (Eq. 1: sum of vertex weights of S plus edge weights of E[S]).
double SubgraphWeight(const DynamicGraph& g, const std::vector<VertexId>& s);

/// g(S) = f(S)/|S|; 0 for the empty set.
double SubgraphDensity(const DynamicGraph& g, const std::vector<VertexId>& s);

/// w_u(S): the peeling weight of u within S (Eq. 2) — a_u plus the weights
/// of edges between u and other members of S, both directions.
double PeelingWeight(const DynamicGraph& g, const std::vector<VertexId>& s,
                     VertexId u);

/// Exhaustively finds the densest vertex subset S* (g maximized). Exponential
/// in |V|; intended for graphs with at most ~20 vertices in tests verifying
/// Lemma 2.1's 1/2-approximation guarantee.
std::vector<VertexId> BruteForceDensest(const DynamicGraph& g);

}  // namespace spade
