#include "metrics/density.h"

#include <vector>

#include "common/logging.h"

namespace spade {

namespace {

std::vector<char> Membership(const DynamicGraph& g,
                             const std::vector<VertexId>& s) {
  std::vector<char> in_set(g.NumVertices(), 0);
  for (VertexId v : s) {
    SPADE_DCHECK(v < g.NumVertices());
    in_set[v] = 1;
  }
  return in_set;
}

}  // namespace

double SubgraphWeight(const DynamicGraph& g, const std::vector<VertexId>& s) {
  const auto in_set = Membership(g, s);
  double total = 0.0;
  for (VertexId u : s) {
    total += g.VertexWeight(u);
    for (const auto& e : g.OutNeighbors(u)) {
      if (in_set[e.vertex]) total += e.weight;
    }
  }
  return total;
}

double SubgraphDensity(const DynamicGraph& g, const std::vector<VertexId>& s) {
  if (s.empty()) return 0.0;
  return SubgraphWeight(g, s) / static_cast<double>(s.size());
}

double PeelingWeight(const DynamicGraph& g, const std::vector<VertexId>& s,
                     VertexId u) {
  const auto in_set = Membership(g, s);
  double w = g.VertexWeight(u);
  for (const auto& e : g.OutNeighbors(u)) {
    if (in_set[e.vertex]) w += e.weight;
  }
  for (const auto& e : g.InNeighbors(u)) {
    if (in_set[e.vertex]) w += e.weight;
  }
  return w;
}

std::vector<VertexId> BruteForceDensest(const DynamicGraph& g) {
  const std::size_t n = g.NumVertices();
  SPADE_CHECK_LE(n, 24u);
  double best_density = -1.0;
  std::uint32_t best_mask = 0;
  std::vector<VertexId> members;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    members.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) members.push_back(static_cast<VertexId>(v));
    }
    const double density = SubgraphDensity(g, members);
    if (density > best_density) {
      best_density = density;
      best_mask = mask;
    }
  }
  members.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (best_mask & (1u << v)) members.push_back(static_cast<VertexId>(v));
  }
  return members;
}

}  // namespace spade
