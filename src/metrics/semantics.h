// Fraud-detection semantics: the user-pluggable suspiciousness functions
// (the paper's VSusp / ESusp APIs) plus the three built-in instances DG [6],
// DW [18] and FD [19] from Appendix F.
//
// A semantics maps raw transactions onto the weighted graph on which the
// arithmetic density g(S) = f(S)/|S| is peeled:
//   * vsusp(u, g)  -> prior suspiciousness a_u of a vertex (>= 0),
//   * esusp(e, g)  -> suspiciousness c_ij of a transaction edge (> 0).
//
// Edge suspiciousness is evaluated once, when the edge is inserted, against
// the graph state at that moment (degrees already include the new edge's
// endpoints). The weight then stays fixed; static-vs-incremental equivalence
// is defined over the resulting weighted graph.

#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace spade {

/// Vertex suspiciousness callback: a_u for a (new) vertex u.
using VertexSuspFn = std::function<double(VertexId, const DynamicGraph&)>;

/// Edge suspiciousness callback: c_ij for a raw transaction edge. The raw
/// edge's `weight` field carries application data (e.g. transaction amount).
using EdgeSuspFn = std::function<double(const Edge&, const DynamicGraph&)>;

/// A named pair of suspiciousness functions defining a peeling algorithm's
/// density metric (Property 3.1 instances).
struct FraudSemantics {
  std::string name;
  VertexSuspFn vsusp;
  EdgeSuspFn esusp;
};

/// DG (Charikar's greedy densest subgraph): unweighted edges, no priors.
/// g(S) = |E[S]| / |S|.
inline FraudSemantics MakeDG() {
  return {
      "DG",
      [](VertexId, const DynamicGraph&) { return 0.0; },
      [](const Edge&, const DynamicGraph&) { return 1.0; },
  };
}

/// DW (dense weighted subgraph): the raw transaction amount is the edge
/// suspiciousness. g(S) = sum of edge weights / |S|.
inline FraudSemantics MakeDW() {
  return {
      "DW",
      [](VertexId, const DynamicGraph&) { return 0.0; },
      [](const Edge& e, const DynamicGraph&) { return e.weight; },
  };
}

/// FD (Fraudar): camouflage-resistant hybrid weighting. Edge suspiciousness
/// is 1/log(x + c) with x the current degree of the object (destination)
/// vertex; vertex priors come from side information already stored on the
/// graph (DynamicGraph::VertexWeight).
///
/// `log_offset` is the paper's small positive constant c (default 5).
inline FraudSemantics MakeFD(double log_offset = 5.0) {
  return {
      "FD",
      [](VertexId u, const DynamicGraph& g) { return g.VertexWeight(u); },
      [log_offset](const Edge& e, const DynamicGraph& g) {
        const double x = static_cast<double>(g.Degree(e.dst));
        return 1.0 / std::log(x + log_offset);
      },
  };
}

/// Looks up a built-in semantics by name ("DG", "DW", "FD").
/// Returns DG for unknown names.
inline FraudSemantics MakeSemanticsByName(const std::string& name) {
  if (name == "DW") return MakeDW();
  if (name == "FD") return MakeFD();
  return MakeDG();
}

}  // namespace spade
