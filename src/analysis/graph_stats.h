// Graph and detection analysis: degree distributions (Figure 9b),
// community statistics, and precision/recall of detected communities
// against injected ground-truth labels.

#pragma once

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "graph/dynamic_graph.h"
#include "peel/peel_state.h"
#include "stream/labeled_stream.h"

namespace spade {

/// Degree -> frequency histogram over all vertices (Figure 9b).
CountHistogram DegreeDistribution(const DynamicGraph& g);

/// Summary statistics of a detected community.
struct CommunityStats {
  std::size_t size = 0;
  double density = 0.0;
  std::size_t internal_edges = 0;
  double internal_weight = 0.0;
};
CommunityStats AnalyzeCommunity(const DynamicGraph& g, const Community& c);

/// Precision/recall of a detected community against the union of fraud
/// group members in `stream`.
struct LabelMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double Precision() const {
    const std::size_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double Recall() const {
    const std::size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double F1() const {
    const double p = Precision();
    const double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};
LabelMetrics EvaluateAgainstLabels(const Community& community,
                                   const LabeledStream& stream);

}  // namespace spade
