#include "analysis/pattern_classifier.h"

#include <map>
#include <set>
#include <utility>

namespace spade {

std::string CommunityPatternName(CommunityPattern pattern) {
  switch (pattern) {
    case CommunityPattern::kCustomerMerchantCollusion:
      return "customer-merchant collusion";
    case CommunityPattern::kDealHunter:
      return "deal-hunter";
    case CommunityPattern::kClickFarming:
      return "click-farming";
    case CommunityPattern::kUnknown:
      return "unknown";
  }
  return "?";
}

CommunityShape ComputeShape(const DynamicGraph& g, const Community& c,
                            VertexId merchant_base) {
  CommunityShape shape;
  std::set<VertexId> members(c.members.begin(), c.members.end());
  std::map<std::pair<VertexId, VertexId>, std::size_t> pair_counts;
  for (VertexId v : c.members) {
    if (v < merchant_base) {
      ++shape.customers;
    } else {
      ++shape.merchants;
    }
    for (const auto& e : g.OutNeighbors(v)) {
      if (members.count(e.vertex) != 0) {
        ++shape.transactions;
        ++pair_counts[{v, e.vertex}];
      }
    }
  }
  if (!pair_counts.empty()) {
    shape.multiplicity = static_cast<double>(shape.transactions) /
                         static_cast<double>(pair_counts.size());
  }
  if (shape.customers > 0 && shape.merchants > 0) {
    shape.side_ratio = static_cast<double>(shape.customers) /
                       static_cast<double>(shape.merchants);
  }
  return shape;
}

CommunityPattern ClassifyCommunity(const DynamicGraph& g, const Community& c,
                                   VertexId merchant_base) {
  const CommunityShape shape = ComputeShape(g, c, merchant_base);
  if (shape.customers == 0 || shape.merchants == 0 ||
      shape.transactions < 8) {
    return CommunityPattern::kUnknown;
  }
  // Click-farming: one (or nearly one) merchant absorbing heavy repeat
  // traffic from a handful of recruits.
  if (shape.merchants <= 2 && shape.customers <= 12 &&
      shape.multiplicity >= 3.0) {
    return CommunityPattern::kClickFarming;
  }
  // Deal-hunter: a crowd on one side, a couple of promos on the other.
  if (shape.side_ratio >= 4.0 && shape.merchants <= 4) {
    return CommunityPattern::kDealHunter;
  }
  // Collusion: balanced small ring with repeated fictitious trades.
  if (shape.side_ratio >= 0.25 && shape.side_ratio <= 4.0 &&
      shape.customers + shape.merchants <= 32) {
    return CommunityPattern::kCustomerMerchantCollusion;
  }
  return CommunityPattern::kUnknown;
}

}  // namespace spade
