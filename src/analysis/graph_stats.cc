#include "analysis/graph_stats.h"

#include <unordered_set>

namespace spade {

CountHistogram DegreeDistribution(const DynamicGraph& g) {
  CountHistogram hist;
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    hist.Add(g.Degree(static_cast<VertexId>(v)));
  }
  return hist;
}

CommunityStats AnalyzeCommunity(const DynamicGraph& g, const Community& c) {
  CommunityStats stats;
  stats.size = c.members.size();
  stats.density = c.density;
  std::unordered_set<VertexId> members(c.members.begin(), c.members.end());
  for (VertexId u : c.members) {
    for (const auto& e : g.OutNeighbors(u)) {
      if (members.count(e.vertex) != 0) {
        ++stats.internal_edges;
        stats.internal_weight += e.weight;
      }
    }
  }
  return stats;
}

LabelMetrics EvaluateAgainstLabels(const Community& community,
                                   const LabeledStream& stream) {
  std::unordered_set<VertexId> fraud_vertices;
  for (const auto& group : stream.group_vertices) {
    fraud_vertices.insert(group.begin(), group.end());
  }
  std::unordered_set<VertexId> detected(community.members.begin(),
                                        community.members.end());
  LabelMetrics metrics;
  for (VertexId v : detected) {
    if (fraud_vertices.count(v) != 0) {
      ++metrics.true_positives;
    } else {
      ++metrics.false_positives;
    }
  }
  for (VertexId v : fraud_vertices) {
    if (detected.count(v) == 0) ++metrics.false_negatives;
  }
  return metrics;
}

}  // namespace spade
