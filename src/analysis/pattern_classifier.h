// Fraud-pattern classification of detected communities.
//
// The paper's Figure 15 reports enumerated fraud instances *by type*
// (customer-merchant collusion, deal-hunter, click-farming). On a
// customer->merchant transaction graph the three patterns differ by shape:
//
//   * collusion     — small balanced bipartite ring (few customers, few
//                     merchants, comparable counts),
//   * deal-hunter   — many customers hammering very few merchants,
//   * click-farming — few recruited customers inflating a single merchant
//                     with many repeated transactions.
//
// The classifier reads those shape signals (side sizes, transaction
// multiplicity) off the induced subgraph.

#pragma once

#include <string>

#include "graph/dynamic_graph.h"
#include "peel/peel_state.h"

namespace spade {

enum class CommunityPattern {
  kCustomerMerchantCollusion,
  kDealHunter,
  kClickFarming,
  kUnknown,
};

std::string CommunityPatternName(CommunityPattern pattern);

/// Shape features of a community on a bipartite transaction graph.
struct CommunityShape {
  std::size_t customers = 0;     // members below merchant_base
  std::size_t merchants = 0;     // members at/above merchant_base
  std::size_t transactions = 0;  // internal edges (parallel counted)
  /// Mean parallel transactions per distinct customer-merchant pair.
  double multiplicity = 0.0;
  /// Customers-to-merchants ratio (0 when either side is empty).
  double side_ratio = 0.0;
};

/// Computes shape features; `merchant_base` is the first merchant id
/// (datagen workloads expose it).
CommunityShape ComputeShape(const DynamicGraph& g, const Community& c,
                            VertexId merchant_base);

/// Classifies by shape. Communities without both sides populated, or with
/// too few transactions to matter, come back kUnknown.
CommunityPattern ClassifyCommunity(const DynamicGraph& g, const Community& c,
                                   VertexId merchant_base);

}  // namespace spade
