#include "net/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace spade::net {

namespace {

void SetNodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Waits for `events` on `fd`. Returns >0 when ready, 0 on timeout,
/// <0 on error.
int PollFd(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) { SetNodelay(fd); }

TcpConnection::~TcpConnection() {
  Close();
  // By contract the owner has joined any thread that could be inside
  // Recv/SendAll before destroying the connection, so releasing the fd
  // number is safe here and only here.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Status TcpConnection::SendAll(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    if (shutdown_.load(std::memory_order_acquire)) {
      return Status::IOError("send on closed connection");
    }
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return Status::IOError("send on closed connection");
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (PollFd(fd, POLLOUT, 1000) <= 0) {
        return Status::IOError("send timed out");
      }
      continue;
    }
    return Status::IOError(std::string("send failed: ") + strerror(errno));
  }
  return Status::OK();
}

IoResult TcpConnection::Recv(void* buffer, std::size_t capacity,
                             std::size_t* received, int timeout_ms) {
  if (shutdown_.load(std::memory_order_acquire)) return IoResult::kClosed;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return IoResult::kClosed;
  const int rc = PollFd(fd, POLLIN, timeout_ms);
  if (rc == 0) return IoResult::kTimeout;
  if (rc < 0) return IoResult::kError;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (n == 0) return IoResult::kClosed;
    if (errno == EINTR) continue;
    // POLLIN with nothing readable can mean the fd was shut down by
    // Close() from another thread.
    return IoResult::kError;
  }
}

void TcpConnection::Close() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  // shutdown (not close) so a Recv blocked in poll()/recv() on another
  // thread wakes up with EOF while the fd number stays reserved; the
  // destructor releases it once no thread can be using it.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

TcpListener::~TcpListener() {
  Close();
  ReleaseFd();
}

void TcpListener::ReleaseFd() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Status TcpListener::Listen(int port) {
  // Only called with no acceptor thread running (Start precondition), so
  // reclaiming a previously Close()d fd is race-free here.
  ReleaseFd();
  shutdown_.store(false, std::memory_order_release);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::IOError(std::string("bind: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) < 0) {
    const Status s =
        Status::IOError(std::string("listen: ") + strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

std::unique_ptr<TcpConnection> TcpListener::Accept(int timeout_ms) {
  if (shutdown_.load(std::memory_order_acquire)) return nullptr;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return nullptr;
  const int rc = PollFd(fd, POLLIN, timeout_ms);
  if (rc <= 0 || shutdown_.load(std::memory_order_acquire)) return nullptr;
  const int conn = ::accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (conn < 0) return nullptr;
  return std::make_unique<TcpConnection>(conn);
}

void TcpListener::Close() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() on a listening socket is a no-op on Linux (ENOTCONN), but
  // every Accept here polls with a bounded timeout and re-checks the
  // shutdown flag, so a blocked acceptor still returns within one poll
  // interval. The fd is released by the destructor or the next Listen().
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

std::unique_ptr<TcpConnection> TcpConnect(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  // Non-blocking connect + poll gives the timeout; flip back to blocking
  // after.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int rc =
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  if (rc < 0) {
    if (PollFd(fd, POLLOUT, timeout_ms) <= 0) {
      ::close(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace spade::net
