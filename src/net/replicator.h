// Epoch replication: ships sealed checkpoint epochs from a primary to one
// warm-standby follower over the CRC-framed wire (net/wire_format.h), and
// promotes the follower into a primary when the lease expires.
//
// Primary side (Replicator):
//   - listens on a replication port; at most one follower session at a
//     time (a newer connection replaces the older one);
//   - on REPLICA_HELLO, catches the follower up by shipping every file the
//     current manifest references (plus the newest seqmap) as EPOCH_FILE
//     frames, then an EPOCH_COMMIT carrying the manifest bytes;
//   - SealAndShip() = IngestServer::SealEpoch (atomic seqmap + checkpoint)
//     -> ship the files that are new this epoch -> wait for the follower's
//     EPOCH_ACK -> IngestServer::MarkDurable. Durability is follower-acked
//     by definition; if no follower is connected the seal still succeeds
//     but nothing becomes durable (clients keep their resend buffers);
//   - heartbeats ride the same connection so the follower's lease logic
//     sees liveness even between seals.
//
// Follower side (Standby):
//   - connects (with retry) to the primary's replication port, stages
//     EPOCH_FILE payloads into its own checkpoint directory via atomic
//     writes (the frame CRC covered the bytes in flight; the files' own
//     CRC trailers are re-validated by the restore path on replay);
//   - on EPOCH_COMMIT, installs the manifest atomically and acks. The
//     first committed epoch is always applied immediately (full
//     RestoreState) so the standby is warm; later epochs are applied
//     eagerly via ShardedDetectionService::ApplyChainEpoch when
//     `eager_replay` is set, or staged on disk and replayed by Promote()
//     otherwise (so failover time == tail-chain replay cost, measurable);
//   - a lease monitor timestamps every received frame; WaitPrimaryLost()
//     reports when the primary has been silent for a full lease interval;
//   - Promote() stops replication, replays every committed-but-unapplied
//     epoch (falling back to a full RestoreState when the incremental path
//     is not applicable), loads the newest replicated seqmap, and reports
//     what it did. The caller then seeds its own IngestServer with the
//     seqmap and starts accepting writes (DESIGN.md §7).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/ingest_server.h"
#include "net/transport.h"
#include "net/wire_format.h"
#include "service/sharded_detection_service.h"

namespace spade::net {

struct ReplicatorOptions {
  /// Replication listen port (0 = kernel-assigned; read back with port()).
  int port = 0;
  /// Poll granularity of accept/receive loops.
  int poll_ms = 50;
  /// Heartbeat cadence on an idle follower connection. Must be well under
  /// the follower's lease_ms.
  int heartbeat_ms = 100;
  /// How long SealAndShip waits for the follower's EPOCH_ACK before
  /// reporting the epoch shipped-but-not-durable.
  int ack_timeout_ms = 2000;
};

struct ReplicatorStats {
  std::uint64_t epochs_shipped = 0;
  std::uint64_t epochs_acked = 0;
  std::uint64_t files_shipped = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t follower_sessions = 0;
};

/// Primary-side shipper. `service` (and `ingest`, when given) must outlive
/// the replicator. `dir` is the primary's checkpoint directory — the same
/// one SealAndShip seals into.
class Replicator {
 public:
  Replicator(ShardedDetectionService* service, IngestServer* ingest,
             std::string dir, ReplicatorOptions options = {});
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  Status Start();
  void Stop();
  int port() const { return listener_.port(); }

  /// Seals one epoch and replicates it: capture seqmap + SaveState (via
  /// IngestServer::SealEpoch when an ingest server is attached, plain
  /// SaveState otherwise), ship the new files, wait for the follower ack,
  /// then mark the epoch durable. Returns OK when the epoch is durable on
  /// the follower; kFailedPrecondition when no follower is connected;
  /// kIOError when the follower did not ack in time. In the non-OK cases
  /// the local seal itself still succeeded whenever `info` was filled.
  Status SealAndShip(ShardedDetectionService::SaveMode mode,
                     ShardedDetectionService::SaveInfo* info = nullptr);

  /// True when a follower session is currently established.
  bool HasFollower();

  /// Highest epoch the follower has acked.
  std::uint64_t acked_epoch();

  ReplicatorStats GetStats();

 private:
  struct FollowerSession {
    std::unique_ptr<Connection> conn;
    /// File names already shipped on this connection; a file is never
    /// shipped twice to the same follower (epoch-stamped names are
    /// immutable once written).
    std::set<std::string> shipped;
  };

  void AcceptLoop();
  void ServeFollower(std::shared_ptr<FollowerSession> session);
  /// Ships every manifest-referenced file not yet shipped on `session`,
  /// plus the epoch's seqmap, then the commit frame. Caller must NOT hold
  /// send_mutex_.
  Status ShipCurrentManifest(FollowerSession* session);
  Status SendFrame(FollowerSession* session, const std::string& frame);

  ShardedDetectionService* service_;
  IngestServer* ingest_;  // may be null (replication without wire ingest)
  std::string dir_;
  ReplicatorOptions options_;
  TcpListener listener_;
  std::atomic<bool> running_{false};
  /// Accepts and serves (inline, one at a time) the follower session.
  std::thread acceptor_;

  /// Serializes all sends on the follower connection (serve-thread
  /// heartbeats and catch-up vs. driver-thread SealAndShip).
  std::mutex send_mutex_;
  std::mutex session_mutex_;
  std::shared_ptr<FollowerSession> session_;

  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;
  std::uint64_t acked_epoch_ = 0;

  std::mutex stats_mutex_;
  ReplicatorStats stats_;
};

struct StandbyOptions {
  /// Primary's replication port.
  int primary_port = 0;
  int poll_ms = 50;
  /// Primary silent for this long => lease expired, promotion is safe.
  int lease_ms = 1000;
  /// Backoff between failed connection attempts to the primary.
  int connect_backoff_ms = 50;
  /// Apply each committed epoch as it arrives (warm standby tracks the
  /// primary within one epoch). When false, epochs beyond the first stage
  /// on disk and Promote() pays the whole tail — the configuration the
  /// failover bench uses to measure replay cost.
  bool eager_replay = true;
  /// Bounded wait for shard queues when applying an epoch incrementally.
  int drain_timeout_ms = 10'000;
};

struct PromoteInfo {
  /// Epoch the service ended at (== the last committed epoch).
  std::uint64_t epoch = 0;
  /// Epochs replayed by Promote itself (the staged tail).
  std::uint64_t replayed_epochs = 0;
  /// Delta edges replayed by Promote itself.
  std::uint64_t replayed_edges = 0;
  /// True when Promote had to fall back to a full RestoreState.
  bool full_restore = false;
  double promote_millis = 0.0;
  /// Stream watermarks from the newest replicated seqmap; seed the new
  /// primary's IngestServer with these before accepting writes.
  SeqMap seqmap;
};

struct StandbyStats {
  std::uint64_t files_staged = 0;
  std::uint64_t bytes_staged = 0;
  std::uint64_t epochs_committed = 0;
  std::uint64_t epochs_applied = 0;  // applied eagerly by the receiver
  std::uint64_t reconnects = 0;
  std::uint64_t corrupt_frames = 0;
};

/// Follower side. `service` must outlive the standby; `dir` is the
/// follower's own checkpoint directory (staging area and restore source).
class Standby {
 public:
  Standby(ShardedDetectionService* service, std::string dir,
          StandbyOptions options);
  ~Standby();

  Standby(const Standby&) = delete;
  Standby& operator=(const Standby&) = delete;

  Status Start();
  void Stop();

  /// Blocks until the primary has been silent for a full lease interval
  /// (returns true) or `timeout_ms` elapses first (false).
  bool WaitPrimaryLost(int timeout_ms);

  /// Stops replication and turns the staged state into a live primary
  /// state: replays every committed-but-unapplied epoch, loads the newest
  /// seqmap, reports timings. Idempotent-hostile by design: call once.
  Status Promote(PromoteInfo* info);

  /// Highest epoch applied to the service so far.
  std::uint64_t applied_epoch();
  /// Highest epoch committed (manifest installed) so far.
  std::uint64_t committed_epoch();

  StandbyStats GetStats();

 private:
  void ReceiveLoop();
  void HandleFile(const EpochFilePayload& file);
  void HandleCommit(const EpochCommitPayload& commit);
  /// Applies committed epochs up to `target` (incrementally when
  /// possible, full restore otherwise). Caller holds apply_mutex_.
  Status ApplyThroughLocked(std::uint64_t target, std::uint64_t* edges,
                            std::uint64_t* epochs, bool* full_restore);

  ShardedDetectionService* service_;
  std::string dir_;
  StandbyOptions options_;
  std::atomic<bool> running_{false};
  std::thread receiver_;

  /// Milliseconds-since-steady-epoch of the last frame from the primary.
  std::atomic<std::int64_t> last_frame_ms_{0};

  std::mutex apply_mutex_;
  std::uint64_t committed_epoch_ = 0;
  std::uint64_t applied_epoch_ = 0;
  std::uint64_t applied_base_epoch_ = 0;
  bool ever_restored_ = false;
  bool needs_full_restore_ = false;

  std::mutex stats_mutex_;
  StandbyStats stats_;
};

}  // namespace spade::net
