#include "net/ingest_client.h"

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/logging.h"
#include "storage/checked_io.h"

namespace spade::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSpillMagic = 0x4c50535f45444150ull;  // "PADE_SPL"

int ElapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

}  // namespace

IngestClient::IngestClient(IngestClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {
  if (!options_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.spill_dir, ec);
  }
}

IngestClient::~IngestClient() { Disconnect(); }

void IngestClient::Disconnect() {
  if (conn_) {
    conn_->Close();
    conn_.reset();
  }
  reader_ = FrameReader();
}

void IngestClient::SetPorts(std::vector<int> ports) {
  options_.ports = std::move(ports);
  failed_sweeps_ = 0;
  Disconnect();
}

std::string IngestClient::SpillPath(std::uint64_t seq) const {
  return (std::filesystem::path(options_.spill_dir) /
          ("ingest.spill-" + std::to_string(seq)))
      .string();
}

void IngestClient::SealBatch() {
  Batch batch;
  batch.seq = next_seq_++;
  batch.payload = EncodeBatchPayload(buffer_);
  buffer_.clear();
  pending_.push_back(std::move(batch));
  ++stats_.batches_sealed;
}

Status IngestClient::WriteSpill(const Batch& batch) {
  storage::ChecksummedFileWriter writer(SpillPath(batch.seq));
  writer.Write(kSpillMagic);
  writer.Write(batch.seq);
  writer.Write(static_cast<std::uint64_t>(batch.payload.size()));
  writer.WriteBytes(batch.payload.data(), batch.payload.size());
  SPADE_RETURN_NOT_OK(writer.Finish());
  ++stats_.spilled_batches;
  return Status::OK();
}

Status IngestClient::SpillTail() {
  // Invariant: `spilled_` is the contiguous highest-seq tail of the
  // stream, ascending; everything in memory is below it. Once a tail
  // exists on disk, every fresh seal (the new highest seq) must append to
  // it directly, or the reload order would interleave.
  if (!spilled_.empty()) {
    Batch batch = std::move(pending_.back());
    pending_.pop_back();
    SPADE_RETURN_NOT_OK(WriteSpill(batch));
    spilled_.push_back(batch.seq);
    return Status::OK();
  }
  // No tail yet: overflow the newest in-memory batches, highest first, so
  // push_front keeps the deque ascending.
  while (pending_.size() > options_.max_buffered_batches) {
    Batch batch = std::move(pending_.back());
    pending_.pop_back();
    SPADE_RETURN_NOT_OK(WriteSpill(batch));
    spilled_.push_front(batch.seq);
  }
  return Status::OK();
}

Status IngestClient::ReloadSpilled() {
  // The memory bound applies to UNACKED batches (the send pipeline), not
  // to acked-but-not-durable ones: those are retained for failover resend
  // and must never block reloading the batches that still need delivery.
  // Seqs in pending_ are contiguous, so the unacked count is a subtraction.
  const auto unacked = [this]() -> std::uint64_t {
    if (pending_.empty() || pending_.back().seq <= acked_) return 0;
    return pending_.back().seq - acked_;
  };
  while (!spilled_.empty() && unacked() < options_.max_buffered_batches) {
    const std::uint64_t seq = spilled_.front();
    const std::string path = SpillPath(seq);
    storage::ChecksummedFileReader reader(path);
    if (!reader.ok()) {
      return Status::IOError("cannot reopen spill file " + path);
    }
    std::uint64_t magic = 0, file_seq = 0, size = 0;
    if (!reader.Read(&magic) || magic != kSpillMagic ||
        !reader.Read(&file_seq) || file_seq != seq || !reader.Read(&size) ||
        reader.CountExceedsFile(size, 1)) {
      return Status::IOError("corrupt spill file " + path);
    }
    Batch batch;
    batch.seq = seq;
    batch.payload.resize(size);
    if (!reader.ReadBytes(batch.payload.data(), size)) {
      return Status::IOError("truncated spill file " + path);
    }
    SPADE_RETURN_NOT_OK(reader.VerifyTrailer());
    spilled_.pop_front();
    pending_.push_back(std::move(batch));
    ++stats_.reloaded_batches;
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return Status::OK();
}

Status IngestClient::Submit(const Edge& edge) {
  buffer_.push_back(edge);
  if (buffer_.size() >= options_.batch_edges) return Flush();
  return Status::OK();
}

Status IngestClient::Flush() {
  if (buffer_.empty()) return Status::OK();
  SealBatch();
  if (!options_.spill_dir.empty()) SPADE_RETURN_NOT_OK(SpillTail());
  return Status::OK();
}

bool IngestClient::EnsureConnected() {
  if (conn_) return true;
  while (failed_sweeps_ <= options_.max_connect_retries) {
    for (const int port : options_.ports) {
      std::unique_ptr<Connection> conn =
          TcpConnect(port, options_.connect_timeout_ms);
      if (!conn) continue;
      if (options_.wrap_transport) {
        conn = options_.wrap_transport(std::move(conn));
      }
      // HELLO / HELLO_ACK: learn the server's watermarks so the send
      // cursor rewinds to exactly the first unapplied batch.
      const std::string hello = EncodeFrame(
          FrameType::kHello, 0, EncodeU64Payload(options_.stream_id));
      if (!conn->SendAll(hello.data(), hello.size()).ok()) continue;
      FrameReader reader;
      char buf[4096];
      const auto deadline =
          Clock::now() +
          std::chrono::milliseconds(options_.connect_timeout_ms * 4);
      bool greeted = false;
      while (!greeted && Clock::now() < deadline) {
        std::size_t received = 0;
        const IoResult rc = conn->Recv(buf, sizeof(buf), &received, 50);
        if (rc == IoResult::kTimeout) continue;
        if (rc != IoResult::kOk) break;
        reader.Append(buf, received);
        Frame frame;
        while (reader.Next(&frame)) {
          AckPayload ack;
          if (frame.type == FrameType::kHelloAck &&
              DecodeAckPayload(frame.payload, &ack)) {
            // The HELLO_ACK is authoritative for THIS server: after a
            // failover the promoted follower's applied watermark is the
            // old durable one, strictly below acks the dead primary
            // handed out. Rewind (don't max) so every batch in
            // (durable, old acked] gets resent; they are all still in
            // pending_ because trimming happens only at durable.
            acked_ = ack.applied;
            durable_ = std::max(durable_, ack.durable);
            stats_.acked_seq = acked_;
            stats_.durable_seq = durable_;
            while (!pending_.empty() && pending_.front().seq <= durable_) {
              pending_.pop_front();
            }
            greeted = true;
            break;
          }
        }
      }
      if (!greeted) {
        // A fault shim may have mangled the HELLO or the ack; the sweep
        // continues and backoff applies.
        conn->Close();
        continue;
      }
      conn_ = std::move(conn);
      reader_ = FrameReader();
      send_cursor_ = acked_;  // resend everything past the watermark
      ++stats_.connects;
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
      failed_sweeps_ = 0;
      return true;
    }
    ++failed_sweeps_;
    if (failed_sweeps_ > options_.max_connect_retries) break;
    // Exponential backoff with jitter: sweep n waits ~initial * 2^n,
    // capped, +-50% jitter so a fleet of clients does not reconnect in
    // lockstep.
    double wait = options_.backoff_initial_ms;
    for (int i = 1; i < failed_sweeps_; ++i) wait *= 2.0;
    wait = std::min<double>(wait, options_.backoff_max_ms);
    wait *= 0.5 + rng_.NextDouble();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, static_cast<int>(wait))));
  }
  return false;
}

void IngestClient::HandleAck(const AckPayload& ack) {
  acked_ = std::max(acked_, ack.applied);
  durable_ = std::max(durable_, ack.durable);
  stats_.acked_seq = acked_;
  stats_.durable_seq = durable_;
  // Trim strictly at durable: an acked-but-unsealed batch must survive a
  // primary loss, because the promoted follower will not have it.
  while (!pending_.empty() && pending_.front().seq <= durable_) {
    pending_.pop_front();
  }
}

bool IngestClient::PumpOnce() {
  if (!EnsureConnected()) return false;
  // Top up the in-memory window from spill before sending.
  if (!spilled_.empty()) {
    const Status s = ReloadSpilled();
    if (!s.ok()) {
      SPADE_LOG_WARNING() << "IngestClient: spill reload failed: "
                          << s.ToString();
    }
  }
  // Send every unacked batch within the window.
  bool sent_any = false;
  for (const Batch& batch : pending_) {
    if (batch.seq <= send_cursor_) continue;
    if (batch.seq > acked_ + options_.send_window) break;
    const std::string frame =
        EncodeFrame(FrameType::kBatch, batch.seq, batch.payload);
    const Status s = conn_->SendAll(frame.data(), frame.size());
    if (!s.ok()) {
      Disconnect();
      return true;  // reconnect on the next pump
    }
    send_cursor_ = batch.seq;
    ++stats_.batches_sent;
    sent_any = true;
  }
  // Everything applied but not yet durable (WaitDurable with no traffic):
  // the server only volunteers watermarks on acks, so ping it with a
  // HELLO — the HELLO_ACK carries fresh {applied, durable}.
  bool pinged = false;
  if (!sent_any && !pending_.empty() && send_cursor_ <= acked_ &&
      pending_.front().seq > durable_) {
    const std::string ping = EncodeFrame(FrameType::kHello, 0,
                                         EncodeU64Payload(options_.stream_id));
    if (!conn_->SendAll(ping.data(), ping.size()).ok()) {
      Disconnect();
      return true;
    }
    pinged = true;
  }
  // Collect acks until progress stalls for ack_timeout_ms.
  const std::uint64_t acked_before = acked_;
  bool got_ack = false;
  auto last_progress = Clock::now();
  char buf[16 * 1024];
  while (ElapsedMs(last_progress) < options_.ack_timeout_ms) {
    std::size_t received = 0;
    const IoResult rc = conn_->Recv(buf, sizeof(buf), &received, 20);
    if (rc == IoResult::kClosed || rc == IoResult::kError) {
      Disconnect();
      return true;
    }
    if (rc == IoResult::kOk) {
      reader_.Append(buf, received);
      Frame frame;
      while (reader_.Next(&frame)) {
        AckPayload ack;
        if ((frame.type == FrameType::kAck ||
             frame.type == FrameType::kHelloAck) &&
            DecodeAckPayload(frame.payload, &ack)) {
          if (ack.applied > acked_) last_progress = Clock::now();
          HandleAck(ack);
          got_ack = true;
        }
      }
    }
    if (pinged) {
      if (got_ack) break;  // the ping's reply arrived, watermarks are fresh
      continue;            // keep waiting for the ping's reply
    }
    const bool window_open =
        !pending_.empty() &&
        pending_.back().seq > send_cursor_ &&
        send_cursor_ < acked_ + options_.send_window;
    if (window_open) break;  // go send the newly opened window
    if (pending_.empty() || send_cursor_ <= acked_) break;  // all acked
  }
  if (acked_ == acked_before && sent_any == false && send_cursor_ > acked_) {
    // Ack timeout with frames outstanding: resend from the watermark.
    stats_.resent_batches += send_cursor_ - acked_;
    send_cursor_ = acked_;
  }
  return true;
}

Status IngestClient::WaitAcked(int timeout_ms) {
  SPADE_RETURN_NOT_OK(Flush());
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const std::uint64_t target = last_sealed_seq();
  while (acked_ < target) {
    if (Clock::now() >= deadline) {
      return Status::IOError("WaitAcked: timed out at seq " +
                             std::to_string(acked_) + "/" +
                             std::to_string(target));
    }
    if (!PumpOnce()) {
      return Status::IOError(
          "WaitAcked: connect retries exhausted at seq " +
          std::to_string(acked_) + "/" + std::to_string(target));
    }
  }
  return Status::OK();
}

Status IngestClient::WaitDurable(int timeout_ms) {
  SPADE_RETURN_NOT_OK(Flush());
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const std::uint64_t target = last_sealed_seq();
  while (durable_ < target) {
    if (Clock::now() >= deadline) {
      return Status::IOError("WaitDurable: timed out at seq " +
                             std::to_string(durable_) + "/" +
                             std::to_string(target));
    }
    if (!PumpOnce()) {
      return Status::IOError(
          "WaitDurable: connect retries exhausted at seq " +
          std::to_string(durable_) + "/" + std::to_string(target));
    }
  }
  return Status::OK();
}

}  // namespace spade::net
