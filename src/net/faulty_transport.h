// Deterministic network fault injection: the wire analogue of the
// TruncatingWriter hook in storage/checked_io.h.
//
// FaultyConnection wraps a Connection and mangles outbound traffic on a
// seeded schedule. The ingest client and the replication sender both emit
// exactly one frame per SendAll call, so the shim treats each SendAll as
// one frame and can tear it (drop), truncate it, flip a byte in it,
// duplicate it, delay it, or swap it with the following frame — the full
// menu of failures a real network (or a dying primary's half-written
// socket buffer) produces, replayed bit-identically from a seed.
//
// Faults apply to the SEND side only; receives pass through untouched.
// That is sufficient: wrapping the client's connection fuzzes the server's
// input, wrapping the follower's connection fuzzes its acks, and every
// protocol participant gets exercised against corrupt input by wrapping
// its peer.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "net/transport.h"

namespace spade::net {

/// Seeded schedule of wire faults. Probabilities are per outbound frame
/// and evaluated in the order they are declared; at most one fault fires
/// per frame.
struct FaultPlan {
  std::uint64_t seed = 1;
  double p_drop = 0.0;       // tear: the frame never leaves
  double p_truncate = 0.0;   // a random strict prefix leaves
  double p_flip = 0.0;       // one random byte is XOR-flipped
  double p_duplicate = 0.0;  // the frame is sent twice
  double p_reorder = 0.0;    // held back and sent after the next frame
  double p_delay = 0.0;      // sent after sleeping delay_ms
  int delay_ms = 0;
  /// Stop injecting after this many faults (< 0 = unlimited). Lets a test
  /// guarantee eventual delivery while still exercising the fault paths.
  int max_faults = -1;
};

/// Counters for assertions.
struct FaultStats {
  std::uint64_t frames = 0;
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::uint64_t flipped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
};

/// A Connection decorator injecting FaultPlan on every SendAll.
class FaultyConnection : public Connection {
 public:
  FaultyConnection(std::unique_ptr<Connection> inner, FaultPlan plan);
  ~FaultyConnection() override;

  Status SendAll(const void* data, std::size_t size) override;
  IoResult Recv(void* buffer, std::size_t capacity, std::size_t* received,
                int timeout_ms) override;
  void Close() override;

  const FaultStats& stats() const { return stats_; }

 private:
  /// Sends one (possibly already mangled) frame, honoring a pending
  /// reorder hold.
  Status Emit(const std::string& frame);

  std::unique_ptr<Connection> inner_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  int faults_ = 0;
  bool holding_ = false;
  std::string held_;  // reorder buffer: one deferred frame
};

/// Convenience factory matching the `wrap_transport` hooks on the client
/// and standby options.
std::unique_ptr<Connection> WrapFaulty(std::unique_ptr<Connection> inner,
                                       const FaultPlan& plan);

}  // namespace spade::net
