#include "net/replicator.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "storage/checked_io.h"
#include "storage/sharded_snapshot.h"

namespace spade::net {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  *out = std::move(data);
  return Status::OK();
}

std::string JoinDir(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / name).string();
}

/// Parses "ingest.seqmap-<epoch>"; returns false for anything else.
bool ParseSeqMapName(const std::string& name, std::uint64_t* epoch) {
  constexpr char kPrefix[] = "ingest.seqmap-";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  const std::string suffix = name.substr(kPrefixLen);
  if (suffix.empty() || suffix.size() > 19 ||
      suffix.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  std::uint64_t value = 0;
  for (const char c : suffix) {
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Replicator (primary)
// ---------------------------------------------------------------------------

Replicator::Replicator(ShardedDetectionService* service, IngestServer* ingest,
                       std::string dir, ReplicatorOptions options)
    : service_(service),
      ingest_(ingest),
      dir_(std::move(dir)),
      options_(options) {}

Replicator::~Replicator() { Stop(); }

Status Replicator::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  SPADE_RETURN_NOT_OK(listener_.Listen(options_.port));
  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Replicator::Stop() {
  if (!running_.exchange(false)) {
    listener_.Close();
    return;
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    if (session_) session_->conn->Close();
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    session_.reset();
  }
  ack_cv_.notify_all();
}

void Replicator::AcceptLoop() {
  while (running_.load()) {
    std::unique_ptr<TcpConnection> conn = listener_.Accept(options_.poll_ms);
    if (!conn) continue;
    auto session = std::make_shared<FollowerSession>();
    session->conn = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(session_mutex_);
      session_ = session;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.follower_sessions;
    }
    // One follower at a time; a second connection queues in the backlog
    // until this session ends.
    ServeFollower(session);
    {
      std::lock_guard<std::mutex> lock(session_mutex_);
      if (session_ == session) session_.reset();
    }
  }
}

Status Replicator::SendFrame(FollowerSession* session,
                             const std::string& frame) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  return session->conn->SendAll(frame.data(), frame.size());
}

Status Replicator::ShipCurrentManifest(FollowerSession* session) {
  // Holds send_mutex_ for the whole ship: it serializes hello catch-up
  // (serve thread) against SealAndShip (driver thread), which both mutate
  // session->shipped, and keeps the file/commit frames contiguous on the
  // wire.
  std::lock_guard<std::mutex> send_lock(send_mutex_);
  ShardManifest manifest;
  const Status read = ReadShardManifest(dir_, &manifest);
  if (read.code() == StatusCode::kNotFound) return Status::OK();  // no seal yet
  SPADE_RETURN_NOT_OK(read);

  std::vector<std::string> names;
  names.reserve(manifest.files.size() + manifest.deltas.size() +
                manifest.boundary_tails.size() + 2);
  for (const std::string& f : manifest.files) names.push_back(f);
  if (!manifest.boundary_file.empty()) names.push_back(manifest.boundary_file);
  for (const DeltaSegmentRef& d : manifest.deltas) names.push_back(d.file);
  for (const BoundaryTailRef& t : manifest.boundary_tails) {
    names.push_back(t.file);
  }
  // The seal's seqmap rides with its epoch; absent when ingest runs
  // without a wire front end.
  const std::string seqmap = SeqMapFileName(manifest.epoch);
  if (std::filesystem::exists(JoinDir(dir_, seqmap))) {
    names.push_back(seqmap);
  }

  std::uint64_t files = 0;
  std::uint64_t bytes = 0;
  for (const std::string& name : names) {
    if (session->shipped.count(name) != 0) continue;
    std::string data;
    SPADE_RETURN_NOT_OK(ReadFileToString(JoinDir(dir_, name), &data));
    if (data.size() + name.size() + 32 > kMaxFramePayload) {
      return Status::IOError("file too large to ship in one frame: " + name);
    }
    const std::string frame =
        EncodeFrame(FrameType::kEpochFile, manifest.epoch,
                    EncodeEpochFilePayload(manifest.epoch, name, data));
    SPADE_RETURN_NOT_OK(session->conn->SendAll(frame.data(), frame.size()));
    session->shipped.insert(name);
    ++files;
    bytes += data.size();
  }

  std::string manifest_bytes;
  SPADE_RETURN_NOT_OK(
      ReadFileToString(ShardManifestPath(dir_), &manifest_bytes));
  const std::string commit =
      EncodeFrame(FrameType::kEpochCommit, manifest.epoch,
                  EncodeEpochCommitPayload(manifest.epoch, manifest_bytes));
  SPADE_RETURN_NOT_OK(session->conn->SendAll(commit.data(), commit.size()));

  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.files_shipped += files;
  stats_.bytes_shipped += bytes;
  return Status::OK();
}

void Replicator::ServeFollower(std::shared_ptr<FollowerSession> session) {
  FrameReader reader;
  char buf[64 * 1024];
  auto last_heartbeat = Clock::now();
  while (running_.load()) {
    const auto now = Clock::now();
    if (now - last_heartbeat >=
        std::chrono::milliseconds(options_.heartbeat_ms)) {
      const std::string beat = EncodeFrame(FrameType::kHeartbeat, 0, "");
      if (!SendFrame(session.get(), beat).ok()) break;
      last_heartbeat = now;
    }
    std::size_t received = 0;
    const IoResult rc = session->conn->Recv(buf, sizeof(buf), &received,
                                            options_.heartbeat_ms / 2 + 1);
    if (rc == IoResult::kTimeout) continue;
    if (rc != IoResult::kOk) break;
    reader.Append(buf, received);
    Frame frame;
    while (reader.Next(&frame)) {
      switch (frame.type) {
        case FrameType::kReplicaHello: {
          // The shipped-set starts empty, so a freshly connected follower
          // gets a full catch-up regardless of the epoch it reports; its
          // own staging dedups anything it already had.
          const Status s = ShipCurrentManifest(session.get());
          if (!s.ok()) {
            SPADE_LOG_WARNING()
                << "Replicator: catch-up failed: " << s.ToString();
          }
          break;
        }
        case FrameType::kEpochAck: {
          std::uint64_t epoch = 0;
          if (!DecodeU64Payload(frame.payload, &epoch)) break;
          {
            std::lock_guard<std::mutex> lock(ack_mutex_);
            if (epoch > acked_epoch_) acked_epoch_ = epoch;
          }
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.epochs_acked;
          }
          ack_cv_.notify_all();
          break;
        }
        case FrameType::kHeartbeat:
          break;
        default:
          break;
      }
    }
  }
  session->conn->Close();
}

Status Replicator::SealAndShip(ShardedDetectionService::SaveMode mode,
                               ShardedDetectionService::SaveInfo* info) {
  ShardedDetectionService::SaveInfo local;
  if (ingest_ != nullptr) {
    SPADE_RETURN_NOT_OK(ingest_->SealEpoch(dir_, mode, &local));
  } else {
    SPADE_RETURN_NOT_OK(service_->SaveState(dir_, mode, &local));
  }
  if (info != nullptr) *info = local;

  std::shared_ptr<FollowerSession> session;
  {
    std::lock_guard<std::mutex> lock(session_mutex_);
    session = session_;
  }
  if (!session) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(local.epoch) +
        " sealed locally but no follower is connected");
  }
  SPADE_RETURN_NOT_OK(ShipCurrentManifest(session.get()));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.epochs_shipped;
  }
  {
    std::unique_lock<std::mutex> lock(ack_mutex_);
    const bool acked = ack_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.ack_timeout_ms),
        [this, &local] {
          return acked_epoch_ >= local.epoch || !running_.load();
        });
    if (!acked || acked_epoch_ < local.epoch) {
      return Status::IOError("follower did not ack epoch " +
                             std::to_string(local.epoch) + " within " +
                             std::to_string(options_.ack_timeout_ms) + "ms");
    }
  }
  if (ingest_ != nullptr) ingest_->MarkDurable(local.epoch);
  return Status::OK();
}

bool Replicator::HasFollower() {
  std::lock_guard<std::mutex> lock(session_mutex_);
  return session_ != nullptr;
}

std::uint64_t Replicator::acked_epoch() {
  std::lock_guard<std::mutex> lock(ack_mutex_);
  return acked_epoch_;
}

ReplicatorStats Replicator::GetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Standby (follower)
// ---------------------------------------------------------------------------

Standby::Standby(ShardedDetectionService* service, std::string dir,
                 StandbyOptions options)
    : service_(service), dir_(std::move(dir)), options_(options) {}

Standby::~Standby() { Stop(); }

Status Standby::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return Status::IOError("cannot create " + dir_);
  last_frame_ms_.store(NowMs());
  running_.store(true);
  receiver_ = std::thread([this] { ReceiveLoop(); });
  return Status::OK();
}

void Standby::Stop() {
  if (!running_.exchange(false)) return;
  if (receiver_.joinable()) receiver_.join();
}

void Standby::ReceiveLoop() {
  bool ever_connected = false;
  while (running_.load()) {
    std::unique_ptr<TcpConnection> conn =
        TcpConnect(options_.primary_port, options_.poll_ms);
    if (!conn) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.connect_backoff_ms));
      continue;
    }
    if (ever_connected) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.reconnects;
    }
    ever_connected = true;
    {
      const std::string hello =
          EncodeFrame(FrameType::kReplicaHello, 0,
                      EncodeU64Payload(applied_epoch()));
      if (!conn->SendAll(hello.data(), hello.size()).ok()) {
        conn->Close();
        continue;
      }
    }
    FrameReader reader;
    std::uint64_t corrupt_seen = 0;
    char buf[64 * 1024];
    while (running_.load()) {
      std::size_t received = 0;
      const IoResult rc =
          conn->Recv(buf, sizeof(buf), &received, options_.poll_ms);
      if (rc == IoResult::kTimeout) continue;
      if (rc != IoResult::kOk) break;
      reader.Append(buf, received);
      Frame frame;
      while (reader.Next(&frame)) {
        // Any intact frame proves the primary is alive.
        last_frame_ms_.store(NowMs());
        switch (frame.type) {
          case FrameType::kHeartbeat:
            break;
          case FrameType::kEpochFile: {
            EpochFilePayload file;
            if (!DecodeEpochFilePayload(frame.payload, &file)) {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.corrupt_frames;
              break;
            }
            HandleFile(file);
            break;
          }
          case FrameType::kEpochCommit: {
            EpochCommitPayload commit;
            if (!DecodeEpochCommitPayload(frame.payload, &commit)) {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.corrupt_frames;
              break;
            }
            HandleCommit(commit);
            const std::string ack =
                EncodeFrame(FrameType::kEpochAck, commit.epoch,
                            EncodeU64Payload(commit.epoch));
            conn->SendAll(ack.data(), ack.size());
            break;
          }
          default:
            break;
        }
      }
      if (reader.corrupt_frames() != corrupt_seen) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.corrupt_frames += reader.corrupt_frames() - corrupt_seen;
        corrupt_seen = reader.corrupt_frames();
      }
    }
    conn->Close();
  }
}

void Standby::HandleFile(const EpochFilePayload& file) {
  // Staging hygiene: names are flat (the manifest only references files
  // inside its own directory); anything with a separator is hostile.
  if (file.name.find('/') != std::string::npos ||
      file.name.find("..") != std::string::npos) {
    SPADE_LOG_WARNING() << "Standby: rejecting suspicious file name '"
                        << file.name << "'";
    return;
  }
  const Status s = storage::WriteFileAtomic(JoinDir(dir_, file.name),
                                            file.data);
  if (!s.ok()) {
    SPADE_LOG_WARNING() << "Standby: staging " << file.name
                        << " failed: " << s.ToString();
    return;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.files_staged;
  stats_.bytes_staged += file.data.size();
}

void Standby::HandleCommit(const EpochCommitPayload& commit) {
  std::lock_guard<std::mutex> lock(apply_mutex_);
  const Status install =
      storage::WriteFileAtomic(ShardManifestPath(dir_), commit.manifest);
  if (!install.ok()) {
    SPADE_LOG_WARNING() << "Standby: manifest install for epoch "
                        << commit.epoch << " failed: " << install.ToString();
    return;
  }
  if (commit.epoch > committed_epoch_) committed_epoch_ = commit.epoch;
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.epochs_committed;
  }
  // The first commit is always applied so the standby starts warm; after
  // that, eager_replay decides whether the receiver tracks the primary
  // epoch by epoch or stages the tail for Promote().
  if (!ever_restored_ || options_.eager_replay) {
    std::uint64_t edges = 0;
    std::uint64_t epochs = 0;
    bool full = false;
    const Status s =
        ApplyThroughLocked(committed_epoch_, &edges, &epochs, &full);
    if (!s.ok()) {
      SPADE_LOG_WARNING() << "Standby: eager apply of epoch " << commit.epoch
                          << " failed (will full-restore on promote): "
                          << s.ToString();
      needs_full_restore_ = true;
      return;
    }
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.epochs_applied += epochs;
  }
}

Status Standby::ApplyThroughLocked(std::uint64_t target, std::uint64_t* edges,
                                   std::uint64_t* epochs,
                                   bool* full_restore) {
  if (target <= applied_epoch_) return Status::OK();
  ShardManifest manifest;
  SPADE_RETURN_NOT_OK(ReadShardManifest(dir_, &manifest));
  bool incremental = ever_restored_ && !needs_full_restore_ &&
                     manifest.base_epoch == applied_base_epoch_ &&
                     applied_epoch_ >= manifest.base_epoch;
  if (incremental) {
    for (std::uint64_t e = applied_epoch_ + 1; e <= manifest.epoch; ++e) {
      std::uint64_t replayed = 0;
      const Status s = service_->ApplyChainEpoch(
          dir_, e, std::chrono::milliseconds(options_.drain_timeout_ms),
          &replayed);
      if (!s.ok()) {
        SPADE_LOG_WARNING() << "Standby: incremental apply of epoch " << e
                            << " failed, falling back to full restore: "
                            << s.ToString();
        incremental = false;
        break;
      }
      *edges += replayed;
      ++*epochs;
      applied_epoch_ = e;
    }
  }
  if (!incremental && applied_epoch_ < manifest.epoch) {
    ShardedDetectionService::RestoreInfo rinfo;
    SPADE_RETURN_NOT_OK(service_->RestoreState(dir_, &rinfo));
    if (full_restore != nullptr) *full_restore = true;
    *edges += rinfo.delta_edges_replayed;
    applied_epoch_ = rinfo.restored_epoch;
  }
  ever_restored_ = true;
  needs_full_restore_ = false;
  applied_base_epoch_ = manifest.base_epoch;
  return Status::OK();
}

bool Standby::WaitPrimaryLost(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (NowMs() - last_frame_ms_.load() > options_.lease_ms) return true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(options_.poll_ms, 20)));
  }
  return NowMs() - last_frame_ms_.load() > options_.lease_ms;
}

Status Standby::Promote(PromoteInfo* info) {
  const auto start = Clock::now();
  Stop();
  std::lock_guard<std::mutex> lock(apply_mutex_);
  PromoteInfo local;
  SPADE_RETURN_NOT_OK(ApplyThroughLocked(committed_epoch_,
                                         &local.replayed_edges,
                                         &local.replayed_epochs,
                                         &local.full_restore));
  local.epoch = applied_epoch_;
  // Newest replicated seqmap at or below the promoted epoch seeds the new
  // primary's dedup watermarks.
  std::uint64_t best_epoch = 0;
  std::string best_path;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::uint64_t epoch = 0;
    const std::string name = entry.path().filename().string();
    if (!ParseSeqMapName(name, &epoch)) continue;
    if (epoch <= applied_epoch_ && epoch >= best_epoch) {
      best_epoch = epoch;
      best_path = entry.path().string();
    }
  }
  if (!best_path.empty()) {
    std::uint64_t file_epoch = 0;
    SPADE_RETURN_NOT_OK(ReadSeqMapFile(best_path, &file_epoch, &local.seqmap));
  }
  local.promote_millis =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (info != nullptr) *info = local;
  return Status::OK();
}

std::uint64_t Standby::applied_epoch() {
  std::lock_guard<std::mutex> lock(apply_mutex_);
  return applied_epoch_;
}

std::uint64_t Standby::committed_epoch() {
  std::lock_guard<std::mutex> lock(apply_mutex_);
  return committed_epoch_;
}

StandbyStats Standby::GetStats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace spade::net
