#include "net/wire_format.h"

#include <cstring>

#include "storage/checked_io.h"

namespace spade::net {

namespace {

// "SPDW" little-endian.
constexpr std::uint32_t kMagic = 0x57445053u;
constexpr std::uint64_t kSeqMapMagic = 0x51535f4544415053ull;  // "SPADE_SQ"
constexpr std::uint32_t kSeqMapVersion = 1;

void PutBytes(std::string* out, const void* data, std::size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void Put(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutBytes(out, &value, sizeof(value));
}

/// Bounds-checked sequential reader over a payload view.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::size_t size, std::string* out) {
    if (data_.size() - pos_ < size) return false;
    out->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::string_view Rest() const { return data_.substr(pos_); }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

bool IsValidFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kReplicaHello);
}

std::string EncodeFrame(FrameType type, std::uint64_t seq,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  Put(&out, kMagic);
  Put(&out, static_cast<std::uint8_t>(type));
  Put(&out, static_cast<std::uint8_t>(0));  // flags, reserved
  Put(&out, static_cast<std::uint32_t>(payload.size()));
  Put(&out, seq);
  Put(&out, Crc64(out.data(), kFrameHeaderCrcOffset));  // header CRC
  PutBytes(&out, payload.data(), payload.size());
  const std::uint64_t crc = Crc64(out.data(), out.size());
  Put(&out, crc);
  return out;
}

void FrameReader::Append(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void FrameReader::Compact() {
  // Amortized O(1): drop the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

bool FrameReader::Next(Frame* out) {
  while (buf_.size() - pos_ >= kFrameHeaderSize) {
    const char* p = buf_.data() + pos_;
    std::uint32_t magic;
    std::memcpy(&magic, p, sizeof(magic));
    if (magic != kMagic) {
      // Hunt for the next magic instead of crawling byte by byte.
      const std::size_t limit = buf_.size() - pos_;
      std::size_t skip = 1;
      while (skip + sizeof(magic) <= limit) {
        std::uint32_t candidate;
        std::memcpy(&candidate, p + skip, sizeof(candidate));
        if (candidate == kMagic) break;
        ++skip;
      }
      if (skip + sizeof(magic) > limit) skip = limit;
      pos_ += skip;
      resync_bytes_ += skip;
      Compact();
      continue;
    }
    std::uint64_t stored_hcrc = 0;
    std::memcpy(&stored_hcrc, p + kFrameHeaderCrcOffset, sizeof(stored_hcrc));
    if (Crc64(p, kFrameHeaderCrcOffset) != stored_hcrc) {
      // Corrupt header (or a spurious magic inside another frame's
      // payload): reject BEFORE trusting the length field, so a mangled
      // length can never stall the stream waiting for bytes that were
      // never sent. One-byte advance, rescan.
      ++corrupt_frames_;
      pos_ += 1;
      resync_bytes_ += 1;
      Compact();
      continue;
    }
    std::uint8_t type = 0;
    std::uint32_t len = 0;
    std::uint64_t seq = 0;
    std::memcpy(&type, p + 4, sizeof(type));
    std::memcpy(&len, p + 6, sizeof(len));
    std::memcpy(&seq, p + 10, sizeof(seq));
    if (!IsValidFrameType(type) || len > kMaxFramePayload) {
      // Implausible header that nonetheless passed its CRC: a protocol
      // mismatch, not line noise. Skip it like a corrupt frame.
      ++corrupt_frames_;
      pos_ += 1;
      resync_bytes_ += 1;
      Compact();
      continue;
    }
    const std::size_t total = kFrameHeaderSize + len + kFrameTrailerSize;
    if (buf_.size() - pos_ < total) {
      Compact();
      return false;  // need more bytes
    }
    std::uint64_t stored_crc = 0;
    std::memcpy(&stored_crc, p + kFrameHeaderSize + len, sizeof(stored_crc));
    const std::uint64_t crc = Crc64(p, kFrameHeaderSize + len);
    if (crc != stored_crc) {
      // Either line noise inside this frame or a spurious magic inside
      // another frame's payload; one-byte advance handles both.
      ++corrupt_frames_;
      pos_ += 1;
      resync_bytes_ += 1;
      Compact();
      continue;
    }
    out->type = static_cast<FrameType>(type);
    out->seq = seq;
    out->payload.assign(p + kFrameHeaderSize, len);
    pos_ += total;
    Compact();
    return true;
  }
  Compact();
  return false;
}

std::string EncodeBatchPayload(std::span<const Edge> edges) {
  std::string out;
  out.reserve(4 + edges.size() * 24);
  Put(&out, static_cast<std::uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    Put(&out, static_cast<std::uint32_t>(e.src));
    Put(&out, static_cast<std::uint32_t>(e.dst));
    Put(&out, e.weight);
    Put(&out, static_cast<std::int64_t>(e.ts));
  }
  return out;
}

bool DecodeBatchPayload(std::string_view payload, std::vector<Edge>* edges) {
  Cursor cur(payload);
  std::uint32_t count = 0;
  if (!cur.Read(&count)) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) * 24) return false;
  edges->clear();
  edges->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t src = 0, dst = 0;
    double weight = 0.0;
    std::int64_t ts = 0;
    if (!cur.Read(&src) || !cur.Read(&dst) || !cur.Read(&weight) ||
        !cur.Read(&ts)) {
      return false;
    }
    edges->push_back(Edge{src, dst, weight, ts});
  }
  return cur.AtEnd();
}

std::string EncodeAckPayload(const AckPayload& ack) {
  std::string out;
  Put(&out, ack.applied);
  Put(&out, ack.durable);
  return out;
}

bool DecodeAckPayload(std::string_view payload, AckPayload* ack) {
  Cursor cur(payload);
  return cur.Read(&ack->applied) && cur.Read(&ack->durable) && cur.AtEnd();
}

std::string EncodeU64Payload(std::uint64_t value) {
  std::string out;
  Put(&out, value);
  return out;
}

bool DecodeU64Payload(std::string_view payload, std::uint64_t* value) {
  Cursor cur(payload);
  return cur.Read(value) && cur.AtEnd();
}

std::string EncodeEpochFilePayload(std::uint64_t epoch, std::string_view name,
                                   std::string_view data) {
  std::string out;
  out.reserve(8 + 2 + name.size() + data.size());
  Put(&out, epoch);
  Put(&out, static_cast<std::uint16_t>(name.size()));
  PutBytes(&out, name.data(), name.size());
  PutBytes(&out, data.data(), data.size());
  return out;
}

bool DecodeEpochFilePayload(std::string_view payload, EpochFilePayload* out) {
  Cursor cur(payload);
  std::uint16_t name_len = 0;
  if (!cur.Read(&out->epoch) || !cur.Read(&name_len)) return false;
  if (!cur.ReadString(name_len, &out->name)) return false;
  out->data.assign(cur.Rest());
  return !out->name.empty();
}

std::string EncodeEpochCommitPayload(std::uint64_t epoch,
                                     std::string_view manifest) {
  std::string out;
  out.reserve(8 + manifest.size());
  Put(&out, epoch);
  PutBytes(&out, manifest.data(), manifest.size());
  return out;
}

bool DecodeEpochCommitPayload(std::string_view payload,
                              EpochCommitPayload* out) {
  Cursor cur(payload);
  if (!cur.Read(&out->epoch)) return false;
  out->manifest.assign(cur.Rest());
  return true;
}

std::string SeqMapFileName(std::uint64_t epoch) {
  return "ingest.seqmap-" + std::to_string(epoch);
}

Status WriteSeqMapFile(const std::string& path, std::uint64_t epoch,
                       const SeqMap& seqs) {
  storage::ChecksummedFileWriter writer(path);
  writer.Write(kSeqMapMagic);
  writer.Write(kSeqMapVersion);
  writer.Write(epoch);
  writer.Write(static_cast<std::uint64_t>(seqs.size()));
  for (const auto& [stream, seq] : seqs) {
    writer.Write(stream);
    writer.Write(seq);
  }
  return writer.Finish();
}

Status ReadSeqMapFile(const std::string& path, std::uint64_t* epoch,
                      SeqMap* seqs) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) {
    return Status::IOError("cannot open seqmap file " + path);
  }
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t file_epoch = 0;
  std::uint64_t count = 0;
  if (!reader.Read(&magic) || magic != kSeqMapMagic) {
    return Status::IOError("bad seqmap magic in " + path);
  }
  if (!reader.Read(&version) || version != kSeqMapVersion) {
    return Status::IOError("unsupported seqmap version in " + path);
  }
  if (!reader.Read(&file_epoch) || !reader.Read(&count)) {
    return Status::IOError("truncated seqmap header in " + path);
  }
  if (reader.CountExceedsFile(count, 16)) {
    return Status::IOError("implausible seqmap count in " + path);
  }
  SeqMap parsed;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t stream = 0, seq = 0;
    if (!reader.Read(&stream) || !reader.Read(&seq)) {
      return Status::IOError("truncated seqmap entry in " + path);
    }
    parsed[stream] = seq;
  }
  SPADE_RETURN_NOT_OK(reader.VerifyTrailer());
  if (epoch != nullptr) *epoch = file_epoch;
  *seqs = std::move(parsed);
  return Status::OK();
}

}  // namespace spade::net
