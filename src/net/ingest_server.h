// IngestServer: the wire front end of a primary. Accepts TCP connections,
// decodes CRC-framed BATCH frames (net/wire_format.h) and feeds them to a
// ShardedDetectionService through the same SubmitBatch path in-process
// producers use.
//
// Exactly-once admission: every ingest stream (client) owns a monotonic
// batch sequence starting at 1. The server keeps, per stream, an
// `applied` watermark (highest batch submitted to the service) and a
// `durable` watermark (highest batch included in a replicated sealed
// epoch). A batch is applied only when its seq is exactly applied+1;
// anything at or below the watermark is acked as a duplicate without
// touching the service, anything beyond the successor is a gap (a
// reordered or lost predecessor) and is acked-but-not-applied so the
// client resends from the watermark. Both watermarks ride on every ACK,
// so a client retrying through timeouts, duplicating networks and
// reconnects applies each batch exactly once.
//
// Seal protocol (the replication hinge): SealEpoch() atomically captures
// every stream's applied watermark AND checkpoints the service — an
// exclusive lock excludes batch application for the capture, so the
// seqmap written beside the manifest describes exactly the stream prefix
// the sealed epoch contains. MarkDurable(epoch) (called by the replicator
// once a follower acked the epoch) then advances the durable watermarks
// from that seal's captured map. A promoted follower seeds its own
// server's watermarks from the replicated seqmap (SeedAppliedSeqs), which
// closes the failover loop: clients resend everything past `durable`, the
// new primary dedups everything at or below the seeded watermark, and no
// batch is lost or applied twice (DESIGN.md §7).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/transport.h"
#include "net/wire_format.h"
#include "service/sharded_detection_service.h"

namespace spade::net {

struct IngestServerOptions {
  /// Listen port (0 = kernel-assigned; read back with port()).
  int port = 0;
  /// Poll granularity of the accept and per-connection receive loops; also
  /// bounds how long Stop() waits for a loop to notice.
  int poll_ms = 50;
  /// Frames whose BATCH payload decodes to more edges than this are
  /// rejected (protocol hygiene; the frame layer already caps raw bytes).
  std::size_t max_batch_edges = 1u << 20;
};

struct IngestServerStats {
  std::uint64_t connections = 0;
  std::uint64_t frames = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t edges_applied = 0;
  std::uint64_t duplicate_batches = 0;
  std::uint64_t gap_batches = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t resync_bytes = 0;
};

class IngestServer {
 public:
  /// `service` must outlive the server. Nothing listens until Start().
  IngestServer(ShardedDetectionService* service,
               IngestServerOptions options = {});
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds, listens and spawns the acceptor thread.
  Status Start();

  /// Closes the listener and every live connection; joins all threads.
  /// Idempotent.
  void Stop();

  /// Port actually bound (valid after Start()).
  int port() const { return listener_.port(); }

  /// Seals a checkpoint epoch: captures every stream's applied watermark
  /// and runs service->SaveState(dir, mode) under an exclusive lock that
  /// excludes batch application, then writes the captured seqmap beside
  /// the manifest as ingest.seqmap-<epoch>. The captured map is retained
  /// until MarkDurable consumes it.
  Status SealEpoch(const std::string& dir,
                   ShardedDetectionService::SaveMode mode,
                   ShardedDetectionService::SaveInfo* info = nullptr);

  /// Advances the durable watermarks to the seqs captured by the seal of
  /// `epoch` (no-op for an unknown epoch). Called by the replicator after
  /// the follower acked the epoch; without a replicator, callers may
  /// invoke it directly after SealEpoch to treat local disk as durable.
  void MarkDurable(std::uint64_t epoch);

  /// Seeds per-stream applied+durable watermarks from a replicated seqmap
  /// (promotion path). Call before Start().
  void SeedAppliedSeqs(const SeqMap& seqs);

  IngestServerStats GetStats() const;

 private:
  struct StreamState {
    std::mutex mutex;
    std::uint64_t applied = 0;
    std::uint64_t durable = 0;
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  StreamState* GetStream(std::uint64_t stream_id);

  ShardedDetectionService* service_;
  IngestServerOptions options_;
  TcpListener listener_;
  std::atomic<bool> running_{false};

  std::thread acceptor_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<std::thread> handlers_;

  std::mutex streams_mutex_;
  std::map<std::uint64_t, std::unique_ptr<StreamState>> streams_;

  /// Batch handlers hold it shared across dedup-check + SubmitBatch +
  /// watermark advance; SealEpoch holds it exclusive across capture +
  /// SaveState. That is the whole exactly-once-across-failover argument:
  /// no batch can land between the seqmap capture and the checkpoint it
  /// describes.
  std::shared_mutex apply_mutex_;

  std::mutex seals_mutex_;
  std::map<std::uint64_t, SeqMap> sealed_seqmaps_;  // epoch -> captured map

  mutable std::mutex stats_mutex_;
  IngestServerStats stats_;
};

}  // namespace spade::net
