#include "net/ingest_server.h"

#include <filesystem>

#include "common/logging.h"

namespace spade::net {

IngestServer::IngestServer(ShardedDetectionService* service,
                           IngestServerOptions options)
    : service_(service), options_(options) {}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  SPADE_RETURN_NOT_OK(listener_.Listen(options_.port));
  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void IngestServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped; still reap a failed Start's
    // listener.
    listener_.Close();
    return;
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& c : conns_) c->Close();
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.clear();
  }
}

void IngestServer::AcceptLoop() {
  while (running_.load()) {
    std::unique_ptr<TcpConnection> conn = listener_.Accept(options_.poll_ms);
    if (!conn) continue;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections;
    }
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (!running_.load()) return;
    conns_.push_back(std::move(conn));
    handlers_.emplace_back([this, raw] { ServeConnection(raw); });
  }
}

IngestServer::StreamState* IngestServer::GetStream(std::uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  auto& slot = streams_[stream_id];
  if (!slot) slot = std::make_unique<StreamState>();
  return slot.get();
}

void IngestServer::ServeConnection(Connection* conn) {
  FrameReader reader;
  StreamState* stream = nullptr;
  std::uint64_t corrupt_seen = 0;
  std::uint64_t resync_seen = 0;
  char buf[64 * 1024];
  while (running_.load()) {
    std::size_t received = 0;
    const IoResult rc =
        conn->Recv(buf, sizeof(buf), &received, options_.poll_ms);
    if (rc == IoResult::kTimeout) continue;
    if (rc != IoResult::kOk) break;
    reader.Append(buf, received);
    Frame frame;
    while (reader.Next(&frame)) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.frames;
      }
      switch (frame.type) {
        case FrameType::kHello: {
          std::uint64_t stream_id = 0;
          if (!DecodeU64Payload(frame.payload, &stream_id)) break;
          stream = GetStream(stream_id);
          AckPayload ack;
          {
            std::lock_guard<std::mutex> sl(stream->mutex);
            ack.applied = stream->applied;
            ack.durable = stream->durable;
          }
          const std::string reply =
              EncodeFrame(FrameType::kHelloAck, 0, EncodeAckPayload(ack));
          conn->SendAll(reply.data(), reply.size());
          break;
        }
        case FrameType::kBatch: {
          if (stream == nullptr) break;  // batch before hello: ignore
          std::vector<Edge> edges;
          if (!DecodeBatchPayload(frame.payload, &edges) ||
              edges.size() > options_.max_batch_edges) {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++stats_.corrupt_frames;
            break;
          }
          AckPayload ack;
          bool applied_now = false;
          {
            // Shared with other batch handlers, exclusive against
            // SealEpoch: dedup decision, service submit and watermark
            // advance are one atom relative to the seqmap capture.
            std::shared_lock<std::shared_mutex> apply_lock(apply_mutex_);
            std::lock_guard<std::mutex> sl(stream->mutex);
            if (frame.seq == stream->applied + 1) {
              const Status s = service_->SubmitBatch(edges);
              if (s.ok()) {
                stream->applied = frame.seq;
                applied_now = true;
              }
              // On failure the watermark stays put; the ack tells the
              // client to retry this seq.
            }
            ack.applied = stream->applied;
            ack.durable = stream->durable;
          }
          {
            std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            if (applied_now) {
              ++stats_.batches_applied;
              stats_.edges_applied += edges.size();
            } else if (frame.seq <= ack.applied) {
              ++stats_.duplicate_batches;
            } else {
              ++stats_.gap_batches;
            }
          }
          const std::string reply =
              EncodeFrame(FrameType::kAck, frame.seq, EncodeAckPayload(ack));
          conn->SendAll(reply.data(), reply.size());
          break;
        }
        case FrameType::kHeartbeat:
          break;  // liveness only; nothing to do on the ingest port
        default:
          break;  // replication frames have no business here; drop
      }
    }
    if (reader.corrupt_frames() != corrupt_seen ||
        reader.resync_bytes() != resync_seen) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      // FrameReader counters are cumulative; fold the delta in.
      stats_.corrupt_frames += reader.corrupt_frames() - corrupt_seen;
      stats_.resync_bytes += reader.resync_bytes() - resync_seen;
      corrupt_seen = reader.corrupt_frames();
      resync_seen = reader.resync_bytes();
    }
  }
  conn->Close();
}

Status IngestServer::SealEpoch(const std::string& dir,
                               ShardedDetectionService::SaveMode mode,
                               ShardedDetectionService::SaveInfo* info) {
  SeqMap captured;
  ShardedDetectionService::SaveInfo local_info;
  {
    // Exclusive: no batch can be mid-apply while the seqmap is captured
    // and the checkpoint drains+saves, so map and files agree exactly.
    std::unique_lock<std::shared_mutex> apply_lock(apply_mutex_);
    {
      std::lock_guard<std::mutex> lock(streams_mutex_);
      for (const auto& [id, state] : streams_) {
        std::lock_guard<std::mutex> sl(state->mutex);
        captured[id] = state->applied;
      }
    }
    SPADE_RETURN_NOT_OK(service_->SaveState(dir, mode, &local_info));
  }
  const std::string seqmap_path =
      (std::filesystem::path(dir) / SeqMapFileName(local_info.epoch))
          .string();
  SPADE_RETURN_NOT_OK(
      WriteSeqMapFile(seqmap_path, local_info.epoch, captured));
  {
    std::lock_guard<std::mutex> lock(seals_mutex_);
    sealed_seqmaps_[local_info.epoch] = std::move(captured);
    // Bound the retained history: everything durable was consumed, and a
    // follower never acks epochs out of order, so a short tail suffices.
    while (sealed_seqmaps_.size() > 16) {
      sealed_seqmaps_.erase(sealed_seqmaps_.begin());
    }
  }
  if (info != nullptr) *info = local_info;
  return Status::OK();
}

void IngestServer::MarkDurable(std::uint64_t epoch) {
  SeqMap consumed;
  {
    std::lock_guard<std::mutex> lock(seals_mutex_);
    // Every seal at or below `epoch` is durable; the newest one carries
    // the highest watermarks.
    auto it = sealed_seqmaps_.begin();
    while (it != sealed_seqmaps_.end() && it->first <= epoch) {
      consumed = std::move(it->second);
      it = sealed_seqmaps_.erase(it);
    }
  }
  if (consumed.empty()) return;
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (const auto& [id, seq] : consumed) {
    auto it = streams_.find(id);
    if (it == streams_.end()) continue;
    std::lock_guard<std::mutex> sl(it->second->mutex);
    it->second->durable = std::max(it->second->durable, seq);
  }
}

void IngestServer::SeedAppliedSeqs(const SeqMap& seqs) {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  for (const auto& [id, seq] : seqs) {
    auto& slot = streams_[id];
    if (!slot) slot = std::make_unique<StreamState>();
    std::lock_guard<std::mutex> sl(slot->mutex);
    slot->applied = std::max(slot->applied, seq);
    slot->durable = std::max(slot->durable, seq);
  }
}

IngestServerStats IngestServer::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace spade::net
