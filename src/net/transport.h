// Minimal POSIX TCP transport for the replicated ingest tier: a blocking
// connection abstraction with poll()-based receive timeouts, a listener
// with ephemeral-port support, and a connect-with-timeout helper.
//
// The abstraction exists for exactly one reason beyond portability hygiene:
// FaultyConnection (faulty_transport.h) wraps a Connection to inject
// deterministic wire faults, the network analogue of the TruncatingWriter
// hook in storage/checked_io.h. Everything above this layer — the ingest
// server, client and replicator — talks to the interface and never to a
// file descriptor, so the fault shim composes with all of them.
//
// Loopback/IPv4 only, Linux-oriented (MSG_NOSIGNAL); that matches the test
// and bench deployments this tier targets.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace spade::net {

/// Outcome of one Recv call.
enum class IoResult {
  kOk,       // >= 1 byte received
  kTimeout,  // nothing arrived within the timeout
  kClosed,   // orderly EOF from the peer
  kError,    // socket error; the connection is dead
};

/// One byte stream between two endpoints.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Writes all `size` bytes (looping over short writes). A send to a
  /// closed peer fails with kIOError instead of raising SIGPIPE.
  virtual Status SendAll(const void* data, std::size_t size) = 0;

  /// Reads up to `capacity` bytes, waiting at most `timeout_ms` (0 = poll,
  /// <0 = block indefinitely). `*received` is set only on kOk.
  virtual IoResult Recv(void* buffer, std::size_t capacity,
                        std::size_t* received, int timeout_ms) = 0;

  /// Shuts the socket down; any blocked Recv/SendAll returns promptly.
  /// Safe to call from another thread and more than once.
  virtual void Close() = 0;
};

/// A connected TCP socket.
class TcpConnection : public Connection {
 public:
  /// Takes ownership of a connected fd.
  explicit TcpConnection(int fd);
  ~TcpConnection() override;

  Status SendAll(const void* data, std::size_t size) override;
  IoResult Recv(void* buffer, std::size_t capacity, std::size_t* received,
                int timeout_ms) override;
  void Close() override;

 private:
  // Close() only shuts the socket down; the fd itself is released in the
  // destructor. Closing the descriptor while another thread is blocked in
  // recv() on it would let the kernel reuse the fd number under that
  // reader's feet; shutdown() wakes the reader while keeping the number
  // reserved until everyone is provably done (the owner joins its handler
  // threads before destroying the connection).
  std::atomic<int> fd_;
  std::atomic<bool> shutdown_{false};
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `port` (0 = kernel-assigned ephemeral port;
  /// read the result back with port()).
  Status Listen(int port);

  /// Port actually bound, 0 before Listen.
  int port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms` (<0 = forever).
  /// Returns nullptr on timeout or when the listener was closed.
  std::unique_ptr<TcpConnection> Accept(int timeout_ms);

  /// Shuts the listening socket down; a blocked Accept returns nullptr.
  /// Safe to call from another thread. The fd is released by the
  /// destructor or the next Listen().
  void Close();

 private:
  // Same deferred-close discipline as TcpConnection: Close() may race a
  // blocked Accept(), so it only shuts down; the fd is reclaimed where no
  // acceptor can be using it (destructor / single-threaded re-Listen).
  void ReleaseFd();

  std::atomic<int> fd_{-1};
  std::atomic<bool> shutdown_{false};
  int port_ = 0;
};

/// Connects to 127.0.0.1:`port` within `timeout_ms`. Returns nullptr on
/// refusal or timeout.
std::unique_ptr<TcpConnection> TcpConnect(int port, int timeout_ms);

}  // namespace spade::net
