// Binary wire format for the replicated ingest tier: length-prefixed,
// CRC-64-framed messages carrying edge batches, acks, heartbeats and
// epoch-replication payloads.
//
// Every frame follows one discipline, the wire analogue of the snapshot
// files' trailer framing (storage/checked_io.h):
//
//   [magic u32 "SPDW"][type u8][flags u8][payload_len u32][seq u64]
//   [hcrc u64]                      (CRC-64/XZ over the 18 bytes above)
//   [payload bytes ...]
//   [crc64 u64]                     (CRC-64/XZ over header + payload)
//
// Little-endian fixed-width fields throughout. The trailer CRC covers the
// whole frame, so a flipped byte anywhere — type, length, sequence
// number, payload — fails the check; CRC-64 detects every single-byte and
// every burst-<64-bit error, exactly the guarantee the snapshot formats
// rely on. The separate header CRC exists for liveness, not integrity: a
// receiver validates the length field BEFORE trusting it, so a corrupted
// length can never park the stream waiting for phantom payload bytes —
// the damage from any single corrupt frame is bounded by that frame.
//
// Resynchronization: a receiver that hits a bad frame (wrong magic,
// implausible length, failed CRC) advances one byte and rescans for the
// magic. Because the CRC rejects any candidate frame that is not byte-for-
// byte a real one, a corrupt or torn frame costs at most its own bytes:
// the next intact frame in the stream always decodes. FrameReader
// implements that discipline once for both the server and the follower.
//
// Sequence numbers: ingest BATCH frames carry a per-stream monotonic
// sequence starting at 1. The server applies seq N+1 only when its applied
// watermark is exactly N, acking the watermark back — so a client may
// resend freely (timeout, reconnect, duplicate-injecting network) and
// every batch is applied exactly once. Frames that carry no sequence use
// seq 0.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace spade::net {

/// Frame types. Values are wire-visible; never renumber.
enum class FrameType : std::uint8_t {
  kHello = 1,        // client -> ingest server: payload = stream id (u64)
  kHelloAck = 2,     // server -> client: payload = {applied, durable} seqs
  kBatch = 3,        // client -> server: payload = edge batch; seq = batch seq
  kAck = 4,          // server -> client: payload = {applied, durable} seqs
  kHeartbeat = 5,    // primary -> follower: payload = current epoch (u64)
  kEpochFile = 6,    // primary -> follower: one checkpoint file
  kEpochCommit = 7,  // primary -> follower: manifest bytes; seals the epoch
  kEpochAck = 8,     // follower -> primary: payload = epoch (u64)
  kReplicaHello = 9, // follower -> primary: payload = applied epoch (u64)
};

/// True for a type value a receiver accepts off the wire.
bool IsValidFrameType(std::uint8_t type);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint64_t seq = 0;
  std::string payload;
};

/// Header bytes before the payload (fixed fields + header CRC).
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 1 + 4 + 8 + 8;
/// Header bytes covered by the header CRC (everything before it).
inline constexpr std::size_t kFrameHeaderCrcOffset = 4 + 1 + 1 + 4 + 8;
/// CRC trailer bytes after the payload.
inline constexpr std::size_t kFrameTrailerSize = 8;
/// Hard cap on payload length; a length field beyond it is treated as
/// corruption before any allocation happens (same plausibility gate as
/// ChecksummedFileReader::CountExceedsFile).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Encodes one complete frame (header + payload + CRC trailer).
std::string EncodeFrame(FrameType type, std::uint64_t seq,
                        std::string_view payload);

/// Incremental frame decoder with one-byte-advance resynchronization.
/// Feed raw stream bytes with Append; pull intact frames with Next.
class FrameReader {
 public:
  /// Appends raw bytes received from the transport.
  void Append(const void* data, std::size_t size);

  /// Extracts the next intact frame. Returns false when no complete valid
  /// frame is buffered (more bytes needed). Corrupt bytes are skipped.
  bool Next(Frame* out);

  /// Frames that failed the CRC or carried an implausible header.
  std::uint64_t corrupt_frames() const { return corrupt_frames_; }
  /// Bytes skipped while hunting for the next magic.
  std::uint64_t resync_bytes() const { return resync_bytes_; }
  /// Bytes currently buffered (incomplete frame tail).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void Compact();

  std::string buf_;
  std::size_t pos_ = 0;
  std::uint64_t corrupt_frames_ = 0;
  std::uint64_t resync_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Payload codecs. Encoders produce the payload bytes (not a full frame);
// decoders return false on any structural mismatch — the caller treats
// that like a corrupt frame (the CRC already passed, so a false here means
// a protocol error, not line noise).

/// BATCH payload: [count u32][count x (src u32, dst u32, weight f64, ts i64)].
std::string EncodeBatchPayload(std::span<const Edge> edges);
bool DecodeBatchPayload(std::string_view payload, std::vector<Edge>* edges);

/// HELLO_ACK / ACK payload: [applied u64][durable u64].
struct AckPayload {
  std::uint64_t applied = 0;
  std::uint64_t durable = 0;
};
std::string EncodeAckPayload(const AckPayload& ack);
bool DecodeAckPayload(std::string_view payload, AckPayload* ack);

/// Single-u64 payloads (HELLO stream id, HEARTBEAT epoch, EPOCH_ACK epoch,
/// REPLICA_HELLO applied epoch).
std::string EncodeU64Payload(std::uint64_t value);
bool DecodeU64Payload(std::string_view payload, std::uint64_t* value);

/// EPOCH_FILE payload: [epoch u64][name_len u16][name][file bytes].
struct EpochFilePayload {
  std::uint64_t epoch = 0;
  std::string name;
  std::string data;
};
std::string EncodeEpochFilePayload(std::uint64_t epoch, std::string_view name,
                                   std::string_view data);
bool DecodeEpochFilePayload(std::string_view payload, EpochFilePayload* out);

/// EPOCH_COMMIT payload: [epoch u64][manifest bytes].
struct EpochCommitPayload {
  std::uint64_t epoch = 0;
  std::string manifest;
};
std::string EncodeEpochCommitPayload(std::uint64_t epoch,
                                     std::string_view manifest);
bool DecodeEpochCommitPayload(std::string_view payload,
                              EpochCommitPayload* out);

// ---------------------------------------------------------------------------
// Ingest sequence map: the per-stream applied watermarks captured
// atomically with each sealed epoch, persisted next to the manifest and
// replicated with the chain. A promoted follower seeds its dedup table
// from the newest seqmap, which is what turns "client retains batches
// until durable + resends after failover" into exactly-once (DESIGN.md
// §7).
//
// File format: [magic u64 "SPADE_SQ"][version u32][epoch u64][count u64]
// [count x (stream u64, seq u64)][crc64 trailer] — the shared
// checked_io discipline, so replication validates it like any chain file.

using SeqMap = std::map<std::uint64_t, std::uint64_t>;

/// Canonical seqmap file name ("ingest.seqmap-<epoch>").
std::string SeqMapFileName(std::uint64_t epoch);

/// Atomically writes a seqmap file (temp + rename, CRC trailer).
Status WriteSeqMapFile(const std::string& path, std::uint64_t epoch,
                       const SeqMap& seqs);

/// Reads a seqmap file back, verifying magic, version and the trailer.
Status ReadSeqMapFile(const std::string& path, std::uint64_t* epoch,
                      SeqMap* seqs);

}  // namespace spade::net
