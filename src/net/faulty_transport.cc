#include "net/faulty_transport.h"

#include <chrono>
#include <thread>

namespace spade::net {

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner,
                                   FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

FaultyConnection::~FaultyConnection() { Close(); }

Status FaultyConnection::Emit(const std::string& frame) {
  if (holding_) {
    // A reordered predecessor is waiting: send the new frame first, then
    // the held one — the swap a multi-path network produces.
    holding_ = false;
    SPADE_RETURN_NOT_OK(inner_->SendAll(frame.data(), frame.size()));
    return inner_->SendAll(held_.data(), held_.size());
  }
  return inner_->SendAll(frame.data(), frame.size());
}

Status FaultyConnection::SendAll(const void* data, std::size_t size) {
  ++stats_.frames;
  std::string frame(static_cast<const char*>(data), size);
  const bool armed = plan_.max_faults < 0 || faults_ < plan_.max_faults;
  if (armed) {
    // One draw decides which fault (if any) fires; declared order.
    const double u = rng_.NextDouble();
    double edge = plan_.p_drop;
    if (u < edge) {
      ++faults_;
      ++stats_.dropped;
      return Status::OK();  // torn: the bytes never leave
    }
    edge += plan_.p_truncate;
    if (u < edge && size > 1) {
      ++faults_;
      ++stats_.truncated;
      frame.resize(1 + rng_.NextBounded(size - 1));  // strict prefix
      return Emit(frame);
    }
    edge += plan_.p_flip;
    if (u < edge && size > 0) {
      ++faults_;
      ++stats_.flipped;
      const std::size_t pos = rng_.NextBounded(size);
      frame[pos] = static_cast<char>(
          frame[pos] ^ static_cast<char>(1 + rng_.NextBounded(255)));
      return Emit(frame);
    }
    edge += plan_.p_duplicate;
    if (u < edge) {
      ++faults_;
      ++stats_.duplicated;
      SPADE_RETURN_NOT_OK(Emit(frame));
      return Emit(frame);
    }
    edge += plan_.p_reorder;
    if (u < edge && !holding_) {
      ++faults_;
      ++stats_.reordered;
      holding_ = true;
      held_ = std::move(frame);
      return Status::OK();  // leaves with the next frame, after it
    }
    edge += plan_.p_delay;
    if (u < edge) {
      ++faults_;
      ++stats_.delayed;
      std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
      return Emit(frame);
    }
  }
  return Emit(frame);
}

IoResult FaultyConnection::Recv(void* buffer, std::size_t capacity,
                                std::size_t* received, int timeout_ms) {
  return inner_->Recv(buffer, capacity, received, timeout_ms);
}

void FaultyConnection::Close() {
  holding_ = false;
  held_.clear();
  if (inner_) inner_->Close();
}

std::unique_ptr<Connection> WrapFaulty(std::unique_ptr<Connection> inner,
                                       const FaultPlan& plan) {
  return std::make_unique<FaultyConnection>(std::move(inner), plan);
}

}  // namespace spade::net
