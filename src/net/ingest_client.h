// IngestClient: the producer side of the wire ingest tier. Buffers edges
// into sequence-numbered batches, sends them over a framed TCP connection,
// and retries through timeouts, corrupt frames, torn connections and
// failovers until every batch is applied exactly once.
//
// Delivery state machine (single-threaded by design — every method runs on
// the caller's thread, so tests and benches drive it deterministically):
//
//   Submit/Flush  -> pending deque of sealed batches (seq 1, 2, 3, ...)
//   Pump          -> connect (bounded retries, exponential backoff with
//                    seeded jitter, endpoint rotation), HELLO/HELLO_ACK,
//                    send the unacked window, collect ACKs, resend on ack
//                    timeout
//   WaitAcked     -> Pump until the server's applied watermark covers every
//                    sealed batch (or the retry budget is exhausted)
//   WaitDurable   -> same for the durable watermark (sealed into a
//                    replicated epoch) — the bar to beat before trimming
//
// Failover correctness: a batch leaves the resend buffer only once DURABLE,
// not merely acked — an acked-but-unsealed batch dies with a primary, and
// the promoted follower (seeded from the last replicated seqmap) expects
// exactly those batches again. On every (re)connect the HELLO_ACK tells
// this client the server's applied watermark; the send cursor rewinds to
// the first batch past it, so resending is idempotent by construction
// (sequence dedup on the server).
//
// Graceful degradation: when the pending buffer exceeds
// `max_buffered_batches` (primary unreachable, batches accumulating), the
// newest batches overflow to CRC-framed spill files in `spill_dir` instead
// of growing the heap; they reload in sequence order as the window drains.
// Submit therefore keeps succeeding through an outage of any length the
// disk can absorb.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/types.h"
#include "net/transport.h"
#include "net/wire_format.h"

namespace spade::net {

struct IngestClientOptions {
  /// Endpoints (loopback ports) tried in order; rotation on connect
  /// failure is what makes failover a config change, not a code path.
  std::vector<int> ports;
  /// Stream identity; the server keys its dedup watermarks by it. Must be
  /// unique per logical producer and survive reconnects.
  std::uint64_t stream_id = 1;
  /// Edges per sealed batch.
  std::size_t batch_edges = 256;
  /// Sealed-but-unacked batches sent ahead of the ack cursor.
  std::size_t send_window = 8;
  /// Pending batches kept in memory before spilling (when spill_dir set).
  std::size_t max_buffered_batches = 256;
  /// Directory for overflow spill files ("" = no spilling; the deque
  /// grows unbounded instead).
  std::string spill_dir;
  /// Resend the window when no ack progress for this long.
  int ack_timeout_ms = 200;
  int connect_timeout_ms = 250;
  /// Consecutive failed connect sweeps (all endpoints) before Wait* gives
  /// up with kIOError. Submit/Flush never give up — they buffer.
  int max_connect_retries = 20;
  /// Exponential backoff between failed connect sweeps, with jitter.
  int backoff_initial_ms = 5;
  int backoff_max_ms = 320;
  std::uint64_t jitter_seed = 0x5eed;
  /// Test seam: wraps every freshly connected transport (fault injection).
  std::function<std::unique_ptr<Connection>(std::unique_ptr<Connection>)>
      wrap_transport;
};

struct IngestClientStats {
  std::uint64_t batches_sealed = 0;
  std::uint64_t batches_sent = 0;   // including resends
  std::uint64_t resent_batches = 0;
  std::uint64_t connects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t spilled_batches = 0;
  std::uint64_t reloaded_batches = 0;
  std::uint64_t acked_seq = 0;    // server's applied watermark
  std::uint64_t durable_seq = 0;  // server's durable watermark
};

class IngestClient {
 public:
  explicit IngestClient(IngestClientOptions options);
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Buffers one edge; seals a batch at `batch_edges`. Never blocks on the
  /// network.
  Status Submit(const Edge& edge);

  /// Seals the partial buffer (no-op when empty).
  Status Flush();

  /// Highest batch sequence sealed so far.
  std::uint64_t last_sealed_seq() const { return next_seq_ - 1; }

  /// Drives the state machine until every sealed batch is APPLIED at the
  /// current primary, or `timeout_ms` passes (kIOError also when the
  /// connect retry budget is exhausted first).
  Status WaitAcked(int timeout_ms);

  /// Same bar for DURABLE (sealed into a replicated epoch). Only then is
  /// the local resend buffer trimmed.
  Status WaitDurable(int timeout_ms);

  /// Replaces the endpoint list (failover repoint) and forces a reconnect
  /// on the next pump.
  void SetPorts(std::vector<int> ports);

  IngestClientStats GetStats() const { return stats_; }

  /// Drops the connection (buffered batches survive).
  void Disconnect();

 private:
  struct Batch {
    std::uint64_t seq = 0;
    std::string payload;  // encoded BATCH payload (not a full frame)
  };

  /// One pump: ensure connected, send window, read acks. Returns false
  /// when the connect retry budget is exhausted.
  bool PumpOnce();
  bool EnsureConnected();
  void HandleAck(const AckPayload& ack);
  void SealBatch();
  Status WriteSpill(const Batch& batch);
  Status SpillTail();
  Status ReloadSpilled();
  std::string SpillPath(std::uint64_t seq) const;

  IngestClientOptions options_;
  Rng rng_;
  std::unique_ptr<Connection> conn_;
  FrameReader reader_;
  std::vector<Edge> buffer_;
  /// Sealed, not yet durable, ascending seq. Front may be acked-but-not-
  /// durable; only durable batches are popped.
  std::deque<Batch> pending_;
  /// Batches currently living as spill files (ascending seq), logically
  /// the tail of `pending_`.
  std::deque<std::uint64_t> spilled_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t send_cursor_ = 0;  // highest seq handed to the transport
  std::uint64_t acked_ = 0;        // server applied watermark
  std::uint64_t durable_ = 0;      // server durable watermark
  int failed_sweeps_ = 0;
  bool ever_connected_ = false;
  IngestClientStats stats_;
};

}  // namespace spade::net
