// StaticPeeler: Algorithm 1 of the paper — the from-scratch greedy peeling
// baseline shared by DG, DW and FD (they differ only in how the weighted
// graph was constructed; see metrics/semantics.h).
//
// Complexity O(|E| log |V|) via the indexed min-heap. The peeling order is
// canonical: ties on peeling weight resolve to the smaller vertex id, so the
// output is a pure function of the weighted graph (DESIGN.md §2.2).

#pragma once

#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "peel/indexed_heap.h"
#include "peel/peel_state.h"

namespace spade {

/// Runs the full peeling paradigm over a CSR snapshot.
PeelState PeelStatic(const CsrGraph& g);

/// Convenience overload: snapshots the dynamic graph, then peels.
PeelState PeelStatic(const DynamicGraph& g);

}  // namespace spade
