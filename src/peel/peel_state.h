// PeelState: the persistent artifact of a peeling run — the paper's peeling
// sequence O (`seq`), the peeling weights Δ (`delta`), and the inverse
// position index. The incremental engines rewrite slices of this state
// in-place instead of recomputing it.
//
// Key identity (DESIGN.md §2.1): f(S_k) telescopes to the suffix sum of
// `delta`, so the detected community S_P is the suffix of `seq` whose mean
// `delta` is maximal.
//
// Two representation choices keep the update hot path proportional to the
// affected area (DESIGN.md §3):
//
//  * Head offset (§3.3). The sequence lives in arrays with spare slots at
//    the front; logical position i maps to physical slot `base_ + i` and
//    `pos_` stores physical slots. Registering a brand-new vertex writes one
//    entry at `--base_` — every existing logical position shifts by one
//    without touching a single stored value. Only when the slack runs out is
//    the storage reallocated (amortized O(1) per insertion).
//
//  * Blocked detection index (§3.2). `delta_` is carved into fixed blocks;
//    each block caches its sum and the upper convex hull of the points
//    (x, y) = (end - slot, within-block suffix sum). Because x is measured
//    from the physical end, head insertions invalidate only the head block.
//    Detect() walks blocks tail-to-head, accumulating the suffix sum T and
//    binary-searching each clean hull for the best density (y + T) / x, so
//    a detection after an update costs O(rewritten span + (n/B) log B)
//    instead of O(n). Assign/BumpDelta dirty only the block they touch.
//
// SIMD & layout (DESIGN.md §8): the per-slot storage is fully SoA —
// seq_/delta_/pos_ are parallel arrays, and the hull arena is split into
// hull_y_/hull_x_/hull_slot_ so the hull binary search streams only the
// 12 bytes per point it compares (y, x) and touches the slot array once,
// at the winner. Block-sum refresh and SuffixWeight tails go through
// simd::FixedOrderSum and the hull rebuild through a simd::SuffixScanBlock
// pre-pass feeding the scalar monotone stack; both kernels evaluate one
// fixed association order on every dispatch target (scalar/SSE2/NEON/
// AVX2), so Detect is bit-identical across builds. At B = 512 a block is a
// natural vector tile: 4 KB of deltas, refreshed without touching seq_ or
// pos_ at all.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/simd.h"
#include "graph/types.h"

namespace spade {

/// Result of detecting the fraudulent community on the current state.
struct Community {
  std::vector<VertexId> members;
  double density = 0.0;
};

/// The maintained peeling sequence and derived community cache.
class PeelState {
 public:
  PeelState() = default;

  /// Initializes empty state over `n` vertices.
  explicit PeelState(std::size_t n) {
    seq_.reserve(n);
    delta_.reserve(n);
    pos_.assign(n, kNoPos);
  }

  std::size_t size() const { return seq_.size() - base_; }

  /// Contiguous views of the logical sequence and peeling weights.
  std::span<const VertexId> seq() const {
    return {seq_.data() + base_, size()};
  }
  std::span<const double> delta() const {
    return {delta_.data() + base_, size()};
  }

  VertexId VertexAt(std::size_t i) const { return seq_[base_ + i]; }
  double DeltaAt(std::size_t i) const { return delta_[base_ + i]; }

  /// Position of vertex v in the peeling sequence.
  std::size_t PositionOf(VertexId v) const {
    SPADE_DCHECK(v < pos_.size());
    return pos_[v] - base_;
  }

  bool ContainsVertex(VertexId v) const {
    return v < pos_.size() && pos_[v] != kNoPos;
  }

  /// Appends a peeled vertex with its peeling weight (build path).
  void Append(VertexId v, double delta) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    pos_[v] = seq_.size();
    seq_.push_back(v);
    delta_.push_back(delta);
    // Growing the physical end shifts every point's x = end - slot, so
    // every hull is stale (rebuilt once, on the first Detect()); block
    // sums are unaffected except in the block gaining the new slot.
    MarkDirtySlot(seq_.size() - 1);
    ++hull_version_;
    InvalidateBest();
  }

  /// Overwrites position i (incremental rewrite path).
  void Assign(std::size_t i, VertexId v, double delta) {
    SPADE_DCHECK(i < size());
    const std::size_t p = base_ + i;
    seq_[p] = v;
    delta_[p] = delta;
    pos_[v] = p;
    MarkDirtySlot(p);
    InvalidateBest();
  }

  /// Adds to the stored peeling weight at position i without reordering.
  void BumpDelta(std::size_t i, double amount) {
    SPADE_DCHECK(i < size());
    delta_[base_ + i] += amount;
    MarkDirtySlot(base_ + i);
    InvalidateBest();
  }

  /// Registers a brand-new vertex at the head of the sequence with peeling
  /// weight `delta0` (paper §4.1 "Vertex insertion": Δ_0 = 0 normally, but a
  /// pre-weighted vertex carries its prior). All logical positions shift by
  /// one — which the head offset makes free: amortized O(1), no stored
  /// entry or index slot is touched.
  void InsertVertexAtHead(VertexId v, double delta0) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    SPADE_DCHECK(pos_[v] == kNoPos);
    if (base_ == 0) GrowFront();
    --base_;
    seq_[base_] = v;
    delta_[base_] = delta0;
    pos_[v] = base_;
    MarkDirtySlot(base_);
    InvalidateBest();
  }

  /// Marks the cached community stale; Detect() recomputes on demand.
  void InvalidateBest() { best_valid_ = false; }

  /// Index k such that the detected community is seq[k..n). Ties on density
  /// resolve to the smallest k (largest community), matching Algorithm 1's
  /// "arg max over S_i" with first-max scan order.
  std::size_t BestStart() const {
    EnsureBest();
    return best_start_;
  }

  /// g(S_P): density of the detected community.
  double BestDensity() const {
    EnsureBest();
    return best_density_;
  }

  /// Materializes the detected community S_P.
  Community DetectCommunity() const {
    EnsureBest();
    Community c;
    c.density = best_density_;
    const auto s = seq();
    c.members.assign(s.begin() + static_cast<std::ptrdiff_t>(best_start_),
                     s.end());
    return c;
  }

  /// f(S_k): suffix sum of delta from position k (0 => whole graph weight).
  /// Costs O(B + n/B) via the cached block sums; the partial-block tail is
  /// one vector kernel call.
  double SuffixWeight(std::size_t k) const {
    const std::size_t end = seq_.size();
    std::size_t p = base_ + k;
    if (p >= end) return 0.0;
    // Tail of the block containing p, via the fixed-order kernel.
    const std::size_t block_end = std::min(end, (p / kBlock + 1) * kBlock);
    double sum = simd::FixedOrderSum(delta_.data() + p, block_end - p);
    p = block_end;
    // Whole blocks after it, via cached sums (hulls are left alone).
    for (std::size_t b = p / kBlock; p < end; ++b, p += kBlock) {
      RefreshBlockSum(b);
      sum += blocks_[b].sum;
    }
    return sum;
  }

  /// Prefetches the position-index line of v (engine probe loops issue this
  /// a few neighbors ahead of the PositionOf read).
  void PrefetchPosition(VertexId v) const {
    if (v < pos_.size()) SPADE_PREFETCH(pos_.data() + v);
  }

  /// Clears all state.
  void Clear() {
    seq_.clear();
    delta_.clear();
    base_ = 0;
    pos_.assign(pos_.size(), kNoPos);
    blocks_.clear();
    hull_y_.clear();
    hull_x_.clear();
    hull_slot_.clear();
    ++sum_version_;
    ++hull_version_;
    InvalidateBest();
  }

  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

 private:
  // Block width of the detection index: ~sqrt(n) at the scales the engine
  // targets, balancing the O(B) dirty-block rebuild against the O(n/B)
  // tail-to-head walk.
  static constexpr std::size_t kBlock = 512;

  // A hull point is (x, y, slot) with x = physical end - slot (invariant
  // under head insertion) and y = sum of delta over [slot, block end). The
  // three fields live in the parallel SoA arenas hull_y_/hull_x_/hull_slot_
  // at stride kBlock: the binary search compares only (y, x), so a query
  // streams two short arrays instead of 16-byte records, and the slot array
  // is read exactly once per block — at the returned optimum.

  struct Block {
    double sum = 0.0;
    std::uint32_t hull_size = 0;
    // Freshness is two-tier: `dirty` marks content changes inside the
    // block; the built counters are compared against the global versions,
    // which bump when a structural change invalidates every block's sums
    // (physical shift) or hulls (x = end - slot shift). Zero never matches
    // a version, so fresh blocks start fully stale.
    std::uint64_t sum_built = 0;
    std::uint64_t hull_built = 0;
    bool dirty = true;
  };

  void EnsureBlock(std::size_t b) const {
    if (b >= blocks_.size()) {
      // Grow the block table and hull arenas geometrically: resizing to
      // exactly (b+1)*kBlock per new block would copy every existing hull
      // point each time a block is added — O(n²/B) hull-point copies over
      // an n-vertex append stream. Doubling amortizes the copies to O(1)
      // per appended slot; indexing stays by b*kBlock, the slack is simply
      // unused until the next block arrives.
      const std::size_t need_blocks = b + 1;
      const std::size_t grown =
          std::max(need_blocks, blocks_.size() + blocks_.size() / 2 + 1);
      blocks_.reserve(grown);
      blocks_.resize(need_blocks);
      const std::size_t need = need_blocks * kBlock;
      const std::size_t arena = std::max(need, hull_y_.size() * 2);
      if (hull_y_.size() < need) {
        hull_y_.reserve(arena);
        hull_x_.reserve(arena);
        hull_slot_.reserve(arena);
        hull_y_.resize(need);
        hull_x_.resize(need);
        hull_slot_.resize(need);
      }
    }
  }

  void MarkDirtySlot(std::size_t p) {
    const std::size_t b = p / kBlock;
    EnsureBlock(b);
    blocks_[b].dirty = true;
  }

  /// Moves the logical content to the middle of freshly grown storage so
  /// the next Θ(size) head insertions are O(1) writes.
  void GrowFront() {
    const std::size_t slack = std::max<std::size_t>(kBlock, size());
    seq_.insert(seq_.begin(), slack, kInvalidVertex);
    delta_.insert(delta_.begin(), slack, 0.0);
    base_ = slack;
    for (std::size_t p = base_; p < seq_.size(); ++p) pos_[seq_[p]] = p;
    // Every physical slot moved: block membership, sums and hulls are all
    // stale.
    ++sum_version_;
    ++hull_version_;
  }

  /// Recomputes a block's sum only (no hull) if the sum is stale — the
  /// cheap path SuffixWeight needs. Leaves the hull marked stale when the
  /// content changed.
  void RefreshBlockSum(std::size_t b) const {
    EnsureBlock(b);
    Block& blk = blocks_[b];
    if (!blk.dirty && blk.sum_built == sum_version_) return;
    const std::size_t end = seq_.size();
    const std::size_t lo = std::max(b * kBlock, base_);
    const std::size_t hi = std::min((b + 1) * kBlock, end);
    // Same fixed-order kernel as the full rebuild, so the cached sum is
    // bit-identical regardless of which refresh path ran last — and
    // identical across every SIMD dispatch target.
    blk.sum = lo < hi ? simd::FixedOrderSum(delta_.data() + lo, hi - lo) : 0.0;
    blk.sum_built = sum_version_;
    if (blk.dirty) {
      blk.dirty = false;
      blk.hull_built = hull_version_ - 1;  // content changed: hull stale
    }
  }

  /// Recomputes a block's sum and upper hull if stale. The within-block
  /// suffix sums come from a vectorized scan pre-pass into scan_scratch_;
  /// the monotone stack then runs scalar over precomputed (x, y) pairs —
  /// its pops are data-dependent and branchy, but it no longer carries the
  /// accumulation chain. Hull points land in the SoA arenas at stride
  /// kBlock — no per-block allocations, no pointer chasing on the walk.
  ///
  /// Note blk.sum is refreshed with FixedOrderSum, NOT with the scan total:
  /// the two kernels associate differently (ulp-level), and the sum cache
  /// must stay bit-identical with RefreshBlockSum's. The hull y values are
  /// internally consistent with each other, which is all the monotone
  /// stack and the density query need.
  void RefreshBlock(std::size_t b) const {
    EnsureBlock(b);
    Block& blk = blocks_[b];
    if (!blk.dirty && blk.sum_built == sum_version_ &&
        blk.hull_built == hull_version_) {
      return;
    }
    const std::size_t end = seq_.size();
    const std::size_t lo = std::max(b * kBlock, base_);
    const std::size_t hi = std::min((b + 1) * kBlock, end);
    double* hy = hull_y_.data() + b * kBlock;
    std::uint32_t* hx = hull_x_.data() + b * kBlock;
    std::uint32_t* hs = hull_slot_.data() + b * kBlock;
    std::uint32_t hn = 0;
    blk.sum = 0.0;
    if (lo < hi) {
      blk.sum = simd::FixedOrderSum(delta_.data() + lo, hi - lo);
      // Pre-pass: suf[j] = within-block suffix sum from slot lo + j.
      scan_scratch_.resize(kBlock);
      double* suf = scan_scratch_.data();
      simd::SuffixScanBlock(delta_.data() + lo, hi - lo, suf);
      // Scan slots tail-to-head: x = end - p ascends, y reads the
      // precomputed suffix. Keep the upper hull (slopes strictly
      // decreasing); collinear middle points are dropped — the larger-x
      // endpoint of their edge always ties or beats them, and wins the
      // smallest-start tie rule anyway.
      for (std::size_t p = hi; p-- > lo;) {
        const double py = suf[p - lo];
        const auto px = static_cast<std::uint32_t>(end - p);
        while (hn >= 2) {
          const double ay = hy[hn - 2], my = hy[hn - 1];
          const std::uint32_t ax = hx[hn - 2], mx = hx[hn - 1];
          // Pop m when slope(a, m) <= slope(m, pt): m is under the chord.
          if ((my - ay) * static_cast<double>(px - mx) <=
              (py - my) * static_cast<double>(mx - ax)) {
            --hn;
          } else {
            break;
          }
        }
        hy[hn] = py;
        hx[hn] = px;
        hs[hn] = static_cast<std::uint32_t>(p);
        ++hn;
      }
    }
    blk.hull_size = hn;
    blk.dirty = false;
    blk.sum_built = sum_version_;
    blk.hull_built = hull_version_;
  }

  /// Best density within a block given tail sum T beyond the block, and the
  /// slot attaining it (largest x on ties => smallest start). The density
  /// (y + T) / x is unimodal along the hull, so a binary search that moves
  /// right on ties lands on the rightmost peak. Comparisons are
  /// cross-multiplied ((y1+T)·x2 vs (y2+T)·x1, x > 0) so the walk performs
  /// no divisions; the caller divides once at the very end. The search
  /// reads only the y/x arenas; the slot arena is touched once, at the
  /// winner.
  static bool QueryHull(const double* hy, const std::uint32_t* hx,
                        const std::uint32_t* hs, std::uint32_t size, double T,
                        double* num, double* den, std::size_t* slot) {
    if (size == 0) return false;
    std::size_t lo = 0, hi = size - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if ((hy[mid + 1] + T) * static_cast<double>(hx[mid]) >=
          (hy[mid] + T) * static_cast<double>(hx[mid + 1])) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    *num = hy[lo] + T;
    *den = static_cast<double>(hx[lo]);
    *slot = hs[lo];
    return true;
  }

  void EnsureBest() const {
    if (best_valid_) return;
    const std::size_t n = size();
    const std::size_t end = seq_.size();
    double tail = 0.0;
    // Best density tracked as a (numerator, denominator) pair: density
    // comparisons cross-multiply, and the single division happens once the
    // walk is done.
    double best_num = 0.0;
    double best_den = 1.0;
    std::size_t best_start = n;
    if (n > 0) {
      // Walk blocks from the tail (shortest suffixes, smallest x) to the
      // head; ">=" prefers the later candidate (larger x, longer suffix) on
      // density ties, matching the linear reference scan.
      const std::size_t first_block = base_ / kBlock;
      for (std::size_t b = (end - 1) / kBlock + 1; b-- > first_block;) {
        RefreshBlock(b);
        if (b > first_block) {
          // Pull the next (head-ward) block's metadata and arena heads in
          // while this block's query runs; a clean walk is otherwise one
          // demand miss per block on large states.
          SPADE_PREFETCH(blocks_.data() + (b - 1));
          SPADE_PREFETCH(hull_y_.data() + (b - 1) * kBlock);
          SPADE_PREFETCH(hull_x_.data() + (b - 1) * kBlock);
          SPADE_PREFETCH(delta_.data() + (b - 1) * kBlock);
        }
        double num = 0.0, den = 1.0;
        std::size_t slot = 0;
        if (QueryHull(hull_y_.data() + b * kBlock,
                      hull_x_.data() + b * kBlock,
                      hull_slot_.data() + b * kBlock, blocks_[b].hull_size,
                      tail, &num, &den, &slot) &&
            num * best_den >= best_num * den) {
          best_num = num;
          best_den = den;
          best_start = slot - base_;
        }
        tail += blocks_[b].sum;
      }
    }
    best_density_ = best_num / best_den;
    best_start_ = best_start;
    best_valid_ = true;
  }

  // Physical storage: logical position i lives at slot base_ + i; slots
  // below base_ are reserved head slack. pos_ holds physical slots.
  std::vector<VertexId> seq_;
  std::vector<double> delta_;
  std::size_t base_ = 0;
  std::vector<std::size_t> pos_;

  mutable std::vector<Block> blocks_;
  // SoA hull arenas, kBlock-stride per block: the QueryHull binary search
  // touches only y/x, so splitting the old {y, x, slot} record keeps its
  // probe footprint to two tightly-packed streams (slot is read once, at
  // the winner). scan_scratch_ is the suffix-scan staging buffer reused
  // across hull rebuilds.
  mutable std::vector<double> hull_y_;
  mutable std::vector<std::uint32_t> hull_x_;
  mutable std::vector<std::uint32_t> hull_slot_;
  mutable std::vector<double> scan_scratch_;
  std::uint64_t sum_version_ = 1;
  std::uint64_t hull_version_ = 1;

  mutable bool best_valid_ = false;
  mutable std::size_t best_start_ = 0;
  mutable double best_density_ = 0.0;
};

}  // namespace spade
