// PeelState: the persistent artifact of a peeling run — the paper's peeling
// sequence O (`seq`), the peeling weights Δ (`delta`), and the inverse
// position index. The incremental engines rewrite slices of this state
// in-place instead of recomputing it.
//
// Key identity (DESIGN.md §2.1): f(S_k) telescopes to the suffix sum of
// `delta`, so the detected community S_P is the suffix of `seq` whose mean
// `delta` is maximal.

#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"

namespace spade {

/// Result of detecting the fraudulent community on the current state.
struct Community {
  std::vector<VertexId> members;
  double density = 0.0;
};

/// The maintained peeling sequence and derived community cache.
class PeelState {
 public:
  PeelState() = default;

  /// Initializes empty state over `n` vertices.
  explicit PeelState(std::size_t n) {
    seq_.reserve(n);
    delta_.reserve(n);
    pos_.assign(n, kNoPos);
  }

  std::size_t size() const { return seq_.size(); }

  const std::vector<VertexId>& seq() const { return seq_; }
  const std::vector<double>& delta() const { return delta_; }

  VertexId VertexAt(std::size_t i) const { return seq_[i]; }
  double DeltaAt(std::size_t i) const { return delta_[i]; }

  /// Position of vertex v in the peeling sequence.
  std::size_t PositionOf(VertexId v) const {
    SPADE_DCHECK(v < pos_.size());
    return pos_[v];
  }

  bool ContainsVertex(VertexId v) const {
    return v < pos_.size() && pos_[v] != kNoPos;
  }

  /// Appends a peeled vertex with its peeling weight (build path).
  void Append(VertexId v, double delta) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    pos_[v] = seq_.size();
    seq_.push_back(v);
    delta_.push_back(delta);
    InvalidateBest();
  }

  /// Overwrites position i (incremental rewrite path).
  void Assign(std::size_t i, VertexId v, double delta) {
    SPADE_DCHECK(i < seq_.size());
    seq_[i] = v;
    delta_[i] = delta;
    pos_[v] = i;
    InvalidateBest();
  }

  /// Adds to the stored peeling weight at position i without reordering.
  void BumpDelta(std::size_t i, double amount) {
    SPADE_DCHECK(i < delta_.size());
    delta_[i] += amount;
    InvalidateBest();
  }

  /// Registers a brand-new vertex at the head of the sequence with peeling
  /// weight `delta0` (paper §4.1 "Vertex insertion": Δ_0 = 0 normally, but a
  /// pre-weighted vertex carries its prior). All positions shift by one.
  void InsertVertexAtHead(VertexId v, double delta0) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    SPADE_DCHECK(pos_[v] == kNoPos);
    seq_.insert(seq_.begin(), v);
    delta_.insert(delta_.begin(), delta0);
    for (std::size_t i = 0; i < seq_.size(); ++i) pos_[seq_[i]] = i;
    InvalidateBest();
  }

  /// Marks the cached community stale; Detect() recomputes on demand.
  void InvalidateBest() { best_valid_ = false; }

  /// Index k such that the detected community is seq[k..n). Ties on density
  /// resolve to the smallest k (largest community), matching Algorithm 1's
  /// "arg max over S_i" with first-max scan order.
  std::size_t BestStart() const {
    EnsureBest();
    return best_start_;
  }

  /// g(S_P): density of the detected community.
  double BestDensity() const {
    EnsureBest();
    return best_density_;
  }

  /// Materializes the detected community S_P.
  Community DetectCommunity() const {
    EnsureBest();
    Community c;
    c.density = best_density_;
    c.members.assign(seq_.begin() + static_cast<std::ptrdiff_t>(best_start_),
                     seq_.end());
    return c;
  }

  /// f(S_k): suffix sum of delta from position k (0 => whole graph weight).
  double SuffixWeight(std::size_t k) const {
    double sum = 0.0;
    for (std::size_t i = k; i < delta_.size(); ++i) sum += delta_[i];
    return sum;
  }

  /// Clears all state.
  void Clear() {
    seq_.clear();
    delta_.clear();
    pos_.assign(pos_.size(), kNoPos);
    InvalidateBest();
  }

  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

 private:
  void EnsureBest() const {
    if (best_valid_) return;
    const std::size_t n = seq_.size();
    double suffix = 0.0;
    double best = 0.0;
    std::size_t best_start = n;
    // Scan suffixes from shortest to longest; ">=" prefers the longer
    // suffix (smaller start) on density ties.
    for (std::size_t i = n; i-- > 0;) {
      suffix += delta_[i];
      const double density = suffix / static_cast<double>(n - i);
      if (density >= best) {
        best = density;
        best_start = i;
      }
    }
    best_density_ = best;
    best_start_ = best_start;
    best_valid_ = true;
  }

  std::vector<VertexId> seq_;
  std::vector<double> delta_;
  std::vector<std::size_t> pos_;

  mutable bool best_valid_ = false;
  mutable std::size_t best_start_ = 0;
  mutable double best_density_ = 0.0;
};

}  // namespace spade
