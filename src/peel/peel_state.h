// PeelState: the persistent artifact of a peeling run — the paper's peeling
// sequence O (`seq`), the peeling weights Δ (`delta`), and the inverse
// position index. The incremental engines rewrite slices of this state
// in-place instead of recomputing it.
//
// Key identity (DESIGN.md §2.1): f(S_k) telescopes to the suffix sum of
// `delta`, so the detected community S_P is the suffix of `seq` whose mean
// `delta` is maximal.
//
// Two representation choices keep the update hot path proportional to the
// affected area (DESIGN.md §3):
//
//  * Head offset (§3.3). The sequence lives in arrays with spare slots at
//    the front; logical position i maps to physical slot `base_ + i` and
//    `pos_` stores physical slots. Registering a brand-new vertex writes one
//    entry at `--base_` — every existing logical position shifts by one
//    without touching a single stored value. Only when the slack runs out is
//    the storage reallocated (amortized O(1) per insertion).
//
//  * Blocked detection index (§3.2). `delta_` is carved into fixed blocks;
//    each block caches its sum and the upper convex hull of the points
//    (x, y) = (end - slot, within-block suffix sum). Because x is measured
//    from the physical end, head insertions invalidate only the head block.
//    Detect() walks blocks tail-to-head, accumulating the suffix sum T and
//    binary-searching each clean hull for the best density (y + T) / x, so
//    a detection after an update costs O(rewritten span + (n/B) log B)
//    instead of O(n). Assign/BumpDelta dirty only the block they touch.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"

namespace spade {

/// Result of detecting the fraudulent community on the current state.
struct Community {
  std::vector<VertexId> members;
  double density = 0.0;
};

/// The maintained peeling sequence and derived community cache.
class PeelState {
 public:
  PeelState() = default;

  /// Initializes empty state over `n` vertices.
  explicit PeelState(std::size_t n) {
    seq_.reserve(n);
    delta_.reserve(n);
    pos_.assign(n, kNoPos);
  }

  std::size_t size() const { return seq_.size() - base_; }

  /// Contiguous views of the logical sequence and peeling weights.
  std::span<const VertexId> seq() const {
    return {seq_.data() + base_, size()};
  }
  std::span<const double> delta() const {
    return {delta_.data() + base_, size()};
  }

  VertexId VertexAt(std::size_t i) const { return seq_[base_ + i]; }
  double DeltaAt(std::size_t i) const { return delta_[base_ + i]; }

  /// Position of vertex v in the peeling sequence.
  std::size_t PositionOf(VertexId v) const {
    SPADE_DCHECK(v < pos_.size());
    return pos_[v] - base_;
  }

  bool ContainsVertex(VertexId v) const {
    return v < pos_.size() && pos_[v] != kNoPos;
  }

  /// Appends a peeled vertex with its peeling weight (build path).
  void Append(VertexId v, double delta) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    pos_[v] = seq_.size();
    seq_.push_back(v);
    delta_.push_back(delta);
    // Growing the physical end shifts every point's x = end - slot, so
    // every hull is stale (rebuilt once, on the first Detect()); block
    // sums are unaffected except in the block gaining the new slot.
    MarkDirtySlot(seq_.size() - 1);
    ++hull_version_;
    InvalidateBest();
  }

  /// Overwrites position i (incremental rewrite path).
  void Assign(std::size_t i, VertexId v, double delta) {
    SPADE_DCHECK(i < size());
    const std::size_t p = base_ + i;
    seq_[p] = v;
    delta_[p] = delta;
    pos_[v] = p;
    MarkDirtySlot(p);
    InvalidateBest();
  }

  /// Adds to the stored peeling weight at position i without reordering.
  void BumpDelta(std::size_t i, double amount) {
    SPADE_DCHECK(i < size());
    delta_[base_ + i] += amount;
    MarkDirtySlot(base_ + i);
    InvalidateBest();
  }

  /// Registers a brand-new vertex at the head of the sequence with peeling
  /// weight `delta0` (paper §4.1 "Vertex insertion": Δ_0 = 0 normally, but a
  /// pre-weighted vertex carries its prior). All logical positions shift by
  /// one — which the head offset makes free: amortized O(1), no stored
  /// entry or index slot is touched.
  void InsertVertexAtHead(VertexId v, double delta0) {
    if (v >= pos_.size()) pos_.resize(v + 1, kNoPos);
    SPADE_DCHECK(pos_[v] == kNoPos);
    if (base_ == 0) GrowFront();
    --base_;
    seq_[base_] = v;
    delta_[base_] = delta0;
    pos_[v] = base_;
    MarkDirtySlot(base_);
    InvalidateBest();
  }

  /// Marks the cached community stale; Detect() recomputes on demand.
  void InvalidateBest() { best_valid_ = false; }

  /// Index k such that the detected community is seq[k..n). Ties on density
  /// resolve to the smallest k (largest community), matching Algorithm 1's
  /// "arg max over S_i" with first-max scan order.
  std::size_t BestStart() const {
    EnsureBest();
    return best_start_;
  }

  /// g(S_P): density of the detected community.
  double BestDensity() const {
    EnsureBest();
    return best_density_;
  }

  /// Materializes the detected community S_P.
  Community DetectCommunity() const {
    EnsureBest();
    Community c;
    c.density = best_density_;
    const auto s = seq();
    c.members.assign(s.begin() + static_cast<std::ptrdiff_t>(best_start_),
                     s.end());
    return c;
  }

  /// f(S_k): suffix sum of delta from position k (0 => whole graph weight).
  /// Costs O(B + n/B) via the cached block sums.
  double SuffixWeight(std::size_t k) const {
    const std::size_t end = seq_.size();
    std::size_t p = base_ + k;
    if (p >= end) return 0.0;
    double sum = 0.0;
    // Tail of the block containing p, element-wise.
    const std::size_t block_end = std::min(end, (p / kBlock + 1) * kBlock);
    for (; p < block_end; ++p) sum += delta_[p];
    // Whole blocks after it, via cached sums (hulls are left alone).
    for (std::size_t b = p / kBlock; p < end; ++b, p += kBlock) {
      RefreshBlockSum(b);
      sum += blocks_[b].sum;
    }
    return sum;
  }

  /// Clears all state.
  void Clear() {
    seq_.clear();
    delta_.clear();
    base_ = 0;
    pos_.assign(pos_.size(), kNoPos);
    blocks_.clear();
    hull_arena_.clear();
    ++sum_version_;
    ++hull_version_;
    InvalidateBest();
  }

  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

 private:
  // Block width of the detection index: ~sqrt(n) at the scales the engine
  // targets, balancing the O(B) dirty-block rebuild against the O(n/B)
  // tail-to-head walk.
  static constexpr std::size_t kBlock = 512;

  /// One point of a block's hull: x = physical end - slot (invariant under
  /// head insertion), y = sum of delta over [slot, block end). 16 bytes so
  /// a typical hull (~2 ln B points for random weights) spans 2-3 cache
  /// lines in the flat arena.
  struct HullPoint {
    double y;
    std::uint32_t x;
    std::uint32_t slot;
  };

  struct Block {
    double sum = 0.0;
    std::uint32_t hull_size = 0;
    // Freshness is two-tier: `dirty` marks content changes inside the
    // block; the built counters are compared against the global versions,
    // which bump when a structural change invalidates every block's sums
    // (physical shift) or hulls (x = end - slot shift). Zero never matches
    // a version, so fresh blocks start fully stale.
    std::uint64_t sum_built = 0;
    std::uint64_t hull_built = 0;
    bool dirty = true;
  };

  void EnsureBlock(std::size_t b) const {
    if (b >= blocks_.size()) {
      blocks_.resize(b + 1);
      hull_arena_.resize((b + 1) * kBlock);
    }
  }

  void MarkDirtySlot(std::size_t p) {
    const std::size_t b = p / kBlock;
    EnsureBlock(b);
    blocks_[b].dirty = true;
  }

  /// Moves the logical content to the middle of freshly grown storage so
  /// the next Θ(size) head insertions are O(1) writes.
  void GrowFront() {
    const std::size_t slack = std::max<std::size_t>(kBlock, size());
    seq_.insert(seq_.begin(), slack, kInvalidVertex);
    delta_.insert(delta_.begin(), slack, 0.0);
    base_ = slack;
    for (std::size_t p = base_; p < seq_.size(); ++p) pos_[seq_[p]] = p;
    // Every physical slot moved: block membership, sums and hulls are all
    // stale.
    ++sum_version_;
    ++hull_version_;
  }

  /// Recomputes a block's sum only (no hull) if the sum is stale — the
  /// cheap path SuffixWeight needs. Leaves the hull marked stale when the
  /// content changed.
  void RefreshBlockSum(std::size_t b) const {
    EnsureBlock(b);
    Block& blk = blocks_[b];
    if (!blk.dirty && blk.sum_built == sum_version_) return;
    const std::size_t end = seq_.size();
    const std::size_t lo = std::max(b * kBlock, base_);
    const std::size_t hi = std::min((b + 1) * kBlock, end);
    // Same tail-to-head order as the full rebuild, so the cached sum is
    // bit-identical regardless of which refresh path ran last.
    double sum = 0.0;
    for (std::size_t p = hi; p-- > lo;) sum += delta_[p];
    blk.sum = sum;
    blk.sum_built = sum_version_;
    if (blk.dirty) {
      blk.dirty = false;
      blk.hull_built = hull_version_ - 1;  // content changed: hull stale
    }
  }

  /// Recomputes a block's sum and upper hull if stale. Hull points live in
  /// the flat arena at stride kBlock — no per-block allocations, and the
  /// walk reads them without pointer chasing.
  void RefreshBlock(std::size_t b) const {
    EnsureBlock(b);
    Block& blk = blocks_[b];
    if (!blk.dirty && blk.sum_built == sum_version_ &&
        blk.hull_built == hull_version_) {
      return;
    }
    const std::size_t end = seq_.size();
    const std::size_t lo = std::max(b * kBlock, base_);
    const std::size_t hi = std::min((b + 1) * kBlock, end);
    HullPoint* h = hull_arena_.data() + b * kBlock;
    std::uint32_t hn = 0;
    blk.sum = 0.0;
    if (lo < hi) {
      // Scan slots tail-to-head: x = end - p ascends, y accumulates the
      // within-block suffix. Keep the upper hull (slopes strictly
      // decreasing); collinear middle points are dropped — the larger-x
      // endpoint of their edge always ties or beats them, and wins the
      // smallest-start tie rule anyway.
      for (std::size_t p = hi; p-- > lo;) {
        blk.sum += delta_[p];
        const HullPoint pt{blk.sum, static_cast<std::uint32_t>(end - p),
                           static_cast<std::uint32_t>(p)};
        while (hn >= 2) {
          const HullPoint& a = h[hn - 2];
          const HullPoint& m = h[hn - 1];
          // Pop m when slope(a, m) <= slope(m, pt): m is under the chord.
          if ((m.y - a.y) * static_cast<double>(pt.x - m.x) <=
              (pt.y - m.y) * static_cast<double>(m.x - a.x)) {
            --hn;
          } else {
            break;
          }
        }
        h[hn++] = pt;
      }
    }
    blk.hull_size = hn;
    blk.dirty = false;
    blk.sum_built = sum_version_;
    blk.hull_built = hull_version_;
  }

  /// Best density within a block given tail sum T beyond the block, and the
  /// slot attaining it (largest x on ties => smallest start). The density
  /// (y + T) / x is unimodal along the hull, so a binary search that moves
  /// right on ties lands on the rightmost peak. Comparisons are
  /// cross-multiplied ((y1+T)·x2 vs (y2+T)·x1, x > 0) so the walk performs
  /// no divisions; the caller divides once at the very end.
  static bool QueryHull(const HullPoint* hull, std::uint32_t size, double T,
                        double* num, double* den, std::size_t* slot) {
    if (size == 0) return false;
    std::size_t lo = 0, hi = size - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if ((hull[mid + 1].y + T) * static_cast<double>(hull[mid].x) >=
          (hull[mid].y + T) * static_cast<double>(hull[mid + 1].x)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    *num = hull[lo].y + T;
    *den = static_cast<double>(hull[lo].x);
    *slot = hull[lo].slot;
    return true;
  }

  void EnsureBest() const {
    if (best_valid_) return;
    const std::size_t n = size();
    const std::size_t end = seq_.size();
    double tail = 0.0;
    // Best density tracked as a (numerator, denominator) pair: density
    // comparisons cross-multiply, and the single division happens once the
    // walk is done.
    double best_num = 0.0;
    double best_den = 1.0;
    std::size_t best_start = n;
    if (n > 0) {
      // Walk blocks from the tail (shortest suffixes, smallest x) to the
      // head; ">=" prefers the later candidate (larger x, longer suffix) on
      // density ties, matching the linear reference scan.
      const std::size_t first_block = base_ / kBlock;
      for (std::size_t b = (end - 1) / kBlock + 1; b-- > first_block;) {
        RefreshBlock(b);
        double num = 0.0, den = 1.0;
        std::size_t slot = 0;
        if (QueryHull(hull_arena_.data() + b * kBlock, blocks_[b].hull_size,
                      tail, &num, &den, &slot) &&
            num * best_den >= best_num * den) {
          best_num = num;
          best_den = den;
          best_start = slot - base_;
        }
        tail += blocks_[b].sum;
      }
    }
    best_density_ = best_num / best_den;
    best_start_ = best_start;
    best_valid_ = true;
  }

  // Physical storage: logical position i lives at slot base_ + i; slots
  // below base_ are reserved head slack. pos_ holds physical slots.
  std::vector<VertexId> seq_;
  std::vector<double> delta_;
  std::size_t base_ = 0;
  std::vector<std::size_t> pos_;

  mutable std::vector<Block> blocks_;
  mutable std::vector<HullPoint> hull_arena_;  // kBlock-stride hull storage
  std::uint64_t sum_version_ = 1;
  std::uint64_t hull_version_ = 1;

  mutable bool best_valid_ = false;
  mutable std::size_t best_start_ = 0;
  mutable double best_density_ = 0.0;
};

}  // namespace spade
