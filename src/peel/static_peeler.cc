#include "peel/static_peeler.h"

#include <vector>

namespace spade {

PeelState PeelStatic(const CsrGraph& g) {
  const std::size_t n = g.NumVertices();
  PeelState state(n);

  IndexedMinHeap heap(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto uid = static_cast<VertexId>(u);
    heap.Push(uid, g.WeightedDegree(uid));
  }

  while (!heap.empty()) {
    const double delta = heap.TopWeight();
    const VertexId u = heap.Pop();
    state.Append(u, delta);
    // Removing u lowers the peeling weight of every still-pending neighbor
    // by the connecting edge weight (both directions are in Incident()).
    for (const auto& e : g.Incident(u)) {
      if (heap.Contains(e.vertex)) {
        heap.Adjust(e.vertex, -e.weight);
      }
    }
  }
  return state;
}

PeelState PeelStatic(const DynamicGraph& g) { return PeelStatic(CsrGraph(g)); }

}  // namespace spade
