#include "peel/static_peeler.h"

#include <vector>

namespace spade {

PeelState PeelStatic(const CsrGraph& g) {
  const std::size_t n = g.NumVertices();
  PeelState state(n);

  // Seed every vertex at its whole-graph weight w_u(S_0) and heapify in one
  // O(n) pass (pop order — and thus the canonical sequence — is identical
  // to n individual pushes).
  std::vector<double> initial(n);
  for (std::size_t u = 0; u < n; ++u) {
    initial[u] = g.WeightedDegree(static_cast<VertexId>(u));
  }
  IndexedMinHeap heap(n);
  heap.AssignAll(initial);

  while (!heap.empty()) {
    const double delta = heap.TopWeight();
    const VertexId u = heap.Pop();
    state.Append(u, delta);
    // Removing u lowers the peeling weight of every still-pending neighbor
    // by the connecting edge weight (both directions are in Incident()).
    for (const auto& e : g.Incident(u)) {
      if (heap.Contains(e.vertex)) {
        heap.Decrease(e.vertex, -e.weight);
      }
    }
  }
  return state;
}

PeelState PeelStatic(const DynamicGraph& g) { return PeelStatic(CsrGraph(g)); }

}  // namespace spade
