// IndexedMinHeap: a binary min-heap over vertices keyed by
// (peeling weight, vertex id) with O(log n) push/pop/update and O(1)
// membership queries.
//
// The secondary vertex-id key pins one canonical greedy peeling order, which
// is what lets Spade's incremental engines reproduce the static engine's
// sequence *exactly* (see DESIGN.md §2.2). Both the static peeler and the
// pending queue T of the incremental algorithms use this structure.
//
// Layout (DESIGN.md §8): the heap array is struct-of-arrays — parallel
// weight_ / vertex_ vectors instead of an array of {weight, vertex} records.
// The sift comparisons read weights almost exclusively (vertex ids only
// break exact ties), so splitting the streams packs twice as many keys per
// cache line on the comparison path, and AssignAll's O(n) rebuild becomes a
// bulk weight copy plus a vectorized ascending fill of vertex_
// (simd::IotaU32) ahead of the Floyd sift-downs.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/simd.h"
#include "graph/types.h"

namespace spade {

/// Canonical heap key ordering: weight first, vertex id as tie-break.
inline bool HeapKeyLess(double wa, VertexId va, double wb, VertexId vb) {
  if (wa != wb) return wa < wb;
  return va < vb;
}

/// Min-heap over a dense vertex-id universe [0, capacity).
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;

  /// Creates a heap able to hold vertices with ids in [0, capacity).
  explicit IndexedMinHeap(std::size_t capacity) { Reset(capacity); }

  /// Clears the heap and resizes the id universe.
  void Reset(std::size_t capacity) {
    weight_.clear();
    vertex_.clear();
    slot_.assign(capacity, kNoSlot);
  }

  /// Grows the id universe, preserving contents.
  void EnsureCapacity(std::size_t capacity) {
    if (capacity > slot_.size()) slot_.resize(capacity, kNoSlot);
  }

  std::size_t size() const { return vertex_.size(); }
  bool empty() const { return vertex_.empty(); }

  bool Contains(VertexId v) const {
    return v < slot_.size() && slot_[v] != kNoSlot;
  }

  /// Pulls the membership slot of v into cache ahead of a Contains /
  /// Decrease probe — the engine's adjacency walks hit slot_ at effectively
  /// random ids, one demand miss each without this.
  void PrefetchSlot(VertexId v) const {
    if (v < slot_.size()) SPADE_PREFETCH(slot_.data() + v);
  }

  /// Current key of a contained vertex.
  double WeightOf(VertexId v) const {
    SPADE_DCHECK(Contains(v));
    return weight_[slot_[v]];
  }

  /// Inserts vertex v with the given weight; v must not be contained.
  void Push(VertexId v, double weight) {
    SPADE_DCHECK(v < slot_.size());
    SPADE_DCHECK(!Contains(v));
    weight_.push_back(weight);
    vertex_.push_back(v);
    slot_[v] = vertex_.size() - 1;
    SiftUp(vertex_.size() - 1);
  }

  /// Changes the weight of a contained vertex (either direction).
  void Update(VertexId v, double weight) {
    SPADE_DCHECK(Contains(v));
    const std::size_t i = slot_[v];
    const double old = weight_[i];
    weight_[i] = weight;
    if (HeapKeyLess(weight, v, old, v)) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
  }

  /// Adds `delta` to the weight of a contained vertex.
  void Adjust(VertexId v, double delta) {
    Update(v, weight_[slot_[v]] + delta);
  }

  /// Adds `delta` (<= 0) to the weight of a contained vertex. Peeling only
  /// ever relaxes pending weights downward, so the fixup is a pure sift-up —
  /// half the comparisons of the direction-agnostic Adjust.
  void Decrease(VertexId v, double delta) {
    SPADE_DCHECK(Contains(v));
    SPADE_DCHECK(delta <= 0.0);
    const std::size_t i = slot_[v];
    weight_[i] += delta;
    SiftUp(i);
  }

  /// Rebuilds the heap to hold exactly vertices [0, weights.size()) keyed by
  /// `weights`, via bottom-up heapify: O(n) instead of the O(n log n) of n
  /// pushes. The pop order is unchanged — the comparator's total order pins
  /// the canonical sequence regardless of internal array layout. The leaf
  /// pass is pure bulk initialization: one weight memcpy and one vectorized
  /// iota, no per-element work.
  void AssignAll(std::span<const double> weights) {
    static_assert(std::is_same_v<VertexId, std::uint32_t>,
                  "vertex_ fill uses the u32 iota kernel");
    const std::size_t n = weights.size();
    slot_.assign(std::max(slot_.size(), n), kNoSlot);
    weight_.assign(weights.begin(), weights.end());
    vertex_.resize(n);
    simd::IotaU32(vertex_.data(), n, 0);
    for (std::size_t i = n / 2; i-- > 0;) SiftDown(i);
    for (std::size_t i = 0; i < n; ++i) slot_[vertex_[i]] = i;
  }

  VertexId TopVertex() const {
    SPADE_DCHECK(!empty());
    return vertex_[0];
  }
  double TopWeight() const {
    SPADE_DCHECK(!empty());
    return weight_[0];
  }

  /// Removes and returns the minimum-key vertex.
  VertexId Pop() {
    SPADE_DCHECK(!empty());
    const VertexId top = vertex_[0];
    slot_[top] = kNoSlot;
    const std::size_t last = vertex_.size() - 1;
    if (last > 0) {
      weight_[0] = weight_[last];
      vertex_[0] = vertex_[last];
      slot_[vertex_[0]] = 0;
      weight_.pop_back();
      vertex_.pop_back();
      SiftDown(0);
    } else {
      weight_.pop_back();
      vertex_.pop_back();
    }
    return top;
  }

  /// Removes an arbitrary contained vertex.
  void Erase(VertexId v) {
    SPADE_DCHECK(Contains(v));
    const std::size_t i = slot_[v];
    slot_[v] = kNoSlot;
    const std::size_t last = vertex_.size() - 1;
    if (i != last) {
      const VertexId moved = vertex_[last];
      weight_[i] = weight_[last];
      vertex_[i] = moved;
      slot_[moved] = i;
      weight_.pop_back();
      vertex_.pop_back();
      SiftDown(i);
      SiftUp(slot_[moved]);
    } else {
      weight_.pop_back();
      vertex_.pop_back();
    }
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  bool Less(std::size_t a, std::size_t b) const {
    return HeapKeyLess(weight_[a], vertex_[a], weight_[b], vertex_[b]);
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!Less(i, parent)) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = vertex_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && Less(left, smallest)) smallest = left;
      if (right < n && Less(right, smallest)) smallest = right;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  void Swap(std::size_t a, std::size_t b) {
    std::swap(weight_[a], weight_[b]);
    std::swap(vertex_[a], vertex_[b]);
    slot_[vertex_[a]] = a;
    slot_[vertex_[b]] = b;
  }

  // SoA heap storage: weight_[i] / vertex_[i] form the logical entry at
  // heap position i; slot_ is the inverse map (vertex id -> position).
  std::vector<double> weight_;
  std::vector<VertexId> vertex_;
  std::vector<std::size_t> slot_;
};

}  // namespace spade
