// IndexedMinHeap: a binary min-heap over vertices keyed by
// (peeling weight, vertex id) with O(log n) push/pop/update and O(1)
// membership queries.
//
// The secondary vertex-id key pins one canonical greedy peeling order, which
// is what lets Spade's incremental engines reproduce the static engine's
// sequence *exactly* (see DESIGN.md §2.2). Both the static peeler and the
// pending queue T of the incremental algorithms use this structure.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "graph/types.h"

namespace spade {

/// Canonical heap key ordering: weight first, vertex id as tie-break.
inline bool HeapKeyLess(double wa, VertexId va, double wb, VertexId vb) {
  if (wa != wb) return wa < wb;
  return va < vb;
}

/// Min-heap over a dense vertex-id universe [0, capacity).
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;

  /// Creates a heap able to hold vertices with ids in [0, capacity).
  explicit IndexedMinHeap(std::size_t capacity) { Reset(capacity); }

  /// Clears the heap and resizes the id universe.
  void Reset(std::size_t capacity) {
    heap_.clear();
    slot_.assign(capacity, kNoSlot);
  }

  /// Grows the id universe, preserving contents.
  void EnsureCapacity(std::size_t capacity) {
    if (capacity > slot_.size()) slot_.resize(capacity, kNoSlot);
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  bool Contains(VertexId v) const {
    return v < slot_.size() && slot_[v] != kNoSlot;
  }

  /// Current key of a contained vertex.
  double WeightOf(VertexId v) const {
    SPADE_DCHECK(Contains(v));
    return heap_[slot_[v]].weight;
  }

  /// Inserts vertex v with the given weight; v must not be contained.
  void Push(VertexId v, double weight) {
    SPADE_DCHECK(v < slot_.size());
    SPADE_DCHECK(!Contains(v));
    heap_.push_back({weight, v});
    slot_[v] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Changes the weight of a contained vertex (either direction).
  void Update(VertexId v, double weight) {
    SPADE_DCHECK(Contains(v));
    const std::size_t i = slot_[v];
    const double old = heap_[i].weight;
    heap_[i].weight = weight;
    if (HeapKeyLess(weight, v, old, v)) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
  }

  /// Adds `delta` to the weight of a contained vertex.
  void Adjust(VertexId v, double delta) {
    Update(v, heap_[slot_[v]].weight + delta);
  }

  /// Adds `delta` (<= 0) to the weight of a contained vertex. Peeling only
  /// ever relaxes pending weights downward, so the fixup is a pure sift-up —
  /// half the comparisons of the direction-agnostic Adjust.
  void Decrease(VertexId v, double delta) {
    SPADE_DCHECK(Contains(v));
    SPADE_DCHECK(delta <= 0.0);
    const std::size_t i = slot_[v];
    heap_[i].weight += delta;
    SiftUp(i);
  }

  /// Rebuilds the heap to hold exactly vertices [0, weights.size()) keyed by
  /// `weights`, via bottom-up heapify: O(n) instead of the O(n log n) of n
  /// pushes. The pop order is unchanged — the comparator's total order pins
  /// the canonical sequence regardless of internal array layout.
  void AssignAll(std::span<const double> weights) {
    const std::size_t n = weights.size();
    slot_.assign(std::max(slot_.size(), n), kNoSlot);
    heap_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      heap_[v] = {weights[v], static_cast<VertexId>(v)};
    }
    for (std::size_t i = n / 2; i-- > 0;) SiftDown(i);
    for (std::size_t i = 0; i < n; ++i) slot_[heap_[i].vertex] = i;
  }

  VertexId TopVertex() const {
    SPADE_DCHECK(!empty());
    return heap_[0].vertex;
  }
  double TopWeight() const {
    SPADE_DCHECK(!empty());
    return heap_[0].weight;
  }

  /// Removes and returns the minimum-key vertex.
  VertexId Pop() {
    SPADE_DCHECK(!empty());
    const VertexId top = heap_[0].vertex;
    slot_[top] = kNoSlot;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      slot_[heap_[0].vertex] = 0;
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

  /// Removes an arbitrary contained vertex.
  void Erase(VertexId v) {
    SPADE_DCHECK(Contains(v));
    const std::size_t i = slot_[v];
    slot_[v] = kNoSlot;
    if (i + 1 != heap_.size()) {
      const VertexId moved = heap_.back().vertex;
      heap_[i] = heap_.back();
      slot_[moved] = i;
      heap_.pop_back();
      SiftDown(i);
      SiftUp(slot_[moved]);
    } else {
      heap_.pop_back();
    }
  }

 private:
  struct Entry {
    double weight;
    VertexId vertex;
  };

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  bool Less(const Entry& a, const Entry& b) const {
    return HeapKeyLess(a.weight, a.vertex, b.weight, b.vertex);
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!Less(heap_[i], heap_[parent])) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && Less(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && Less(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) break;
      Swap(i, smallest);
      i = smallest;
    }
  }

  void Swap(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    slot_[heap_[a].vertex] = a;
    slot_[heap_[b].vertex] = b;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> slot_;
};

}  // namespace spade
