// CsrGraph: an immutable compressed-sparse-row snapshot of a DynamicGraph.
//
// The static peeling baselines (DG/DW/FD run from scratch) iterate every
// incident edge of every vertex once; a CSR layout makes that scan cache
// friendly and is how the paper's 12-28 s static numbers on 25 M edges are
// achievable at all. The snapshot merges out- and in-adjacency into a single
// "incident" list per vertex because peeling weights (Eq. 2) sum both
// directions.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/types.h"

namespace spade {

/// Immutable union-adjacency CSR view of a graph at a point in time.
class CsrGraph {
 public:
  /// Builds the snapshot in O(|V| + |E|).
  explicit CsrGraph(const DynamicGraph& g) {
    const std::size_t n = g.NumVertices();
    offsets_.assign(n + 1, 0);
    vertex_weight_.resize(n);
    for (std::size_t u = 0; u < n; ++u) {
      offsets_[u + 1] = offsets_[u] + g.Degree(static_cast<VertexId>(u));
      vertex_weight_[u] = g.VertexWeight(static_cast<VertexId>(u));
    }
    entries_.resize(offsets_[n]);
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t u = 0; u < n; ++u) {
      const auto uid = static_cast<VertexId>(u);
      g.ForEachIncident(uid, [&](VertexId v, double w) {
        entries_[cursor[u]++] = {v, w};
      });
    }
    total_weight_ = g.TotalWeight();
  }

  std::size_t NumVertices() const { return vertex_weight_.size(); }
  std::size_t NumIncidentEntries() const { return entries_.size(); }

  double VertexWeight(VertexId u) const { return vertex_weight_[u]; }

  /// f(S_0) of the snapshot.
  double TotalWeight() const { return total_weight_; }

  /// All incident edges of u (both directions, parallel edges repeated).
  std::span<const NeighborEntry> Incident(VertexId u) const {
    return {entries_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// w_u(S_0) under this snapshot.
  double WeightedDegree(VertexId u) const {
    double w = vertex_weight_[u];
    for (const auto& e : Incident(u)) w += e.weight;
    return w;
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<NeighborEntry> entries_;
  std::vector<double> vertex_weight_;
  double total_weight_ = 0.0;
};

}  // namespace spade
