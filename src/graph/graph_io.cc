#include "graph/graph_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace spade {

bool ParseEdgeLine(const std::string& line, std::size_t line_index,
                   Edge* edge, std::string* error) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] == '#' || line[i] == '%') return false;

  std::istringstream is(line);
  unsigned long long src = 0, dst = 0;
  if (!(is >> src >> dst)) {
    *error = "malformed edge line " + std::to_string(line_index + 1);
    return false;
  }
  double weight = 1.0;
  long long ts = static_cast<long long>(line_index);
  if (is >> weight) {
    if (!(weight > 0.0)) {
      *error = "non-positive weight on line " + std::to_string(line_index + 1);
      return false;
    }
    long long parsed_ts;
    if (is >> parsed_ts) ts = parsed_ts;
  }
  edge->src = static_cast<VertexId>(src);
  edge->dst = static_cast<VertexId>(dst);
  edge->weight = weight;
  edge->ts = ts;
  return true;
}

Result<std::vector<Edge>> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::vector<Edge> edges;
  std::string line;
  std::size_t line_index = 0;
  while (std::getline(in, line)) {
    Edge edge;
    std::string error;
    if (ParseEdgeLine(line, line_index, &edge, &error)) {
      edges.push_back(edge);
    } else if (!error.empty()) {
      return Status::IOError(path + ": " + error);
    }
    ++line_index;
  }
  return edges;
}

Status SaveEdgeList(const std::string& path, const std::vector<Edge>& edges) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << "# src dst weight ts\n";
  for (const auto& e : edges) {
    out << e.src << " " << e.dst << " " << e.weight << " " << e.ts << "\n";
  }
  if (!out) {
    return Status::IOError("write failure on " + path);
  }
  return Status::OK();
}

}  // namespace spade
