// Edge-list serialization: whitespace-separated text files of the form
//   src dst [weight] [timestamp]
// with '#'-prefixed comment lines, matching the SNAP dataset convention the
// paper's public datasets (Wiki-Vote, Epinion) ship in.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace spade {

/// Parses an edge-list file into a vector of edges. Missing weight columns
/// default to 1.0; missing timestamps default to the line index so replay
/// order matches file order.
Result<std::vector<Edge>> LoadEdgeList(const std::string& path);

/// Writes edges as "src dst weight ts" rows.
Status SaveEdgeList(const std::string& path, const std::vector<Edge>& edges);

/// Parses a single edge-list line; returns false for comments/blank lines.
/// Exposed for testing.
bool ParseEdgeLine(const std::string& line, std::size_t line_index,
                   Edge* edge, std::string* error);

}  // namespace spade
