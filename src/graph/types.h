// Fundamental graph value types shared across the library.

#pragma once

#include <cstdint>
#include <limits>

namespace spade {

/// Dense vertex identifier; vertices are numbered [0, NumVertices).
using VertexId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Event time in microseconds since an arbitrary epoch.
using Timestamp = std::int64_t;

/// A directed weighted edge, optionally timestamped.
///
/// `weight` is the edge suspiciousness c_ij (> 0 for all supported metrics);
/// `ts` orders the edge within an update stream (0 when untimed).
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  double weight = 1.0;
  Timestamp ts = 0;

  bool operator==(const Edge& other) const {
    return src == other.src && dst == other.dst && weight == other.weight &&
           ts == other.ts;
  }
};

/// One entry of an adjacency list.
struct NeighborEntry {
  VertexId vertex;
  double weight;
};

}  // namespace spade
