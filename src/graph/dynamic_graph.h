// DynamicGraph: the evolving transaction graph G = (V, E).
//
// A directed, weighted multigraph stored as paired out/in adjacency lists,
// optimized for append-style edge insertion (the dominant operation in
// Spade's workloads) while still supporting targeted deletion for the
// appendix C.1 extension. Vertex weights carry the per-user prior
// suspiciousness a_i; edge weights carry the per-transaction suspiciousness
// c_ij.

#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "graph/types.h"

namespace spade {

/// Directed weighted multigraph with O(1) amortized edge insertion.
///
/// Invariants maintained at all times:
///  * out_[u] and in_[v] stay mirror images of each other,
///  * weighted_degree(u) == a_u + sum of weights of all incident edges
///    (both directions), which is exactly the paper's w_u(S_0),
///  * total_edge_weight() == sum of all edge weights.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Creates a graph with `n` vertices of weight 0 and no edges.
  explicit DynamicGraph(std::size_t n) { EnsureVertices(n); }

  /// Number of vertices (dense id space).
  std::size_t NumVertices() const { return vertex_weight_.size(); }

  /// Number of edges, counting parallel edges individually.
  std::size_t NumEdges() const { return num_edges_; }

  /// Grows the vertex set so ids [0, n) are valid; new weights are 0.
  void EnsureVertices(std::size_t n) {
    if (n <= NumVertices()) return;
    vertex_weight_.resize(n, 0.0);
    weighted_degree_.resize(n, 0.0);
    out_.resize(n);
    in_.resize(n);
    // Previously absent vertices contribute weight 0, so weighted_degree_
    // needs no fixup.
  }

  /// Adds a fresh vertex with prior suspiciousness `weight`; returns its id.
  VertexId AddVertex(double weight = 0.0) {
    const auto id = static_cast<VertexId>(NumVertices());
    vertex_weight_.push_back(weight);
    weighted_degree_.push_back(weight);
    out_.emplace_back();
    in_.emplace_back();
    total_vertex_weight_ += weight;
    return id;
  }

  /// Sets the prior suspiciousness a_u of an existing vertex.
  void SetVertexWeight(VertexId u, double weight) {
    SPADE_DCHECK(u < NumVertices());
    const double old = vertex_weight_[u];
    vertex_weight_[u] = weight;
    weighted_degree_[u] += weight - old;
    total_vertex_weight_ += weight - old;
  }

  double VertexWeight(VertexId u) const { return vertex_weight_[u]; }

  /// Inserts a directed edge; endpoints must already exist, must differ
  /// (transaction graphs have no self-loops, and peeling weights would
  /// double-count them), and the weight must be positive (Property 3.1
  /// requires c_ij > 0).
  Status AddEdge(VertexId src, VertexId dst, double weight) {
    if (src >= NumVertices() || dst >= NumVertices()) {
      return Status::InvalidArgument("AddEdge: endpoint out of range");
    }
    if (src == dst) {
      return Status::InvalidArgument("AddEdge: self-loops are not supported");
    }
    if (!(weight > 0.0)) {
      return Status::InvalidArgument("AddEdge: edge weight must be > 0");
    }
    out_[src].push_back({dst, weight});
    in_[dst].push_back({src, weight});
    weighted_degree_[src] += weight;
    weighted_degree_[dst] += weight;
    total_edge_weight_ += weight;
    ++num_edges_;
    return Status::OK();
  }

  /// Removes one parallel edge (src, dst); if several exist, the most
  /// recently inserted one is removed. Returns its weight. When
  /// `weight_filter` is non-null, only a copy with exactly that weight is
  /// eligible (sliding-window expiry must remove the copy it inserted, since
  /// degree-dependent semantics give parallel edges distinct weights).
  Result<double> RemoveEdge(VertexId src, VertexId dst,
                            const double* weight_filter = nullptr) {
    if (src >= NumVertices() || dst >= NumVertices()) {
      return Status::InvalidArgument("RemoveEdge: endpoint out of range");
    }
    double weight = 0.0;
    if (!EraseLast(&out_[src], dst, weight_filter, &weight)) {
      return Status::NotFound("RemoveEdge: edge not present");
    }
    double in_weight = 0.0;
    const bool erased = EraseLast(&in_[dst], src, &weight, &in_weight);
    SPADE_CHECK(erased);
    weighted_degree_[src] -= weight;
    weighted_degree_[dst] -= weight;
    total_edge_weight_ -= weight;
    --num_edges_;
    return weight;
  }

  const std::vector<NeighborEntry>& OutNeighbors(VertexId u) const {
    return out_[u];
  }
  const std::vector<NeighborEntry>& InNeighbors(VertexId u) const {
    return in_[u];
  }

  std::size_t OutDegree(VertexId u) const { return out_[u].size(); }
  std::size_t InDegree(VertexId u) const { return in_[u].size(); }

  /// Total incident edge count (both directions).
  std::size_t Degree(VertexId u) const {
    return out_[u].size() + in_[u].size();
  }

  /// w_u(S_0): a_u plus the weights of all incident edges. This is the
  /// quantity Definition 4.1's benign-edge test compares against g(S_P).
  double WeightedDegree(VertexId u) const { return weighted_degree_[u]; }

  /// Sum of all vertex weights (f_V(V)).
  double TotalVertexWeight() const { return total_vertex_weight_; }

  /// Sum of all edge weights (f_E(V)).
  double TotalEdgeWeight() const { return total_edge_weight_; }

  /// f(S_0) = f_V(V) + f_E(V): total suspiciousness of the whole graph.
  double TotalWeight() const {
    return total_vertex_weight_ + total_edge_weight_;
  }

  /// Applies `fn(v, w)` for every incident edge of u in either direction
  /// (out-edges first). Parallel edges are visited individually.
  template <typename Fn>
  void ForEachIncident(VertexId u, Fn&& fn) const {
    for (const auto& e : out_[u]) fn(e.vertex, e.weight);
    for (const auto& e : in_[u]) fn(e.vertex, e.weight);
  }

  /// Returns true if at least one edge (u, v) or (v, u) exists.
  bool HasEdgeEitherDirection(VertexId u, VertexId v) const {
    // Scan the smaller endpoint's lists.
    const VertexId a = Degree(u) <= Degree(v) ? u : v;
    const VertexId b = a == u ? v : u;
    for (const auto& e : out_[a]) {
      if (e.vertex == b) return true;
    }
    for (const auto& e : in_[a]) {
      if (e.vertex == b) return true;
    }
    return false;
  }

 private:
  static bool EraseLast(std::vector<NeighborEntry>* list, VertexId target,
                        const double* weight_filter, double* weight_out) {
    for (auto it = list->rbegin(); it != list->rend(); ++it) {
      if (it->vertex == target &&
          (weight_filter == nullptr || it->weight == *weight_filter)) {
        *weight_out = it->weight;
        list->erase(std::next(it).base());
        return true;
      }
    }
    return false;
  }

  std::vector<double> vertex_weight_;
  std::vector<double> weighted_degree_;
  std::vector<std::vector<NeighborEntry>> out_;
  std::vector<std::vector<NeighborEntry>> in_;
  std::size_t num_edges_ = 0;
  double total_edge_weight_ = 0.0;
  double total_vertex_weight_ = 0.0;
};

}  // namespace spade
