// LabeledStream: a timestamped edge stream with ground-truth fraud labels.
//
// Each edge optionally belongs to a fraud *group* (one injected fraud
// instance, e.g. one customer-merchant collusion ring). Groups are what the
// prevention-ratio metric R is computed against: once a group is first
// recognized at time τ_f, all of its transactions arriving after τ_f are
// considered prevented (paper §4.3, Figure 8).

#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace spade {

/// Group id of unlabeled (normal) edges.
inline constexpr std::int32_t kNormalEdge = -1;

/// A replayable, label-annotated update stream ΔG_τ.
struct LabeledStream {
  /// Edges in nondecreasing timestamp order.
  std::vector<Edge> edges;
  /// Parallel array: fraud group id per edge, kNormalEdge for normal ones.
  std::vector<std::int32_t> group;
  /// Vertex membership of each fraud group (indexed by group id).
  std::vector<std::vector<VertexId>> group_vertices;

  std::size_t size() const { return edges.size(); }

  bool IsFraud(std::size_t i) const { return group[i] != kNormalEdge; }

  void Append(const Edge& e, std::int32_t group_id = kNormalEdge) {
    edges.push_back(e);
    group.push_back(group_id);
  }
};

}  // namespace spade
