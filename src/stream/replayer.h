// Replayer: drives a Spade instance with a labeled update stream and
// measures the paper's evaluation metrics — per-edge elapsed time E,
// fraud-activity latency L (Eq. 4, queueing + processing), and prevention
// ratio R.
//
// Simulated time model: stream timestamps are microseconds. Processing cost
// is measured on the wall clock and added to the simulated arrival time of
// the flush trigger, so L decomposes exactly like the paper's Figure 8:
// queueing time (τ_s - τ_i, simulated) plus reorder time (τ_f - τ_s,
// measured).

#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/incremental_engine.h"
#include "core/spade.h"
#include "service/sharded_detection_service.h"
#include "stream/labeled_stream.h"

namespace spade {

/// How the replayer batches updates.
struct ReplayOptions {
  /// Fixed batch size |ΔE| (1 = per-edge incremental); ignored when
  /// `use_edge_grouping` is set.
  std::size_t batch_size = 1;

  /// Use Spade's Algorithm 3 edge grouping instead of fixed batching.
  bool use_edge_grouping = false;

  /// Run Detect() (community extraction) after every flush; mirrors the
  /// deployment loop and is required for prevention accounting.
  bool detect_after_flush = true;
};

/// Aggregate measurements of one replay.
struct ReplayReport {
  std::size_t edges_processed = 0;
  std::size_t flushes = 0;

  /// Wall-clock reorder cost, total and per-edge average (paper's E).
  double total_process_micros = 0.0;
  double MeanMicrosPerEdge() const {
    return edges_processed == 0
               ? 0.0
               : total_process_micros / static_cast<double>(edges_processed);
  }

  /// Simulated per-fraud-edge latency τ_f − τ_i (queueing + processing).
  Summary fraud_latency_micros;
  /// Simulated queueing-only component τ_s − τ_i of fraud edges.
  Summary fraud_queue_micros;

  /// Pooled prevention ratio R over all fraud groups.
  double prevention_ratio = 0.0;
  /// Per-group detection times (simulated micros; <0 = never detected).
  std::vector<double> group_detection_time;

  /// Affected-area accounting accumulated over the run.
  ReorderStats reorder_stats;
};

/// Replays `stream` into `spade` under the given batching policy.
///
/// `spade` must already hold the initial graph (the 90% split). Fraud groups
/// are "detected" the first time any of their member vertices appears in the
/// detected community S_P after a flush.
ReplayReport Replay(Spade* spade, const LabeledStream& stream,
                    const ReplayOptions& options);

// ---------------------------------------------------------------------------
// Multi-producer service replay: the throughput-oriented counterpart of
// Replay(). Instead of simulating the deployment loop single-threaded, it
// stands up a real ShardedDetectionService, fans the stream out from
// `num_producers` submit threads as fast as the service accepts it, and
// measures wall-clock ingest throughput plus the submit→alert latency of
// each fraud group.

/// Options for ReplayThroughService.
struct ServiceReplayOptions {
  /// Concurrent submit threads. Producers claim contiguous chunks of the
  /// stream off a shared cursor, so each forwards the globally-interleaved
  /// arrival order (cross-chunk per-shard order is then
  /// scheduling-dependent, as with any concurrent ingest tier).
  std::size_t num_producers = 4;
  /// Edges buffered per producer before a SubmitBatch flush. Chunking
  /// amortizes the routing pass, the queue-budget claim and the worker
  /// wakeup; per-edge submission pays all three per edge.
  std::size_t producer_batch = 64;
  /// Submit each edge individually through Service::Submit instead of
  /// SubmitBatch (the pre-batching ingest baseline the ingest bench
  /// compares against). Producers still claim `producer_batch`-sized
  /// slices off the shared cursor so the interleaving matches the batched
  /// run; only the handoff differs.
  bool per_edge_submit = false;
  /// Adapt each producer's chunk size to queue pressure: after every chunk
  /// the producer reads the fleet's current max queue depth and halves its
  /// chunk (floor 16) when depth exceeds half the configured queue budget,
  /// or doubles it (cap 8192) when depth is below an eighth of it. Large
  /// chunks amortize routing when workers keep up; small chunks keep the
  /// blocking handoff slices short when they do not — fewer edges parked
  /// per wakeup, steadier admission. Ignored with per_edge_submit.
  bool adaptive_chunk = false;
  /// Run one cross-shard stitch pass after the drain and report its result
  /// (final_stitched / final_argmax / stitch_millis). Groups only reachable
  /// through stitching are credited as detected from the stitched snapshot.
  /// The stitch cost is excluded from wall_seconds (it is an amortized
  /// periodic pass, not per-edge work) and reported separately.
  bool final_stitch = false;
  /// When > 0, a checkpointer thread runs ShardedDetectionService::
  /// SaveState (auto mode: full base first, delta epochs after) into
  /// `checkpoint_dir` every time roughly this many more edges have been
  /// applied, plus once after the final drain — the deployment loop's
  /// durability tier running against live traffic. Checkpoint time is
  /// reported separately, but the per-checkpoint drains do overlap the
  /// ingest window, so enable this for durability studies, not for
  /// throughput comparisons.
  std::size_t checkpoint_every_edges = 0;
  std::string checkpoint_dir;
  /// Service construction knobs (shard worker options + partitioner).
  ShardedDetectionServiceOptions service;
};

/// Aggregate measurements of one service replay.
struct ServiceReplayReport {
  std::size_t edges_submitted = 0;
  std::size_t submit_failures = 0;
  /// Submit start to Drain() return (every edge applied and republished).
  double wall_seconds = 0.0;
  /// Submit start to the last producer's return — the admission phase.
  /// With ample queue budget this isolates the router+handoff cost from
  /// the apply cost; when backpressure throttles producers to the workers'
  /// pace it converges toward wall_seconds.
  double submit_seconds = 0.0;
  std::uint64_t edges_processed = 0;
  std::uint64_t alerts = 0;
  std::uint64_t detections = 0;

  /// Aggregate end-to-end throughput (submit start → drained), edges/s.
  double SubmitThroughputEps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(edges_submitted) / wall_seconds
               : 0.0;
  }

  /// Admission throughput (submit start → producers done), edges/s.
  double AdmissionThroughputEps() const {
    return submit_seconds > 0.0
               ? static_cast<double>(edges_submitted) / submit_seconds
               : 0.0;
  }

  /// Wall-clock latency from a fraud group's first submit *attempt* to the
  /// first alert (or final snapshot) containing one of its vertices (in
  /// fail-fast mode a group's first edge may have been rejected; its clock
  /// still starts at the attempt).
  Summary fraud_latency_micros;
  std::size_t groups_detected = 0;
  std::size_t groups_total = 0;

  /// Filled when ServiceReplayOptions::final_stitch is set.
  bool stitched_valid = false;
  GlobalCommunity final_stitched;
  Community final_argmax;
  double stitch_millis = 0.0;
  std::uint64_t boundary_edges = 0;

  /// Highest queue depth any shard reached during the ADMISSION phase
  /// (submit start → producers done). Handoff pressure: near the
  /// configured max_queue means producers outran a shard worker.
  std::size_t queue_hwm = 0;
  /// Highest queue depth any shard reached during the DRAIN phase. The
  /// marks are reset between phases (ResetQueueHighWater), so each number
  /// describes its own phase — previously the admission peak bled into
  /// every later reading.
  std::size_t queue_hwm_drain = 0;

  /// Filled when ServiceReplayOptions::checkpoint_every_edges > 0.
  std::size_t checkpoints = 0;        // saves taken (incl. the final one)
  std::size_t delta_checkpoints = 0;  // of which were delta epochs
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_millis = 0.0;
  std::uint64_t final_epoch = 0;      // checkpoint epoch after the last save
};

/// Builds a ShardedDetectionService over `shards` (moved in), replays
/// `stream` through it from multiple producer threads, drains, and stops
/// the service before returning.
ServiceReplayReport ReplayThroughService(std::vector<Spade> shards,
                                         const LabeledStream& stream,
                                         const ServiceReplayOptions& options);

}  // namespace spade
