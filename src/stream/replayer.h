// Replayer: drives a Spade instance with a labeled update stream and
// measures the paper's evaluation metrics — per-edge elapsed time E,
// fraud-activity latency L (Eq. 4, queueing + processing), and prevention
// ratio R.
//
// Simulated time model: stream timestamps are microseconds. Processing cost
// is measured on the wall clock and added to the simulated arrival time of
// the flush trigger, so L decomposes exactly like the paper's Figure 8:
// queueing time (τ_s - τ_i, simulated) plus reorder time (τ_f - τ_s,
// measured).

#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/incremental_engine.h"
#include "core/spade.h"
#include "stream/labeled_stream.h"

namespace spade {

/// How the replayer batches updates.
struct ReplayOptions {
  /// Fixed batch size |ΔE| (1 = per-edge incremental); ignored when
  /// `use_edge_grouping` is set.
  std::size_t batch_size = 1;

  /// Use Spade's Algorithm 3 edge grouping instead of fixed batching.
  bool use_edge_grouping = false;

  /// Run Detect() (community extraction) after every flush; mirrors the
  /// deployment loop and is required for prevention accounting.
  bool detect_after_flush = true;
};

/// Aggregate measurements of one replay.
struct ReplayReport {
  std::size_t edges_processed = 0;
  std::size_t flushes = 0;

  /// Wall-clock reorder cost, total and per-edge average (paper's E).
  double total_process_micros = 0.0;
  double MeanMicrosPerEdge() const {
    return edges_processed == 0
               ? 0.0
               : total_process_micros / static_cast<double>(edges_processed);
  }

  /// Simulated per-fraud-edge latency τ_f − τ_i (queueing + processing).
  Summary fraud_latency_micros;
  /// Simulated queueing-only component τ_s − τ_i of fraud edges.
  Summary fraud_queue_micros;

  /// Pooled prevention ratio R over all fraud groups.
  double prevention_ratio = 0.0;
  /// Per-group detection times (simulated micros; <0 = never detected).
  std::vector<double> group_detection_time;

  /// Affected-area accounting accumulated over the run.
  ReorderStats reorder_stats;
};

/// Replays `stream` into `spade` under the given batching policy.
///
/// `spade` must already hold the initial graph (the 90% split). Fraud groups
/// are "detected" the first time any of their member vertices appears in the
/// detected community S_P after a flush.
ReplayReport Replay(Spade* spade, const LabeledStream& stream,
                    const ReplayOptions& options);

}  // namespace spade
