#include "stream/replayer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"

namespace spade {

namespace {

/// Marks groups whose vertices intersect the community as detected.
void UpdateDetections(const Community& community,
                      const LabeledStream& stream, double now_micros,
                      std::vector<double>* detection_time) {
  if (detection_time->empty()) return;
  std::unordered_set<VertexId> members(community.members.begin(),
                                       community.members.end());
  for (std::size_t gid = 0; gid < detection_time->size(); ++gid) {
    if ((*detection_time)[gid] >= 0.0) continue;
    for (VertexId v : stream.group_vertices[gid]) {
      if (members.count(v) != 0) {
        (*detection_time)[gid] = now_micros;
        break;
      }
    }
  }
}

}  // namespace

ReplayReport Replay(Spade* spade, const LabeledStream& stream,
                    const ReplayOptions& options) {
  SPADE_CHECK_EQ(stream.edges.size(), stream.group.size());
  ReplayReport report;
  report.group_detection_time.assign(stream.group_vertices.size(), -1.0);

  if (options.use_edge_grouping) {
    spade->TurnOnEdgeGrouping();
  } else {
    spade->TurnOffEdgeGrouping();
  }

  // Pending (queued) edge indices of the current batch/buffer.
  std::vector<std::size_t> queued;
  const std::size_t n = stream.edges.size();

  auto account_fraud = [&](double tau_f, double tau_s) {
    for (std::size_t idx : queued) {
      if (stream.IsFraud(idx)) {
        const double tau_i = static_cast<double>(stream.edges[idx].ts);
        report.fraud_latency_micros.Add(tau_f - tau_i);
        report.fraud_queue_micros.Add(std::max(0.0, tau_s - tau_i));
      }
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Edge& e = stream.edges[i];
    queued.push_back(i);

    bool flushed = false;
    double tau_s = 0.0;
    double process_micros = 0.0;
    Community community;

    if (options.use_edge_grouping) {
      // Spade buffers internally; the pending count reveals whether this
      // edge triggered a flush.
      tau_s = static_cast<double>(e.ts);
      Timer timer;
      SPADE_CHECK(spade->ApplyEdge(e).ok());
      flushed = spade->PendingBenignEdges() == 0;
      if (flushed && options.detect_after_flush) {
        community = spade->Detect();
      }
      process_micros = timer.ElapsedMicros();
    } else if (queued.size() >= options.batch_size || i + 1 == n) {
      tau_s = static_cast<double>(e.ts);
      Timer timer;
      if (queued.size() == 1) {
        SPADE_CHECK(spade->ApplyEdge(stream.edges[queued[0]]).ok());
      } else {
        std::vector<Edge> batch;
        batch.reserve(queued.size());
        for (std::size_t idx : queued) batch.push_back(stream.edges[idx]);
        SPADE_CHECK(spade->ApplyBatchEdges(batch).ok());
      }
      if (options.detect_after_flush) {
        community = spade->Detect();
      }
      process_micros = timer.ElapsedMicros();
      flushed = true;
    }

    if (flushed) {
      const double tau_f = tau_s + process_micros;
      report.total_process_micros += process_micros;
      ++report.flushes;
      account_fraud(tau_f, tau_s);
      if (options.detect_after_flush) {
        UpdateDetections(community, stream, tau_f,
                         &report.group_detection_time);
      }
      queued.clear();
    }
  }

  // Drain anything still buffered (grouping mode).
  if (!queued.empty() || spade->PendingBenignEdges() > 0) {
    const double tau_s =
        n == 0 ? 0.0 : static_cast<double>(stream.edges.back().ts);
    Timer timer;
    Community community = spade->Detect();
    const double process_micros = timer.ElapsedMicros();
    const double tau_f = tau_s + process_micros;
    report.total_process_micros += process_micros;
    ++report.flushes;
    account_fraud(tau_f, tau_s);
    if (options.detect_after_flush) {
      UpdateDetections(community, stream, tau_f,
                       &report.group_detection_time);
    }
    queued.clear();
  }

  report.edges_processed = n;
  report.reorder_stats = spade->cumulative_stats();

  // Prevention ratio: fraction of fraud edges arriving after their group's
  // detection time (those transactions get banned before completion).
  std::size_t fraud_total = 0;
  std::size_t prevented = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t gid = stream.group[i];
    if (gid == kNormalEdge) continue;
    ++fraud_total;
    const double detected_at = report.group_detection_time[gid];
    if (detected_at >= 0.0 &&
        static_cast<double>(stream.edges[i].ts) > detected_at) {
      ++prevented;
    }
  }
  report.prevention_ratio =
      fraud_total == 0
          ? 0.0
          : static_cast<double>(prevented) / static_cast<double>(fraud_total);
  return report;
}

ServiceReplayReport ReplayThroughService(std::vector<Spade> shards,
                                         const LabeledStream& stream,
                                         const ServiceReplayOptions& options) {
  ServiceReplayReport report;
  const std::size_t n = stream.edges.size();
  const std::size_t groups = stream.group_vertices.size();
  report.groups_total = groups;

  const auto t0 = std::chrono::steady_clock::now();
  auto now_micros = [t0] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Group-membership index for the alert callbacks: vertex -> group ids.
  std::unordered_map<VertexId, std::vector<std::int32_t>> member_groups;
  for (std::size_t gid = 0; gid < groups; ++gid) {
    for (VertexId v : stream.group_vertices[gid]) {
      member_groups[v].push_back(static_cast<std::int32_t>(gid));
    }
  }

  // First-submit time per group: producers race, first CAS wins.
  std::vector<std::atomic<double>> first_submit(groups);
  for (auto& t : first_submit) t.store(-1.0, std::memory_order_relaxed);

  // Detection times, written from concurrent shard alert callbacks.
  std::mutex detect_mutex;
  std::vector<double> detect_time(groups, -1.0);
  std::size_t undetected = groups;
  auto mark_detected = [&](const Community& community, double now) {
    if (groups == 0) return;
    std::lock_guard<std::mutex> lock(detect_mutex);
    if (undetected == 0) return;
    for (VertexId v : community.members) {
      const auto it = member_groups.find(v);
      if (it == member_groups.end()) continue;
      for (const std::int32_t gid : it->second) {
        if (detect_time[gid] < 0.0) {
          detect_time[gid] = now;
          --undetected;
        }
      }
    }
  };

  ShardedDetectionServiceOptions service_options = options.service;
  ShardedDetectionService service(
      std::move(shards),
      [&](std::size_t /*shard*/, const Community& community) {
        mark_detected(community, now_micros());
      },
      std::move(service_options));

  // Checkpointer: a polling background thread taking an auto-mode save
  // whenever the fleet has applied another `checkpoint_every_edges` edges.
  // Polling (rather than producer-triggered saves) keeps the submit path
  // free of any checkpoint coupling; SaveState itself drains, so each save
  // is a consistent per-shard prefix of the stream.
  std::thread checkpointer;
  std::atomic<bool> checkpointing_done{false};
  std::mutex checkpoint_mutex;  // guards the report fields below
  auto take_checkpoint = [&] {
    ShardedDetectionService::SaveInfo save_info;
    const auto start = std::chrono::steady_clock::now();
    const Status s = service.SaveState(options.checkpoint_dir,
                                       ShardedDetectionService::SaveMode::kAuto,
                                       &save_info);
    const double millis = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (!s.ok()) {
      SPADE_LOG_WARNING() << "replay checkpoint failed: " << s.ToString();
      return;
    }
    std::lock_guard<std::mutex> lock(checkpoint_mutex);
    ++report.checkpoints;
    if (save_info.delta) ++report.delta_checkpoints;
    report.checkpoint_bytes += save_info.bytes_written;
    report.checkpoint_millis += millis;
    report.final_epoch = save_info.epoch;
  };
  if (options.checkpoint_every_edges > 0) {
    checkpointer = std::thread([&] {
      std::uint64_t next_target = options.checkpoint_every_edges;
      while (!checkpointing_done.load(std::memory_order_relaxed)) {
        if (service.EdgesProcessed() >= next_target) {
          take_checkpoint();
          next_target =
              service.EdgesProcessed() + options.checkpoint_every_edges;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    });
  }

  const std::size_t num_producers = std::max<std::size_t>(
      1, std::min(options.num_producers, std::max<std::size_t>(1, n)));
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> producers;
  producers.reserve(num_producers);
  // Producers pull chunks off a shared cursor (multiple ingest gateways
  // draining one arrival queue). Chunks are contiguous slices of the
  // stream, so every producer forwards the globally-interleaved traffic —
  // a strided split would give each producer (and through the partitioner,
  // each shard) an artificially coherent sub-stream.
  const std::size_t producer_batch =
      std::max<std::size_t>(1, options.producer_batch);
  const bool adaptive =
      options.adaptive_chunk && !options.per_edge_submit;
  const std::size_t max_queue =
      std::max<std::size_t>(1, options.service.shard.max_queue);
  std::atomic<std::size_t> cursor{0};
  for (std::size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back([&] {
      // Per-producer chunk size (no sharing, no atomics): each producer
      // tracks queue pressure independently, which is exactly the signal
      // it acts on — how long ITS blocking handoffs are about to be.
      std::size_t chunk_size = producer_batch;
      while (true) {
        const std::size_t start =
            cursor.fetch_add(chunk_size, std::memory_order_relaxed);
        if (start >= n) break;
        const std::size_t end = std::min(start + chunk_size, n);
        if (adaptive) {
          const std::size_t depth = service.MaxQueueDepth();
          if (depth > max_queue / 2) {
            chunk_size = std::max<std::size_t>(16, chunk_size / 2);
          } else if (depth < max_queue / 8) {
            chunk_size = std::min<std::size_t>(8192, chunk_size * 2);
          }
        }
        for (std::size_t i = start; i < end; ++i) {
          const std::int32_t gid = stream.group[i];
          if (gid != kNormalEdge &&
              first_submit[gid].load(std::memory_order_relaxed) < 0.0) {
            double expected = -1.0;
            first_submit[gid].compare_exchange_strong(expected, now_micros());
          }
        }
        if (options.per_edge_submit) {
          for (std::size_t i = start; i < end; ++i) {
            if (!service.Submit(stream.edges[i]).ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
          continue;
        }
        const std::span<const Edge> chunk(stream.edges.data() + start,
                                          end - start);
        std::size_t enqueued = 0;
        if (!service.SubmitBatch(chunk, &enqueued).ok()) {
          failures.fetch_add(chunk.size() - enqueued,
                             std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  report.submit_seconds = now_micros() * 1e-6;
  // Phase boundary for the queue stats: capture the admission-phase peak,
  // then reset the marks so the drain below measures only its own
  // pressure — without the reset the admission peak bleeds into every
  // later reading and the drain number is meaningless.
  {
    const ShardedServiceStats stats = service.GetStats();
    for (const std::size_t hwm : stats.shard_queue_hwm) {
      report.queue_hwm = std::max(report.queue_hwm, hwm);
    }
  }
  service.ResetQueueHighWater();
  // Bounded drain first so a wedged shard queue surfaces as a warning
  // instead of a silent hang; the unbounded drain then finishes the job.
  if (!service.DrainFor(std::chrono::minutes(2))) {
    SPADE_LOG_WARNING()
        << "Replay: shard queues still busy after 2min; waiting unbounded";
  }
  service.Drain();
  report.wall_seconds = now_micros() * 1e-6;

  if (options.checkpoint_every_edges > 0) {
    checkpointing_done.store(true, std::memory_order_relaxed);
    if (checkpointer.joinable()) checkpointer.join();
    // Final checkpoint so the directory covers the whole stream.
    take_checkpoint();
  }

  // Catch-up pass: a group whose community never *changed* after its edges
  // arrived (e.g. it was dense from the start) produced no alert; credit it
  // from the final snapshots.
  const double drained_at = now_micros();
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    const auto snap = service.ShardSnapshot(s);
    if (snap) mark_detected(*snap, drained_at);
  }

  if (options.final_stitch) {
    report.final_argmax = service.CurrentCommunity();
    const double stitch_start = now_micros();
    report.final_stitched = service.StitchNow();
    report.stitch_millis = (now_micros() - stitch_start) * 1e-3;
    report.stitched_valid = true;
    // A group split across shards may be visible only in the stitched
    // community; credit it from there (at the post-stitch clock).
    mark_detected(report.final_stitched, now_micros());
  }

  report.edges_submitted = n;
  report.submit_failures = failures.load();
  report.edges_processed = service.EdgesProcessed();
  report.alerts = service.AlertsDelivered();
  {
    const ShardedServiceStats stats = service.GetStats();
    for (const std::uint64_t d : stats.shard_detections) {
      report.detections += d;
    }
    report.boundary_edges = stats.boundary_edges;
    for (const std::size_t hwm : stats.shard_queue_hwm) {
      report.queue_hwm_drain = std::max(report.queue_hwm_drain, hwm);
    }
  }
  for (std::size_t gid = 0; gid < groups; ++gid) {
    const double submitted = first_submit[gid].load();
    if (detect_time[gid] < 0.0 || submitted < 0.0) continue;
    ++report.groups_detected;
    report.fraud_latency_micros.Add(std::max(0.0, detect_time[gid] - submitted));
  }
  service.Stop();
  return report;
}

}  // namespace spade
