#include "stream/replayer.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"

namespace spade {

namespace {

/// Marks groups whose vertices intersect the community as detected.
void UpdateDetections(const Community& community,
                      const LabeledStream& stream, double now_micros,
                      std::vector<double>* detection_time) {
  if (detection_time->empty()) return;
  std::unordered_set<VertexId> members(community.members.begin(),
                                       community.members.end());
  for (std::size_t gid = 0; gid < detection_time->size(); ++gid) {
    if ((*detection_time)[gid] >= 0.0) continue;
    for (VertexId v : stream.group_vertices[gid]) {
      if (members.count(v) != 0) {
        (*detection_time)[gid] = now_micros;
        break;
      }
    }
  }
}

}  // namespace

ReplayReport Replay(Spade* spade, const LabeledStream& stream,
                    const ReplayOptions& options) {
  SPADE_CHECK_EQ(stream.edges.size(), stream.group.size());
  ReplayReport report;
  report.group_detection_time.assign(stream.group_vertices.size(), -1.0);

  if (options.use_edge_grouping) {
    spade->TurnOnEdgeGrouping();
  } else {
    spade->TurnOffEdgeGrouping();
  }

  // Pending (queued) edge indices of the current batch/buffer.
  std::vector<std::size_t> queued;
  const std::size_t n = stream.edges.size();

  auto account_fraud = [&](double tau_f, double tau_s) {
    for (std::size_t idx : queued) {
      if (stream.IsFraud(idx)) {
        const double tau_i = static_cast<double>(stream.edges[idx].ts);
        report.fraud_latency_micros.Add(tau_f - tau_i);
        report.fraud_queue_micros.Add(std::max(0.0, tau_s - tau_i));
      }
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Edge& e = stream.edges[i];
    queued.push_back(i);

    bool flushed = false;
    double tau_s = 0.0;
    double process_micros = 0.0;
    Community community;

    if (options.use_edge_grouping) {
      // Spade buffers internally; the pending count reveals whether this
      // edge triggered a flush.
      tau_s = static_cast<double>(e.ts);
      Timer timer;
      SPADE_CHECK(spade->ApplyEdge(e).ok());
      flushed = spade->PendingBenignEdges() == 0;
      if (flushed && options.detect_after_flush) {
        community = spade->Detect();
      }
      process_micros = timer.ElapsedMicros();
    } else if (queued.size() >= options.batch_size || i + 1 == n) {
      tau_s = static_cast<double>(e.ts);
      Timer timer;
      if (queued.size() == 1) {
        SPADE_CHECK(spade->ApplyEdge(stream.edges[queued[0]]).ok());
      } else {
        std::vector<Edge> batch;
        batch.reserve(queued.size());
        for (std::size_t idx : queued) batch.push_back(stream.edges[idx]);
        SPADE_CHECK(spade->ApplyBatchEdges(batch).ok());
      }
      if (options.detect_after_flush) {
        community = spade->Detect();
      }
      process_micros = timer.ElapsedMicros();
      flushed = true;
    }

    if (flushed) {
      const double tau_f = tau_s + process_micros;
      report.total_process_micros += process_micros;
      ++report.flushes;
      account_fraud(tau_f, tau_s);
      if (options.detect_after_flush) {
        UpdateDetections(community, stream, tau_f,
                         &report.group_detection_time);
      }
      queued.clear();
    }
  }

  // Drain anything still buffered (grouping mode).
  if (!queued.empty() || spade->PendingBenignEdges() > 0) {
    const double tau_s =
        n == 0 ? 0.0 : static_cast<double>(stream.edges.back().ts);
    Timer timer;
    Community community = spade->Detect();
    const double process_micros = timer.ElapsedMicros();
    const double tau_f = tau_s + process_micros;
    report.total_process_micros += process_micros;
    ++report.flushes;
    account_fraud(tau_f, tau_s);
    if (options.detect_after_flush) {
      UpdateDetections(community, stream, tau_f,
                       &report.group_detection_time);
    }
    queued.clear();
  }

  report.edges_processed = n;
  report.reorder_stats = spade->cumulative_stats();

  // Prevention ratio: fraction of fraud edges arriving after their group's
  // detection time (those transactions get banned before completion).
  std::size_t fraud_total = 0;
  std::size_t prevented = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t gid = stream.group[i];
    if (gid == kNormalEdge) continue;
    ++fraud_total;
    const double detected_at = report.group_detection_time[gid];
    if (detected_at >= 0.0 &&
        static_cast<double>(stream.edges[i].ts) > detected_at) {
      ++prevented;
    }
  }
  report.prevention_ratio =
      fraud_total == 0
          ? 0.0
          : static_cast<double>(prevented) / static_cast<double>(fraud_total);
  return report;
}

}  // namespace spade
