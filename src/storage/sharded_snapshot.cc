#include "storage/sharded_snapshot.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace spade {

namespace {

constexpr char kMagic[] = "spade-shard-manifest";
constexpr int kVersion = 2;       // written
constexpr int kMinVersion = 1;    // still readable (no boundary line)
constexpr char kManifestName[] = "manifest.spade";

}  // namespace

std::string ShardSnapshotFileName(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%zu.snapshot", shard);
  return buf;
}

std::string ShardManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestName).string();
}

Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest) {
  if (manifest.files.size() != manifest.num_shards) {
    return Status::InvalidArgument(
        "ShardManifest: files/num_shards mismatch");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  const std::string path = ShardManifestPath(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out << kMagic << ' ' << kVersion << '\n';
    out << "shards " << manifest.num_shards << '\n';
    out << "semantics "
        << (manifest.semantics.empty() ? "unknown" : manifest.semantics)
        << '\n';
    for (std::size_t i = 0; i < manifest.files.size(); ++i) {
      out << "file " << i << ' ' << manifest.files[i] << '\n';
    }
    if (!manifest.boundary_file.empty()) {
      out << "boundary " << manifest.boundary_file << '\n';
    }
    out.flush();
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename " + tmp + ": " + ec.message());
  }
  return Status::OK();
}

Status ReadShardManifest(const std::string& dir, ShardManifest* manifest) {
  const std::string path = ShardManifestPath(dir);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no shard manifest at " + path);

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::IOError("bad manifest magic in " + path);
  }
  if (version < kMinVersion || version > kVersion) {
    return Status::IOError("unsupported manifest version in " + path);
  }
  std::string key;
  ShardManifest m;
  if (!(in >> key >> m.num_shards) || key != "shards") {
    return Status::IOError("manifest missing shard count: " + path);
  }
  if (!(in >> key >> m.semantics) || key != "semantics") {
    return Status::IOError("manifest missing semantics: " + path);
  }
  m.files.assign(m.num_shards, "");
  for (std::uint32_t i = 0; i < m.num_shards; ++i) {
    std::size_t index = 0;
    std::string name;
    if (!(in >> key >> index >> name) || key != "file" || index != i ||
        name.empty()) {
      return Status::IOError("manifest shard entry " + std::to_string(i) +
                             " malformed: " + path);
    }
    m.files[i] = name;
  }
  if (version >= 2) {
    // The boundary line is optional even in v2 (a fleet that never saw a
    // cross-shard edge may omit it).
    std::string name;
    if (in >> key) {
      if (key != "boundary" || !(in >> name) || name.empty()) {
        return Status::IOError("manifest boundary entry malformed: " + path);
      }
      m.boundary_file = name;
    }
  }
  *manifest = std::move(m);
  return Status::OK();
}

}  // namespace spade
