#include "storage/sharded_snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "storage/checked_io.h"

namespace spade {

namespace {

constexpr char kMagic[] = "spade-shard-manifest";
constexpr int kVersion = 3;       // written
constexpr int kMinVersion = 1;    // still readable (no chain, no crc line)
constexpr char kManifestName[] = "manifest.spade";

Status Malformed(const std::string& path, const std::string& what) {
  return Status::IOError("manifest " + what + ": " + path);
}

/// Structural chain validation shared by the writer (programming-error
/// guard) and the reader (corruption guard): deltas must be exactly one
/// segment per shard per epoch in (base_epoch, epoch], ascending, and
/// boundary tails one per epoch.
Status ValidateChain(const ShardManifest& m, const std::string& path) {
  if (m.epoch < m.base_epoch) {
    return Malformed(path, "epoch precedes base-epoch");
  }
  const std::uint64_t chain = m.epoch - m.base_epoch;
  if (m.deltas.size() != chain * m.num_shards) {
    return Malformed(path, "delta line count mismatch");
  }
  std::size_t k = 0;
  for (std::uint64_t e = m.base_epoch + 1; e <= m.epoch; ++e) {
    for (std::uint32_t s = 0; s < m.num_shards; ++s, ++k) {
      const DeltaSegmentRef& ref = m.deltas[k];
      if (ref.epoch != e || ref.shard != s || ref.file.empty()) {
        return Malformed(path, "delta chain entry out of order");
      }
    }
  }
  const std::size_t expected_tails = m.boundary_file.empty() ? 0 : chain;
  if (m.boundary_tails.size() != expected_tails) {
    return Malformed(path, "boundary tail count mismatch");
  }
  for (std::uint64_t i = 0; i < m.boundary_tails.size(); ++i) {
    if (m.boundary_tails[i].epoch != m.base_epoch + 1 + i ||
        m.boundary_tails[i].file.empty()) {
      return Malformed(path, "boundary tail entry out of order");
    }
  }
  return Status::OK();
}

}  // namespace

std::string ShardSnapshotFileName(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%zu.snapshot", shard);
  return buf;
}

std::string ShardSnapshotFileName(std::size_t shard, std::uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-%zu.snapshot-%" PRIu64, shard,
                epoch);
  return buf;
}

std::string BoundaryIndexFileName(std::uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "boundary.index-%" PRIu64, epoch);
  return buf;
}

std::string ShardDeltaFileName(std::size_t shard, std::uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "shard-%zu.delta-%" PRIu64, shard, epoch);
  return buf;
}

std::string BoundaryTailFileName(std::uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "boundary.tail-%" PRIu64, epoch);
  return buf;
}

std::string ShardManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestName).string();
}

Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest) {
  if (manifest.files.size() != manifest.num_shards) {
    return Status::InvalidArgument(
        "ShardManifest: files/num_shards mismatch");
  }
  if (manifest.base_epoch < 1) {
    return Status::InvalidArgument("ShardManifest: base_epoch must be >= 1");
  }
  if (manifest.boundary_file.empty()) {
    // Version 3 readers require the boundary line (an index that never saw
    // a cross-shard edge still serializes, as empty buckets).
    return Status::InvalidArgument("ShardManifest: boundary_file is required");
  }
  {
    const Status chain = ValidateChain(manifest, "(in memory)");
    if (!chain.ok()) {
      return Status::InvalidArgument("ShardManifest: " + chain.message());
    }
  }
  for (std::size_t i = 0; i < manifest.placement.size(); ++i) {
    const auto& [pid, shard] = manifest.placement[i];
    if (pid >= manifest.num_shards || shard >= manifest.num_shards ||
        (i > 0 && pid <= manifest.placement[i - 1].first)) {
      return Status::InvalidArgument(
          "ShardManifest: placement rows must be ascending pids within the "
          "fleet");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  std::ostringstream out;
  out << kMagic << ' ' << kVersion << '\n';
  out << "shards " << manifest.num_shards << '\n';
  out << "semantics "
      << (manifest.semantics.empty() ? "unknown" : manifest.semantics)
      << '\n';
  out << "epoch " << manifest.epoch << '\n';
  out << "base-epoch " << manifest.base_epoch << '\n';
  for (std::size_t i = 0; i < manifest.files.size(); ++i) {
    out << "file " << i << ' ' << manifest.files[i] << '\n';
  }
  for (const DeltaSegmentRef& ref : manifest.deltas) {
    out << "delta " << ref.epoch << ' ' << ref.shard << ' ' << ref.file
        << '\n';
  }
  if (!manifest.boundary_file.empty()) {
    out << "boundary " << manifest.boundary_file << '\n';
    for (const BoundaryTailRef& ref : manifest.boundary_tails) {
      out << "boundary-delta " << ref.epoch << ' ' << ref.file << '\n';
    }
    // Optional line: format 1 stays byte-identical to older manifests.
    if (manifest.boundary_format != 1) {
      out << "boundary-format " << manifest.boundary_format << '\n';
    }
  }
  // Sparse placement rows (rebalanced fleets only): a default placement
  // emits nothing, keeping the manifest byte-identical to older writers.
  for (const auto& [pid, shard] : manifest.placement) {
    out << "placement " << pid << ' ' << shard << '\n';
  }
  std::string content = out.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %016" PRIx64 "\n",
                Crc64(content.data(), content.size()));
  content += crc_line;
  return storage::WriteFileAtomic(ShardManifestPath(dir), content);
}

Status ReadShardManifest(const std::string& dir, ShardManifest* manifest) {
  const std::string path = ShardManifestPath(dir);
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("no shard manifest at " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    content = buffer.str();
  }

  std::istringstream in(content);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Malformed(path, "has bad magic");
  }
  if (version < kMinVersion || version > kVersion) {
    return Malformed(path, "has unsupported version");
  }
  std::string key;
  ShardManifest m;
  if (!(in >> key >> m.num_shards) || key != "shards") {
    return Malformed(path, "missing shard count");
  }
  // Plausibility gate before any allocation sized by manifest-declared
  // counts (same hazard as the binary headers, checked_io.h): every shard
  // costs at least one "file ..." line, so a count beyond the manifest's
  // own size is corrupt — reject it instead of letting reserve() abort.
  if (m.num_shards > content.size()) {
    return Malformed(path, "shard count exceeds the manifest size");
  }
  if (!(in >> key >> m.semantics) || key != "semantics") {
    return Malformed(path, "missing semantics");
  }
  if (version >= 3) {
    if (!(in >> key >> m.epoch) || key != "epoch") {
      return Malformed(path, "missing epoch");
    }
    if (!(in >> key >> m.base_epoch) || key != "base-epoch") {
      return Malformed(path, "missing base-epoch");
    }
    if (m.base_epoch < 1 || m.epoch < m.base_epoch) {
      return Malformed(path, "has an invalid epoch range");
    }
    // Same gate for the chain: every delta epoch costs at least one
    // "delta ..." line per shard (divide rather than multiply, so a
    // crafted epoch cannot overflow the product).
    const std::uint64_t max_chain =
        content.size() / std::max<std::uint32_t>(1, m.num_shards);
    if (m.epoch - m.base_epoch > max_chain) {
      return Malformed(path, "chain length exceeds the manifest size");
    }
  }
  m.files.assign(m.num_shards, "");
  for (std::uint32_t i = 0; i < m.num_shards; ++i) {
    std::size_t index = 0;
    std::string name;
    if (!(in >> key >> index >> name) || key != "file" || index != i ||
        name.empty()) {
      return Malformed(path,
                       "shard entry " + std::to_string(i) + " malformed");
    }
    m.files[i] = name;
  }
  if (version >= 3) {
    const std::uint64_t chain = m.epoch - m.base_epoch;
    m.deltas.reserve(chain * m.num_shards);
    for (std::uint64_t e = m.base_epoch + 1; e <= m.epoch; ++e) {
      for (std::uint32_t s = 0; s < m.num_shards; ++s) {
        DeltaSegmentRef ref;
        if (!(in >> key >> ref.epoch >> ref.shard >> ref.file) ||
            key != "delta" || ref.epoch != e || ref.shard != s ||
            ref.file.empty()) {
          return Malformed(path, "delta entry malformed");
        }
        m.deltas.push_back(std::move(ref));
      }
    }
    if (!(in >> key >> m.boundary_file) || key != "boundary" ||
        m.boundary_file.empty()) {
      return Malformed(path, "missing boundary entry");
    }
    m.boundary_tails.reserve(chain);
    for (std::uint64_t e = m.base_epoch + 1; e <= m.epoch; ++e) {
      BoundaryTailRef ref;
      if (!(in >> key >> ref.epoch >> ref.file) || key != "boundary-delta" ||
          ref.epoch != e || ref.file.empty()) {
        return Malformed(path, "boundary-delta entry malformed");
      }
      m.boundary_tails.push_back(std::move(ref));
    }
    if (!(in >> key)) return Malformed(path, "missing crc line");
    if (key == "boundary-format") {
      if (!(in >> m.boundary_format)) {
        return Malformed(path, "boundary-format entry malformed");
      }
      // 1 never appears on the wire (the writer omits it); 2 = compacted.
      if (m.boundary_format != 2) {
        return Malformed(path, "has an unsupported boundary-format");
      }
      if (!(in >> key)) return Malformed(path, "missing crc line");
    }
    // Sparse placement rows (zero or more), strictly ascending pid. The
    // pid bound doubles as the row-count bound, so no allocation gate is
    // needed beyond num_shards' own.
    while (key == "placement") {
      std::uint32_t pid = 0;
      std::uint32_t shard = 0;
      if (!(in >> pid >> shard) || pid >= m.num_shards ||
          shard >= m.num_shards ||
          (!m.placement.empty() && pid <= m.placement.back().first)) {
        return Malformed(path, "placement entry malformed");
      }
      m.placement.push_back({pid, shard});
      if (!(in >> key)) return Malformed(path, "missing crc line");
    }
    // The crc line covers every byte above it — locate it in the raw
    // content (the last line) and recompute.
    std::uint64_t stored = 0;
    if (key != "crc" || !(in >> std::hex >> stored)) {
      return Malformed(path, "missing crc line");
    }
    const std::size_t crc_pos = content.rfind("crc ");
    if (crc_pos == std::string::npos || crc_pos == 0 ||
        content[crc_pos - 1] != '\n') {
      return Malformed(path, "crc line misplaced");
    }
    // The crc line must be byte-exactly `crc <16 hex>\n` and the file's
    // final bytes. Raw-byte validation, not stream tokens: token parsing
    // skips whitespace, silently accepting e.g. the final newline flipped
    // to a space — and bytes inside this line are the only ones the CRC
    // itself cannot vouch for.
    const std::string_view crc_line(content.data() + crc_pos,
                                    content.size() - crc_pos);
    constexpr std::size_t kCrcLineLen = 4 + 16 + 1;  // "crc " + hex + '\n'
    if (crc_line.size() != kCrcLineLen || crc_line.back() != '\n' ||
        crc_line.substr(4, 16).find_first_not_of("0123456789abcdef") !=
            std::string_view::npos) {
      return Malformed(path, "has a malformed or non-final crc line");
    }
    if (Crc64(content.data(), crc_pos) != stored) {
      return Malformed(path, "failed its crc check (corrupt or torn)");
    }
  } else if (version >= 2) {
    // The boundary line is optional even in v2 (a fleet that never saw a
    // cross-shard edge may omit it).
    std::string name;
    if (in >> key) {
      if (key != "boundary" || !(in >> name) || name.empty()) {
        return Malformed(path, "boundary entry malformed");
      }
      m.boundary_file = name;
    }
  }
  *manifest = std::move(m);
  return Status::OK();
}

}  // namespace spade
