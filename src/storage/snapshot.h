// Binary snapshot persistence for the detector state.
//
// A from-scratch peel of a million-scale graph takes tens of seconds
// (Table 4's static column) — exactly what Spade exists to avoid — so a
// restarted detector must not pay it either. A snapshot captures the
// weighted graph plus the peeling sequence/weights; restoring yields a
// detector that resumes incremental updates immediately.
//
// Format (little-endian, versioned, CRC-protected):
//   [magic u64][version u32]
//   [num_vertices u64][num_edges u64]
//   vertex weights: num_vertices x f64
//   edges: num_edges x { src u32, dst u32, weight f64 }
//   [has_state u8]
//   state: num_vertices x { vertex u32, delta f64 }   (peeling order)
//   [crc64 of everything above]

#pragma once

#include <string>

#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "peel/peel_state.h"
#include "storage/checked_io.h"  // Crc64 + the shared framing discipline

namespace spade {

/// Writes graph (+ optional peel state) to `path` atomically (temp file +
/// rename). When `state` is non-null it must cover exactly the graph's
/// vertices.
Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state);

/// Reads a snapshot back. `state` may be null to restore only the graph;
/// if the snapshot carries no state, `*state_present` is false and `state`
/// is left untouched.
Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present);

}  // namespace spade
