// Binary snapshot persistence for the detector state.
//
// A from-scratch peel of a million-scale graph takes tens of seconds
// (Table 4's static column) — exactly what Spade exists to avoid — so a
// restarted detector must not pay it either. A snapshot captures the
// weighted graph plus the peeling sequence/weights; restoring yields a
// detector that resumes incremental updates immediately.
//
// Format (little-endian, versioned, CRC-protected):
//   [magic u64][version u32]
//   [num_vertices u64][num_edges u64]
//   vertex weights: num_vertices x f64
//   edges: num_edges x { src u32, dst u32, weight f64 }
//   [has_state u8]
//   state: num_vertices x { vertex u32, delta f64 }   (peeling order)
//   version >= 2 only:
//     [num_window u64]
//     window: num_window x { src u32, dst u32, weight f64, ts i64 }
//   [crc64 of everything above]
//
// Version 2 exists for windowed detectors: the window log (applied weight +
// event timestamp per live edge, oldest first) must survive a restart or
// the restored detector cannot retire what the live one would. Writers emit
// version 1 whenever the window is empty, so every pre-window snapshot —
// and every insert-only deployment — stays byte-identical.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/dynamic_graph.h"
#include "graph/types.h"
#include "peel/peel_state.h"
#include "storage/checked_io.h"  // Crc64 + the shared framing discipline

namespace spade {

/// Writes graph (+ optional peel state) to `path` atomically (temp file +
/// rename). When `state` is non-null it must cover exactly the graph's
/// vertices.
Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state);

/// As above, plus a window log (live in-window edges, oldest first, each
/// carrying its applied weight and event timestamp). An empty window writes
/// a version-1 file, byte-identical to the overload above.
Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state, std::span<const Edge> window);

/// Reads a snapshot back. `state` may be null to restore only the graph;
/// if the snapshot carries no state, `*state_present` is false and `state`
/// is left untouched.
Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present);

/// As above, plus the window log. `window` may be null (the section is
/// validated and skipped); a version-1 file yields an empty window.
Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present,
                    std::vector<Edge>* window);

}  // namespace spade
