// Delta segments: the per-shard unit of incremental checkpointing.
//
// A full snapshot (storage/snapshot.h) costs O(graph); a delta segment
// costs O(edges since the last checkpoint), which is what makes the
// checkpoint cadence proportional to traffic instead of state — the same
// affected-area principle the incremental peeler applies to updates
// (DESIGN.md §5).
//
// A segment records the shard's *applied history* since the previous
// checkpoint epoch: the raw edges in application order, interleaved with
// flush markers at every point where the live detector flushed its benign
// buffer. Restoring replays that history through the normal
// Spade::ApplyEdge / Flush path, so the restored detector makes byte-for-
// byte the same decisions (benign classification, batch boundaries,
// state-dependent edge weights) the live one made — replay(base + chain)
// is bit-identical to the detector that never restarted. Markers are what
// buy exactness for state-dependent semantics (FD weighs an edge against
// the graph *at application time*, which depends on how much of the benign
// buffer had been folded in).
//
// Chain integrity: each segment names the epoch it advances FROM
// (`prev_epoch`) and TO (`epoch`); restore refuses a segment that does not
// extend the epoch it has reconstructed so far. Framing is the shared
// CRC-64 trailer discipline (storage/checked_io.h): any torn or mutated
// segment is detected before a single record is replayed.
//
// Format (little-endian):
//   [magic u64 "SPADE_DS"][version u32]
//   [shard u32][prev_epoch u64][epoch u64]
//   [num_records u64]
//   records: [tag u8 = 0][src u32][dst u32][weight f64][ts i64]  (edge)
//          | [tag u8 = 1]                                        (flush)
//          | [tag u8 = 2][src u32][dst u32][weight f64][ts i64]  (retire)
//   [crc64 trailer]
//
// Retire records (tag 2, version 2) carry the *applied* weight the edge
// entered the graph with — the deletion path must subtract exactly what the
// insertion added — plus the event timestamp, so replay reproduces a
// windowed detector's insert-then-retire history bit-for-bit. Writers emit
// version 1 when a segment has no retire records, keeping insert-only
// chains byte-identical to pre-window builds.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace spade {

/// One entry of a shard's applied history: an edge insertion, a benign-
/// buffer flush boundary, or a window-expiry retirement (edge.weight is the
/// applied weight being subtracted, edge.ts the original event time).
struct DeltaRecord {
  Edge edge;            // valid when !flush
  bool flush = false;   // true: the detector flushed here; `edge` is unused
  bool retire = false;  // true: the detector retired `edge` here

  static DeltaRecord Flush() {
    DeltaRecord r;
    r.flush = true;
    return r;
  }
  static DeltaRecord Insert(const Edge& e) {
    DeltaRecord r;
    r.edge = e;
    return r;
  }
  static DeltaRecord Retire(const Edge& e) {
    DeltaRecord r;
    r.edge = e;
    r.retire = true;
    return r;
  }
};

/// A parsed (or to-be-written) delta segment.
struct DeltaSegment {
  std::uint32_t shard = 0;
  std::uint64_t prev_epoch = 0;  // checkpoint epoch this segment extends
  std::uint64_t epoch = 0;       // checkpoint epoch it advances to
  std::vector<DeltaRecord> records;

  std::size_t NumEdges() const {
    std::size_t n = 0;
    for (const DeltaRecord& r : records) n += r.flush ? 0 : 1;
    return n;
  }
};

/// Atomically writes `segment` to `path` (CRC-64 trailer, temp + rename).
/// `bytes_written` (optional) receives the payload + trailer size.
Status WriteDeltaSegment(const std::string& path, const DeltaSegment& segment,
                         std::uint64_t* bytes_written = nullptr);

/// Reads a segment back, verifying magic, version and the CRC trailer.
/// A truncated, mutated or non-segment file yields kIOError and leaves
/// `*segment` untouched.
Status ReadDeltaSegment(const std::string& path, DeltaSegment* segment);

}  // namespace spade
