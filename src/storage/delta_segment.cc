#include "storage/delta_segment.h"

#include "storage/checked_io.h"

namespace spade {

namespace {

constexpr std::uint64_t kDeltaMagic = 0x53504144455F4453ULL;  // "SPADE_DS"
constexpr std::uint32_t kDeltaVersion = 1;
// Version 2 adds the retire record kind (tag 2). Only emitted when a
// segment actually contains one, so insert-only chains stay byte-stable.
constexpr std::uint32_t kDeltaVersionRetire = 2;
constexpr std::uint8_t kTagEdge = 0;
constexpr std::uint8_t kTagFlush = 1;
constexpr std::uint8_t kTagRetire = 2;

}  // namespace

Status WriteDeltaSegment(const std::string& path, const DeltaSegment& segment,
                         std::uint64_t* bytes_written) {
  bool has_retire = false;
  for (const DeltaRecord& r : segment.records) {
    if (r.retire) {
      has_retire = true;
      break;
    }
  }
  storage::ChecksummedFileWriter writer(path);
  writer.Write(kDeltaMagic);
  writer.Write(has_retire ? kDeltaVersionRetire : kDeltaVersion);
  writer.Write(segment.shard);
  writer.Write(segment.prev_epoch);
  writer.Write(segment.epoch);
  writer.Write(static_cast<std::uint64_t>(segment.records.size()));
  for (const DeltaRecord& r : segment.records) {
    if (r.flush) {
      writer.Write(kTagFlush);
      continue;
    }
    writer.Write(r.retire ? kTagRetire : kTagEdge);
    writer.Write(static_cast<std::uint32_t>(r.edge.src));
    writer.Write(static_cast<std::uint32_t>(r.edge.dst));
    writer.Write(r.edge.weight);
    writer.Write(r.edge.ts);
  }
  const std::uint64_t payload = writer.bytes_written();
  SPADE_RETURN_NOT_OK(writer.Finish());
  if (bytes_written != nullptr) *bytes_written = payload + sizeof(std::uint64_t);
  return Status::OK();
}

Status ReadDeltaSegment(const std::string& path, DeltaSegment* segment) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::IOError("cannot open " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (!reader.Read(&magic) || magic != kDeltaMagic) {
    return Status::IOError(path + ": not a Spade delta segment");
  }
  if (!reader.Read(&version) ||
      (version != kDeltaVersion && version != kDeltaVersionRetire)) {
    return Status::IOError(path + ": unsupported delta segment version");
  }
  DeltaSegment parsed;
  std::uint64_t num_records = 0;
  if (!reader.Read(&parsed.shard) || !reader.Read(&parsed.prev_epoch) ||
      !reader.Read(&parsed.epoch) || !reader.Read(&num_records)) {
    return Status::IOError(path + ": truncated delta segment header");
  }
  if (parsed.epoch != parsed.prev_epoch + 1) {
    return Status::IOError(path + ": delta segment epoch discontinuity");
  }
  // Pre-allocation plausibility gate (see checked_io.h): every record
  // costs at least its 1-byte tag.
  if (reader.CountExceedsFile(num_records, 1)) {
    return Status::IOError(path + ": record count exceeds the file size");
  }
  parsed.records.reserve(num_records);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    std::uint8_t tag = 0;
    if (!reader.Read(&tag)) {
      return Status::IOError(path + ": truncated delta segment records");
    }
    if (tag == kTagFlush) {
      parsed.records.push_back(DeltaRecord::Flush());
      continue;
    }
    if (tag != kTagEdge && tag != kTagRetire) {
      return Status::IOError(path + ": unknown delta record tag");
    }
    std::uint32_t src = 0, dst = 0;
    Edge e;
    if (!reader.Read(&src) || !reader.Read(&dst) || !reader.Read(&e.weight) ||
        !reader.Read(&e.ts)) {
      return Status::IOError(path + ": truncated delta edge record");
    }
    e.src = src;
    e.dst = dst;
    if (e.src == e.dst) {
      return Status::IOError(path + ": delta record is a self-loop");
    }
    parsed.records.push_back(tag == kTagRetire ? DeltaRecord::Retire(e)
                                               : DeltaRecord::Insert(e));
  }
  SPADE_RETURN_NOT_OK(reader.VerifyTrailer());
  *segment = std::move(parsed);
  return Status::OK();
}

}  // namespace spade
