#include "storage/snapshot.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace spade {

namespace {

constexpr std::uint64_t kMagic = 0x53504144455F5631ULL;  // "SPADE_V1"
constexpr std::uint32_t kVersion = 1;

/// CRC-64/XZ table, generated once.
const std::array<std::uint64_t, 256>& CrcTable() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

/// Streaming writer that accumulates the CRC as it goes.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::ofstream* out) : out_(out) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(value));
  }

  void WriteBytes(const void* data, std::size_t size) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    crc_ = Crc64(data, size, crc_);
  }

  std::uint64_t crc() const { return crc_; }

 private:
  std::ofstream* out_;
  std::uint64_t crc_ = 0;
};

/// Streaming reader mirroring ChecksummedWriter.
class ChecksummedReader {
 public:
  explicit ChecksummedReader(std::ifstream* in) : in_(in) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(*value));
  }

  bool ReadBytes(void* data, std::size_t size) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!*in_) return false;
    crc_ = Crc64(data, size, crc_);
    return true;
  }

  std::uint64_t crc() const { return crc_; }

 private:
  std::ifstream* in_;
  std::uint64_t crc_ = 0;
};

}  // namespace

std::uint64_t Crc64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = CrcTable()[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state) {
  if (state != nullptr && state->size() != g.NumVertices()) {
    return Status::InvalidArgument(
        "SaveSnapshot: peel state does not cover the graph");
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    ChecksummedWriter writer(&out);

    writer.Write(kMagic);
    writer.Write(kVersion);
    writer.Write(static_cast<std::uint64_t>(g.NumVertices()));
    writer.Write(static_cast<std::uint64_t>(g.NumEdges()));
    for (std::size_t v = 0; v < g.NumVertices(); ++v) {
      writer.Write(g.VertexWeight(static_cast<VertexId>(v)));
    }
    for (std::size_t v = 0; v < g.NumVertices(); ++v) {
      for (const auto& e : g.OutNeighbors(static_cast<VertexId>(v))) {
        writer.Write(static_cast<std::uint32_t>(v));
        writer.Write(static_cast<std::uint32_t>(e.vertex));
        writer.Write(e.weight);
      }
    }
    const std::uint8_t has_state = state != nullptr ? 1 : 0;
    writer.Write(has_state);
    if (state != nullptr) {
      for (std::size_t i = 0; i < state->size(); ++i) {
        writer.Write(static_cast<std::uint32_t>(state->VertexAt(i)));
        writer.Write(state->DeltaAt(i));
      }
    }
    const std::uint64_t crc = writer.crc();
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!out) return Status::IOError("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  ChecksummedReader reader(&in);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return Status::IOError(path + ": not a Spade snapshot");
  }
  if (!reader.Read(&version) || version != kVersion) {
    return Status::IOError(path + ": unsupported snapshot version");
  }
  std::uint64_t num_vertices = 0, num_edges = 0;
  if (!reader.Read(&num_vertices) || !reader.Read(&num_edges)) {
    return Status::IOError(path + ": truncated header");
  }

  DynamicGraph graph(num_vertices);
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    double w = 0;
    if (!reader.Read(&w)) return Status::IOError(path + ": truncated weights");
    graph.SetVertexWeight(static_cast<VertexId>(v), w);
  }
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    std::uint32_t src = 0, dst = 0;
    double w = 0;
    if (!reader.Read(&src) || !reader.Read(&dst) || !reader.Read(&w)) {
      return Status::IOError(path + ": truncated edges");
    }
    SPADE_RETURN_NOT_OK(graph.AddEdge(src, dst, w));
  }

  std::uint8_t has_state = 0;
  if (!reader.Read(&has_state)) {
    return Status::IOError(path + ": truncated state flag");
  }
  PeelState loaded_state(num_vertices);
  if (has_state != 0) {
    for (std::uint64_t i = 0; i < num_vertices; ++i) {
      std::uint32_t v = 0;
      double delta = 0;
      if (!reader.Read(&v) || !reader.Read(&delta)) {
        return Status::IOError(path + ": truncated peel state");
      }
      if (v >= num_vertices) {
        return Status::IOError(path + ": peel state vertex out of range");
      }
      loaded_state.Append(static_cast<VertexId>(v), delta);
    }
  }

  const std::uint64_t computed = reader.crc();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in || stored != computed) {
    return Status::IOError(path + ": checksum mismatch (corrupt snapshot)");
  }

  *g = std::move(graph);
  if (state_present != nullptr) *state_present = has_state != 0;
  if (state != nullptr && has_state != 0) *state = std::move(loaded_state);
  return Status::OK();
}

}  // namespace spade
