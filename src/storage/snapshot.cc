#include "storage/snapshot.h"

#include <cstdint>

#include "storage/checked_io.h"

namespace spade {

namespace {

constexpr std::uint64_t kMagic = 0x53504144455F5631ULL;  // "SPADE_V1"
constexpr std::uint32_t kVersion = 1;
// Version 2 appends the window-log section (see snapshot.h). Only emitted
// when the window is non-empty so insert-only snapshots stay byte-stable.
constexpr std::uint32_t kVersionWindow = 2;

}  // namespace

Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state) {
  return SaveSnapshot(path, g, state, std::span<const Edge>());
}

Status SaveSnapshot(const std::string& path, const DynamicGraph& g,
                    const PeelState* state, std::span<const Edge> window) {
  if (state != nullptr && state->size() != g.NumVertices()) {
    return Status::InvalidArgument(
        "SaveSnapshot: peel state does not cover the graph");
  }
  storage::ChecksummedFileWriter writer(path);

  writer.Write(kMagic);
  writer.Write(window.empty() ? kVersion : kVersionWindow);
  writer.Write(static_cast<std::uint64_t>(g.NumVertices()));
  writer.Write(static_cast<std::uint64_t>(g.NumEdges()));
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    writer.Write(g.VertexWeight(static_cast<VertexId>(v)));
  }
  for (std::size_t v = 0; v < g.NumVertices(); ++v) {
    for (const auto& e : g.OutNeighbors(static_cast<VertexId>(v))) {
      writer.Write(static_cast<std::uint32_t>(v));
      writer.Write(static_cast<std::uint32_t>(e.vertex));
      writer.Write(e.weight);
    }
  }
  const std::uint8_t has_state = state != nullptr ? 1 : 0;
  writer.Write(has_state);
  if (state != nullptr) {
    for (std::size_t i = 0; i < state->size(); ++i) {
      writer.Write(static_cast<std::uint32_t>(state->VertexAt(i)));
      writer.Write(state->DeltaAt(i));
    }
  }
  if (!window.empty()) {
    writer.Write(static_cast<std::uint64_t>(window.size()));
    for (const Edge& e : window) {
      writer.Write(static_cast<std::uint32_t>(e.src));
      writer.Write(static_cast<std::uint32_t>(e.dst));
      writer.Write(e.weight);
      writer.Write(static_cast<std::int64_t>(e.ts));
    }
  }
  return writer.Finish();
}

Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present) {
  return LoadSnapshot(path, g, state, state_present, nullptr);
}

Status LoadSnapshot(const std::string& path, DynamicGraph* g,
                    PeelState* state, bool* state_present,
                    std::vector<Edge>* window) {
  storage::ChecksummedFileReader reader(path);
  if (!reader.ok()) return Status::IOError("cannot open " + path);

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  if (!reader.Read(&magic) || magic != kMagic) {
    return Status::IOError(path + ": not a Spade snapshot");
  }
  if (!reader.Read(&version) ||
      (version != kVersion && version != kVersionWindow)) {
    return Status::IOError(path + ": unsupported snapshot version");
  }
  std::uint64_t num_vertices = 0, num_edges = 0;
  if (!reader.Read(&num_vertices) || !reader.Read(&num_edges)) {
    return Status::IOError(path + ": truncated header");
  }
  // Plausibility gate before allocating: the CRC only vouches for these
  // counts at the end of the file, and a flipped high byte here would
  // otherwise size the graph in the terabytes. Every vertex costs >= 8
  // payload bytes (its weight) and every edge >= 16 (src, dst, weight).
  if (reader.CountExceedsFile(num_vertices, 8) ||
      reader.CountExceedsFile(num_edges, 16)) {
    return Status::IOError(path + ": header counts exceed the file size");
  }

  DynamicGraph graph(num_vertices);
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    double w = 0;
    if (!reader.Read(&w)) return Status::IOError(path + ": truncated weights");
    graph.SetVertexWeight(static_cast<VertexId>(v), w);
  }
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    std::uint32_t src = 0, dst = 0;
    double w = 0;
    if (!reader.Read(&src) || !reader.Read(&dst) || !reader.Read(&w)) {
      return Status::IOError(path + ": truncated edges");
    }
    SPADE_RETURN_NOT_OK(graph.AddEdge(src, dst, w));
  }

  std::uint8_t has_state = 0;
  if (!reader.Read(&has_state)) {
    return Status::IOError(path + ": truncated state flag");
  }
  PeelState loaded_state(num_vertices);
  if (has_state != 0) {
    for (std::uint64_t i = 0; i < num_vertices; ++i) {
      std::uint32_t v = 0;
      double delta = 0;
      if (!reader.Read(&v) || !reader.Read(&delta)) {
        return Status::IOError(path + ": truncated peel state");
      }
      if (v >= num_vertices) {
        return Status::IOError(path + ": peel state vertex out of range");
      }
      loaded_state.Append(static_cast<VertexId>(v), delta);
    }
  }

  std::vector<Edge> loaded_window;
  if (version >= kVersionWindow) {
    std::uint64_t num_window = 0;
    if (!reader.Read(&num_window)) {
      return Status::IOError(path + ": truncated window count");
    }
    if (reader.CountExceedsFile(num_window, 24)) {
      return Status::IOError(path + ": window count exceeds the file size");
    }
    loaded_window.reserve(num_window);
    for (std::uint64_t i = 0; i < num_window; ++i) {
      std::uint32_t src = 0, dst = 0;
      double w = 0;
      std::int64_t ts = 0;
      if (!reader.Read(&src) || !reader.Read(&dst) || !reader.Read(&w) ||
          !reader.Read(&ts)) {
        return Status::IOError(path + ": truncated window log");
      }
      if (src >= num_vertices || dst >= num_vertices) {
        return Status::IOError(path + ": window edge endpoint out of range");
      }
      loaded_window.push_back(
          Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst), w,
               static_cast<Timestamp>(ts)});
    }
  }

  SPADE_RETURN_NOT_OK(reader.VerifyTrailer());

  *g = std::move(graph);
  if (state_present != nullptr) *state_present = has_state != 0;
  if (state != nullptr && has_state != 0) *state = std::move(loaded_state);
  if (window != nullptr) *window = std::move(loaded_window);
  return Status::OK();
}

}  // namespace spade
