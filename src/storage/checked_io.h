// Shared CRC-64-framed file I/O for every persistence format (snapshots,
// delta segments, the boundary index and its tails, the manifest).
//
// Every binary file in the snapshot directory follows one discipline:
// little-endian fixed-width fields, a CRC-64/XZ accumulated over every
// payload byte, the CRC appended as an 8-byte trailer, and an atomic
// temp-file + rename publish. ChecksummedFileWriter/Reader implement that
// discipline once so a format author cannot forget a piece of it.
//
// Crash-consistency model: rename is atomic, but nothing here fsyncs — a
// host crash can therefore leave a file at its *final* path whose tail data
// pages never hit disk (truncated content under a durable rename). Readers
// must treat any truncation or mutation as detectable: the CRC trailer
// covers every byte, so a torn or flipped file always fails the trailer
// check (CRC-64 detects all single-byte and all burst-<64-bit errors).
//
// TruncatingWriter seam: the crash-recovery harness injects exactly that
// failure mode. When a truncation hook is installed, Finish() truncates the
// temp file to the hook's byte limit *before* the rename, producing the
// torn-file-at-final-path artifact a real crash leaves behind. The hook is
// test-only and not thread-safe; production code never installs one.

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/status.h"

namespace spade {

/// CRC-64/XZ used by every snapshot trailer; exposed for tests.
std::uint64_t Crc64(const void* data, std::size_t size, std::uint64_t seed = 0);

namespace storage {

/// Fault-injection seam (the "TruncatingWriter"): given the final path of a
/// file about to be published, returns the maximum number of bytes that
/// survive the simulated crash, or a negative value for "intact". Installed
/// by crash-recovery tests only.
using TruncationFn = std::function<std::int64_t(const std::string& path)>;

/// Installs (or, with nullptr, removes) the truncation hook. Testing only;
/// not thread-safe against concurrent writers.
void SetTruncationHookForTesting(TruncationFn hook);

/// RAII installer so a test cannot leak the hook past a failure.
class ScopedTruncationHook {
 public:
  explicit ScopedTruncationHook(TruncationFn hook) {
    SetTruncationHookForTesting(std::move(hook));
  }
  ~ScopedTruncationHook() { SetTruncationHookForTesting(nullptr); }
  ScopedTruncationHook(const ScopedTruncationHook&) = delete;
  ScopedTruncationHook& operator=(const ScopedTruncationHook&) = delete;
};

/// Streaming writer: accumulates the CRC over every byte, then Finish()
/// appends the trailer and atomically publishes temp -> final path (after
/// applying the truncation hook, if any).
class ChecksummedFileWriter {
 public:
  /// Opens `<path>.tmp` for writing; the final file appears only on a
  /// successful Finish().
  explicit ChecksummedFileWriter(const std::string& path);
  ~ChecksummedFileWriter();

  ChecksummedFileWriter(const ChecksummedFileWriter&) = delete;
  ChecksummedFileWriter& operator=(const ChecksummedFileWriter&) = delete;

  /// False when the temp file could not be opened (Finish() reports it).
  bool ok() const { return static_cast<bool>(out_); }

  void WriteBytes(const void* data, std::size_t size);

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(value));
  }

  /// Payload bytes written so far (excludes the 8-byte CRC trailer).
  std::uint64_t bytes_written() const { return bytes_; }

  /// Appends the CRC trailer, closes, applies the truncation hook and
  /// renames to the final path. On failure the temp file is removed.
  Status Finish();

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream out_;
  std::uint64_t crc_ = 0;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// Streaming reader mirroring ChecksummedFileWriter: Read calls accumulate
/// the CRC; VerifyTrailer() checks the stored trailer against it and that
/// no payload bytes remain.
class ChecksummedFileReader {
 public:
  explicit ChecksummedFileReader(const std::string& path);

  /// False when the file could not be opened.
  bool ok() const { return static_cast<bool>(in_); }

  bool ReadBytes(void* data, std::size_t size);

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(*value));
  }

  /// Reads the 8-byte trailer and compares it with the accumulated CRC.
  /// Fails on truncation (missing trailer) and on any payload mutation.
  Status VerifyTrailer();

  /// Total file size in bytes (0 when the file could not be stat'd).
  /// Loaders MUST bound every header-declared element count against this
  /// before allocating: counts are validated by the CRC only at the END of
  /// the file, so a flipped high byte in a count field would otherwise
  /// drive a terabyte-scale allocation before the corruption is detected.
  std::uint64_t file_size() const { return size_; }

  /// True when `count` elements of at least `min_bytes_each` payload bytes
  /// cannot possibly fit in this file — the cheap plausibility gate for
  /// the allocation hazard above.
  bool CountExceedsFile(std::uint64_t count,
                        std::uint64_t min_bytes_each) const {
    return min_bytes_each != 0 && count > size_ / min_bytes_each;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
  std::uint64_t crc_ = 0;
  std::uint64_t size_ = 0;
};

/// Writes `content` to `path` atomically (temp + rename), applying the
/// truncation hook. Used by the text manifest, which carries its own
/// in-band CRC line instead of a binary trailer.
Status WriteFileAtomic(const std::string& path, std::string_view content);

}  // namespace storage
}  // namespace spade
