// Sharded snapshot persistence: a manifest plus one binary base-snapshot
// file per shard (snapshot.h format) and, since manifest version 3, a
// chain of per-shard delta segments (delta_segment.h) and boundary-index
// tails — all inside one directory.
//
// The manifest is deliberately a small line-oriented text file — it holds
// only topology (shard count, per-shard file names, the checkpoint-epoch
// chain, semantics name), while all bulk data stays in the CRC-protected
// binary files. A restore validates that the manifest's shard count
// matches the restoring service before touching any shard, so a 4-shard
// snapshot cannot be half-loaded into an 8-shard service.
//
// Format (manifest.spade, version 3 — lines in exactly this order):
//   spade-shard-manifest 3
//   shards <N>
//   semantics <name>
//   epoch <E>                                   (checkpoint epoch restored to)
//   base-epoch <B>                              (epoch of the base snapshots)
//   file <shard-index> <relative-file-name>     (N lines, dense 0..N-1)
//   delta <epoch> <shard-index> <relative-file-name>
//                                               (N lines per epoch B+1..E)
//   boundary <relative-file-name>               (base boundary index)
//   boundary-delta <epoch> <relative-file-name> (one line per epoch B+1..E)
//   boundary-format <F>                         (optional; omitted when F=1)
//   placement <pid> <shard>                     (sparse, ascending pid;
//                                                only non-default owners)
//   crc <16 hex digits>                         (CRC-64 of all bytes above)
//
// `boundary-format` announces the base boundary-index file format (2 =
// compacted blocks + raw edges) so a reader can reject an unsupported
// base up front instead of failing mid-parse. Its absence means format 1
// (raw edges only) — which keeps every manifest written before compaction
// existed byte-identical, still version 3.
//
// `placement` rows record where each partition lived when the checkpoint
// was taken, for fleets whose work-stealing rebalancer moved partitions
// off their default worker (pid % num_workers). They are sparse — a
// partition on its default worker writes no row — so a never-rebalanced
// fleet's manifest stays byte-identical to the pre-rebalance format.
// Restore uses them to re-create the exact live placement; a reader that
// predates them would fail the CRC, which is the right outcome (it cannot
// honor the placement).
//
// The trailing `crc` line closes the one hole binary trailers cannot
// cover: a single flipped byte anywhere in the manifest — including in an
// "informational" field — fails the check instead of silently steering the
// restore.
//
// Back-compat: version 1 (no boundary line, no chain) and version 2
// (optional boundary line, no chain, no crc) directories still load; they
// restore with an empty chain at epoch 0. The writer always emits v3.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace spade {

/// One delta segment referenced by the manifest.
struct DeltaSegmentRef {
  std::uint64_t epoch = 0;
  std::uint32_t shard = 0;
  std::string file;
};

/// One boundary-index tail referenced by the manifest.
struct BoundaryTailRef {
  std::uint64_t epoch = 0;
  std::string file;
};

/// Topology of one sharded snapshot directory.
struct ShardManifest {
  std::uint32_t num_shards = 0;
  /// Semantics the shards ran under (informational; restore does not
  /// install it — the service's detectors keep their own functions).
  std::string semantics;
  /// Per-shard base snapshot file names, relative to the directory.
  std::vector<std::string> files;
  /// Serialized boundary index, relative to the directory; empty when the
  /// snapshot predates cross-shard stitching (manifest version 1).
  std::string boundary_file;
  /// Base boundary-index file format: 1 = raw edges only, 2 = compacted
  /// blocks + raw edges (BoundaryEdgeIndex::Save reports which one it
  /// wrote). Serialized only when != 1, so format-1 manifests are
  /// byte-identical to pre-compaction ones.
  std::uint32_t boundary_format = 1;

  /// Checkpoint epoch this directory restores to (0 = legacy v1/v2
  /// directory with no epoch chain).
  std::uint64_t epoch = 0;
  /// Epoch of the base snapshots; deltas cover (base_epoch, epoch].
  std::uint64_t base_epoch = 0;
  /// Per-shard delta segments, ascending (epoch, shard) — exactly
  /// num_shards entries per epoch in (base_epoch, epoch].
  std::vector<DeltaSegmentRef> deltas;
  /// Boundary-index tails, ascending epoch — one per epoch in
  /// (base_epoch, epoch] whenever `boundary_file` is set.
  std::vector<BoundaryTailRef> boundary_tails;
  /// Sparse partition placement at checkpoint time: (pid, owner shard)
  /// pairs, ascending pid, only for partitions NOT on their default owner.
  /// Empty for never-rebalanced fleets (and every pre-rebalance manifest).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> placement;

  std::size_t ChainLength() const {
    return static_cast<std::size_t>(epoch - base_epoch);
  }
};

/// Canonical per-shard base snapshot file name ("shard-<i>.snapshot",
/// as written by pre-chain versions; chain-era writers use the
/// epoch-stamped variant below).
std::string ShardSnapshotFileName(std::size_t shard);

/// Epoch-stamped base snapshot name ("shard-<i>.snapshot-<epoch>"). Base
/// files are never reused across epochs: a full save whose crash leaves
/// the previous manifest in charge must leave that manifest's base files
/// untouched, or a restore would silently replay the old delta chain onto
/// a newer base (every CRC valid, state matching no checkpoint that ever
/// existed).
std::string ShardSnapshotFileName(std::size_t shard, std::uint64_t epoch);

/// Canonical per-shard delta segment file name
/// ("shard-<i>.delta-<epoch>").
std::string ShardDeltaFileName(std::size_t shard, std::uint64_t epoch);

/// Canonical boundary tail file name ("boundary.tail-<epoch>").
std::string BoundaryTailFileName(std::uint64_t epoch);

/// Canonical boundary index file name inside a snapshot directory (legacy
/// unstamped name; chain-era writers use the stamped variant).
inline constexpr char kBoundaryIndexFileName[] = "boundary.index";

/// Epoch-stamped boundary index name ("boundary.index-<epoch>"); same
/// no-reuse rationale as the base snapshots.
std::string BoundaryIndexFileName(std::uint64_t epoch);

/// Path of the manifest inside `dir`.
std::string ShardManifestPath(const std::string& dir);

/// Creates `dir` if needed and writes the manifest (atomically: temp file +
/// rename). Validates the chain structure: `manifest.files` must have
/// exactly `num_shards` entries, `epoch >= base_epoch >= 1`, and the
/// delta / boundary-tail lists must cover (base_epoch, epoch] densely.
Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest);

/// Parses the manifest in `dir`; fails with kNotFound when absent and
/// kIOError on any structural mismatch or (v3) CRC failure.
Status ReadShardManifest(const std::string& dir, ShardManifest* manifest);

}  // namespace spade
