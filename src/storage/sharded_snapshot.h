// Sharded snapshot persistence: a manifest plus one binary snapshot file
// per shard (snapshot.h format), all inside one directory.
//
// The manifest is deliberately a small line-oriented text file — it holds
// only topology (shard count, per-shard file names, semantics name), while
// all bulk data stays in the CRC-protected binary per-shard files. A
// restore validates that the manifest's shard count matches the restoring
// service before touching any shard, so a 4-shard snapshot cannot be
// half-loaded into an 8-shard service.
//
// Format (manifest.spade):
//   spade-shard-manifest 2
//   shards <N>
//   semantics <name>
//   file <shard-index> <relative-file-name>     (N lines, dense 0..N-1)
//   boundary <relative-file-name>               (optional, version >= 2)
//
// Version 2 adds the optional `boundary` line referencing the serialized
// BoundaryEdgeIndex (service/boundary_index.h) so a restored fleet resumes
// cross-shard stitching. Version-1 directories (written before stitching
// existed) still load; they simply restore an empty boundary index.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace spade {

/// Topology of one sharded snapshot directory.
struct ShardManifest {
  std::uint32_t num_shards = 0;
  /// Semantics the shards ran under (informational; restore does not
  /// install it — the service's detectors keep their own functions).
  std::string semantics;
  /// Per-shard snapshot file names, relative to the directory.
  std::vector<std::string> files;
  /// Serialized boundary index, relative to the directory; empty when the
  /// snapshot predates cross-shard stitching (manifest version 1).
  std::string boundary_file;
};

/// Canonical per-shard snapshot file name ("shard-<i>.snapshot").
std::string ShardSnapshotFileName(std::size_t shard);

/// Canonical boundary index file name inside a snapshot directory.
inline constexpr char kBoundaryIndexFileName[] = "boundary.index";

/// Path of the manifest inside `dir`.
std::string ShardManifestPath(const std::string& dir);

/// Creates `dir` if needed and writes the manifest (atomically: temp file +
/// rename). `manifest.files` must have exactly `num_shards` entries.
Status WriteShardManifest(const std::string& dir,
                          const ShardManifest& manifest);

/// Parses the manifest in `dir`; fails with kNotFound when absent and
/// kIOError on any structural mismatch.
Status ReadShardManifest(const std::string& dir, ShardManifest* manifest);

}  // namespace spade
