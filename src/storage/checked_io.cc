#include "storage/checked_io.h"

#include <array>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace spade {

namespace {

/// CRC-64/XZ table, generated once.
const std::array<std::uint64_t, 256>& CrcTable() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t Crc64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = CrcTable()[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

namespace storage {

namespace {

TruncationFn& TruncationHook() {
  static TruncationFn hook;
  return hook;
}

/// Truncates the temp file per the installed hook; returns false on a
/// filesystem error (truncation requested but impossible).
bool ApplyTruncationHook(const std::string& final_path,
                         const std::string& tmp_path) {
  const TruncationFn& hook = TruncationHook();
  if (!hook) return true;
  const std::int64_t limit = hook(final_path);
  if (limit < 0) return true;
  std::error_code ec;
  const auto size = std::filesystem::file_size(tmp_path, ec);
  if (ec) return false;
  const auto keep = std::min<std::uintmax_t>(
      size, static_cast<std::uintmax_t>(limit));
  std::filesystem::resize_file(tmp_path, keep, ec);
  return !ec;
}

}  // namespace

void SetTruncationHookForTesting(TruncationFn hook) {
  TruncationHook() = std::move(hook);
}

ChecksummedFileWriter::ChecksummedFileWriter(const std::string& path)
    : path_(path),
      tmp_(path + ".tmp"),
      out_(tmp_, std::ios::binary | std::ios::trunc) {}

ChecksummedFileWriter::~ChecksummedFileWriter() {
  if (!finished_) {
    out_.close();
    std::remove(tmp_.c_str());
  }
}

void ChecksummedFileWriter::WriteBytes(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  crc_ = Crc64(data, size, crc_);
  bytes_ += size;
}

Status ChecksummedFileWriter::Finish() {
  if (!out_) {
    return Status::IOError("cannot write " + tmp_);
  }
  out_.write(reinterpret_cast<const char*>(&crc_), sizeof(crc_));
  out_.flush();
  if (!out_) return Status::IOError("write failure on " + tmp_);
  out_.close();
  if (!ApplyTruncationHook(path_, tmp_)) {
    std::remove(tmp_.c_str());
    return Status::IOError("truncation hook failed on " + tmp_);
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    return Status::IOError("cannot rename " + tmp_ + " to " + path_);
  }
  finished_ = true;
  return Status::OK();
}

ChecksummedFileReader::ChecksummedFileReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  size_ = ec ? 0 : static_cast<std::uint64_t>(size);
}

bool ChecksummedFileReader::ReadBytes(void* data, std::size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_) return false;
  crc_ = Crc64(data, size, crc_);
  return true;
}

Status ChecksummedFileReader::VerifyTrailer() {
  const std::uint64_t computed = crc_;
  std::uint64_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in_ || stored != computed) {
    return Status::IOError(path_ + ": checksum mismatch (corrupt or torn)");
  }
  // The trailer must be the end of the file: appended bytes are a
  // mutation the CRC (which only covers the payload before the trailer)
  // would otherwise never see.
  if (in_.peek() != std::ifstream::traits_type::eof()) {
    return Status::IOError(path_ + ": trailing bytes after the trailer");
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  if (!ApplyTruncationHook(path, tmp)) {
    std::remove(tmp.c_str());
    return Status::IOError("truncation hook failed on " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace spade
