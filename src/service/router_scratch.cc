#include "service/router_scratch.h"

#include "common/logging.h"
#include "service/sharded_detection_service.h"

namespace spade {

void RouterScratch::Partition(const Partitioner& partitioner,
                              std::size_t num_shards,
                              std::span<const Edge> edges) {
  SPADE_CHECK(num_shards > 0);
  num_shards_ = num_shards;
  const std::size_t m = edges.size();
  shard_of_.resize(m);
  counts_.assign(num_shards, 0);

  // Pass 1: one routing evaluation per edge.
  for (std::size_t i = 0; i < m; ++i) {
    const Edge& e = edges[i];
    std::size_t shard = 0;
    if (num_shards > 1) {
      shard = partitioner.routes_by_src_home
                  ? partitioner.home(e.src) % num_shards
                  : partitioner.edge_key(e) % num_shards;
    }
    shard_of_[i] = static_cast<std::uint32_t>(shard);
    ++counts_[shard];
  }

  // Pass 2: stable counting-sort placement, straight into per-shard slab
  // vectors sized exactly (one reserve each; TakePart hands the slab to
  // the worker without another copy).
  parts_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    parts_[s].clear();
    parts_[s].reserve(counts_[s]);
  }
  for (std::size_t i = 0; i < m; ++i) {
    parts_[shard_of_[i]].push_back(edges[i]);
  }
}

void RouterScratch::Partition(const Partitioner& partitioner,
                              const PartitionMap& map,
                              std::size_t num_shards,
                              std::span<const Edge> edges, SlabPool* pool) {
  SPADE_CHECK(num_shards > 0);
  num_shards_ = num_shards;
  const std::size_t m = edges.size();
  const std::size_t num_partitions = map.num_partitions();
  shard_of_.resize(m);
  counts_.assign(num_shards, 0);

  // Pass 1: one routing evaluation per edge — the stable partition key,
  // then one acquire load through the partition map. A move that
  // republishes mid-pass can split a chunk's edges for one partition
  // across the old and new owner; both apply or forward them correctly
  // (the map only has to be eventually consistent).
  for (std::size_t i = 0; i < m; ++i) {
    const Edge& e = edges[i];
    std::size_t shard = 0;
    if (num_partitions > 1) {
      const std::size_t pid =
          (partitioner.routes_by_src_home
               ? partitioner.home(e.src)
               : partitioner.edge_key(e)) %
          num_partitions;
      shard = map.ShardOf(pid);
    }
    shard_of_[i] = static_cast<std::uint32_t>(shard);
    ++counts_[shard];
  }

  // Pass 2: stable counting-sort placement. A slab whose storage was moved
  // to a worker by TakePart refills from the recycle pool first, so the
  // steady-state batched path circulates slabs instead of allocating.
  parts_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (pool != nullptr && counts_[s] > 0 && parts_[s].capacity() == 0) {
      parts_[s] = pool->Get();
    }
    parts_[s].clear();
    parts_[s].reserve(counts_[s]);
  }
  for (std::size_t i = 0; i < m; ++i) {
    parts_[shard_of_[i]].push_back(edges[i]);
  }
}

}  // namespace spade
