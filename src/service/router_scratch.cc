#include "service/router_scratch.h"

#include <algorithm>

#include "common/logging.h"
#include "service/sharded_detection_service.h"

namespace spade {

void RouterScratch::Partition(const Partitioner& partitioner,
                              std::size_t num_shards,
                              std::span<const Edge> edges) {
  SPADE_CHECK(num_shards > 0);
  num_shards_ = num_shards;
  const std::size_t m = edges.size();
  shard_of_.resize(m);
  counts_.assign(num_shards, 0);
  boundary_keys_.clear();

  // Pass 1: one partitioner evaluation per edge. src/dst homes serve both
  // the routing decision (routes_by_src_home) and the boundary decision.
  for (std::size_t i = 0; i < m; ++i) {
    const Edge& e = edges[i];
    std::size_t shard = 0;
    if (num_shards > 1) {
      const std::size_t src_home = partitioner.home(e.src) % num_shards;
      const std::size_t dst_home = partitioner.home(e.dst) % num_shards;
      shard = partitioner.routes_by_src_home
                  ? src_home
                  : partitioner.edge_key(e) % num_shards;
      if (src_home != dst_home) {
        boundary_keys_.emplace_back(
            static_cast<std::uint64_t>(src_home) * num_shards + dst_home,
            static_cast<std::uint32_t>(i));
      }
    }
    shard_of_[i] = static_cast<std::uint32_t>(shard);
    ++counts_[shard];
  }

  // Pass 2: stable counting-sort placement, straight into per-shard slab
  // vectors sized exactly (one reserve each; TakePart hands the slab to
  // the worker without another copy).
  parts_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    parts_[s].clear();
    parts_[s].reserve(counts_[s]);
  }
  for (std::size_t i = 0; i < m; ++i) {
    parts_[shard_of_[i]].push_back(edges[i]);
  }

  // Boundary grouping: stable sort the (pair, index) stubs — boundary
  // edges are usually a minority of the chunk, so this stays cheap — and
  // copy the edges pair-contiguously so each group is one span.
  groups_.clear();
  boundary_edges_.resize(boundary_keys_.size());
  if (boundary_keys_.empty()) return;
  std::stable_sort(
      boundary_keys_.begin(), boundary_keys_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < boundary_keys_.size(); ++i) {
    boundary_edges_[i] = edges[boundary_keys_[i].second];
  }
  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= boundary_keys_.size(); ++i) {
    if (i == boundary_keys_.size() ||
        boundary_keys_[i].first != boundary_keys_[run_start].first) {
      const std::uint64_t key = boundary_keys_[run_start].first;
      groups_.push_back(BoundaryEdgeIndex::PairGroup{
          static_cast<std::size_t>(key / num_shards),
          static_cast<std::size_t>(key % num_shards),
          std::span<const Edge>(boundary_edges_.data() + run_start,
                                i - run_start)});
      run_start = i;
    }
  }
}

}  // namespace spade
