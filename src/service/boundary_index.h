// BoundaryEdgeIndex: the router-side record of cross-shard edges.
//
// A sharded service applies every edge in exactly one shard's detector, so
// a community whose vertices live on different home shards is invisible to
// any single shard (DESIGN.md §4.4). The router closes that gap by
// appending every edge whose endpoints have different home shards to this
// index as it routes; the stitch pass later uses the per-vertex boundary
// weight it accumulates to decide which vertices are worth pulling into the
// seam graph. The index is a discovery structure, not a second copy of the
// graph: seam edges are gathered from the shard detectors themselves (with
// their applied semantic weights), so nothing here is ever double-counted
// into a density.
//
// Layout: one append-only bucket per ordered shard pair (src_home,
// dst_home), each with its own mutex, so producers recording into different
// pairs never contend. Buckets are epoch-stamped: Clear()/Load() bump the
// epoch, and a consumer folding the index into its aggregate through a
// Cursor detects the bump and rebuilds from scratch instead of silently
// mixing generations — between bumps a fold touches only the edges appended
// since the consumer's last visit (rebuilds are incremental).
//
// Persistence: Save/Load write a little-endian, CRC-64-protected binary
// file (storage/checked_io.h trailer discipline) holding the shard count
// and every bucket's edges; the sharded snapshot manifest references it so
// a restored fleet resumes stitching without replaying the stream.
//
// Incremental persistence: because buckets are append-only within an
// epoch, a checkpoint does not need to rewrite them — SaveTail persists
// only the per-bucket suffix appended since a persist Cursor's last visit
// (the same cursor mechanism the stitch fold uses), so the boundary
// index's checkpoint cost is O(cross-shard edges since the last save), not
// O(all cross-shard edges ever). A restore loads the base file and then
// appends each tail in epoch order; every Save/Load variant can keep a
// caller-owned Cursor in sync under the same per-bucket lock, so no
// concurrently recorded edge is ever skipped by the next tail.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace spade {

/// Append-only, shard-pair-bucketed store of cross-shard edges.
class BoundaryEdgeIndex {
 public:
  explicit BoundaryEdgeIndex(std::size_t num_shards);

  BoundaryEdgeIndex(const BoundaryEdgeIndex&) = delete;
  BoundaryEdgeIndex& operator=(const BoundaryEdgeIndex&) = delete;

  std::size_t num_shards() const { return num_shards_; }

  /// Appends one cross-shard edge to the (src_home, dst_home) bucket.
  /// Thread-safe; callable from any producer.
  void Record(std::size_t src_home, std::size_t dst_home, const Edge& edge);

  /// One ordered shard pair's worth of a batch: every edge in `edges` has
  /// home shards (src_home, dst_home). Produced by RouterScratch, which
  /// groups a whole SubmitBatch chunk by pair so RecordBatch can take each
  /// pair's lock once per batch instead of once per edge.
  struct PairGroup {
    std::size_t src_home = 0;
    std::size_t dst_home = 0;
    std::span<const Edge> edges;
  };

  /// Appends every group's edges to its bucket — one lock acquisition and
  /// one bulk insert per group, one counter update per call. Thread-safe
  /// against concurrent Record/RecordBatch producers (groups from
  /// concurrent batches interleave at bucket granularity, which is fine:
  /// buckets are append-only sets whose order is not semantic beyond the
  /// cursor prefix).
  void RecordBatch(std::span<const PairGroup> groups);

  /// Edges currently resident across all buckets (relaxed; never locks).
  /// Eviction subtracts, so this tracks the live window, not all history.
  std::uint64_t TotalEdges() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// A consumer's incremental position: per-bucket (epoch, consumed-prefix).
  /// Value-initialized cursors start before everything. `consumed` counts
  /// LOGICAL positions — the index of an edge in the bucket's full append
  /// history, which EvictOlderThan never renumbers (each bucket tracks the
  /// logical offset of its first resident edge) — so eviction invalidates
  /// no cursor.
  struct Cursor {
    std::vector<std::uint64_t> epoch;
    std::vector<std::size_t> consumed;
  };

  /// Folds every edge appended since `cursor` into `weight` (each endpoint
  /// accumulates the edge weight — the vertex's total cross-shard
  /// suspiciousness mass). If any bucket's epoch changed since the cursor
  /// last visited (Clear/Load), the aggregate is cleared and rebuilt from
  /// the full index; returns true in that case. Concurrent Record() calls
  /// are safe; concurrent Clear()/Load() must be serialized by the caller
  /// (the service's stitch lock does this).
  bool FoldNewEdges(Cursor* cursor,
                    std::unordered_map<VertexId, double>* weight) const;

  /// Copies out every indexed edge (save path and tests; O(total edges)).
  std::vector<Edge> SnapshotEdges() const;

  /// Window expiry: drops each bucket's prefix of edges with ts <
  /// `horizon`, keeping the index O(window) instead of O(history). Only a
  /// PREFIX is scanned — buckets are arrival-ordered, so like the shard
  /// window log an out-of-timestamp-order edge shields entries behind it
  /// (conservative: a live edge is never evicted). Evicted edges the fold
  /// cursor had already consumed are subtracted from `weight` so the seam
  /// aggregate stays the live window's mass; near-zero residue is pruned.
  /// No epoch bump and no cursor invalidation (logical positions survive).
  /// Concurrent Record/RecordBatch are safe; callers serialize against
  /// Clear/Load/FoldNewEdges via the stitch lock, as those share
  /// `fold_cursor`/`weight`. Returns the number of edges evicted.
  std::size_t EvictOlderThan(Timestamp horizon, const Cursor& fold_cursor,
                             std::unordered_map<VertexId, double>* weight);

  /// Drops every edge and bumps every bucket epoch. When `sync` is
  /// non-null it is positioned at the now-empty buckets, so a following
  /// SaveTail persists exactly the edges recorded after the clear.
  void Clear(Cursor* sync = nullptr);

  /// Atomically persists the index (temp file + rename, CRC-64 trailer).
  /// When `sync` is non-null it is advanced, bucket by bucket under the
  /// bucket lock, to exactly the prefix this file contains — the anchor
  /// for subsequent SaveTail calls.
  Status Save(const std::string& path, Cursor* sync = nullptr) const;

  /// Replaces the contents from a file written by Save. The file's shard
  /// count must match; every bucket epoch is bumped so fold cursors
  /// rebuild. `sync` (optional) is positioned at the loaded prefix.
  Status Load(const std::string& path, Cursor* sync = nullptr);

  /// Parsed contents of a base or tail file: one edge list per bucket.
  struct FileData {
    std::vector<std::vector<Edge>> buckets;
    std::uint64_t epoch = 0;  // tail files only: the checkpoint epoch
    std::size_t NumEdges() const {
      std::size_t n = 0;
      for (const auto& b : buckets) n += b.size();
      return n;
    }
  };

  /// Incremental save: writes only the per-bucket suffix appended since
  /// `cursor` and advances it. Fails with kFailedPrecondition (writing
  /// nothing) when any bucket's epoch changed since the cursor last
  /// visited (Clear/Load happened) — the caller must fall back to a full
  /// Save. `checkpoint_epoch` is stamped into the file for chain
  /// validation.
  Status SaveTail(const std::string& path, std::uint64_t checkpoint_epoch,
                  Cursor* cursor, std::uint64_t* bytes_written = nullptr) const;

  /// Reads + validates a base file without touching the index (the
  /// two-phase restore validates every file before any side effect).
  static Status ReadFile(const std::string& path, std::size_t expected_shards,
                         FileData* out);

  /// Reads + validates a tail file; `expected_epoch` must match the stamp.
  static Status ReadTailFile(const std::string& path,
                             std::size_t expected_shards,
                             std::uint64_t expected_epoch, FileData* out);

  /// Replaces the contents with `data` (epoch-bumping every bucket, like
  /// Load). `sync` (optional) is positioned at the adopted prefix.
  void AdoptBuckets(FileData&& data, Cursor* sync = nullptr);

  /// Appends a validated tail to the buckets — no epoch bump, so fold
  /// cursors pick the edges up incrementally. `sync` (optional) advances
  /// past the appended suffix.
  void AppendBuckets(const FileData& data, Cursor* sync = nullptr);

 private:
  struct Bucket {
    mutable std::mutex mutex;
    std::vector<Edge> edges;
    std::uint64_t epoch = 1;
    // Logical append-history index of edges[0]: EvictOlderThan erases a
    // prefix and advances this, so cursor positions (logical) stay valid.
    // physical index = logical - start.
    std::size_t start = 0;
  };

  std::size_t BucketOf(std::size_t src_home, std::size_t dst_home) const {
    return src_home * num_shards_ + dst_home;
  }

  std::size_t num_shards_;
  // Fixed-size at construction (Bucket is immovable); never resized.
  std::vector<Bucket> buckets_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace spade
