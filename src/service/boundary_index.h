// BoundaryEdgeIndex: the per-shard-pair record of cross-shard edges.
//
// A sharded service applies every edge in exactly one shard's detector, so
// a community whose vertices live on different home shards is invisible to
// any single shard (DESIGN.md §4.4). Shard workers close that gap by
// appending every APPLIED edge whose endpoints have different home shards
// to this index (tagged with the applied semantic weight) from inside the
// apply critical section; the stitch pass later uses the per-vertex
// boundary weight it accumulates to decide which vertices are worth
// pulling into the seam graph. The index is a discovery structure, not a
// second copy of the graph: seam edges are gathered from the shard
// detectors themselves, so nothing here is ever double-counted into a
// density.
//
// Layout: one append-only bucket per ordered shard pair (src_home,
// dst_home), each with its own mutex, so workers recording into different
// pairs never contend. The buckets double as the stitcher's message
// queues: a fold through a Cursor consumes exactly the suffix appended
// since its last visit. Buckets are epoch-stamped: Clear()/Load() bump the
// epoch, and a consumer folding through a Cursor detects the bump and
// rebuilds from scratch instead of silently mixing generations.
//
// Compaction: once the stitcher has consumed a bucket's prefix (and a
// checkpoint chain, if one is active, has persisted it — see the persist
// floor below), CompactConsumed() collapses that raw prefix into a
// CompactedBlock of per-vertex weight sums, cutting resident memory from
// O(cross-shard edges) to O(boundary vertices). Raw edges are retained
// only for the unconsumed suffix (the live message-queue tail) and for
// anything a checkpoint chain still needs verbatim. Blocks keep a
// conservative max-timestamp so EvictOlderThan can still drop them whole
// once the window passes them, and full saves persist them (format v2) so
// save/restore stays exact.
//
// Persistence: Save/Load write a little-endian, CRC-64-protected binary
// file (storage/checked_io.h trailer discipline) holding the shard count
// and every bucket's blocks + edges; the sharded snapshot manifest
// references it so a restored fleet resumes stitching without replaying
// the stream. A bucket with no blocks writes format v1, byte-identical to
// pre-compaction files.
//
// Incremental persistence: because buckets are append-only within an
// epoch, a checkpoint does not need to rewrite them — SaveTail persists
// only the per-bucket raw suffix appended since a persist Cursor's last
// visit, so the boundary index's checkpoint cost is O(cross-shard edges
// since the last save). Compaction never eats an edge an active chain
// still needs: each bucket tracks a persist floor (the logical position
// its last anchored Save/SaveTail made durable) and CompactConsumed stops
// below it, so SaveTail always finds its suffix verbatim.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace spade {

/// Append-only, shard-pair-bucketed store of cross-shard edges with
/// consumed-prefix compaction.
class BoundaryEdgeIndex {
 public:
  /// A fold-consumed, checkpoint-covered run of raw edges collapsed to its
  /// per-vertex weight sums. `weight` is sorted by vertex (each endpoint of
  /// every member edge accumulated its weight); `max_ts` bounds every
  /// member edge's timestamp so window eviction can drop the block whole;
  /// `edge_count` keeps TotalEdges() and restore counts exact.
  struct CompactedBlock {
    std::vector<std::pair<VertexId, double>> weight;
    Timestamp max_ts = 0;
    std::uint64_t edge_count = 0;
  };

  explicit BoundaryEdgeIndex(std::size_t num_shards);

  BoundaryEdgeIndex(const BoundaryEdgeIndex&) = delete;
  BoundaryEdgeIndex& operator=(const BoundaryEdgeIndex&) = delete;

  std::size_t num_shards() const { return num_shards_; }

  /// Appends one cross-shard edge to the (src_home, dst_home) bucket.
  /// Thread-safe; callable from any worker or producer.
  void Record(std::size_t src_home, std::size_t dst_home, const Edge& edge);

  /// One ordered shard pair's worth of a batch: every edge in `edges` has
  /// home shards (src_home, dst_home).
  struct PairGroup {
    std::size_t src_home = 0;
    std::size_t dst_home = 0;
    std::span<const Edge> edges;
  };

  /// Appends every group's edges to its bucket — one lock acquisition and
  /// one bulk insert per group, one counter update per call. Thread-safe
  /// against concurrent Record/RecordBatch producers.
  void RecordBatch(std::span<const PairGroup> groups);

  /// Edges currently resident across all buckets, compacted edges included
  /// (relaxed; never locks). Eviction subtracts, so this tracks the live
  /// window, not all history.
  std::uint64_t TotalEdges() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Monotone count of edges ever recorded live (Record/RecordBatch only —
  /// restore-time Adopt/Append are excluded). The service differences this
  /// against a snapshot taken at each stitch fold to expose the stitched
  /// read's freshness in edges, lock-free.
  std::uint64_t RecordedEdges() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Edges currently resident inside compacted blocks (relaxed).
  std::uint64_t CompactedEdges() const {
    return compacted_edges_.load(std::memory_order_relaxed);
  }

  /// Approximate resident payload bytes: raw edges at sizeof(Edge) plus
  /// compacted per-vertex entries at their pair size (relaxed atomics;
  /// never locks). The bench's O(boundary vertices) memory gate reads this.
  std::size_t ResidentBytes() const {
    const std::uint64_t raw =
        total_.load(std::memory_order_relaxed) -
        compacted_edges_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(raw) * sizeof(Edge) +
           static_cast<std::size_t>(
               block_entries_.load(std::memory_order_relaxed)) *
               sizeof(std::pair<VertexId, double>);
  }

  /// A consumer's incremental position: per-bucket (epoch, consumed-prefix).
  /// Value-initialized cursors start before everything. `consumed` counts
  /// LOGICAL positions — the index of an edge in the bucket's full append
  /// history, which neither EvictOlderThan nor CompactConsumed ever
  /// renumbers (each bucket tracks the logical offset of its first resident
  /// raw edge) — so neither invalidates a cursor.
  struct Cursor {
    std::vector<std::uint64_t> epoch;
    std::vector<std::size_t> consumed;
  };

  /// Folds every edge appended since `cursor` into `weight` (each endpoint
  /// accumulates the edge weight — the vertex's total cross-shard
  /// suspiciousness mass). If any bucket's epoch changed since the cursor
  /// last visited (Clear/Load), the aggregate is cleared and rebuilt from
  /// the full index (compacted blocks contribute their stored sums);
  /// returns true in that case. Concurrent Record() calls are safe;
  /// concurrent Clear()/Load()/CompactConsumed() must be serialized by the
  /// caller (the service's stitch lock does this). Compaction is driven by
  /// this same cursor, so a block never splits a fold: any block past the
  /// cursor is folded whole.
  bool FoldNewEdges(Cursor* cursor,
                    std::unordered_map<VertexId, double>* weight) const;

  /// Collapses each bucket's fold-consumed, persist-covered raw prefix into
  /// a CompactedBlock (skipping runs shorter than `min_batch` — tiny blocks
  /// cost more than they save). Caller must pass the SAME cursor that
  /// drives FoldNewEdges and serialize against Clear/Load (the stitch
  /// lock). Logical positions, TotalEdges and all cursors are unaffected.
  /// Returns the number of raw edges compacted.
  std::size_t CompactConsumed(const Cursor& fold_cursor,
                              std::size_t min_batch = 64);

  /// Copies out every RESIDENT RAW edge (tests; O(raw edges)). Compacted
  /// edges are no longer individually available — callers that need exact
  /// multisets run before any stitch-driven compaction.
  std::vector<Edge> SnapshotEdges() const;

  /// Window expiry: drops each bucket's expired prefix, keeping the index
  /// O(window) instead of O(history). Compacted blocks go first — a block
  /// is dropped whole once `max_ts` < horizon (its stored sums are
  /// subtracted from `weight`; every compacted edge was fold-consumed by
  /// construction) — then the raw prefix with ts < `horizon`. Only a
  /// PREFIX is scanned — buckets are arrival-ordered, so like the shard
  /// window log an out-of-order entry shields everything behind it
  /// (conservative at block granularity: one live edge keeps its whole
  /// block, and any live block shields the raw suffix). Evicted raw edges
  /// the fold cursor had already consumed are subtracted from `weight` so
  /// the seam aggregate stays the live window's mass; near-zero residue is
  /// pruned. No epoch bump and no cursor invalidation. Returns the number
  /// of edges evicted (compacted edges included).
  std::size_t EvictOlderThan(Timestamp horizon, const Cursor& fold_cursor,
                             std::unordered_map<VertexId, double>* weight);

  /// Drops every edge and block and bumps every bucket epoch. When `sync`
  /// is non-null it is positioned at the now-empty buckets, so a following
  /// SaveTail persists exactly the edges recorded after the clear.
  void Clear(Cursor* sync = nullptr);

  /// Atomically persists the index (temp file + rename, CRC-64 trailer).
  /// Writes format v2 when any bucket holds compacted blocks, else the
  /// pre-compaction v1 bytes exactly. When `sync` is non-null it is
  /// advanced, bucket by bucket under the bucket lock, to exactly the
  /// prefix this file contains — the anchor for subsequent SaveTail calls —
  /// and each bucket's persist floor moves up to that prefix (committed
  /// only after the file is durable). `format` (optional) reports the
  /// version written, for the manifest's boundary-format line.
  Status Save(const std::string& path, Cursor* sync = nullptr,
              std::uint32_t* format = nullptr) const;

  /// Replaces the contents from a file written by Save. The file's shard
  /// count must match; every bucket epoch is bumped so fold cursors
  /// rebuild. `sync` (optional) is positioned at the loaded prefix.
  Status Load(const std::string& path, Cursor* sync = nullptr);

  /// Parsed contents of a base or tail file: per bucket, compacted blocks
  /// (base v2 only) plus raw edges.
  struct FileData {
    std::vector<std::vector<Edge>> buckets;
    std::vector<std::vector<CompactedBlock>> blocks;  // empty or per-bucket
    std::uint64_t epoch = 0;  // tail files only: the checkpoint epoch
    std::size_t NumEdges() const {
      std::size_t n = 0;
      for (const auto& b : buckets) n += b.size();
      for (const auto& bb : blocks) {
        for (const auto& blk : bb) n += blk.edge_count;
      }
      return n;
    }
  };

  /// Incremental save: writes only the per-bucket raw suffix appended
  /// since `cursor` and advances it (plus the persist floor, after the
  /// file is durable). Fails with kFailedPrecondition (writing nothing)
  /// when any bucket's epoch changed since the cursor last visited
  /// (Clear/Load happened), or when the cursor's suffix was compacted away
  /// (cannot happen through the service flow — the floor forbids it — but
  /// a full Save is the sound fallback either way). `checkpoint_epoch` is
  /// stamped into the file for chain validation.
  Status SaveTail(const std::string& path, std::uint64_t checkpoint_epoch,
                  Cursor* cursor, std::uint64_t* bytes_written = nullptr) const;

  /// Reads + validates a base file without touching the index (the
  /// two-phase restore validates every file before any side effect).
  /// Accepts v1 (raw only) and v2 (blocks + raw).
  static Status ReadFile(const std::string& path, std::size_t expected_shards,
                         FileData* out);

  /// Reads + validates a tail file; `expected_epoch` must match the stamp.
  static Status ReadTailFile(const std::string& path,
                             std::size_t expected_shards,
                             std::uint64_t expected_epoch, FileData* out);

  /// Replaces the contents with `data` (epoch-bumping every bucket, like
  /// Load). Restored blocks sit below the raw edges: each bucket's logical
  /// start becomes the sum of its block counts. `sync` (optional) is
  /// positioned at the adopted prefix (blocks included), and the persist
  /// floor anchors there — the adopted content is durable in the file the
  /// restore chain resumes from.
  void AdoptBuckets(FileData&& data, Cursor* sync = nullptr);

  /// Appends a validated tail to the buckets — no epoch bump, so fold
  /// cursors pick the edges up incrementally. `sync` (optional) advances
  /// past the appended suffix (persist floor follows: tail contents are
  /// durable by definition).
  void AppendBuckets(const FileData& data, Cursor* sync = nullptr);

 private:
  struct Bucket {
    mutable std::mutex mutex;
    std::vector<Edge> edges;
    // Fold-consumed, persist-covered history compacted to per-vertex sums,
    // oldest first; covers logical [start - sum(edge_count), start).
    std::vector<CompactedBlock> blocks;
    std::uint64_t epoch = 1;
    // Logical append-history index of edges[0]: EvictOlderThan and
    // CompactConsumed erase/absorb a prefix and advance this, so cursor
    // positions (logical) stay valid. physical index = logical - start.
    std::size_t start = 0;
    // Highest logical position an anchored Save/SaveTail has made durable;
    // CompactConsumed never crosses it, so an active checkpoint chain can
    // always emit its raw suffix. SIZE_MAX = no anchored chain, compaction
    // unrestricted (the next full Save persists blocks verbatim). Mutable
    // like the mutex: the const save paths advance it post-Finish.
    mutable std::size_t persist_floor =
        std::numeric_limits<std::size_t>::max();
  };

  std::size_t BucketOf(std::size_t src_home, std::size_t dst_home) const {
    return src_home * num_shards_ + dst_home;
  }

  // Logical position of the oldest compacted (non-evicted) entry.
  static std::size_t CompactedBase(const Bucket& bucket);

  std::size_t num_shards_;
  // Fixed-size at construction (Bucket is immovable); never resized.
  std::vector<Bucket> buckets_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> compacted_edges_{0};
  std::atomic<std::uint64_t> block_entries_{0};
};

}  // namespace spade
