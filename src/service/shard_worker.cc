#include "service/shard_worker.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/logging.h"
#include "storage/snapshot.h"

namespace spade {

namespace {

std::vector<VertexId> SortedMembers(const Community& c) {
  std::vector<VertexId> sorted = c.members;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Ring cell count for a given edge budget: enough cells that slab
/// exhaustion can only precede budget exhaustion when tens of thousands of
/// single-edge chunks pile up against a stalled worker (each cell holds at
/// least one edge, so with cells >= max_queue the budget always binds
/// first; above the cap, a cell costs ~72 bytes, so 65536 cells keep a
/// shard's ring under ~5 MB).
std::size_t RingCellsFor(std::size_t max_queue) {
  return RoundUpPow2(std::clamp<std::size_t>(max_queue, 2, 65536));
}

/// Cap on how many edges one gather round merges before applying: keeps
/// space-freed notifications and Drain progress timely when producers
/// outrun the worker (the ring itself bounds a single round anyway; this
/// bounds it tighter).
constexpr std::size_t kGatherCap = 4096;

}  // namespace

ShardWorker::ShardWorker(Spade spade, FraudAlertFn on_alert,
                         DetectionServiceOptions options,
                         RetireNotifyFn on_retire,
                         BoundaryUpdateFn on_boundary)
    : options_(options),
      on_alert_(std::move(on_alert)),
      ring_(RingCellsFor(options.max_queue)),
      ring_mask_(ring_.size() - 1),
      spade_(std::move(spade)),
      on_retire_(std::move(on_retire)),
      on_boundary_(std::move(on_boundary)) {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  spade_.TurnOnEdgeGrouping();
  // Publish the initial community before the worker exists, so readers
  // always observe a valid snapshot and the first alert fires only when the
  // stream actually changes the community.
  Community initial = spade_.Detect();
  last_reported_ = SortedMembers(initial);
  last_density_ = initial.density;
  auto snap = std::make_shared<const Community>(std::move(initial));
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  snapshot_ = std::move(snap);
#endif
  worker_ = std::thread([this] { WorkerLoop(); });
#if defined(__linux__)
  if (options_.cpu >= 0) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(options_.cpu), &set);
    const int rc =
        pthread_setaffinity_np(worker_.native_handle(), sizeof(cpu_set_t),
                               &set);
    if (rc != 0) {
      SPADE_LOG_WARNING() << "ShardWorker: cannot pin worker to CPU "
                          << options_.cpu << " (error " << rc
                          << "); running unpinned";
    }
  }
#else
  if (options_.cpu >= 0) {
    SPADE_LOG_WARNING()
        << "ShardWorker: CPU pinning is unsupported on this platform; "
           "running unpinned";
  }
#endif
}

ShardWorker::~ShardWorker() { Stop(); }

// ---------------------------------------------------------------------------
// Chunk-handoff ring primitives.

std::size_t ShardWorker::ClaimBudget(std::size_t k, bool allow_partial) {
  std::size_t cur = queued_edges_.load(std::memory_order_relaxed);
  std::size_t take = 0;
  do {
    const std::size_t free =
        options_.max_queue - std::min(cur, options_.max_queue);
    take = allow_partial ? std::min(k, free) : (k <= free ? k : 0);
    if (take == 0) return 0;
  } while (!queued_edges_.compare_exchange_weak(
      cur, cur + take, std::memory_order_seq_cst,
      std::memory_order_relaxed));
  const std::size_t depth = cur + take;
  std::size_t hwm = queue_hwm_.load(std::memory_order_relaxed);
  while (depth > hwm &&
         !queue_hwm_.compare_exchange_weak(hwm, depth,
                                           std::memory_order_relaxed)) {
  }
  return take;
}

bool ShardWorker::TryClaimBudget(std::size_t k) {
  return ClaimBudget(k, /*allow_partial=*/false) == k;
}

std::size_t ShardWorker::TryClaimUpTo(std::size_t k) {
  return ClaimBudget(k, /*allow_partial=*/true);
}

void ShardWorker::ReleaseBudget(std::size_t k) {
  queued_edges_.fetch_sub(k, std::memory_order_seq_cst);
}

bool ShardWorker::TryPushChunk(Chunk&& chunk) {
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = ring_[pos & ring_mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.chunk = std::move(chunk);
        // seq_cst publish: pairs with the worker's park-protocol RingReady
        // load (Dekker — see PublishAccepted).
        cell.seq.store(pos + 1, std::memory_order_seq_cst);
        return true;
      }
    } else if (dif < 0) {
      return false;  // ring out of cells
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool ShardWorker::TryPopChunk(Chunk* out) {
  Cell& cell = ring_[dequeue_pos_ & ring_mask_];
  if (cell.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) {
    return false;
  }
  *out = std::move(cell.chunk);
  cell.chunk = Chunk{};
  cell.seq.store(dequeue_pos_ + ring_.size(), std::memory_order_release);
  ++dequeue_pos_;
  // The handoff is complete: these edges no longer count against the
  // producer budget (matching the old swap semantics, where the whole
  // buffer left the depth gauge before it was applied).
  ReleaseBudget(out->size());
  return true;
}

bool ShardWorker::RingReady() const {
  const Cell& cell = ring_[dequeue_pos_ & ring_mask_];
  return cell.seq.load(std::memory_order_seq_cst) == dequeue_pos_ + 1;
}

void ShardWorker::PublishAccepted(std::size_t k) {
  submitted_.fetch_add(k, std::memory_order_seq_cst);
  // Wakeup coalescing (Dekker): the producer published its cell seq
  // (seq_cst) before this load; the worker sets parked_ (seq_cst) before
  // its RingReady check. Whichever ran second sees the other's write, so
  // either the worker finds the chunk on its own or we find parked_ set
  // and wake it — never both asleep.
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    work_cv_.notify_one();
  }
}

void ShardWorker::NotifySpaceFreed() {
  // Same Dekker shape as PublishAccepted: producers register in
  // space_waiters_ (seq_cst) before re-checking the budget; the worker
  // released budget (seq_cst) before this load.
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    space_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Producer paths.

Status ShardWorker::Submit(const Edge& raw_edge) {
  return EnqueueImpl(std::span<const Edge>(&raw_edge, 1), nullptr);
}

Status ShardWorker::SubmitBatch(std::span<const Edge> raw_edges,
                                std::size_t* accepted) {
  return EnqueueImpl(raw_edges, accepted);
}

Status ShardWorker::SubmitBatch(std::vector<Edge>&& chunk,
                                std::size_t* accepted) {
  return EnqueueImpl(std::span<const Edge>(chunk.data(), chunk.size()),
                     accepted, &chunk);
}

Status ShardWorker::SubmitRetire(Timestamp horizon) {
  if (!options_.track_window) {
    return Status::FailedPrecondition(
        "ShardWorker::SubmitRetire: worker was built without track_window");
  }
  if (stopping_flag_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  // Same lock-free fast path as EnqueueImpl, claiming one edge of budget
  // for the marker (including the post-claim stop re-check — see
  // EnqueueImpl for why it must follow the claim).
  if (TryClaimBudget(1)) {
    if (stopping_flag_.load(std::memory_order_seq_cst)) {
      ReleaseBudget(1);
      return Status::FailedPrecondition("ShardWorker is stopped");
    }
    Chunk chunk;
    chunk.is_retire = true;
    chunk.retire_horizon = horizon;
    if (TryPushChunk(std::move(chunk))) {
      PublishAccepted(1);
      return Status::OK();
    }
    ReleaseBudget(1);
  }
  if (!options_.block_when_full) {
    return Status::OutOfRange("ShardWorker queue full");
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  Status result = Status::OK();
  for (;;) {
    if (stopping_) {
      result = Status::FailedPrecondition("ShardWorker is stopped");
      break;
    }
    if (TryClaimBudget(1)) {
      Chunk chunk;
      chunk.is_retire = true;
      chunk.retire_horizon = horizon;
      if (TryPushChunk(std::move(chunk))) {
        submitted_.fetch_add(1, std::memory_order_seq_cst);
        work_cv_.notify_one();
        break;
      }
      ReleaseBudget(1);
    }
    space_cv_.wait(lock);
  }
  space_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Status ShardWorker::EnqueueImpl(std::span<const Edge> edges,
                                std::size_t* accepted,
                                std::vector<Edge>* owned) {
  if (accepted != nullptr) *accepted = 0;
  if (edges.empty()) return Status::OK();
  if (stopping_flag_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  const bool allow_partial = accepted != nullptr;
  if (!allow_partial && edges.size() > options_.max_queue) {
    return Status::InvalidArgument(
        "ShardWorker::SubmitBatch: chunk exceeds max_queue");
  }

  std::size_t done = 0;
  // Lock-free fast path: claim budget, claim a cell, publish.
  {
    const std::size_t want = edges.size();
    const std::size_t take =
        allow_partial ? TryClaimUpTo(want)
                      : (TryClaimBudget(want) ? want : 0);
    if (take > 0) {
      // Re-check the stop flag AFTER the claim (seq_cst on both sides):
      // either this load sees the flag and we release + fail, or the
      // claim precedes the flag store in the seq_cst order — and then the
      // exiting worker's queued_edges_==0 check (which runs after the
      // flag store) must observe the claim and keep draining. Without
      // this, a producer that read the flag as false before Stop() could
      // publish into a ring nobody will ever pop: accepted, then lost.
      if (stopping_flag_.load(std::memory_order_seq_cst)) {
        ReleaseBudget(take);
        return Status::FailedPrecondition("ShardWorker is stopped");
      }
      const bool moved_owned =
          owned != nullptr && take == edges.size() && take > 1;
      Chunk chunk = moved_owned ? Chunk(std::move(*owned))
                                : Chunk(edges.subspan(0, take));
      if (TryPushChunk(std::move(chunk))) {
        PublishAccepted(take);
        done = take;
        if (accepted != nullptr) *accepted = done;
        if (done == edges.size()) return Status::OK();
      } else {
        ReleaseBudget(take);
        if (moved_owned) {
          // TryPushChunk does not consume on failure; hand the storage
          // back so `edges` (a span over it) stays valid for the slow
          // path and the caller keeps its intact chunk on error.
          *owned = std::move(chunk.many);
        }
      }
    }
  }
  if (!options_.block_when_full) {
    // Fail fast. With `accepted`, the prefix that fit stays enqueued and
    // is reported exactly; without it, nothing was enqueued.
    return Status::OutOfRange("ShardWorker queue full");
  }

  // Blocking slow path: register as a space waiter and hand the remainder
  // over (in one piece, or — with `accepted` — in pieces) as the worker
  // frees space.
  std::unique_lock<std::mutex> lock(queue_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  bool stopped = false;
  while (done < edges.size()) {
    if (stopping_) {
      stopped = true;
      break;
    }
    const std::size_t want = edges.size() - done;
    const std::size_t take =
        allow_partial ? TryClaimUpTo(want)
                      : (TryClaimBudget(want) ? want : 0);
    if (take > 0) {
      Chunk chunk(edges.subspan(done, take));
      if (TryPushChunk(std::move(chunk))) {
        // Already under queue_mutex_ — notify the worker directly instead
        // of PublishAccepted's lock-taking coalesced wakeup.
        submitted_.fetch_add(take, std::memory_order_seq_cst);
        work_cv_.notify_one();
        done += take;
        if (accepted != nullptr) *accepted = done;
        continue;
      }
      ReleaseBudget(take);
    }
    space_cv_.wait(lock);
  }
  space_waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (stopped) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Drain / Stop.

void ShardWorker::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  const std::uint64_t target = submitted_.load(std::memory_order_seq_cst);
  if (exact_through_ >= target || worker_exited_) return;
  // The worker flushes the benign buffer and republishes only while a
  // drain waiter is registered (exactness on demand keeps edge-grouping
  // amortization intact between drains), so wake it up.
  ++drain_waiters_;
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this, target] {
    return exact_through_ >= target || worker_exited_;
  });
  --drain_waiters_;
}

bool ShardWorker::DrainFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  const std::uint64_t target = submitted_.load(std::memory_order_seq_cst);
  if (exact_through_ >= target || worker_exited_) return true;
  ++drain_waiters_;
  work_cv_.notify_one();
  const bool reached = drain_cv_.wait_for(lock, timeout, [this, target] {
    return exact_through_ >= target || worker_exited_;
  });
  --drain_waiters_;
  return reached;
}

void ShardWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
    // seq_cst: pairs with the producers' post-claim re-check (EnqueueImpl)
    // and the worker's exit-time queued_edges_ check.
    stopping_flag_.store(true, std::memory_order_seq_cst);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_ptr<const Community> ShardWorker::CurrentSnapshot() const {
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  return snapshot_.load();
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
#endif
}

void ShardWorker::CollectInduced(std::span<const VertexId> vertices,
                                 const std::function<bool(VertexId)>& contains,
                                 std::vector<Edge>* edges,
                                 std::vector<double>* vertex_weight) const {
  SPADE_CHECK(vertex_weight->size() >= vertices.size());
  std::lock_guard<std::mutex> lock(detector_mutex_);
  const DynamicGraph& g = spade_.graph();
  const std::size_t n = g.NumVertices();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= n) continue;  // this shard never saw the vertex
    (*vertex_weight)[i] = std::max((*vertex_weight)[i], g.VertexWeight(v));
    for (const NeighborEntry& e : g.OutNeighbors(v)) {
      if (contains(e.vertex)) {
        edges->push_back(Edge{v, e.vertex, e.weight, 0});
      }
    }
  }
}

Status ShardWorker::SaveState(const std::string& path,
                              bool start_delta_tracking) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  // A full save is a checkpoint: whatever history the log held is now
  // covered by the base snapshot. (The flush below mirrors what
  // Spade::SaveState did; replay of a later chain starts from that flushed
  // state, which is why no marker needs to survive the reset.) The window
  // log rides in the snapshot's v2 section — an empty window (every
  // non-windowed worker) writes the same v1 bytes as before.
  SPADE_RETURN_NOT_OK(spade_.Flush());
  const std::vector<Edge> window(window_log_.begin(), window_log_.end());
  SPADE_RETURN_NOT_OK(
      SaveSnapshot(path, spade_.graph(), &spade_.peel_state(), window));
  delta_log_.clear();
  delta_overflow_ = false;
  if (start_delta_tracking) delta_tracking_ = true;
  return Status::OK();
}

Status ShardWorker::SaveDelta(const std::string& path, std::uint32_t shard,
                              std::uint64_t prev_epoch, std::uint64_t epoch,
                              DeltaSaveInfo* info) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  if (!delta_tracking_) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: no checkpoint baseline (run a full "
        "SaveState first)");
  }
  if (delta_overflow_) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: delta log overflowed; a full SaveState is "
        "required");
  }
  DeltaSegment segment;
  segment.shard = shard;
  segment.prev_epoch = prev_epoch;
  segment.epoch = epoch;
  segment.records = std::move(delta_log_);
  delta_log_.clear();
  std::uint64_t bytes = 0;
  const Status s = WriteDeltaSegment(path, segment, &bytes);
  if (!s.ok()) {
    // The write failed but the history is still the truth — put it back so
    // a retry (or a fallback full save) does not lose the chain.
    delta_log_ = std::move(segment.records);
    return s;
  }
  if (info != nullptr) {
    info->bytes = bytes;
    info->records = segment.records.size();
    info->edges = segment.NumEdges();
  }
  return Status::OK();
}

void ShardWorker::AppendDeltaRecord(const DeltaRecord& record) {
  if (!delta_tracking_ || delta_overflow_) return;
  if (delta_log_.size() >= options_.max_delta_log) {
    // Unbounded history is worse than a forced full checkpoint: drop the
    // log, remember the overflow, and let the next SaveDelta fail fast.
    delta_log_.clear();
    delta_log_.shrink_to_fit();
    delta_overflow_ = true;
    return;
  }
  delta_log_.push_back(record);
}

std::shared_ptr<const Community> ShardWorker::RebaselineLocked(bool flush) {
  // Re-baseline the alert filter on the restored community and publish it
  // so readers switch over atomically. The non-flushing read preserves the
  // replayed benign buffer (Lemma 4.4: buffered edges cannot have improved
  // the community, so the baseline is the same either way).
  Community restored =
      flush ? spade_.Detect() : spade_.peel_state().DetectCommunity();
  last_reported_ = SortedMembers(restored);
  last_density_ = restored.density;
  since_detect_ = 0;
  return std::make_shared<const Community>(std::move(restored));
}

Status ShardWorker::RestoreState(const std::string& path) {
  Drain();
  std::shared_ptr<const Community> snap;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    DynamicGraph graph;
    PeelState state;
    bool state_present = false;
    std::vector<Edge> window;
    SPADE_RETURN_NOT_OK(
        LoadSnapshot(path, &graph, &state, &state_present, &window));
    spade_.RestoreFromParts(std::move(graph), std::move(state),
                            state_present);
    window_log_.assign(window.begin(), window.end());
    delta_log_.clear();
    delta_overflow_ = false;
    snap = RebaselineLocked(/*flush=*/true);
  }
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
#endif
  return Status::OK();
}

Status ShardWorker::RestoreChain(RestorePlan&& plan) {
  Drain();
  std::shared_ptr<const Community> snap;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    spade_.RestoreFromParts(std::move(plan.graph), std::move(plan.state),
                            plan.state_present);
    window_log_.assign(plan.window.begin(), plan.window.end());
    // Replay the applied history through the same entry points the live
    // worker used. Every record passed CRC validation and came from a
    // successfully applied edge, so a failure here is a logic error — but
    // it still surfaces as a Status, not a partial silent state.
    for (const DeltaSegment& segment : plan.segments) {
      for (const DeltaRecord& record : segment.records) {
        if (record.flush) {
          SPADE_RETURN_NOT_OK(spade_.Flush());
        } else if (record.retire) {
          SPADE_RETURN_NOT_OK(ReplayRetireLocked(record.edge));
        } else {
          double applied = 0;
          SPADE_RETURN_NOT_OK(spade_.ApplyEdge(record.edge, &applied));
          if (options_.track_window) {
            window_log_.push_back(Edge{record.edge.src, record.edge.dst,
                                       applied, record.edge.ts});
          }
        }
      }
    }
    delta_log_.clear();
    delta_overflow_ = false;
    delta_tracking_ = true;
    snap = RebaselineLocked(/*flush=*/false);
  }
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
#endif
  return Status::OK();
}

Status ShardWorker::ReplaySegment(const DeltaSegment& segment,
                                  std::chrono::milliseconds drain_timeout) {
  if (!DrainFor(drain_timeout)) {
    return Status::FailedPrecondition(
        "ReplaySegment: shard queue did not drain within " +
        std::to_string(drain_timeout.count()) + "ms");
  }
  std::shared_ptr<const Community> snap;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    for (const DeltaRecord& record : segment.records) {
      if (record.flush) {
        SPADE_RETURN_NOT_OK(spade_.Flush());
      } else if (record.retire) {
        SPADE_RETURN_NOT_OK(ReplayRetireLocked(record.edge));
      } else {
        double applied = 0;
        SPADE_RETURN_NOT_OK(spade_.ApplyEdge(record.edge, &applied));
        if (options_.track_window) {
          window_log_.push_back(Edge{record.edge.src, record.edge.dst,
                                     applied, record.edge.ts});
        }
      }
    }
    // The replayed records came from a sealed checkpoint: the detector now
    // matches that checkpoint, so the in-memory history restarts from it
    // (the owner invalidates its chain cache, making the next save a full
    // base — see ShardedDetectionService::ApplyChainEpoch).
    delta_log_.clear();
    delta_overflow_ = false;
    delta_tracking_ = true;
    snap = RebaselineLocked(/*flush=*/false);
  }
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
#endif
  return Status::OK();
}

void ShardWorker::InspectDetector(
    const std::function<void(const Spade&)>& fn) const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  fn(spade_);
}

std::vector<Edge> ShardWorker::WindowEdges() const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  return std::vector<Edge>(window_log_.begin(), window_log_.end());
}

Status ShardWorker::ReplayRetireLocked(const Edge& record) {
  SPADE_RETURN_NOT_OK(
      spade_.RetireEdge(record.src, record.dst, record.weight));
  retired_.fetch_add(1, std::memory_order_relaxed);
  // The live pass popped this entry off its window log; mirror it. The
  // record is almost always the log front (oldest-first expiry); the
  // fallback search only runs in the degenerate case where a live retire
  // failed and its entry was dropped without a record.
  const auto matches = [&record](const Edge& e) {
    return e.src == record.src && e.dst == record.dst &&
           e.weight == record.weight && e.ts == record.ts;
  };
  if (!window_log_.empty() && matches(window_log_.front())) {
    window_log_.pop_front();
    return Status::OK();
  }
  const auto it =
      std::find_if(window_log_.begin(), window_log_.end(), matches);
  if (it != window_log_.end()) {
    window_log_.erase(it);
  } else if (options_.track_window) {
    SPADE_LOG_WARNING()
        << "ShardWorker replay: retire record not found in window log";
  }
  return Status::OK();
}

void ShardWorker::DetectAndPublish() {
  // Caller (worker thread or RestoreState) holds detector_mutex_.
  if (spade_.PendingBenignEdges() > 0) {
    // Detect() is about to fold the benign buffer in; the replayed history
    // must flush at exactly this point to stay bit-identical (the flush
    // changes the graph, and state-dependent semantics weigh later edges
    // against it).
    AppendDeltaRecord(DeltaRecord::Flush());
  }
  Community community = spade_.Detect();
  since_detect_ = 0;
  detections_.fetch_add(1, std::memory_order_relaxed);
  std::vector<VertexId> sorted = SortedMembers(community);
  const bool changed =
      sorted != last_reported_ || community.density != last_density_;
  auto snap = std::make_shared<const Community>(std::move(community));
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(snap);
#else
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = snap;
  }
#endif
  if (!changed) return;
  last_reported_ = std::move(sorted);
  last_density_ = snap->density;
  alerts_.fetch_add(1, std::memory_order_relaxed);
  if (on_alert_) {
    pending_alert_ = std::move(snap);
  }
}

void ShardWorker::MakeExact() {
  std::shared_ptr<const Community> alert;
  {
    std::lock_guard<std::mutex> apply_lock(detector_mutex_);
    if (since_detect_ > 0 || spade_.PendingBenignEdges() > 0) {
      DetectAndPublish();
      alert = std::move(pending_alert_);
    }
  }
  if (alert) on_alert_(*alert);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Only an empty ring makes the snapshot exact; a racing Submit defers
    // exactness to the next round.
    if (queued_edges_.load(std::memory_order_seq_cst) == 0) {
      exact_through_ = consumed_q_;
    }
  }
  drain_cv_.notify_all();
}

void ShardWorker::WorkerLoop() {
  std::vector<Edge> batch;
  while (true) {
    // Gather every ready chunk (up to the gather cap) into one application
    // batch — the same amortization the old whole-buffer swap provided. A
    // retire marker ends the round: the pass must see exactly the edges
    // submitted before it (ring order), not ones gathered after.
    batch.clear();
    bool have_retire = false;
    Timestamp retire_horizon = 0;
    {
      Chunk chunk;
      while (batch.size() < kGatherCap && !have_retire &&
             TryPopChunk(&chunk)) {
        if (chunk.is_retire) {
          have_retire = true;
          retire_horizon = chunk.retire_horizon;
        } else if (chunk.is_one) {
          batch.push_back(chunk.one);
        } else if (batch.empty()) {
          batch = std::move(chunk.many);
        } else {
          batch.insert(batch.end(), chunk.many.begin(), chunk.many.end());
        }
      }
    }

    if (batch.empty() && !have_retire) {
      bool make_exact = false;
      bool inflight_claim = false;
      bool exit_loop = false;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        // Park protocol (Dekker with PublishAccepted): set parked_ first,
        // then let the wait predicate re-check the ring. A producer that
        // published before the flag was set is seen by the predicate; one
        // that published after it sees the flag and notifies under the
        // mutex.
        parked_.store(true, std::memory_order_seq_cst);
        work_cv_.wait(lock, [this] {
          return stopping_ || RingReady() ||
                 (drain_waiters_ > 0 && exact_through_ < consumed_q_);
        });
        parked_.store(false, std::memory_order_relaxed);
        if (RingReady()) continue;  // new work: loop around and pop it
        if (stopping_) {
          // Exit only when no producer holds a claimed-but-unpublished
          // chunk (claims raise queued_edges_ before the cell publish):
          // a Submit that raced Stop() and was accepted must still be
          // applied, or "Stop drains queued edges first" silently drops
          // it. The producer publishes or releases momentarily.
          if (queued_edges_.load(std::memory_order_seq_cst) == 0) {
            exit_loop = true;
          } else {
            inflight_claim = true;
          }
        } else {
          // A Drain() waiter needs the snapshot brought up to date (flush
          // buffered benign edges, republish); no new edges to apply.
          make_exact = drain_waiters_ > 0 && exact_through_ < consumed_q_;
        }
      }
      if (exit_loop) break;
      if (inflight_claim) {
        std::this_thread::yield();
        continue;
      }
      if (make_exact) MakeExact();
      continue;
    }

    // The popped chunks already left the budget gauge; wake any blocked
    // producers (only when some are registered — coalesced like wakeups).
    NotifySpaceFreed();

    bool exact_after_batch = false;
    for (const Edge& edge : batch) {
      std::shared_ptr<const Community> alert;
      {
        std::lock_guard<std::mutex> apply_lock(detector_mutex_);
        ++consumed_;
        double applied = 0;
        const Status s = spade_.ApplyEdge(edge, &applied);
        if (s.ok()) {
          AppendDeltaRecord(DeltaRecord::Insert(edge));
          if (options_.track_window) {
            window_log_.push_back(Edge{edge.src, edge.dst, applied, edge.ts});
          }
          // Boundary push under the detector mutex: any state snapshot
          // that contains this edge (SaveState locks after Drain) is
          // therefore saved after its boundary record exists, so a
          // restored fleet can always rediscover the seam.
          if (on_boundary_) on_boundary_(edge, applied, /*retired=*/false);
          processed_.fetch_add(1, std::memory_order_relaxed);
          ++since_detect_;
          // An urgent edge flushed the benign buffer inside ApplyEdge;
          // detect right away so moderators hear about new fraudsters
          // immediately.
          if (spade_.PendingBenignEdges() == 0 ||
              since_detect_ >= options_.detect_every) {
            DetectAndPublish();
            alert = std::move(pending_alert_);
          }
        } else {
          SPADE_LOG_WARNING()
              << "ShardWorker dropped edge: " << s.ToString();
        }
        exact_after_batch =
            since_detect_ == 0 && spade_.PendingBenignEdges() == 0;
      }
      // Deliver with no lock held: a slow moderator delays the next apply
      // on this shard but never blocks producers, readers, or Save/Restore
      // beyond this one callback.
      if (alert) on_alert_(*alert);
    }

    if (have_retire) {
      // Pre-deletion announcement: deletions shrink the graph the moment
      // they apply, but consumers (the sharded service's stitched
      // snapshot) are only told via on_retire_ — a callback fired after
      // the pass used to leave a window where a reader could combine the
      // shrunken live argmax with a stale pre-deletion snapshot. Bump the
      // begin counter and fire on_retire_(0) BEFORE the first deletion so
      // stale state is dropped while the graph still matches it. Only
      // this thread mutates the window log, so the peek stays valid.
      bool will_retire = false;
      {
        std::lock_guard<std::mutex> peek_lock(detector_mutex_);
        will_retire = !window_log_.empty() &&
                      window_log_.front().ts < retire_horizon;
      }
      if (will_retire) {
        retire_begins_.fetch_add(1, std::memory_order_seq_cst);
        if (on_retire_) on_retire_(0);
      }
      std::shared_ptr<const Community> alert;
      std::size_t retired_now = 0;
      {
        std::lock_guard<std::mutex> apply_lock(detector_mutex_);
        ++consumed_;  // the marker's one unit of queue budget
        // Pop the expired prefix oldest-first. The log is arrival-ordered,
        // so an out-of-timestamp-order edge shields the entries behind it
        // until the horizon passes it too — conservative (never retires a
        // live edge), and deterministic: replay retires exactly the
        // recorded set.
        while (!window_log_.empty() &&
               window_log_.front().ts < retire_horizon) {
          const Edge old = window_log_.front();
          window_log_.pop_front();
          const Status s = spade_.RetireEdge(old.src, old.dst, old.weight);
          if (!s.ok()) {
            SPADE_LOG_WARNING()
                << "ShardWorker retire failed: " << s.ToString();
            continue;
          }
          AppendDeltaRecord(DeltaRecord::Retire(old));
          // Retire deltas feed the stitch trigger accumulators (seam mass
          // changed), never the boundary record log — index eviction is
          // horizon-driven (EvictOlderThan).
          if (on_boundary_) on_boundary_(old, old.weight, /*retired=*/true);
          ++retired_now;
        }
        if (retired_now > 0) {
          retired_.fetch_add(retired_now, std::memory_order_relaxed);
          // Deletion can shrink the community or its density — republish
          // (and alert) right away rather than waiting out detect_every.
          DetectAndPublish();
          alert = std::move(pending_alert_);
        }
        exact_after_batch =
            since_detect_ == 0 && spade_.PendingBenignEdges() == 0;
      }
      if (alert) on_alert_(*alert);
      if (retired_now > 0 && on_retire_) on_retire_(retired_now);
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      consumed_q_ = consumed_;
      // Cheap advance: if the batch happened to end on a fresh detection,
      // the published snapshot is already exact and a later Drain() needs
      // no worker round-trip. Otherwise exactness is produced on demand by
      // the MakeExact branch above.
      if (exact_after_batch &&
          queued_edges_.load(std::memory_order_seq_cst) == 0) {
        exact_through_ = consumed_q_;
      }
    }
    drain_cv_.notify_all();
  }

  // Final shutdown flush.
  {
    std::shared_ptr<const Community> alert;
    {
      std::lock_guard<std::mutex> apply_lock(detector_mutex_);
      if (since_detect_ > 0 || spade_.PendingBenignEdges() > 0) {
        DetectAndPublish();
        alert = std::move(pending_alert_);
      }
    }
    if (alert) on_alert_(*alert);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    worker_exited_ = true;
    exact_through_ = consumed_;
  }
  drain_cv_.notify_all();
  space_cv_.notify_all();
}

}  // namespace spade
