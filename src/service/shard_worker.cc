#include "service/shard_worker.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/logging.h"
#include "storage/snapshot.h"

namespace spade {

namespace {

std::vector<VertexId> SortedMembers(const Community& c) {
  std::vector<VertexId> sorted = c.members;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Ring cell count for a given edge budget: enough cells that slab
/// exhaustion can only precede budget exhaustion when tens of thousands of
/// single-edge chunks pile up against a stalled worker (each cell holds at
/// least one edge, so with cells >= max_queue the budget always binds
/// first; above the cap, a cell costs ~72 bytes, so 65536 cells keep a
/// shard's ring under ~5 MB).
std::size_t RingCellsFor(std::size_t max_queue) {
  return RoundUpPow2(std::clamp<std::size_t>(max_queue, 2, 65536));
}

/// Cap on how many edges one gather round merges before applying: keeps
/// space-freed notifications and Drain progress timely when producers
/// outrun the worker (the ring itself bounds a single round anyway; this
/// bounds it tighter).
constexpr std::size_t kGatherCap = 4096;

/// Retry cadence for a parked worker with a nonempty forward backlog: the
/// forward target was full (or mid-move), so poll instead of sleeping
/// indefinitely — the edges are this worker's responsibility until the
/// current owner accepts them.
constexpr std::chrono::milliseconds kBacklogRetire{1};

std::vector<ShardWorker::PartitionSeed> SoleSeed(Spade spade) {
  std::vector<ShardWorker::PartitionSeed> seeds;
  seeds.push_back(ShardWorker::PartitionSeed{0, std::move(spade)});
  return seeds;
}

}  // namespace

ShardWorker::ShardWorker(Spade spade, FraudAlertFn on_alert,
                         DetectionServiceOptions options,
                         RetireNotifyFn on_retire,
                         BoundaryUpdateFn on_boundary)
    : ShardWorker(SoleSeed(std::move(spade)), /*total_partitions=*/1,
                  /*partition_of=*/nullptr, /*forward=*/nullptr,
                  std::move(on_alert), options, std::move(on_retire),
                  std::move(on_boundary), /*slab_pool=*/nullptr) {}

ShardWorker::ShardWorker(std::vector<PartitionSeed> seeds,
                         std::size_t total_partitions,
                         PartitionOfFn partition_of, ForwardFn forward,
                         FraudAlertFn on_alert,
                         DetectionServiceOptions options,
                         RetireNotifyFn on_retire,
                         BoundaryUpdateFn on_boundary,
                         std::shared_ptr<SlabPool> slab_pool)
    : options_(options),
      on_alert_(std::move(on_alert)),
      ring_(RingCellsFor(options.max_queue)),
      ring_mask_(ring_.size() - 1),
      by_pid_(std::max<std::size_t>(total_partitions, 1), nullptr),
      partition_of_(std::move(partition_of)),
      forward_(std::move(forward)),
      start_(std::chrono::steady_clock::now()),
      on_retire_(std::move(on_retire)),
      on_boundary_(std::move(on_boundary)),
      slab_pool_(std::move(slab_pool)) {
  // Without a partition function every routed edge maps to "the" partition,
  // which only makes sense when there is exactly one.
  SPADE_CHECK(partition_of_ != nullptr || seeds.size() == 1);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  // Publish the initial communities before the worker exists, so readers
  // always observe a valid snapshot and the first alert fires only when the
  // stream actually changes a community.
  for (PartitionSeed& seed : seeds) {
    SPADE_CHECK(seed.pid < by_pid_.size());
    SPADE_CHECK(by_pid_[seed.pid] == nullptr);
    auto p = std::make_unique<Partition>(seed.pid, std::move(seed.spade));
    p->spade.TurnOnEdgeGrouping();
    Community initial = p->spade.Detect();
    p->last_reported = SortedMembers(initial);
    p->last_density = initial.density;
    p->current = std::make_shared<const Community>(std::move(initial));
    by_pid_[p->pid] = p.get();
    parts_.push_back(std::move(p));
  }
  PublishArgmaxLocked();  // pre-thread: no lock contention possible yet
  worker_ = std::thread([this] { WorkerLoop(); });
#if defined(__linux__)
  if (options_.cpu >= 0) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(options_.cpu), &set);
    const int rc =
        pthread_setaffinity_np(worker_.native_handle(), sizeof(cpu_set_t),
                               &set);
    if (rc != 0) {
      SPADE_LOG_WARNING() << "ShardWorker: cannot pin worker to CPU "
                          << options_.cpu << " (error " << rc
                          << "); running unpinned";
    }
  }
#else
  if (options_.cpu >= 0) {
    SPADE_LOG_WARNING()
        << "ShardWorker: CPU pinning is unsupported on this platform; "
           "running unpinned";
  }
#endif
}

ShardWorker::~ShardWorker() { Stop(); }

// ---------------------------------------------------------------------------
// Chunk-handoff ring primitives.

std::size_t ShardWorker::ClaimBudget(std::size_t k, bool allow_partial) {
  std::size_t cur = queued_edges_.load(std::memory_order_relaxed);
  std::size_t take = 0;
  do {
    const std::size_t free =
        options_.max_queue - std::min(cur, options_.max_queue);
    take = allow_partial ? std::min(k, free) : (k <= free ? k : 0);
    if (take == 0) return 0;
  } while (!queued_edges_.compare_exchange_weak(
      cur, cur + take, std::memory_order_seq_cst,
      std::memory_order_relaxed));
  const std::size_t depth = cur + take;
  std::size_t hwm = queue_hwm_recent_.load(std::memory_order_relaxed);
  while (depth > hwm &&
         !queue_hwm_recent_.compare_exchange_weak(
             hwm, depth, std::memory_order_relaxed)) {
  }
  return take;
}

bool ShardWorker::TryClaimBudget(std::size_t k) {
  return ClaimBudget(k, /*allow_partial=*/false) == k;
}

std::size_t ShardWorker::TryClaimUpTo(std::size_t k) {
  return ClaimBudget(k, /*allow_partial=*/true);
}

void ShardWorker::ReleaseBudget(std::size_t k) {
  queued_edges_.fetch_sub(k, std::memory_order_seq_cst);
}

bool ShardWorker::TryPushChunk(Chunk&& chunk) {
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = ring_[pos & ring_mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.chunk = std::move(chunk);
        // seq_cst publish: pairs with the worker's park-protocol RingReady
        // load (Dekker — see PublishAccepted).
        cell.seq.store(pos + 1, std::memory_order_seq_cst);
        return true;
      }
    } else if (dif < 0) {
      return false;  // ring out of cells
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool ShardWorker::TryPopChunk(Chunk* out) {
  Cell& cell = ring_[dequeue_pos_ & ring_mask_];
  if (cell.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) {
    return false;
  }
  *out = std::move(cell.chunk);
  cell.chunk = Chunk{};
  cell.seq.store(dequeue_pos_ + ring_.size(), std::memory_order_release);
  ++dequeue_pos_;
  // The handoff is complete: these edges no longer count against the
  // producer budget (matching the old swap semantics, where the whole
  // buffer left the depth gauge before it was applied).
  ReleaseBudget(out->size());
  return true;
}

bool ShardWorker::RingReady() const {
  const Cell& cell = ring_[dequeue_pos_ & ring_mask_];
  return cell.seq.load(std::memory_order_seq_cst) == dequeue_pos_ + 1;
}

void ShardWorker::PublishAccepted(std::size_t k) {
  submitted_.fetch_add(k, std::memory_order_seq_cst);
  // Wakeup coalescing (Dekker): the producer published its cell seq
  // (seq_cst) before this load; the worker sets parked_ (seq_cst) before
  // its RingReady check. Whichever ran second sees the other's write, so
  // either the worker finds the chunk on its own or we find parked_ set
  // and wake it — never both asleep.
  if (parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    work_cv_.notify_one();
  }
}

void ShardWorker::NotifySpaceFreed() {
  // Same Dekker shape as PublishAccepted: producers register in
  // space_waiters_ (seq_cst) before re-checking the budget; the worker
  // released budget (seq_cst) before this load.
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    space_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Producer paths.

Status ShardWorker::Submit(const Edge& raw_edge) {
  return EnqueueImpl(std::span<const Edge>(&raw_edge, 1), nullptr);
}

Status ShardWorker::SubmitBatch(std::span<const Edge> raw_edges,
                                std::size_t* accepted) {
  return EnqueueImpl(raw_edges, accepted);
}

Status ShardWorker::SubmitBatch(std::vector<Edge>&& chunk,
                                std::size_t* accepted) {
  return EnqueueImpl(std::span<const Edge>(chunk.data(), chunk.size()),
                     accepted, &chunk);
}

std::size_t ShardWorker::OfferBatch(std::span<const Edge> edges) {
  if (edges.empty()) return 0;
  if (stopping_flag_.load(std::memory_order_acquire)) return 0;
  const std::size_t take = TryClaimUpTo(edges.size());
  if (take == 0) return 0;
  // Post-claim stop re-check, same as EnqueueImpl: an accepted-then-lost
  // chunk is worse than a rejected one.
  if (stopping_flag_.load(std::memory_order_seq_cst)) {
    ReleaseBudget(take);
    return 0;
  }
  Chunk chunk(edges.subspan(0, take));
  if (!TryPushChunk(std::move(chunk))) {
    ReleaseBudget(take);
    return 0;
  }
  PublishAccepted(take);
  return take;
}

Status ShardWorker::SubmitRetire(Timestamp horizon) {
  if (!options_.track_window) {
    return Status::FailedPrecondition(
        "ShardWorker::SubmitRetire: worker was built without track_window");
  }
  if (stopping_flag_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  // Same lock-free fast path as EnqueueImpl, claiming one edge of budget
  // for the marker (including the post-claim stop re-check — see
  // EnqueueImpl for why it must follow the claim).
  if (TryClaimBudget(1)) {
    if (stopping_flag_.load(std::memory_order_seq_cst)) {
      ReleaseBudget(1);
      return Status::FailedPrecondition("ShardWorker is stopped");
    }
    Chunk chunk;
    chunk.is_retire = true;
    chunk.retire_horizon = horizon;
    if (TryPushChunk(std::move(chunk))) {
      PublishAccepted(1);
      return Status::OK();
    }
    ReleaseBudget(1);
  }
  if (!options_.block_when_full) {
    return Status::OutOfRange("ShardWorker queue full");
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  Status result = Status::OK();
  for (;;) {
    if (stopping_) {
      result = Status::FailedPrecondition("ShardWorker is stopped");
      break;
    }
    if (TryClaimBudget(1)) {
      Chunk chunk;
      chunk.is_retire = true;
      chunk.retire_horizon = horizon;
      if (TryPushChunk(std::move(chunk))) {
        submitted_.fetch_add(1, std::memory_order_seq_cst);
        work_cv_.notify_one();
        break;
      }
      ReleaseBudget(1);
    }
    space_cv_.wait(lock);
  }
  space_waiters_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Status ShardWorker::EnqueueImpl(std::span<const Edge> edges,
                                std::size_t* accepted,
                                std::vector<Edge>* owned) {
  if (accepted != nullptr) *accepted = 0;
  if (edges.empty()) return Status::OK();
  if (stopping_flag_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  const bool allow_partial = accepted != nullptr;
  if (!allow_partial && edges.size() > options_.max_queue) {
    return Status::InvalidArgument(
        "ShardWorker::SubmitBatch: chunk exceeds max_queue");
  }

  std::size_t done = 0;
  // Lock-free fast path: claim budget, claim a cell, publish.
  {
    const std::size_t want = edges.size();
    const std::size_t take =
        allow_partial ? TryClaimUpTo(want)
                      : (TryClaimBudget(want) ? want : 0);
    if (take > 0) {
      // Re-check the stop flag AFTER the claim (seq_cst on both sides):
      // either this load sees the flag and we release + fail, or the
      // claim precedes the flag store in the seq_cst order — and then the
      // exiting worker's queued_edges_==0 check (which runs after the
      // flag store) must observe the claim and keep draining. Without
      // this, a producer that read the flag as false before Stop() could
      // publish into a ring nobody will ever pop: accepted, then lost.
      if (stopping_flag_.load(std::memory_order_seq_cst)) {
        ReleaseBudget(take);
        return Status::FailedPrecondition("ShardWorker is stopped");
      }
      const bool moved_owned =
          owned != nullptr && take == edges.size() && take > 1;
      Chunk chunk = moved_owned ? Chunk(std::move(*owned))
                                : Chunk(edges.subspan(0, take));
      if (TryPushChunk(std::move(chunk))) {
        PublishAccepted(take);
        done = take;
        if (accepted != nullptr) *accepted = done;
        if (done == edges.size()) return Status::OK();
      } else {
        ReleaseBudget(take);
        if (moved_owned) {
          // TryPushChunk does not consume on failure; hand the storage
          // back so `edges` (a span over it) stays valid for the slow
          // path and the caller keeps its intact chunk on error.
          *owned = std::move(chunk.many);
        }
      }
    }
  }
  if (!options_.block_when_full) {
    // Fail fast. With `accepted`, the prefix that fit stays enqueued and
    // is reported exactly; without it, nothing was enqueued.
    return Status::OutOfRange("ShardWorker queue full");
  }

  // Blocking slow path: register as a space waiter and hand the remainder
  // over (in one piece, or — with `accepted` — in pieces) as the worker
  // frees space.
  std::unique_lock<std::mutex> lock(queue_mutex_);
  space_waiters_.fetch_add(1, std::memory_order_seq_cst);
  bool stopped = false;
  while (done < edges.size()) {
    if (stopping_) {
      stopped = true;
      break;
    }
    const std::size_t want = edges.size() - done;
    const std::size_t take =
        allow_partial ? TryClaimUpTo(want)
                      : (TryClaimBudget(want) ? want : 0);
    if (take > 0) {
      Chunk chunk(edges.subspan(done, take));
      if (TryPushChunk(std::move(chunk))) {
        // Already under queue_mutex_ — notify the worker directly instead
        // of PublishAccepted's lock-taking coalesced wakeup.
        submitted_.fetch_add(take, std::memory_order_seq_cst);
        work_cv_.notify_one();
        done += take;
        if (accepted != nullptr) *accepted = done;
        continue;
      }
      ReleaseBudget(take);
    }
    space_cv_.wait(lock);
  }
  space_waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (stopped) {
    return Status::FailedPrecondition("ShardWorker is stopped");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Drain / Stop.

void ShardWorker::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  const std::uint64_t target = submitted_.load(std::memory_order_seq_cst);
  if (exact_through_ >= target || worker_exited_) return;
  // The worker flushes the benign buffers and republishes only while a
  // drain waiter is registered (exactness on demand keeps edge-grouping
  // amortization intact between drains), so wake it up.
  ++drain_waiters_;
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this, target] {
    return exact_through_ >= target || worker_exited_;
  });
  --drain_waiters_;
}

bool ShardWorker::DrainFor(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  const std::uint64_t target = submitted_.load(std::memory_order_seq_cst);
  if (exact_through_ >= target || worker_exited_) return true;
  ++drain_waiters_;
  work_cv_.notify_one();
  const bool reached = drain_cv_.wait_for(lock, timeout, [this, target] {
    return exact_through_ >= target || worker_exited_;
  });
  --drain_waiters_;
  return reached;
}

void ShardWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
    // seq_cst: pairs with the producers' post-claim re-check (EnqueueImpl)
    // and the worker's exit-time queued_edges_ check.
    stopping_flag_.store(true, std::memory_order_seq_cst);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_ptr<const Community> ShardWorker::CurrentSnapshot() const {
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  return snapshot_.load();
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
#endif
}

// ---------------------------------------------------------------------------
// Observability.

std::size_t ShardWorker::TakeRecentHighWater() {
  const std::size_t recent =
      queue_hwm_recent_.exchange(0, std::memory_order_relaxed);
  std::size_t total = queue_hwm_total_.load(std::memory_order_relaxed);
  while (recent > total &&
         !queue_hwm_total_.compare_exchange_weak(
             total, recent, std::memory_order_relaxed)) {
  }
  return recent;
}

void ShardWorker::ResetHighWater() {
  queue_hwm_recent_.store(0, std::memory_order_relaxed);
  queue_hwm_total_.store(0, std::memory_order_relaxed);
}

double ShardWorker::BusyFraction() const {
  const double wall_ns = std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
  if (wall_ns <= 0.0) return 0.0;
  const double busy =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed));
  return busy >= wall_ns ? 1.0 : busy / wall_ns;
}

std::vector<std::size_t> ShardWorker::OwnedPartitions() const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  std::vector<std::size_t> pids;
  pids.reserve(parts_.size());
  for (const auto& p : parts_) pids.push_back(p->pid);
  std::sort(pids.begin(), pids.end());
  return pids;
}

std::vector<std::pair<std::size_t, std::uint64_t>>
ShardWorker::PartitionLoads() {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  std::vector<std::pair<std::size_t, std::uint64_t>> loads;
  loads.reserve(parts_.size());
  for (auto& p : parts_) {
    loads.emplace_back(p->pid, p->recent_load);
    p->recent_load = 0;
  }
  std::sort(loads.begin(), loads.end());
  return loads;
}

// ---------------------------------------------------------------------------
// Partition ownership.

ShardWorker::Partition* ShardWorker::PartitionForLocked(const Edge& edge) {
  if (!partition_of_) {
    return parts_.empty() ? nullptr : parts_.front().get();
  }
  const std::size_t pid = partition_of_(edge);
  if (pid >= by_pid_.size()) return nullptr;
  return by_pid_[pid];
}

ShardWorker::Partition* ShardWorker::FindPartitionLocked(std::size_t pid) {
  if (pid < by_pid_.size()) return by_pid_[pid];
  return nullptr;
}

const ShardWorker::Partition* ShardWorker::FindPartitionLocked(
    std::size_t pid) const {
  if (pid < by_pid_.size()) return by_pid_[pid];
  return nullptr;
}

ShardWorker::Partition* ShardWorker::SolePartitionLocked() {
  return parts_.size() == 1 ? parts_.front().get() : nullptr;
}

std::unique_ptr<ShardWorker::Partition> ShardWorker::DetachPartition(
    std::size_t pid) {
  std::unique_ptr<Partition> out;
  std::lock_guard<std::mutex> lock(detector_mutex_);
  for (auto it = parts_.begin(); it != parts_.end(); ++it) {
    if ((*it)->pid == pid) {
      out = std::move(*it);
      parts_.erase(it);
      break;
    }
  }
  if (out == nullptr) return nullptr;
  by_pid_[pid] = nullptr;
  // Republish without the detached partition so a reader never sees a
  // community that two workers both claim (the new owner republishes it on
  // attach).
  PublishArgmaxLocked();
  return out;
}

void ShardWorker::AttachPartition(std::unique_ptr<Partition> partition) {
  SPADE_CHECK(partition != nullptr);
  std::lock_guard<std::mutex> lock(detector_mutex_);
  SPADE_CHECK(partition->pid < by_pid_.size());
  SPADE_CHECK(by_pid_[partition->pid] == nullptr);
  by_pid_[partition->pid] = partition.get();
  parts_.push_back(std::move(partition));
  PublishArgmaxLocked();
}

void ShardWorker::CollectInduced(std::span<const VertexId> vertices,
                                 const std::function<bool(VertexId)>& contains,
                                 std::vector<Edge>* edges,
                                 std::vector<double>* vertex_weight) const {
  SPADE_CHECK(vertex_weight->size() >= vertices.size());
  std::lock_guard<std::mutex> lock(detector_mutex_);
  for (const auto& p : parts_) {
    const DynamicGraph& g = p->spade.graph();
    const std::size_t n = g.NumVertices();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      const VertexId v = vertices[i];
      if (v >= n) continue;  // this partition never saw the vertex
      (*vertex_weight)[i] = std::max((*vertex_weight)[i], g.VertexWeight(v));
      for (const NeighborEntry& e : g.OutNeighbors(v)) {
        if (contains(e.vertex)) {
          edges->push_back(Edge{v, e.vertex, e.weight, 0});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Persistence.

Status ShardWorker::SavePartitionLocked(Partition& p, const std::string& path,
                                        bool start_delta_tracking) {
  // A full save is a checkpoint: whatever history the log held is now
  // covered by the base snapshot. (The flush below mirrors what
  // Spade::SaveState did; replay of a later chain starts from that flushed
  // state, which is why no marker needs to survive the reset.) The window
  // log rides in the snapshot's v2 section — an empty window (every
  // non-windowed partition) writes the same v1 bytes as before.
  SPADE_RETURN_NOT_OK(p.spade.Flush());
  const std::vector<Edge> window(p.window_log.begin(), p.window_log.end());
  SPADE_RETURN_NOT_OK(
      SaveSnapshot(path, p.spade.graph(), &p.spade.peel_state(), window));
  p.delta_log.clear();
  p.delta_overflow = false;
  if (start_delta_tracking) p.delta_tracking = true;
  return Status::OK();
}

Status ShardWorker::SaveState(const std::string& path,
                              bool start_delta_tracking) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = SolePartitionLocked();
  if (p == nullptr) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveState requires a sole-partition worker; use "
        "SavePartition");
  }
  return SavePartitionLocked(*p, path, start_delta_tracking);
}

Status ShardWorker::SavePartition(std::size_t pid, const std::string& path,
                                  bool start_delta_tracking) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) {
    return Status::NotFound(
        "ShardWorker::SavePartition: partition not owned by this worker");
  }
  return SavePartitionLocked(*p, path, start_delta_tracking);
}

Status ShardWorker::SaveDeltaLocked(Partition& p, const std::string& path,
                                    std::uint32_t shard,
                                    std::uint64_t prev_epoch,
                                    std::uint64_t epoch, DeltaSaveInfo* info) {
  if (!p.delta_tracking) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: no checkpoint baseline (run a full "
        "SaveState first)");
  }
  if (p.delta_overflow) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: delta log overflowed; a full SaveState is "
        "required");
  }
  DeltaSegment segment;
  segment.shard = shard;
  segment.prev_epoch = prev_epoch;
  segment.epoch = epoch;
  segment.records = std::move(p.delta_log);
  p.delta_log.clear();
  std::uint64_t bytes = 0;
  const Status s = WriteDeltaSegment(path, segment, &bytes);
  if (!s.ok()) {
    // The write failed but the history is still the truth — put it back so
    // a retry (or a fallback full save) does not lose the chain.
    p.delta_log = std::move(segment.records);
    return s;
  }
  if (info != nullptr) {
    info->bytes = bytes;
    info->records = segment.records.size();
    info->edges = segment.NumEdges();
  }
  return Status::OK();
}

Status ShardWorker::SaveDelta(const std::string& path, std::uint32_t shard,
                              std::uint64_t prev_epoch, std::uint64_t epoch,
                              DeltaSaveInfo* info) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = SolePartitionLocked();
  if (p == nullptr) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta requires a sole-partition worker; use "
        "SavePartitionDelta");
  }
  return SaveDeltaLocked(*p, path, shard, prev_epoch, epoch, info);
}

Status ShardWorker::SavePartitionDelta(std::size_t pid,
                                       const std::string& path,
                                       std::uint32_t shard,
                                       std::uint64_t prev_epoch,
                                       std::uint64_t epoch,
                                       DeltaSaveInfo* info) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) {
    return Status::NotFound(
        "ShardWorker::SavePartitionDelta: partition not owned by this "
        "worker");
  }
  return SaveDeltaLocked(*p, path, shard, prev_epoch, epoch, info);
}

void ShardWorker::AppendDeltaRecord(Partition& p, const DeltaRecord& record) {
  if (!p.delta_tracking || p.delta_overflow) return;
  if (p.delta_log.size() >= options_.max_delta_log) {
    // Unbounded history is worse than a forced full checkpoint: drop the
    // log, remember the overflow, and let the next SaveDelta fail fast.
    p.delta_log.clear();
    p.delta_log.shrink_to_fit();
    p.delta_overflow = true;
    return;
  }
  p.delta_log.push_back(record);
}

void ShardWorker::RebaselineLocked(Partition& p, bool flush) {
  // Re-baseline the alert filter on the restored community and cache it so
  // readers switch over atomically (the caller republishes the argmax).
  // The non-flushing read preserves the replayed benign buffer (Lemma 4.4:
  // buffered edges cannot have improved the community, so the baseline is
  // the same either way).
  Community restored =
      flush ? p.spade.Detect() : p.spade.peel_state().DetectCommunity();
  p.last_reported = SortedMembers(restored);
  p.last_density = restored.density;
  p.since_detect = 0;
  p.current = std::make_shared<const Community>(std::move(restored));
}

Status ShardWorker::RestoreState(const std::string& path) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = SolePartitionLocked();
  if (p == nullptr) {
    return Status::FailedPrecondition(
        "ShardWorker::RestoreState requires a sole-partition worker");
  }
  DynamicGraph graph;
  PeelState state;
  bool state_present = false;
  std::vector<Edge> window;
  SPADE_RETURN_NOT_OK(
      LoadSnapshot(path, &graph, &state, &state_present, &window));
  p->spade.RestoreFromParts(std::move(graph), std::move(state),
                            state_present);
  p->window_log.assign(window.begin(), window.end());
  p->delta_log.clear();
  p->delta_overflow = false;
  RebaselineLocked(*p, /*flush=*/true);
  PublishArgmaxLocked();
  return Status::OK();
}

Status ShardWorker::RestoreChainLocked(Partition& p, RestorePlan&& plan) {
  p.spade.RestoreFromParts(std::move(plan.graph), std::move(plan.state),
                           plan.state_present);
  p.window_log.assign(plan.window.begin(), plan.window.end());
  // Replay the applied history through the same entry points the live
  // worker used. Every record passed CRC validation and came from a
  // successfully applied edge, so a failure here is a logic error — but
  // it still surfaces as a Status, not a partial silent state.
  for (const DeltaSegment& segment : plan.segments) {
    for (const DeltaRecord& record : segment.records) {
      if (record.flush) {
        SPADE_RETURN_NOT_OK(p.spade.Flush());
      } else if (record.retire) {
        SPADE_RETURN_NOT_OK(ReplayRetireLocked(p, record.edge));
      } else {
        double applied = 0;
        SPADE_RETURN_NOT_OK(p.spade.ApplyEdge(record.edge, &applied));
        if (options_.track_window) {
          p.window_log.push_back(Edge{record.edge.src, record.edge.dst,
                                      applied, record.edge.ts});
        }
      }
    }
  }
  p.delta_log.clear();
  p.delta_overflow = false;
  p.delta_tracking = true;
  RebaselineLocked(p, /*flush=*/false);
  PublishArgmaxLocked();
  return Status::OK();
}

Status ShardWorker::RestoreChain(RestorePlan&& plan) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = SolePartitionLocked();
  if (p == nullptr) {
    return Status::FailedPrecondition(
        "ShardWorker::RestoreChain requires a sole-partition worker; use "
        "RestorePartitionChain");
  }
  return RestoreChainLocked(*p, std::move(plan));
}

Status ShardWorker::RestorePartitionChain(std::size_t pid,
                                          RestorePlan&& plan) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) {
    return Status::NotFound(
        "ShardWorker::RestorePartitionChain: partition not owned by this "
        "worker");
  }
  return RestoreChainLocked(*p, std::move(plan));
}

Status ShardWorker::ReplaySegmentLocked(Partition& p,
                                        const DeltaSegment& segment) {
  for (const DeltaRecord& record : segment.records) {
    if (record.flush) {
      SPADE_RETURN_NOT_OK(p.spade.Flush());
    } else if (record.retire) {
      SPADE_RETURN_NOT_OK(ReplayRetireLocked(p, record.edge));
    } else {
      double applied = 0;
      SPADE_RETURN_NOT_OK(p.spade.ApplyEdge(record.edge, &applied));
      if (options_.track_window) {
        p.window_log.push_back(Edge{record.edge.src, record.edge.dst,
                                    applied, record.edge.ts});
      }
    }
  }
  // The replayed records came from a sealed checkpoint: the detector now
  // matches that checkpoint, so the in-memory history restarts from it
  // (the owner invalidates its chain cache, making the next save a full
  // base — see ShardedDetectionService::ApplyChainEpoch).
  p.delta_log.clear();
  p.delta_overflow = false;
  p.delta_tracking = true;
  RebaselineLocked(p, /*flush=*/false);
  PublishArgmaxLocked();
  return Status::OK();
}

Status ShardWorker::ReplaySegment(const DeltaSegment& segment,
                                  std::chrono::milliseconds drain_timeout) {
  if (!DrainFor(drain_timeout)) {
    return Status::FailedPrecondition(
        "ReplaySegment: shard queue did not drain within " +
        std::to_string(drain_timeout.count()) + "ms");
  }
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = SolePartitionLocked();
  if (p == nullptr) {
    return Status::FailedPrecondition(
        "ShardWorker::ReplaySegment requires a sole-partition worker; use "
        "ReplayPartitionSegment");
  }
  return ReplaySegmentLocked(*p, segment);
}

Status ShardWorker::ReplayPartitionSegment(
    std::size_t pid, const DeltaSegment& segment,
    std::chrono::milliseconds drain_timeout) {
  if (!DrainFor(drain_timeout)) {
    return Status::FailedPrecondition(
        "ReplayPartitionSegment: shard queue did not drain within " +
        std::to_string(drain_timeout.count()) + "ms");
  }
  std::lock_guard<std::mutex> lock(detector_mutex_);
  Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) {
    return Status::NotFound(
        "ShardWorker::ReplayPartitionSegment: partition not owned by this "
        "worker");
  }
  return ReplaySegmentLocked(*p, segment);
}

void ShardWorker::InspectDetector(
    const std::function<void(const Spade&)>& fn) const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  SPADE_CHECK(!parts_.empty());
  fn(parts_.front()->spade);
}

Status ShardWorker::InspectPartition(
    std::size_t pid, const std::function<void(const Spade&)>& fn) const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  const Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) {
    return Status::NotFound(
        "ShardWorker::InspectPartition: partition not owned by this worker");
  }
  fn(p->spade);
  return Status::OK();
}

std::vector<Edge> ShardWorker::WindowEdges() const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  std::vector<const Partition*> ordered;
  ordered.reserve(parts_.size());
  for (const auto& p : parts_) ordered.push_back(p.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Partition* a, const Partition* b) {
              return a->pid < b->pid;
            });
  std::vector<Edge> out;
  for (const Partition* p : ordered) {
    out.insert(out.end(), p->window_log.begin(), p->window_log.end());
  }
  return out;
}

std::vector<Edge> ShardWorker::PartitionWindowEdges(std::size_t pid) const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  const Partition* p = FindPartitionLocked(pid);
  if (p == nullptr) return {};
  return std::vector<Edge>(p->window_log.begin(), p->window_log.end());
}

Status ShardWorker::ReplayRetireLocked(Partition& p, const Edge& record) {
  SPADE_RETURN_NOT_OK(
      p.spade.RetireEdge(record.src, record.dst, record.weight));
  retired_.fetch_add(1, std::memory_order_relaxed);
  // The live pass popped this entry off its window log; mirror it. The
  // record is almost always the log front (oldest-first expiry); the
  // fallback search only runs in the degenerate case where a live retire
  // failed and its entry was dropped without a record.
  const auto matches = [&record](const Edge& e) {
    return e.src == record.src && e.dst == record.dst &&
           e.weight == record.weight && e.ts == record.ts;
  };
  if (!p.window_log.empty() && matches(p.window_log.front())) {
    p.window_log.pop_front();
    return Status::OK();
  }
  const auto it =
      std::find_if(p.window_log.begin(), p.window_log.end(), matches);
  if (it != p.window_log.end()) {
    p.window_log.erase(it);
  } else if (options_.track_window) {
    SPADE_LOG_WARNING()
        << "ShardWorker replay: retire record not found in window log";
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Worker loop.

void ShardWorker::PublishArgmaxLocked() {
  std::shared_ptr<const Community> best;
  for (const auto& p : parts_) {
    if (p->current && (!best || p->current->density > best->density)) {
      best = p->current;
    }
  }
  if (!best) best = std::make_shared<const Community>();
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(best));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(best);
#endif
}

void ShardWorker::DetectAndPublish(Partition& p) {
  // Caller holds detector_mutex_.
  if (p.spade.PendingBenignEdges() > 0) {
    // Detect() is about to fold the benign buffer in; the replayed history
    // must flush at exactly this point to stay bit-identical (the flush
    // changes the graph, and state-dependent semantics weigh later edges
    // against it).
    AppendDeltaRecord(p, DeltaRecord::Flush());
  }
  Community community = p.spade.Detect();
  p.since_detect = 0;
  detections_.fetch_add(1, std::memory_order_relaxed);
  std::vector<VertexId> sorted = SortedMembers(community);
  const bool changed =
      sorted != p.last_reported || community.density != p.last_density;
  p.current = std::make_shared<const Community>(std::move(community));
  PublishArgmaxLocked();
  if (!changed) return;
  p.last_reported = std::move(sorted);
  p.last_density = p.current->density;
  alerts_.fetch_add(1, std::memory_order_relaxed);
  if (on_alert_) {
    pending_alerts_.push_back(p.current);
  }
}

bool ShardWorker::ApplyOne(const Edge& edge) {
  std::vector<std::shared_ptr<const Community>> alerts;
  {
    std::lock_guard<std::mutex> apply_lock(detector_mutex_);
    Partition* p = PartitionForLocked(edge);
    if (p == nullptr) {
      // Routed here under a stale partition-map entry (the partition moved
      // away). The edge stays this worker's responsibility — and is NOT
      // yet counted as consumed — until the current owner accepts it.
      forward_backlog_.push_back(edge);
      return false;
    }
    ++consumed_;
    double applied = 0;
    const Status s = p->spade.ApplyEdge(edge, &applied);
    if (s.ok()) {
      AppendDeltaRecord(*p, DeltaRecord::Insert(edge));
      if (options_.track_window) {
        p->window_log.push_back(Edge{edge.src, edge.dst, applied, edge.ts});
      }
      // Boundary push under the detector mutex: any state snapshot
      // that contains this edge (SaveState locks after Drain) is
      // therefore saved after its boundary record exists, so a
      // restored fleet can always rediscover the seam. Keyed by
      // partition home, so the record survives a partition move.
      if (on_boundary_) on_boundary_(edge, applied, /*retired=*/false);
      processed_.fetch_add(1, std::memory_order_relaxed);
      ++p->since_detect;
      ++p->recent_load;
      // An urgent edge flushed the benign buffer inside ApplyEdge;
      // detect right away so moderators hear about new fraudsters
      // immediately.
      if (p->spade.PendingBenignEdges() == 0 ||
          p->since_detect >= options_.detect_every) {
        DetectAndPublish(*p);
        alerts = TakePendingAlertsLocked();
      }
    } else {
      SPADE_LOG_WARNING() << "ShardWorker dropped edge: " << s.ToString();
    }
  }
  // Deliver with no lock held: a slow moderator delays the next apply
  // on this shard but never blocks producers, readers, or Save/Restore
  // beyond this one callback.
  for (const auto& a : alerts) on_alert_(*a);
  return true;
}

void ShardWorker::FlushForwardBacklog() {
  if (forward_backlog_.empty()) return;
  // Edges whose partition came back (moved away and home again, or the
  // map was republished before we looked) apply locally; the rest forward.
  std::vector<Edge> came_home;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    if (partition_of_) {
      std::size_t keep = 0;
      for (const Edge& e : forward_backlog_) {
        const std::size_t pid = partition_of_(e);
        Partition* p = pid < by_pid_.size() ? by_pid_[pid] : nullptr;
        if (p != nullptr) {
          came_home.push_back(e);
        } else {
          forward_backlog_[keep++] = e;
        }
      }
      forward_backlog_.resize(keep);
    }
  }
  for (const Edge& e : came_home) ApplyOne(e);
  if (!forward_backlog_.empty()) {
    if (!forward_) {
      // No forwarding wired but a partition moved away regardless — a
      // misconfiguration; dropping (with accounting) beats wedging Drain.
      SPADE_LOG_WARNING() << "ShardWorker: dropping "
                          << forward_backlog_.size()
                          << " edges for unowned partitions (no forward fn)";
      std::lock_guard<std::mutex> lock(detector_mutex_);
      consumed_ += forward_backlog_.size();
      forward_backlog_.clear();
    } else {
      const std::size_t accepted = forward_(std::span<const Edge>(
          forward_backlog_.data(), forward_backlog_.size()));
      if (accepted > 0) {
        forward_backlog_.erase(forward_backlog_.begin(),
                               forward_backlog_.begin() +
                                   static_cast<std::ptrdiff_t>(accepted));
        std::lock_guard<std::mutex> lock(detector_mutex_);
        consumed_ += accepted;
      }
    }
  }
  // Publish disposal progress so drain predicates see it without waiting
  // for the next round end.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    consumed_q_ = consumed_;
  }
  drain_cv_.notify_all();
}

void ShardWorker::MakeExact() {
  std::vector<std::shared_ptr<const Community>> alerts;
  {
    std::lock_guard<std::mutex> apply_lock(detector_mutex_);
    for (auto& p : parts_) {
      if (p->since_detect > 0 || p->spade.PendingBenignEdges() > 0) {
        DetectAndPublish(*p);
      }
    }
    alerts = TakePendingAlertsLocked();
  }
  for (const auto& a : alerts) on_alert_(*a);
  // A backlogged edge has not been applied anywhere yet: the snapshot
  // cannot be exact until the owner accepts it (the timed park retries).
  if (!forward_backlog_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Only an empty ring makes the snapshot exact; a racing Submit defers
    // exactness to the next round.
    if (queued_edges_.load(std::memory_order_seq_cst) == 0) {
      exact_through_ = consumed_q_;
    }
  }
  drain_cv_.notify_all();
}

void ShardWorker::WorkerLoop() {
  std::vector<Edge> batch;
  while (true) {
    // Gather every ready chunk (up to the gather cap) into one application
    // batch — the same amortization the old whole-buffer swap provided. A
    // retire marker ends the round: the pass must see exactly the edges
    // submitted before it (ring order), not ones gathered after.
    batch.clear();
    bool have_retire = false;
    Timestamp retire_horizon = 0;
    {
      Chunk chunk;
      while (batch.size() < kGatherCap && !have_retire &&
             TryPopChunk(&chunk)) {
        if (chunk.is_retire) {
          have_retire = true;
          retire_horizon = chunk.retire_horizon;
        } else if (chunk.is_one) {
          batch.push_back(chunk.one);
        } else if (batch.empty()) {
          // Recycle the batch's old buffer before adopting the slab —
          // steady state circulates slabs through the pool instead of
          // allocating per chunk.
          if (slab_pool_ && batch.capacity() > 0) {
            slab_pool_->Put(std::move(batch));
          }
          batch = std::move(chunk.many);
        } else {
          batch.insert(batch.end(), chunk.many.begin(), chunk.many.end());
          if (slab_pool_) slab_pool_->Put(std::move(chunk.many));
        }
      }
    }

    if (batch.empty() && !have_retire) {
      // Retry the forward backlog before parking: its edges are invisible
      // to the ring, so nothing else would wake us for them.
      if (!forward_backlog_.empty()) FlushForwardBacklog();
      bool make_exact = false;
      bool inflight_claim = false;
      bool exit_loop = false;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        // Park protocol (Dekker with PublishAccepted): set parked_ first,
        // then let the wait predicate re-check the ring. A producer that
        // published before the flag was set is seen by the predicate; one
        // that published after it sees the flag and notifies under the
        // mutex.
        parked_.store(true, std::memory_order_seq_cst);
        const auto ready = [this] {
          return stopping_ || RingReady() ||
                 (drain_waiters_ > 0 && exact_through_ < consumed_q_);
        };
        if (!forward_backlog_.empty()) {
          // Timed park: the backlog's forward target was full or mid-move;
          // poll it instead of sleeping until a producer shows up.
          work_cv_.wait_for(lock, kBacklogRetire, ready);
        } else {
          work_cv_.wait(lock, ready);
        }
        parked_.store(false, std::memory_order_relaxed);
        if (RingReady()) continue;  // new work: loop around and pop it
        if (stopping_) {
          // Exit only when no producer holds a claimed-but-unpublished
          // chunk (claims raise queued_edges_ before the cell publish):
          // a Submit that raced Stop() and was accepted must still be
          // applied, or "Stop drains queued edges first" silently drops
          // it. The producer publishes or releases momentarily.
          if (queued_edges_.load(std::memory_order_seq_cst) == 0) {
            exit_loop = true;
          } else {
            inflight_claim = true;
          }
        } else {
          // A Drain() waiter needs the snapshot brought up to date (flush
          // buffered benign edges, republish); no new edges to apply.
          make_exact = drain_waiters_ > 0 && exact_through_ < consumed_q_;
        }
      }
      if (exit_loop) break;
      if (inflight_claim) {
        std::this_thread::yield();
        continue;
      }
      if (make_exact) MakeExact();
      continue;
    }

    // The popped chunks already left the budget gauge; wake any blocked
    // producers (only when some are registered — coalesced like wakeups).
    NotifySpaceFreed();

    const auto work_begin = std::chrono::steady_clock::now();
    for (const Edge& edge : batch) {
      ApplyOne(edge);
    }
    if (!forward_backlog_.empty()) FlushForwardBacklog();

    if (have_retire) {
      // Pre-deletion announcement: deletions shrink the graph the moment
      // they apply, but consumers (the sharded service's stitched
      // snapshot) are only told via on_retire_ — a callback fired after
      // the pass used to leave a window where a reader could combine the
      // shrunken live argmax with a stale pre-deletion snapshot. Bump the
      // begin counter and fire on_retire_(0) BEFORE the first deletion so
      // stale state is dropped while the graph still matches it. Only
      // this thread (and Detach, which can only remove work) mutates the
      // window logs, so the peek stays conservative.
      bool will_retire = false;
      {
        std::lock_guard<std::mutex> peek_lock(detector_mutex_);
        for (const auto& p : parts_) {
          if (!p->window_log.empty() &&
              p->window_log.front().ts < retire_horizon) {
            will_retire = true;
            break;
          }
        }
      }
      if (will_retire) {
        retire_begins_.fetch_add(1, std::memory_order_seq_cst);
        if (on_retire_) on_retire_(0);
      }
      std::vector<std::shared_ptr<const Community>> alerts;
      std::size_t retired_now = 0;
      {
        std::lock_guard<std::mutex> apply_lock(detector_mutex_);
        ++consumed_;  // the marker's one unit of queue budget
        for (auto& p : parts_) {
          // Pop the expired prefix oldest-first. The log is
          // arrival-ordered, so an out-of-timestamp-order edge shields the
          // entries behind it until the horizon passes it too —
          // conservative (never retires a live edge), and deterministic:
          // replay retires exactly the recorded set.
          std::size_t part_retired = 0;
          while (!p->window_log.empty() &&
                 p->window_log.front().ts < retire_horizon) {
            const Edge old = p->window_log.front();
            p->window_log.pop_front();
            const Status s =
                p->spade.RetireEdge(old.src, old.dst, old.weight);
            if (!s.ok()) {
              SPADE_LOG_WARNING()
                  << "ShardWorker retire failed: " << s.ToString();
              continue;
            }
            AppendDeltaRecord(*p, DeltaRecord::Retire(old));
            // Retire deltas feed the stitch trigger accumulators (seam
            // mass changed), never the boundary record log — index
            // eviction is horizon-driven (EvictOlderThan).
            if (on_boundary_) on_boundary_(old, old.weight, /*retired=*/true);
            ++part_retired;
          }
          if (part_retired > 0) {
            retired_now += part_retired;
            // Deletion can shrink the community or its density —
            // republish (and alert) right away rather than waiting out
            // detect_every.
            DetectAndPublish(*p);
          }
        }
        if (retired_now > 0) {
          retired_.fetch_add(retired_now, std::memory_order_relaxed);
        }
        alerts = TakePendingAlertsLocked();
      }
      for (const auto& a : alerts) on_alert_(*a);
      if (retired_now > 0 && on_retire_) on_retire_(retired_now);
    }

    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - work_begin)
                .count()),
        std::memory_order_relaxed);

    // Round-end exactness: every partition detected-and-flushed, and no
    // backlogged edge awaiting its owner.
    bool exact_after_batch = forward_backlog_.empty();
    if (exact_after_batch) {
      std::lock_guard<std::mutex> apply_lock(detector_mutex_);
      for (const auto& p : parts_) {
        if (p->since_detect != 0 || p->spade.PendingBenignEdges() != 0) {
          exact_after_batch = false;
          break;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      consumed_q_ = consumed_;
      // Cheap advance: if the batch happened to end on a fresh detection,
      // the published snapshot is already exact and a later Drain() needs
      // no worker round-trip. Otherwise exactness is produced on demand by
      // the MakeExact branch above.
      if (exact_after_batch &&
          queued_edges_.load(std::memory_order_seq_cst) == 0) {
        exact_through_ = consumed_q_;
      }
    }
    drain_cv_.notify_all();
  }

  // Shutdown: hand off (or, failing that, drop) any backlogged edges so
  // accounting closes out — a forward target that is itself stopping may
  // refuse them, and a stopped fleet has nowhere better to put them.
  if (!forward_backlog_.empty()) {
    FlushForwardBacklog();
    if (!forward_backlog_.empty()) {
      SPADE_LOG_WARNING() << "ShardWorker exiting with "
                          << forward_backlog_.size()
                          << " unforwardable edges (dropped)";
      std::lock_guard<std::mutex> lock(detector_mutex_);
      consumed_ += forward_backlog_.size();
      forward_backlog_.clear();
    }
  }

  // Final shutdown flush.
  {
    std::vector<std::shared_ptr<const Community>> alerts;
    {
      std::lock_guard<std::mutex> apply_lock(detector_mutex_);
      for (auto& p : parts_) {
        if (p->since_detect > 0 || p->spade.PendingBenignEdges() > 0) {
          DetectAndPublish(*p);
        }
      }
      alerts = TakePendingAlertsLocked();
    }
    for (const auto& a : alerts) on_alert_(*a);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    worker_exited_ = true;
    exact_through_ = consumed_;
  }
  drain_cv_.notify_all();
  space_cv_.notify_all();
}

}  // namespace spade
