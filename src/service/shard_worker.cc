#include "service/shard_worker.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace spade {

namespace {

std::vector<VertexId> SortedMembers(const Community& c) {
  std::vector<VertexId> sorted = c.members;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

ShardWorker::ShardWorker(Spade spade, FraudAlertFn on_alert,
                         DetectionServiceOptions options)
    : options_(options),
      on_alert_(std::move(on_alert)),
      spade_(std::move(spade)) {
  spade_.TurnOnEdgeGrouping();
  // Publish the initial community before the worker exists, so readers
  // always observe a valid snapshot and the first alert fires only when the
  // stream actually changes the community.
  Community initial = spade_.Detect();
  last_reported_ = SortedMembers(initial);
  last_density_ = initial.density;
  auto snap = std::make_shared<const Community>(std::move(initial));
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  snapshot_ = std::move(snap);
#endif
  worker_ = std::thread([this] { WorkerLoop(); });
}

ShardWorker::~ShardWorker() { Stop(); }

Status ShardWorker::Submit(const Edge& raw_edge) {
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      return Status::FailedPrecondition("ShardWorker is stopped");
    }
    if (producer_buffer_.size() >= options_.max_queue) {
      if (!options_.block_when_full) {
        return Status::OutOfRange("ShardWorker queue full");
      }
      space_cv_.wait(lock, [this] {
        return stopping_ || producer_buffer_.size() < options_.max_queue;
      });
      if (stopping_) {
        return Status::FailedPrecondition("ShardWorker is stopped");
      }
    }
    producer_buffer_.push_back(raw_edge);
    queue_depth_.store(producer_buffer_.size(), std::memory_order_relaxed);
    ++submitted_;
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status ShardWorker::SubmitBatch(std::span<const Edge> raw_edges) {
  if (raw_edges.empty()) return Status::OK();
  if (raw_edges.size() > options_.max_queue) {
    return Status::InvalidArgument(
        "ShardWorker::SubmitBatch: chunk exceeds max_queue");
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      return Status::FailedPrecondition("ShardWorker is stopped");
    }
    if (producer_buffer_.size() + raw_edges.size() > options_.max_queue) {
      if (!options_.block_when_full) {
        return Status::OutOfRange("ShardWorker queue full");
      }
      space_cv_.wait(lock, [this, &raw_edges] {
        return stopping_ || producer_buffer_.size() + raw_edges.size() <=
                                options_.max_queue;
      });
      if (stopping_) {
        return Status::FailedPrecondition("ShardWorker is stopped");
      }
    }
    producer_buffer_.insert(producer_buffer_.end(), raw_edges.begin(),
                            raw_edges.end());
    queue_depth_.store(producer_buffer_.size(), std::memory_order_relaxed);
    submitted_ += raw_edges.size();
  }
  work_cv_.notify_one();
  return Status::OK();
}

void ShardWorker::Drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  const std::uint64_t target = submitted_;
  if (exact_through_ >= target || worker_exited_) return;
  // The worker flushes the benign buffer and republishes only while a
  // drain waiter is registered (exactness on demand keeps edge-grouping
  // amortization intact between drains), so wake it up.
  ++drain_waiters_;
  work_cv_.notify_one();
  drain_cv_.wait(lock, [this, target] {
    return exact_through_ >= target || worker_exited_;
  });
  --drain_waiters_;
}

void ShardWorker::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::shared_ptr<const Community> ShardWorker::CurrentSnapshot() const {
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  return snapshot_.load();
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
#endif
}

void ShardWorker::CollectInduced(std::span<const VertexId> vertices,
                                 const std::function<bool(VertexId)>& contains,
                                 std::vector<Edge>* edges,
                                 std::vector<double>* vertex_weight) const {
  SPADE_CHECK(vertex_weight->size() >= vertices.size());
  std::lock_guard<std::mutex> lock(detector_mutex_);
  const DynamicGraph& g = spade_.graph();
  const std::size_t n = g.NumVertices();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    if (v >= n) continue;  // this shard never saw the vertex
    (*vertex_weight)[i] = std::max((*vertex_weight)[i], g.VertexWeight(v));
    for (const NeighborEntry& e : g.OutNeighbors(v)) {
      if (contains(e.vertex)) {
        edges->push_back(Edge{v, e.vertex, e.weight, 0});
      }
    }
  }
}

Status ShardWorker::SaveState(const std::string& path,
                              bool start_delta_tracking) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  // A full save is a checkpoint: whatever history the log held is now
  // covered by the base snapshot. (Spade::SaveState flushes the benign
  // buffer first; replay of a later chain starts from that flushed state,
  // which is why no marker needs to survive the reset.)
  SPADE_RETURN_NOT_OK(spade_.SaveState(path));
  delta_log_.clear();
  delta_overflow_ = false;
  if (start_delta_tracking) delta_tracking_ = true;
  return Status::OK();
}

Status ShardWorker::SaveDelta(const std::string& path, std::uint32_t shard,
                              std::uint64_t prev_epoch, std::uint64_t epoch,
                              DeltaSaveInfo* info) {
  Drain();
  std::lock_guard<std::mutex> lock(detector_mutex_);
  if (!delta_tracking_) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: no checkpoint baseline (run a full "
        "SaveState first)");
  }
  if (delta_overflow_) {
    return Status::FailedPrecondition(
        "ShardWorker::SaveDelta: delta log overflowed; a full SaveState is "
        "required");
  }
  DeltaSegment segment;
  segment.shard = shard;
  segment.prev_epoch = prev_epoch;
  segment.epoch = epoch;
  segment.records = std::move(delta_log_);
  delta_log_.clear();
  std::uint64_t bytes = 0;
  const Status s = WriteDeltaSegment(path, segment, &bytes);
  if (!s.ok()) {
    // The write failed but the history is still the truth — put it back so
    // a retry (or a fallback full save) does not lose the chain.
    delta_log_ = std::move(segment.records);
    return s;
  }
  if (info != nullptr) {
    info->bytes = bytes;
    info->records = segment.records.size();
    info->edges = segment.NumEdges();
  }
  return Status::OK();
}

void ShardWorker::AppendDeltaRecord(const DeltaRecord& record) {
  if (!delta_tracking_ || delta_overflow_) return;
  if (delta_log_.size() >= options_.max_delta_log) {
    // Unbounded history is worse than a forced full checkpoint: drop the
    // log, remember the overflow, and let the next SaveDelta fail fast.
    delta_log_.clear();
    delta_log_.shrink_to_fit();
    delta_overflow_ = true;
    return;
  }
  delta_log_.push_back(record);
}

std::shared_ptr<const Community> ShardWorker::RebaselineLocked(bool flush) {
  // Re-baseline the alert filter on the restored community and publish it
  // so readers switch over atomically. The non-flushing read preserves the
  // replayed benign buffer (Lemma 4.4: buffered edges cannot have improved
  // the community, so the baseline is the same either way).
  Community restored =
      flush ? spade_.Detect() : spade_.peel_state().DetectCommunity();
  last_reported_ = SortedMembers(restored);
  last_density_ = restored.density;
  since_detect_ = 0;
  return std::make_shared<const Community>(std::move(restored));
}

Status ShardWorker::RestoreState(const std::string& path) {
  Drain();
  std::shared_ptr<const Community> snap;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    SPADE_RETURN_NOT_OK(spade_.RestoreState(path));
    delta_log_.clear();
    delta_overflow_ = false;
    snap = RebaselineLocked(/*flush=*/true);
  }
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
#endif
  return Status::OK();
}

Status ShardWorker::RestoreChain(RestorePlan&& plan) {
  Drain();
  std::shared_ptr<const Community> snap;
  {
    std::lock_guard<std::mutex> lock(detector_mutex_);
    spade_.RestoreFromParts(std::move(plan.graph), std::move(plan.state),
                            plan.state_present);
    // Replay the applied history through the same entry points the live
    // worker used. Every record passed CRC validation and came from a
    // successfully applied edge, so a failure here is a logic error — but
    // it still surfaces as a Status, not a partial silent state.
    for (const DeltaSegment& segment : plan.segments) {
      for (const DeltaRecord& record : segment.records) {
        if (record.flush) {
          SPADE_RETURN_NOT_OK(spade_.Flush());
        } else {
          SPADE_RETURN_NOT_OK(spade_.ApplyEdge(record.edge));
        }
      }
    }
    delta_log_.clear();
    delta_overflow_ = false;
    delta_tracking_ = true;
    snap = RebaselineLocked(/*flush=*/false);
  }
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(std::move(snap));
#else
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snap);
#endif
  return Status::OK();
}

void ShardWorker::InspectDetector(
    const std::function<void(const Spade&)>& fn) const {
  std::lock_guard<std::mutex> lock(detector_mutex_);
  fn(spade_);
}

void ShardWorker::DetectAndPublish() {
  // Caller (worker thread or RestoreState) holds detector_mutex_.
  if (spade_.PendingBenignEdges() > 0) {
    // Detect() is about to fold the benign buffer in; the replayed history
    // must flush at exactly this point to stay bit-identical (the flush
    // changes the graph, and state-dependent semantics weigh later edges
    // against it).
    AppendDeltaRecord(DeltaRecord::Flush());
  }
  Community community = spade_.Detect();
  since_detect_ = 0;
  detections_.fetch_add(1, std::memory_order_relaxed);
  std::vector<VertexId> sorted = SortedMembers(community);
  const bool changed =
      sorted != last_reported_ || community.density != last_density_;
  auto snap = std::make_shared<const Community>(std::move(community));
#if defined(SPADE_SNAPSHOT_PTR_ATOMIC)
  snapshot_.store(snap);
#else
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = snap;
  }
#endif
  if (!changed) return;
  last_reported_ = std::move(sorted);
  last_density_ = snap->density;
  alerts_.fetch_add(1, std::memory_order_relaxed);
  if (on_alert_) {
    pending_alert_ = std::move(snap);
  }
}

void ShardWorker::WorkerLoop() {
  std::vector<Edge> batch;
  while (true) {
    bool make_exact = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ || !producer_buffer_.empty() ||
               (drain_waiters_ > 0 && exact_through_ < consumed_q_);
      });
      if (producer_buffer_.empty()) {
        if (stopping_) break;
        // A Drain() waiter needs the snapshot brought up to date (flush
        // buffered benign edges, republish); no new edges to apply.
        make_exact = drain_waiters_ > 0 && exact_through_ < consumed_q_;
        if (!make_exact) continue;  // spurious wakeup
      } else {
        batch.clear();
        std::swap(batch, producer_buffer_);
        queue_depth_.store(0, std::memory_order_relaxed);
      }
    }

    if (make_exact) {
      std::shared_ptr<const Community> alert;
      {
        std::lock_guard<std::mutex> apply_lock(detector_mutex_);
        if (since_detect_ > 0 || spade_.PendingBenignEdges() > 0) {
          DetectAndPublish();
          alert = std::move(pending_alert_);
        }
      }
      if (alert) on_alert_(*alert);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        // Only an empty buffer makes the snapshot exact; a racing Submit
        // defers exactness to the next round.
        if (producer_buffer_.empty()) exact_through_ = consumed_q_;
      }
      drain_cv_.notify_all();
      continue;
    }

    // The whole buffer moved out at once; wake every blocked producer.
    space_cv_.notify_all();

    bool exact_after_batch = false;
    for (const Edge& edge : batch) {
      std::shared_ptr<const Community> alert;
      {
        std::lock_guard<std::mutex> apply_lock(detector_mutex_);
        ++consumed_;
        const Status s = spade_.ApplyEdge(edge);
        if (s.ok()) {
          AppendDeltaRecord(DeltaRecord::Insert(edge));
          processed_.fetch_add(1, std::memory_order_relaxed);
          ++since_detect_;
          // An urgent edge flushed the benign buffer inside ApplyEdge;
          // detect right away so moderators hear about new fraudsters
          // immediately.
          if (spade_.PendingBenignEdges() == 0 ||
              since_detect_ >= options_.detect_every) {
            DetectAndPublish();
            alert = std::move(pending_alert_);
          }
        } else {
          SPADE_LOG_WARNING()
              << "ShardWorker dropped edge: " << s.ToString();
        }
        exact_after_batch =
            since_detect_ == 0 && spade_.PendingBenignEdges() == 0;
      }
      // Deliver with no lock held: a slow moderator delays the next apply
      // on this shard but never blocks producers, readers, or Save/Restore
      // beyond this one callback.
      if (alert) on_alert_(*alert);
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      consumed_q_ = consumed_;
      // Cheap advance: if the batch happened to end on a fresh detection,
      // the published snapshot is already exact and a later Drain() needs
      // no worker round-trip. Otherwise exactness is produced on demand by
      // the make_exact branch above.
      if (exact_after_batch && producer_buffer_.empty()) {
        exact_through_ = consumed_q_;
      }
    }
    drain_cv_.notify_all();
  }

  // Final shutdown flush.
  {
    std::shared_ptr<const Community> alert;
    {
      std::lock_guard<std::mutex> apply_lock(detector_mutex_);
      if (since_detect_ > 0 || spade_.PendingBenignEdges() > 0) {
        DetectAndPublish();
        alert = std::move(pending_alert_);
      }
    }
    if (alert) on_alert_(*alert);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    worker_exited_ = true;
    exact_through_ = consumed_;
  }
  drain_cv_.notify_all();
  space_cv_.notify_all();
}

}  // namespace spade
